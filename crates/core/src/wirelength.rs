//! Pre-layout wirelength estimation for standard-cell modules.
//!
//! §4.2 lists "minimum interconnection length" among the practical
//! full-custom standards, and the same expectation machinery that prices
//! routing *area* (Eqs. 2–3) also prices routing *length*: a net whose
//! components land in `E(i)` of `n` rows needs
//!
//! * a **vertical** run crossing `E(i) − 1` row+channel pitches, and
//! * a **horizontal** trunk spanning the expected range of its components
//!   along the row, `(D−1)/(D+1)` of the row length (the same
//!   order-statistics span the track-sharing extension uses).
//!
//! Summed over all nets this predicts the module's total wirelength
//! before placement exists — directly comparable to the half-perimeter
//! wirelength ([`maestro_place::PlacedModule::hpwl`]) the annealer
//! reports after placement, which the E10 accuracy sweep exploits.

use maestro_geom::Lambda;
use maestro_netlist::NetlistStats;
use maestro_tech::ProcessDb;
use serde::{Deserialize, Serialize};

use crate::prob::{expected_rows, MAX_COMPONENTS, MAX_ROWS};
use crate::track_sharing::expected_span_fraction;

/// The predicted wiring lengths of a module at a given row count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirelengthEstimate {
    /// Module name.
    pub module_name: String,
    /// Row count the prediction assumes.
    pub rows: u32,
    /// Predicted total horizontal trunk length.
    pub horizontal: Lambda,
    /// Predicted total vertical (row-crossing) length.
    pub vertical: Lambda,
}

impl WirelengthEstimate {
    /// Total predicted wirelength.
    pub fn total(&self) -> Lambda {
        self.horizontal + self.vertical
    }
}

/// Predicts the module's total wirelength at `rows` rows.
///
/// # Panics
///
/// Panics if the module has no devices or `rows` is outside
/// `1..=`[`MAX_ROWS`].
pub fn estimate(stats: &NetlistStats, tech: &ProcessDb, rows: u32) -> WirelengthEstimate {
    assert!(stats.device_count() > 0, "cannot estimate an empty module");
    assert!(
        (1..=MAX_ROWS).contains(&rows),
        "row count {rows} outside 1..={MAX_ROWS}"
    );
    let row_length = stats.average_width() * stats.device_count() as f64 / rows as f64;
    let row_pitch = (tech.row_height() + tech.track_pitch() * 3).as_f64();

    let mut horizontal = 0.0f64;
    let mut vertical = 0.0f64;
    for (d, y) in stats.net_sizes().iter() {
        if d < 2 {
            continue;
        }
        let dd = (d as u32).clamp(1, MAX_COMPONENTS);
        let e_rows = expected_rows(rows, dd);
        horizontal += y as f64 * expected_span_fraction(d) * row_length;
        vertical += y as f64 * (e_rows - 1.0).max(0.0) * row_pitch;
    }
    WirelengthEstimate {
        module_name: stats.module_name().to_owned(),
        rows,
        horizontal: Lambda::from_f64_ceil(horizontal),
        vertical: Lambda::from_f64_ceil(vertical),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::{generate, LayoutStyle, ModuleBuilder};
    use maestro_tech::builtin;

    fn stats_of(module: &maestro_netlist::Module) -> NetlistStats {
        NetlistStats::resolve(module, &builtin::nmos25(), LayoutStyle::StandardCell)
            .expect("resolves")
    }

    #[test]
    fn single_row_has_no_vertical_length() {
        let m = generate::ripple_adder(2);
        let est = estimate(&stats_of(&m), &builtin::nmos25(), 1);
        assert_eq!(est.vertical, Lambda::ZERO);
        assert!(est.horizontal.is_positive());
        assert_eq!(est.total(), est.horizontal);
    }

    #[test]
    fn stub_only_modules_predict_zero() {
        // Only 1-component nets: no wiring at all.
        let mut b = ModuleBuilder::new("stubs");
        for i in 0..3 {
            let n = b.net(format!("n{i}"));
            b.device(format!("u{i}"), "INV", [("A", n)]);
        }
        let est = estimate(&stats_of(&b.finish()), &builtin::nmos25(), 3);
        assert_eq!(est.total(), Lambda::ZERO);
    }

    #[test]
    fn vertical_grows_with_rows_horizontal_shrinks() {
        let m = generate::counter(6);
        let stats = stats_of(&m);
        let tech = builtin::nmos25();
        let e2 = estimate(&stats, &tech, 2);
        let e6 = estimate(&stats, &tech, 6);
        assert!(
            e6.vertical > e2.vertical,
            "{} vs {}",
            e6.vertical,
            e2.vertical
        );
        assert!(
            e6.horizontal < e2.horizontal,
            "{} vs {}",
            e6.horizontal,
            e2.horizontal
        );
    }

    #[test]
    fn prediction_brackets_placed_hpwl_within_a_small_factor() {
        // Not a theorem — the annealer optimizes, the model averages — but
        // on structured modules the prediction should land within ~4× of
        // the optimized reality and never undershoot absurdly.
        use maestro_place::{place, AnnealSchedule, PlaceParams};
        let tech = builtin::nmos25();
        for m in [
            generate::ripple_adder(4),
            generate::counter(6),
            generate::shift_register(8),
        ] {
            let stats = stats_of(&m);
            let rows = 3;
            let est = estimate(&stats, &tech, rows);
            let placed = place(
                &m,
                &tech,
                &PlaceParams {
                    rows,
                    schedule: AnnealSchedule::quick(),
                    ..PlaceParams::default()
                },
            )
            .expect("places");
            let real = placed.hpwl().as_f64().max(1.0);
            let pred = est.total().as_f64();
            let ratio = pred / real;
            assert!(
                (0.4..=6.0).contains(&ratio),
                "{}: predicted {pred} vs placed {real} (ratio {ratio:.2})",
                m.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty module")]
    fn empty_module_rejected() {
        let b = ModuleBuilder::new("empty");
        let _ = estimate(&stats_of(&b.finish()), &builtin::nmos25(), 2);
    }
}
