//! The serve-mode `Request`/`Response` layer: stable JSON-lines schemas
//! for driving the estimation pipeline as a long-lived service.
//!
//! A one-shot CLI invocation re-pays process setup (tech DB construction,
//! file parsing) on every call; a floorplanning search loop issuing
//! thousands of estimates cannot afford that. `maestro serve` keeps the
//! process warm and speaks this protocol instead: one request per line in,
//! one response per line out, correlated by a client-chosen `id`.
//!
//! # Wire format
//!
//! Every request is a single-line JSON object with an `id` string, a
//! `kind` discriminator, and kind-specific parameters:
//!
//! ```text
//! {"id":"e1","kind":"estimate","files":["a.mnl"],"mnl":[],"tech":"nmos","jobs":2,"json":true}
//! {"id":"l1","kind":"layout","files":[],"mnl":["module m; ..."],"tech":"nmos","rows":2,"replicas":1}
//! {"id":"f1","kind":"floorplan","files":["a.mnl","b.mnl"],"mnl":[],"tech":"nmos","aspect":1.5,"replicas":1,"backend":"annealing"}
//! {"id":"r1","kind":"report","files":["a.mnl"],"mnl":[],"tech":"cmos","replicas":1,"backend":"spanning-tree"}
//! {"id":"c1","kind":"cache-stats"}
//! {"id":"q","kind":"shutdown"}
//! ```
//!
//! An `estimate` request may set `"incremental":true` to diff the batch
//! against the session's previous revision and serve unchanged modules
//! from the result memo; a `layout` request may set `"warm":true` to
//! warm-start synthesis from the session's stored seed. `cache-stats`
//! reports the session's cache counters as a JSON payload.
//!
//! Schematic sources arrive either as `files` (paths resolved by the
//! server) or `mnl` (inline `.mnl` text); files are read first, inline
//! sources after, each preserving array order. Responses echo the id:
//!
//! ```text
//! {"id":"e1","ok":true,"payload":"..."}
//! {"id":"e1","ok":false,"error":"..."}
//! ```
//!
//! The `payload` carries exactly the bytes the matching one-shot CLI
//! command would have written to stdout — the serve-mode equivalence
//! contract the replay suite enforces.
//!
//! The codec is deliberately strict: unknown fields, fields that do not
//! apply to the request kind, out-of-range parameters and malformed JSON
//! are all rejected with a structured error (never a panic), so a
//! misbehaving client cannot take the daemon down.

use std::fmt;

use serde::{find_field, Value};

use crate::prob::MAX_ROWS;

/// Upper bound on `jobs` and `replicas` in a request: generous for any
/// real machine, small enough that a hostile request cannot ask the
/// server to spawn an absurd number of threads.
pub const MAX_FANOUT: u32 = 1024;

/// Upper bound on the combined number of `files` and `mnl` entries in one
/// request. Million-device batches belong to the streaming CLI path
/// (`estimate --stream`), not a single line-oriented service request.
pub const MAX_SOURCES: usize = 1024;

/// Upper bound on the total inline `.mnl` bytes in one request (16 MiB).
/// A chip near the generator ceiling serialises far past this; the limit
/// keeps one hostile line from pinning the daemon's memory.
pub const MAX_INLINE_MNL_BYTES: usize = 16 << 20;

/// Floorplan backend names the protocol accepts, in registry order. The
/// registry itself lives in the floorplan crate (which depends on this
/// one), so the protocol carries names and the floorplan crate asserts —
/// in its own tests — that its registry matches this list exactly.
pub const FLOORPLAN_BACKENDS: &[&str] = &["annealing", "annealing-warm", "spanning-tree"];

/// The backend used when a request omits the `backend` field: the
/// pre-trait annealer, preserving byte-identical behaviour for every
/// client written before backends existed.
pub const DEFAULT_FLOORPLAN_BACKEND: &str = "annealing";

/// One protocol request: a client-chosen correlation id plus the call.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    /// Never empty (the codec rejects empty ids).
    pub id: String,
    /// What to run.
    pub call: RequestCall,
}

/// The kind-specific body of a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum RequestCall {
    /// Closed-form area estimation (the CLI's `estimate`).
    Estimate(EstimateRequest),
    /// Actual layout: place & route or full-custom synthesis (`layout`).
    Layout(LayoutRequest),
    /// Chip floorplan from per-module estimates (`floorplan`).
    Floorplan(FloorplanRequest),
    /// Markdown design report (`report`).
    Report(ReportRequest),
    /// Session cache introspection (`cache-stats`): resolve-memo,
    /// result-memo and tech-reuse counters as a JSON payload.
    CacheStats,
    /// Graceful shutdown: the server stops reading, drains in-flight
    /// requests, answers this one last and exits.
    Shutdown,
}

/// Schematic sources plus parameters for an `estimate` request.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRequest {
    /// Server-side schematic files (`.mnl`, `.sp`, `.spice`, `.cir`).
    pub files: Vec<String>,
    /// Inline `.mnl` sources (each may define several modules).
    pub mnl: Vec<String>,
    /// Technology: `nmos`, `cmos` or a process-DB JSON path.
    pub tech: String,
    /// Explicit standard-cell row count (`1..=`[`MAX_ROWS`]).
    pub rows: Option<u32>,
    /// Worker threads for the batch (`1..=`[`MAX_FANOUT`]).
    pub jobs: u32,
    /// Respond with the results-database JSON instead of the text table.
    pub json: bool,
    /// Diff against the session's previous revision and serve unchanged
    /// modules from the result memo.
    pub incremental: bool,
}

/// Schematic sources plus parameters for a `layout` request.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutRequest {
    /// Server-side schematic files.
    pub files: Vec<String>,
    /// Inline `.mnl` sources.
    pub mnl: Vec<String>,
    /// Technology spec.
    pub tech: String,
    /// Standard-cell row count (`1..=`[`MAX_ROWS`]; default 2).
    pub rows: Option<u32>,
    /// Annealing replicas (`1..=`[`MAX_FANOUT`]).
    pub replicas: u32,
    /// Warm-start full-custom synthesis from the session's stored seeds.
    pub warm: bool,
}

/// Schematic sources plus parameters for a `floorplan` request.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorplanRequest {
    /// Server-side schematic files.
    pub files: Vec<String>,
    /// Inline `.mnl` sources.
    pub mnl: Vec<String>,
    /// Technology spec.
    pub tech: String,
    /// Chip aspect-ratio limit (finite, positive).
    pub aspect: Option<f64>,
    /// Annealing replicas (`1..=`[`MAX_FANOUT`]).
    pub replicas: u32,
    /// Floorplan backend name (one of [`FLOORPLAN_BACKENDS`]).
    pub backend: String,
}

/// Schematic sources plus parameters for a `report` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRequest {
    /// Server-side schematic files.
    pub files: Vec<String>,
    /// Inline `.mnl` sources.
    pub mnl: Vec<String>,
    /// Technology spec.
    pub tech: String,
    /// Chip aspect-ratio limit (finite, positive).
    pub aspect: Option<f64>,
    /// Annealing replicas (`1..=`[`MAX_FANOUT`]).
    pub replicas: u32,
    /// Floorplan backend name (one of [`FLOORPLAN_BACKENDS`]).
    pub backend: String,
}

/// A request that could not be decoded. Carries the id when one could be
/// recovered from the malformed line, so the server can still address its
/// error response.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The `id` field, when the line parsed far enough to read it.
    pub id: Option<String>,
    /// What was wrong with the request.
    pub message: String,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad request: {}", self.message)
    }
}

impl std::error::Error for RequestError {}

/// One protocol response, correlated to its request by `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id (empty when the request's id was unrecoverable).
    pub id: String,
    /// Success payload or failure message.
    pub result: Result<String, String>,
}

impl Response {
    /// A success response carrying the command's stdout bytes.
    pub fn ok(id: impl Into<String>, payload: impl Into<String>) -> Response {
        Response {
            id: id.into(),
            result: Ok(payload.into()),
        }
    }

    /// A failure response carrying the error message.
    pub fn error(id: impl Into<String>, message: impl Into<String>) -> Response {
        Response {
            id: id.into(),
            result: Err(message.into()),
        }
    }

    /// `true` for a success response.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![("id".to_owned(), Value::Str(self.id.clone()))];
        match &self.result {
            Ok(payload) => {
                fields.push(("ok".to_owned(), Value::Bool(true)));
                fields.push(("payload".to_owned(), Value::Str(payload.clone())));
            }
            Err(message) => {
                fields.push(("ok".to_owned(), Value::Bool(false)));
                fields.push(("error".to_owned(), Value::Str(message.clone())));
            }
        }
        serde_json::to_string(&Value::Object(fields)).expect("response serializes")
    }

    /// Parses a response line, strictly.
    ///
    /// # Errors
    ///
    /// Returns the schema violation as a message.
    pub fn parse(line: &str) -> Result<Response, String> {
        let value: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let fields = value.as_object().ok_or("response must be a JSON object")?;
        for (key, _) in fields {
            if !matches!(key.as_str(), "id" | "ok" | "payload" | "error") {
                return Err(format!("unknown field `{key}` in response"));
            }
        }
        let id = expect_str(fields, "id")?;
        let ok = match find_field(fields, "ok") {
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("field `ok` must be a boolean".to_owned()),
            None => return Err("missing field `ok`".to_owned()),
        };
        if ok {
            if find_field(fields, "error").is_some() {
                return Err("success response must not carry `error`".to_owned());
            }
            Ok(Response {
                id,
                result: Ok(expect_str(fields, "payload")?),
            })
        } else {
            if find_field(fields, "payload").is_some() {
                return Err("error response must not carry `payload`".to_owned());
            }
            Ok(Response {
                id,
                result: Err(expect_str(fields, "error")?),
            })
        }
    }
}

impl Request {
    /// The `kind` discriminator string for this request.
    pub fn kind_name(&self) -> &'static str {
        match &self.call {
            RequestCall::Estimate(_) => "estimate",
            RequestCall::Layout(_) => "layout",
            RequestCall::Floorplan(_) => "floorplan",
            RequestCall::Report(_) => "report",
            RequestCall::CacheStats => "cache-stats",
            RequestCall::Shutdown => "shutdown",
        }
    }

    /// Serializes to one JSON line (no trailing newline). Fields appear
    /// in a fixed order (`id`, `kind`, sources, parameters) so identical
    /// requests serialize to identical bytes.
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![
            ("id".to_owned(), Value::Str(self.id.clone())),
            ("kind".to_owned(), Value::Str(self.kind_name().to_owned())),
        ];
        let sources = |fields: &mut Vec<(String, Value)>, files: &[String], mnl: &[String]| {
            fields.push((
                "files".to_owned(),
                Value::Array(files.iter().map(|f| Value::Str(f.clone())).collect()),
            ));
            fields.push((
                "mnl".to_owned(),
                Value::Array(mnl.iter().map(|m| Value::Str(m.clone())).collect()),
            ));
        };
        match &self.call {
            RequestCall::Estimate(req) => {
                sources(&mut fields, &req.files, &req.mnl);
                fields.push(("tech".to_owned(), Value::Str(req.tech.clone())));
                if let Some(rows) = req.rows {
                    fields.push(("rows".to_owned(), Value::U64(rows.into())));
                }
                fields.push(("jobs".to_owned(), Value::U64(req.jobs.into())));
                fields.push(("json".to_owned(), Value::Bool(req.json)));
                if req.incremental {
                    fields.push(("incremental".to_owned(), Value::Bool(true)));
                }
            }
            RequestCall::Layout(req) => {
                sources(&mut fields, &req.files, &req.mnl);
                fields.push(("tech".to_owned(), Value::Str(req.tech.clone())));
                if let Some(rows) = req.rows {
                    fields.push(("rows".to_owned(), Value::U64(rows.into())));
                }
                fields.push(("replicas".to_owned(), Value::U64(req.replicas.into())));
                if req.warm {
                    fields.push(("warm".to_owned(), Value::Bool(true)));
                }
            }
            RequestCall::Floorplan(req) => {
                sources(&mut fields, &req.files, &req.mnl);
                fields.push(("tech".to_owned(), Value::Str(req.tech.clone())));
                if let Some(aspect) = req.aspect {
                    fields.push(("aspect".to_owned(), Value::F64(aspect)));
                }
                fields.push(("replicas".to_owned(), Value::U64(req.replicas.into())));
                fields.push(("backend".to_owned(), Value::Str(req.backend.clone())));
            }
            RequestCall::Report(req) => {
                sources(&mut fields, &req.files, &req.mnl);
                fields.push(("tech".to_owned(), Value::Str(req.tech.clone())));
                if let Some(aspect) = req.aspect {
                    fields.push(("aspect".to_owned(), Value::F64(aspect)));
                }
                fields.push(("replicas".to_owned(), Value::U64(req.replicas.into())));
                fields.push(("backend".to_owned(), Value::Str(req.backend.clone())));
            }
            RequestCall::CacheStats | RequestCall::Shutdown => {}
        }
        serde_json::to_string(&Value::Object(fields)).expect("request serializes")
    }

    /// Parses one request line, strictly: malformed JSON, a missing or
    /// empty id, an unknown kind, unknown fields, fields that do not
    /// apply to the kind and out-of-range parameters are all errors.
    ///
    /// # Errors
    ///
    /// Returns a [`RequestError`] carrying the request id whenever the
    /// line parsed far enough to recover it, so the server can address
    /// its error response.
    pub fn parse(line: &str) -> Result<Request, RequestError> {
        let value: Value = serde_json::from_str(line).map_err(|e| RequestError {
            id: None,
            message: e.to_string(),
        })?;
        let Some(fields) = value.as_object() else {
            return Err(RequestError {
                id: None,
                message: "request must be a JSON object".to_owned(),
            });
        };
        // Recover the id first: every later error can then be addressed.
        let id = match find_field(fields, "id") {
            Some(Value::Str(s)) if !s.is_empty() => s.clone(),
            Some(Value::Str(_)) => {
                return Err(RequestError {
                    id: None,
                    message: "request id must not be empty".to_owned(),
                })
            }
            Some(_) => {
                return Err(RequestError {
                    id: None,
                    message: "field `id` must be a string".to_owned(),
                })
            }
            None => {
                return Err(RequestError {
                    id: None,
                    message: "missing field `id`".to_owned(),
                })
            }
        };
        let fail = |message: String| RequestError {
            id: Some(id.clone()),
            message,
        };
        let kind = match find_field(fields, "kind") {
            Some(Value::Str(s)) => s.clone(),
            Some(_) => return Err(fail("field `kind` must be a string".to_owned())),
            None => return Err(fail("missing field `kind`".to_owned())),
        };
        let allowed: &[&str] = match kind.as_str() {
            "estimate" => &[
                "id",
                "kind",
                "files",
                "mnl",
                "tech",
                "rows",
                "jobs",
                "json",
                "incremental",
            ],
            "layout" => &[
                "id", "kind", "files", "mnl", "tech", "rows", "replicas", "warm",
            ],
            "floorplan" | "report" => &[
                "id", "kind", "files", "mnl", "tech", "aspect", "replicas", "backend",
            ],
            "cache-stats" | "shutdown" => &["id", "kind"],
            other => {
                return Err(fail(format!(
                    "unknown kind `{other}` (expected estimate, layout, floorplan, report, \
                     cache-stats or shutdown)"
                )))
            }
        };
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(fail(format!("unknown field `{key}` for kind `{kind}`")));
            }
        }
        let call = (|| -> Result<RequestCall, String> {
            Ok(match kind.as_str() {
                "estimate" => RequestCall::Estimate(EstimateRequest {
                    files: parse_sources(fields, "files")?,
                    mnl: parse_sources(fields, "mnl")?,
                    tech: parse_tech(fields)?,
                    rows: parse_rows(fields)?,
                    jobs: parse_fanout(fields, "jobs")?,
                    json: match find_field(fields, "json") {
                        Some(Value::Bool(b)) => *b,
                        Some(_) => return Err("field `json` must be a boolean".to_owned()),
                        None => false,
                    },
                    incremental: match find_field(fields, "incremental") {
                        Some(Value::Bool(b)) => *b,
                        Some(_) => return Err("field `incremental` must be a boolean".to_owned()),
                        None => false,
                    },
                }),
                "layout" => RequestCall::Layout(LayoutRequest {
                    files: parse_sources(fields, "files")?,
                    mnl: parse_sources(fields, "mnl")?,
                    tech: parse_tech(fields)?,
                    rows: parse_rows(fields)?,
                    replicas: parse_fanout(fields, "replicas")?,
                    warm: match find_field(fields, "warm") {
                        Some(Value::Bool(b)) => *b,
                        Some(_) => return Err("field `warm` must be a boolean".to_owned()),
                        None => false,
                    },
                }),
                "floorplan" => RequestCall::Floorplan(FloorplanRequest {
                    files: parse_sources(fields, "files")?,
                    mnl: parse_sources(fields, "mnl")?,
                    tech: parse_tech(fields)?,
                    aspect: parse_aspect(fields)?,
                    replicas: parse_fanout(fields, "replicas")?,
                    backend: parse_backend(fields)?,
                }),
                "report" => RequestCall::Report(ReportRequest {
                    files: parse_sources(fields, "files")?,
                    mnl: parse_sources(fields, "mnl")?,
                    tech: parse_tech(fields)?,
                    aspect: parse_aspect(fields)?,
                    replicas: parse_fanout(fields, "replicas")?,
                    backend: parse_backend(fields)?,
                }),
                "cache-stats" => RequestCall::CacheStats,
                "shutdown" => RequestCall::Shutdown,
                _ => unreachable!("kind validated above"),
            })
        })()
        .map_err(fail)?;
        if let Some((files, mnl)) = match &call {
            RequestCall::Estimate(r) => Some((&r.files, &r.mnl)),
            RequestCall::Layout(r) => Some((&r.files, &r.mnl)),
            RequestCall::Floorplan(r) => Some((&r.files, &r.mnl)),
            RequestCall::Report(r) => Some((&r.files, &r.mnl)),
            RequestCall::CacheStats | RequestCall::Shutdown => None,
        } {
            if files.is_empty() && mnl.is_empty() {
                return Err(RequestError {
                    id: Some(id),
                    message: format!("kind `{kind}` needs at least one source in `files` or `mnl`"),
                });
            }
            let sources = files.len().saturating_add(mnl.len());
            if sources > MAX_SOURCES {
                return Err(RequestError {
                    id: Some(id),
                    message: format!(
                        "request carries {sources} sources, more than the {MAX_SOURCES} allowed"
                    ),
                });
            }
            let inline_bytes: usize = mnl.iter().map(String::len).sum();
            if inline_bytes > MAX_INLINE_MNL_BYTES {
                return Err(RequestError {
                    id: Some(id),
                    message: format!(
                        "inline `mnl` sources total {inline_bytes} bytes, more than the \
                         {MAX_INLINE_MNL_BYTES} allowed"
                    ),
                });
            }
        }
        Ok(Request { id, call })
    }
}

fn expect_str(fields: &[(String, Value)], key: &str) -> Result<String, String> {
    match find_field(fields, key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field `{key}` must be a string")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn parse_sources(fields: &[(String, Value)], key: &str) -> Result<Vec<String>, String> {
    match find_field(fields, key) {
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| match item {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!(
                    "field `{key}` must be an array of strings, found {other:?}"
                )),
            })
            .collect(),
        Some(_) => Err(format!("field `{key}` must be an array of strings")),
        None => Ok(Vec::new()),
    }
}

fn parse_tech(fields: &[(String, Value)]) -> Result<String, String> {
    match find_field(fields, "tech") {
        Some(Value::Str(s)) if !s.is_empty() => Ok(s.clone()),
        Some(Value::Str(_)) => Err("field `tech` must not be empty".to_owned()),
        Some(_) => Err("field `tech` must be a string".to_owned()),
        None => Ok("nmos".to_owned()),
    }
}

fn parse_rows(fields: &[(String, Value)]) -> Result<Option<u32>, String> {
    match find_field(fields, "rows") {
        Some(Value::Null) | None => Ok(None),
        Some(v) => {
            let rows = v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("field `rows` must be a non-negative integer")?;
            if (1..=MAX_ROWS).contains(&rows) {
                Ok(Some(rows))
            } else {
                Err(format!(
                    "field `rows` must be in 1..={MAX_ROWS}, got {rows}"
                ))
            }
        }
    }
}

fn parse_fanout(fields: &[(String, Value)], key: &str) -> Result<u32, String> {
    match find_field(fields, key) {
        None => Ok(1),
        Some(v) => {
            let n = v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))?;
            if (1..=MAX_FANOUT).contains(&n) {
                Ok(n)
            } else {
                Err(format!(
                    "field `{key}` must be in 1..={MAX_FANOUT}, got {n}"
                ))
            }
        }
    }
}

fn parse_backend(fields: &[(String, Value)]) -> Result<String, String> {
    match find_field(fields, "backend") {
        None => Ok(DEFAULT_FLOORPLAN_BACKEND.to_owned()),
        Some(Value::Str(s)) if FLOORPLAN_BACKENDS.contains(&s.as_str()) => Ok(s.clone()),
        Some(Value::Str(s)) => Err(format!(
            "unknown backend `{s}` (expected one of: {})",
            FLOORPLAN_BACKENDS.join(", ")
        )),
        Some(_) => Err("field `backend` must be a string".to_owned()),
    }
}

fn parse_aspect(fields: &[(String, Value)]) -> Result<Option<f64>, String> {
    match find_field(fields, "aspect") {
        Some(Value::Null) | None => Ok(None),
        Some(v) => {
            let aspect = v.as_f64().ok_or("field `aspect` must be a number")?;
            if aspect.is_finite() && aspect > 0.0 {
                Ok(Some(aspect))
            } else {
                Err(format!(
                    "field `aspect` must be finite and positive, got {aspect}"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate_request() -> Request {
        Request {
            id: "e1".to_owned(),
            call: RequestCall::Estimate(EstimateRequest {
                files: vec!["assets/table1.mnl".to_owned()],
                mnl: vec!["module m;\ninput a;\nendmodule\n".to_owned()],
                tech: "nmos".to_owned(),
                rows: Some(4),
                jobs: 2,
                json: true,
                incremental: false,
            }),
        }
    }

    #[test]
    fn request_round_trips_through_one_line() {
        let requests = [
            estimate_request(),
            Request {
                id: "e2".to_owned(),
                call: RequestCall::Estimate(EstimateRequest {
                    files: vec!["assets/table1.mnl".to_owned()],
                    mnl: Vec::new(),
                    tech: "nmos".to_owned(),
                    rows: None,
                    jobs: 1,
                    json: false,
                    incremental: true,
                }),
            },
            Request {
                id: "l-1".to_owned(),
                call: RequestCall::Layout(LayoutRequest {
                    files: Vec::new(),
                    mnl: vec!["module m;\nendmodule\n".to_owned()],
                    tech: "cmos".to_owned(),
                    rows: None,
                    replicas: 4,
                    warm: false,
                }),
            },
            Request {
                id: "l-2".to_owned(),
                call: RequestCall::Layout(LayoutRequest {
                    files: vec!["a.mnl".to_owned()],
                    mnl: Vec::new(),
                    tech: "nmos".to_owned(),
                    rows: Some(2),
                    replicas: 1,
                    warm: true,
                }),
            },
            Request {
                id: "f1".to_owned(),
                call: RequestCall::Floorplan(FloorplanRequest {
                    files: vec!["a.mnl".to_owned(), "b.mnl".to_owned()],
                    mnl: Vec::new(),
                    tech: "nmos".to_owned(),
                    aspect: Some(1.5),
                    replicas: 1,
                    backend: "spanning-tree".to_owned(),
                }),
            },
            Request {
                id: "r1".to_owned(),
                call: RequestCall::Report(ReportRequest {
                    files: vec!["a.mnl".to_owned()],
                    mnl: Vec::new(),
                    tech: "nmos".to_owned(),
                    aspect: None,
                    replicas: 2,
                    backend: DEFAULT_FLOORPLAN_BACKEND.to_owned(),
                }),
            },
            Request {
                id: "c1".to_owned(),
                call: RequestCall::CacheStats,
            },
            Request {
                id: "q".to_owned(),
                call: RequestCall::Shutdown,
            },
        ];
        for request in requests {
            let line = request.to_json_line();
            assert!(!line.contains('\n'), "one line: {line}");
            let back = Request::parse(&line).expect("round trip parses");
            assert_eq!(back, request, "line: {line}");
        }
    }

    #[test]
    fn omitted_fields_take_defaults() {
        let r = Request::parse("{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a.mnl\"]}")
            .expect("parses");
        let RequestCall::Estimate(req) = r.call else {
            panic!("wrong kind");
        };
        assert_eq!(req.tech, "nmos");
        assert_eq!(req.rows, None);
        assert_eq!(req.jobs, 1);
        assert!(!req.json);
        assert!(!req.incremental);
        assert!(req.mnl.is_empty());
    }

    #[test]
    fn unknown_and_misplaced_fields_are_rejected_with_the_id() {
        for (line, needle) in [
            (
                "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"zzz\":1}",
                "unknown field `zzz`",
            ),
            (
                // `json` belongs to estimate, not layout.
                "{\"id\":\"x\",\"kind\":\"layout\",\"files\":[\"a\"],\"json\":true}",
                "unknown field `json`",
            ),
            (
                // `incremental` belongs to estimate, not layout.
                "{\"id\":\"x\",\"kind\":\"layout\",\"files\":[\"a\"],\"incremental\":true}",
                "unknown field `incremental`",
            ),
            (
                // `warm` belongs to layout, not estimate.
                "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"warm\":true}",
                "unknown field `warm`",
            ),
            (
                // cache-stats takes no sources or parameters.
                "{\"id\":\"x\",\"kind\":\"cache-stats\",\"files\":[\"a\"]}",
                "unknown field `files`",
            ),
            (
                "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"incremental\":1}",
                "field `incremental` must be a boolean",
            ),
            (
                "{\"id\":\"x\",\"kind\":\"frobnicate\"}",
                "unknown kind `frobnicate`",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert_eq!(err.id.as_deref(), Some("x"), "{line}");
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
    }

    #[test]
    fn out_of_range_parameters_are_rejected() {
        for line in [
            "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"jobs\":0}",
            "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"jobs\":1025}",
            "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"rows\":0}",
            "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"rows\":65}",
            "{\"id\":\"x\",\"kind\":\"layout\",\"files\":[\"a\"],\"replicas\":0}",
            "{\"id\":\"x\",\"kind\":\"floorplan\",\"files\":[\"a\"],\"aspect\":0}",
            "{\"id\":\"x\",\"kind\":\"floorplan\",\"files\":[\"a\"],\"aspect\":-1.5}",
        ] {
            let err = Request::parse(line).expect_err(line);
            assert_eq!(err.id.as_deref(), Some("x"), "{line}");
        }
    }

    #[test]
    fn backend_defaults_validates_and_rejects_misplacement() {
        let r = Request::parse("{\"id\":\"x\",\"kind\":\"floorplan\",\"files\":[\"a.mnl\"]}")
            .expect("parses");
        let RequestCall::Floorplan(req) = r.call else {
            panic!("wrong kind");
        };
        assert_eq!(req.backend, DEFAULT_FLOORPLAN_BACKEND);

        for name in FLOORPLAN_BACKENDS {
            let line = format!(
                "{{\"id\":\"x\",\"kind\":\"report\",\"files\":[\"a\"],\"backend\":\"{name}\"}}"
            );
            let r = Request::parse(&line).expect(&line);
            let RequestCall::Report(req) = r.call else {
                panic!("wrong kind");
            };
            assert_eq!(&req.backend, name);
        }

        for (line, needle) in [
            (
                "{\"id\":\"x\",\"kind\":\"floorplan\",\"files\":[\"a\"],\"backend\":\"bogus\"}",
                "unknown backend `bogus`",
            ),
            (
                "{\"id\":\"x\",\"kind\":\"floorplan\",\"files\":[\"a\"],\"backend\":7}",
                "must be a string",
            ),
            (
                // `backend` belongs to floorplan/report, not estimate.
                "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"backend\":\"annealing\"}",
                "unknown field `backend`",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert_eq!(err.id.as_deref(), Some("x"), "{line}");
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
    }

    #[test]
    fn oversized_source_lists_and_inline_payloads_are_rejected() {
        // One entry past the source-count cap fails; at the cap it parses.
        let many = |n: usize| {
            let files: Vec<String> = (0..n).map(|i| format!("\"f{i}.mnl\"")).collect();
            format!(
                "{{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[{}]}}",
                files.join(",")
            )
        };
        Request::parse(&many(MAX_SOURCES)).expect("at the cap parses");
        let err = Request::parse(&many(MAX_SOURCES + 1)).expect_err("past the cap fails");
        assert_eq!(err.id.as_deref(), Some("x"));
        assert!(err.message.contains("1025 sources"), "{}", err.message);

        // The cap counts files and inline sources together.
        let split = format!(
            "{{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[{}],\"mnl\":[\"m\",\"m\"]}}",
            (0..MAX_SOURCES - 1)
                .map(|i| format!("\"f{i}.mnl\""))
                .collect::<Vec<_>>()
                .join(",")
        );
        let err = Request::parse(&split).expect_err("files + mnl past the cap fails");
        assert!(err.message.contains("sources"), "{}", err.message);

        // Inline bytes sum across all `mnl` entries. The JSON itself stays
        // small by spending the budget on two large-but-legal strings.
        let half = "a".repeat(MAX_INLINE_MNL_BYTES / 2);
        let at_cap =
            format!("{{\"id\":\"x\",\"kind\":\"layout\",\"mnl\":[\"{half}\",\"{half}\"]}}");
        Request::parse(&at_cap).expect("at the byte cap parses");
        let over = format!("{{\"id\":\"x\",\"kind\":\"layout\",\"mnl\":[\"{half}\",\"{half}a\"]}}");
        let err = Request::parse(&over).expect_err("past the byte cap fails");
        assert_eq!(err.id.as_deref(), Some("x"));
        assert!(err.message.contains("inline `mnl`"), "{}", err.message);
    }

    #[test]
    fn sourceless_work_requests_are_rejected_but_shutdown_is_not() {
        let err = Request::parse("{\"id\":\"x\",\"kind\":\"estimate\"}").unwrap_err();
        assert!(err.message.contains("at least one source"), "{err:?}");
        Request::parse("{\"id\":\"x\",\"kind\":\"shutdown\"}").expect("shutdown needs no source");
        Request::parse("{\"id\":\"x\",\"kind\":\"cache-stats\"}")
            .expect("cache-stats needs no source");
    }

    #[test]
    fn malformed_lines_fail_without_an_id() {
        for line in [
            "",
            "not json",
            "[1,2]",
            "{\"kind\":\"estimate\"}",
            "{\"id\":\"\"}",
        ] {
            let err = Request::parse(line).expect_err(line);
            assert_eq!(err.id, None, "{line}");
        }
    }

    #[test]
    fn response_round_trips_and_rejects_mixed_shapes() {
        for response in [
            Response::ok("e1", "module `m`\n  standard-cell: 42\n"),
            Response::error("e2", "bad request: unknown kind `x`"),
            Response::ok("", ""),
        ] {
            let line = response.to_json_line();
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(Response::parse(&line).expect("parses"), response);
        }
        assert!(Response::parse("{\"id\":\"x\",\"ok\":true,\"error\":\"boom\"}").is_err());
        assert!(Response::parse("{\"id\":\"x\",\"ok\":false,\"payload\":\"p\"}").is_err());
        assert!(Response::parse("{\"id\":\"x\",\"ok\":true,\"payload\":\"p\",\"zz\":1}").is_err());
    }
}
