//! Track-sharing correction — the paper's first future-work item.
//!
//! §6 diagnoses the 42–70 % standard-cell overestimates: "the estimator
//! ignores track sharing in routing channels, which is especially
//! significant in larger designs", and §7 promises that "the estimator
//! will be changed to account for routing channel track sharing". This
//! module is that change.
//!
//! **Model.** Two nets can share a routing track when their horizontal
//! spans do not overlap, so a net should be charged not a whole track but
//! the *fraction of the row length its span covers*. For a net whose `D`
//! components are placed uniformly along a row, the expected span is the
//! expected range of `D` uniform samples:
//!
//! ```text
//! E[span] = (D − 1) / (D + 1)
//! ```
//!
//! The sharing-corrected track count replaces each net's `⌈E(i)⌉` whole
//! tracks with `E(i) · (D−1)/(D+1)` fractional track-length demand, summed
//! over all nets and rounded up once at the end:
//!
//! ```text
//! T_shared = ⌈ Σ_D y_D · E(D) · (D−1)/(D+1) ⌉
//! ```
//!
//! Single-component nets (pin-to-port stubs) have zero span and drop out,
//! matching real channel routers that serve them from existing tracks.
//! The corrected count is clamped to at least 1 track per channel when
//! any net exists, since a channel with traffic cannot be empty.

use maestro_netlist::NetlistStats;
use maestro_tech::ProcessDb;
use serde::{Deserialize, Serialize};

use crate::prob::{expected_rows, MAX_COMPONENTS, MAX_ROWS};
use crate::standard_cell::{estimate_with_rows, ScEstimate};

/// A standard-cell estimate corrected for routing-track sharing, paired
/// with the uncorrected upper bound it improves on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedTrackEstimate {
    /// The original §4.1 upper-bound estimate.
    pub upper_bound: ScEstimate,
    /// The sharing-corrected track count.
    pub shared_tracks: u32,
    /// The estimate recomputed with the corrected track count.
    pub corrected: ScEstimate,
}

/// Expected horizontal span fraction of a `D`-component net along its row:
/// `(D − 1)/(D + 1)`, the expected range of `D` uniform points.
pub fn expected_span_fraction(components: usize) -> f64 {
    if components <= 1 {
        return 0.0;
    }
    (components as f64 - 1.0) / (components as f64 + 1.0)
}

/// The sharing-corrected total track count at a given row count.
///
/// # Panics
///
/// Panics if `rows` is outside `1..=`[`MAX_ROWS`].
pub fn shared_tracks(stats: &NetlistStats, rows: u32) -> u32 {
    assert!(
        (1..=MAX_ROWS).contains(&rows),
        "row count {rows} outside 1..={MAX_ROWS}"
    );
    let demand: f64 = stats
        .net_sizes()
        .iter()
        .map(|(d, y)| {
            let dd = (d as u32).clamp(1, MAX_COMPONENTS);
            y as f64 * expected_rows(rows, dd) * expected_span_fraction(d)
        })
        .sum();
    let t = demand.ceil() as u32;
    if stats.net_count() > 0 {
        t.max(1)
    } else {
        t
    }
}

/// Runs the §4.1 estimator and then recomputes module height and area with
/// the sharing-corrected track count.
///
/// # Panics
///
/// Panics on the same inputs as [`estimate_with_rows`].
pub fn estimate_with_sharing(
    stats: &NetlistStats,
    tech: &ProcessDb,
    rows: u32,
) -> SharedTrackEstimate {
    let upper_bound = estimate_with_rows(stats, tech, rows);
    let shared = shared_tracks(stats, rows);
    // Rebuild height/area with the corrected count; width is unchanged
    // (feed-through expectation is orthogonal to track sharing).
    let height = tech.row_height() * rows as i64 + tech.track_pitch() * shared as i64;
    let area = upper_bound.width * height;
    let aspect_ratio = if upper_bound.width.is_positive() && height.is_positive() {
        maestro_geom::AspectRatio::of(upper_bound.width, height)
    } else {
        maestro_geom::AspectRatio::SQUARE
    };
    let corrected = ScEstimate {
        tracks: shared,
        height,
        area,
        aspect_ratio,
        ..upper_bound.clone()
    };
    SharedTrackEstimate {
        upper_bound,
        shared_tracks: shared,
        corrected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::{generate, LayoutStyle};
    use maestro_tech::builtin;

    fn stats_of(module: &maestro_netlist::Module) -> NetlistStats {
        NetlistStats::resolve(module, &builtin::nmos25(), LayoutStyle::StandardCell)
            .expect("resolves")
    }

    #[test]
    fn span_fraction_shape() {
        assert_eq!(expected_span_fraction(1), 0.0);
        assert!((expected_span_fraction(2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((expected_span_fraction(3) - 0.5).abs() < 1e-12);
        // Approaches 1 for huge nets.
        assert!(expected_span_fraction(100) > 0.97);
    }

    #[test]
    fn sharing_never_exceeds_upper_bound() {
        let tech = builtin::nmos25();
        for m in [
            generate::ripple_adder(4),
            generate::counter(6),
            generate::shift_register(10),
        ] {
            let stats = stats_of(&m);
            for rows in [2, 4, 8] {
                let e = estimate_with_sharing(&stats, &tech, rows);
                assert!(
                    e.shared_tracks <= e.upper_bound.tracks,
                    "{} rows={rows}: shared {} > bound {}",
                    m.name(),
                    e.shared_tracks,
                    e.upper_bound.tracks
                );
                assert!(e.corrected.area <= e.upper_bound.area);
            }
        }
    }

    #[test]
    fn sharing_reduces_area_substantially_for_local_netlists() {
        // Nets in these structured circuits are mostly 2–3 components, so
        // spans are ≤ 1/2 and sharing should cut track count at least 30 %.
        let tech = builtin::nmos25();
        let stats = stats_of(&generate::ripple_adder(4));
        let e = estimate_with_sharing(&stats, &tech, 4);
        assert!(
            (e.shared_tracks as f64) < 0.7 * e.upper_bound.tracks as f64,
            "shared {} vs bound {}",
            e.shared_tracks,
            e.upper_bound.tracks
        );
    }

    #[test]
    fn corrected_estimate_keeps_width() {
        let tech = builtin::nmos25();
        let stats = stats_of(&generate::counter(4));
        let e = estimate_with_sharing(&stats, &tech, 3);
        assert_eq!(e.corrected.width, e.upper_bound.width);
        assert_eq!(e.corrected.rows, e.upper_bound.rows);
        assert_eq!(e.corrected.tracks, e.shared_tracks);
    }

    #[test]
    fn at_least_one_track_with_traffic() {
        // A module of only 1-component nets still gets one track.
        let mut b = maestro_netlist::ModuleBuilder::new("stubs");
        for i in 0..3 {
            let n = b.net(format!("n{i}"));
            b.device(format!("u{i}"), "INV", [("A", n)]);
        }
        let stats = stats_of(&b.finish());
        assert_eq!(shared_tracks(&stats, 4), 1);
    }
}
