//! Multiple aspect-ratio candidates — the paper's second future-work item.
//!
//! §7: "the estimator will be changed to output four or five aspect ratio
//! estimates to allow chip floor planners more flexibility in choosing
//! module shapes." Two generators implement this:
//!
//! * [`sc_candidates`] — re-runs the standard-cell estimator at a window
//!   of row counts around the §5 seed: each row count yields a genuinely
//!   different (width, height) realization, because tracks and
//!   feed-throughs change with `n`;
//! * [`fc_shape_curve`] — samples the full-custom area at several aspect
//!   ratios in the paper's typical 1:2…2:1 band and returns a
//!   [`ShapeCurve`] the slicing floorplanner consumes directly.

use maestro_geom::{ShapeCurve, ShapePoint};
use maestro_netlist::NetlistStats;
use maestro_tech::ProcessDb;

use crate::full_custom::FcEstimate;
use crate::prob::{ProbTable, MAX_ROWS};
use crate::standard_cell::{estimate_with_rows_using, initial_rows, ScEstimate, ScParams};

/// Default number of candidates, the paper's "four or five".
pub const DEFAULT_CANDIDATES: usize = 5;

/// Standard-cell shape candidates: estimates at `count` row counts centred
/// on the §5 seed (clamped to `1..=MAX_ROWS`), deduplicated and sorted by
/// row count.
///
/// The whole sweep shares the process-wide [`ProbTable::shared`] memo —
/// adjacent row counts re-query many of the same `(rows, D)` pairs.
///
/// # Panics
///
/// Panics if the module has no devices or `count == 0`.
pub fn sc_candidates(stats: &NetlistStats, tech: &ProcessDb, count: usize) -> Vec<ScEstimate> {
    sc_candidates_using(
        stats,
        tech,
        count,
        &ScParams::default(),
        &ProbTable::shared(),
    )
}

/// [`sc_candidates`] against explicit estimator parameters and an
/// explicit probability table. The window centres on `params.rows` when
/// set (instead of the §5 seed) and never exceeds `params.max_rows`, so
/// a pipeline-level row override shifts the whole sweep.
///
/// # Panics
///
/// Panics if the module has no devices or `count == 0`.
pub fn sc_candidates_using(
    stats: &NetlistStats,
    tech: &ProcessDb,
    count: usize,
    params: &ScParams,
    table: &ProbTable,
) -> Vec<ScEstimate> {
    candidate_rows(stats, tech, count, params)
        .into_iter()
        .map(|n| estimate_with_rows_using(stats, tech, n, table))
        .collect()
}

/// Uncached reference implementation of [`sc_candidates`]: every row count
/// rebuilds its Eq. 2 distributions from scratch, as the sweep originally
/// did. Kept for differential tests and as the benchmark baseline.
///
/// # Panics
///
/// Panics if the module has no devices or `count == 0`.
pub fn sc_candidates_uncached(
    stats: &NetlistStats,
    tech: &ProcessDb,
    count: usize,
) -> Vec<ScEstimate> {
    candidate_rows(stats, tech, count, &ScParams::default())
        .into_iter()
        .map(|n| crate::standard_cell::estimate_with_rows_uncached(stats, tech, n))
        .collect()
}

/// The candidate row counts: a window of `count` row counts centred on
/// the resolved seed (`params.rows`, else §5), clamped to
/// `1..=params.max_rows`, deduplicated and ascending.
fn candidate_rows(
    stats: &NetlistStats,
    tech: &ProcessDb,
    count: usize,
    params: &ScParams,
) -> Vec<u32> {
    assert!(count > 0, "need at least one candidate");
    let max_rows = params.max_rows.clamp(1, MAX_ROWS);
    let seed = params
        .rows
        .map(|r| r.clamp(1, max_rows))
        .unwrap_or_else(|| initial_rows(stats, tech, params.max_rows));
    // Exactly `count` deltas centred on the seed (an even count's odd
    // slot goes toward more rows), so no post-hoc truncation can skew
    // the window.
    let lo = seed as i64 - (count as i64 - 1) / 2;
    let mut rows: Vec<u32> = (lo..lo + count as i64)
        .map(|r| r.clamp(1, max_rows as i64) as u32)
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// The standard-cell candidates as a floorplanner-ready shape curve.
///
/// # Panics
///
/// Panics on the same inputs as [`sc_candidates`].
pub fn sc_shape_curve(stats: &NetlistStats, tech: &ProcessDb, count: usize) -> ShapeCurve {
    let candidates = sc_candidates(stats, tech, count);
    ShapeCurve::from_points(
        candidates
            .iter()
            .map(|e| ShapePoint::new(e.width, e.height)),
    )
}

/// Full-custom shape candidates: the estimated area re-shaped at `count`
/// aspect ratios spread over `[0.5, 2.0]` (the paper's "1:1 to 1:2"
/// manual-layout band, both orientations).
///
/// # Panics
///
/// Panics if the estimate has non-positive area or `count == 0`.
pub fn fc_shape_curve(estimate: &FcEstimate, count: usize) -> ShapeCurve {
    assert!(count > 0, "need at least one candidate");
    ShapeCurve::soft(estimate.total_exact, 0.5, 2.0, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_custom;
    use maestro_netlist::{generate, library_circuits, LayoutStyle};
    use maestro_tech::builtin;

    fn sc_stats(module: &maestro_netlist::Module) -> NetlistStats {
        NetlistStats::resolve(module, &builtin::nmos25(), LayoutStyle::StandardCell)
            .expect("resolves")
    }

    #[test]
    fn produces_requested_candidate_count() {
        let tech = builtin::nmos25();
        let stats = sc_stats(&generate::ripple_adder(4));
        let cands = sc_candidates(&stats, &tech, DEFAULT_CANDIDATES);
        assert!((2..=DEFAULT_CANDIDATES).contains(&cands.len()));
        // Distinct row counts, ascending.
        for w in cands.windows(2) {
            assert!(w[0].rows < w[1].rows);
        }
    }

    #[test]
    fn candidates_trade_width_for_height() {
        let tech = builtin::nmos25();
        let stats = sc_stats(&generate::ripple_adder(4));
        let cands = sc_candidates(&stats, &tech, 5);
        // More rows -> narrower rows (smaller width contribution from
        // cells) even though feed-throughs may add back.
        let first = &cands[0];
        let last = &cands[cands.len() - 1];
        assert!(last.rows > first.rows);
        assert!(last.aspect_ratio.as_f64() < first.aspect_ratio.as_f64());
    }

    #[test]
    fn sc_curve_is_nonempty_frontier() {
        let tech = builtin::nmos25();
        let stats = sc_stats(&generate::counter(6));
        let curve = sc_shape_curve(&stats, &tech, 5);
        assert!(!curve.is_empty());
        // Frontier property: widths ascend, heights descend.
        for w in curve.points().windows(2) {
            assert!(w[0].width < w[1].width && w[0].height > w[1].height);
        }
    }

    #[test]
    fn fc_curve_spans_the_typical_band() {
        let tech = builtin::nmos25();
        let m = library_circuits::nmos_full_adder();
        let stats = NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        let est = full_custom::estimate(&stats, &tech);
        let curve = fc_shape_curve(&est, 5);
        assert!(curve.len() >= 3);
        for p in curve.points() {
            let ratio = p.width.as_f64() / p.height.as_f64();
            assert!((0.4..=2.6).contains(&ratio), "ratio {ratio} out of band");
            // Area preserved within ceil-rounding slack.
            let a = p.area().get();
            let target = est.total_exact.get();
            assert!(a >= target && a <= target + 2 * (a as f64).sqrt() as i64 + 4);
        }
    }

    #[test]
    fn candidate_window_is_exact_for_all_counts() {
        // Regression: even counts used to generate `count + 2` deltas
        // and truncate asymmetrically. The window must hold exactly
        // `count` row counts centred on the §5 seed whenever clamping
        // doesn't intervene, and never more than `count`.
        let tech = builtin::nmos25();
        let stats = sc_stats(&generate::ripple_adder(4));
        let seed = initial_rows(&stats, &tech, MAX_ROWS) as i64;
        for count in 1..=8usize {
            let rows = candidate_rows(&stats, &tech, count, &ScParams::default());
            assert!(rows.len() <= count, "count {count} gave {rows:?}");
            for w in rows.windows(2) {
                assert!(w[0] < w[1], "count {count} not ascending: {rows:?}");
            }
            let lo = seed - (count as i64 - 1) / 2;
            let hi = lo + count as i64 - 1;
            if lo >= 1 && hi <= MAX_ROWS as i64 {
                assert_eq!(rows.len(), count, "count {count} gave {rows:?}");
                assert_eq!(rows[0] as i64, lo, "count {count} window {rows:?}");
                assert_eq!(*rows.last().unwrap() as i64, hi);
                assert!(rows.contains(&(seed as u32)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn zero_candidates_rejected() {
        let tech = builtin::nmos25();
        let stats = sc_stats(&generate::counter(2));
        let _ = sc_candidates(&stats, &tech, 0);
    }
}
