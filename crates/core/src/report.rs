//! Estimate records and the floorplanner-facing results database.
//!
//! Figure 1 of the paper: "These results are stored in a data base, which
//! also contains the global module descriptions … This data base is input
//! to the floor planner." [`ResultsDb`] is that database — a JSON-backed
//! collection of per-module [`EstimateRecord`]s.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use maestro_geom::LambdaArea;
use serde::{Deserialize, Serialize};

use crate::{FcEstimate, ScEstimate};

/// One module's estimates, for whichever layout styles were run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateRecord {
    /// Module name.
    pub module_name: String,
    /// Standard-cell estimate, when the module resolved against the cell
    /// library.
    pub standard_cell: Option<ScEstimate>,
    /// Full-custom estimate, when the module resolved against the
    /// transistor templates.
    pub full_custom: Option<FcEstimate>,
    /// The §7 multi-aspect extension: alternative standard-cell shapes at
    /// other row counts ("four or five aspect ratio estimates to allow
    /// chip floor planners more flexibility"). Empty when not computed.
    #[serde(default)]
    pub standard_cell_candidates: Vec<ScEstimate>,
}

impl EstimateRecord {
    /// The best available area for floorplanning: the smaller of the two
    /// styles' totals (designers "intelligently choose the most
    /// appropriate methodology"), or whichever exists.
    pub fn preferred_area(&self) -> Option<LambdaArea> {
        let sc = self.standard_cell.as_ref().map(|e| e.area);
        let fc = self.full_custom.as_ref().map(|e| e.total_exact);
        match (sc, fc) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

/// Error raised by results-database persistence.
#[derive(Debug)]
pub struct ResultsDbError {
    message: String,
}

impl fmt::Display for ResultsDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "results database i/o failed: {}", self.message)
    }
}

impl Error for ResultsDbError {}

/// The results database handed to the floorplanner.
///
/// # Examples
///
/// ```
/// use maestro_estimator::{EstimateRecord, ResultsDb};
///
/// let mut db = ResultsDb::new();
/// db.insert(EstimateRecord {
///     module_name: "alu".to_owned(),
///     standard_cell: None,
///     full_custom: None,
///     standard_cell_candidates: Vec::new(),
/// });
/// assert!(db.record("alu").is_some());
/// let json = db.to_json()?;
/// assert_eq!(ResultsDb::from_json(&json)?.len(), 1);
/// # Ok::<(), maestro_estimator::report::ResultsDbError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultsDb {
    records: Vec<EstimateRecord>,
}

impl ResultsDb {
    /// An empty database.
    pub fn new() -> Self {
        ResultsDb::default()
    }

    /// Adds or replaces the record for a module (name-keyed).
    pub fn insert(&mut self, record: EstimateRecord) {
        if let Some(existing) = self
            .records
            .iter_mut()
            .find(|r| r.module_name == record.module_name)
        {
            *existing = record;
        } else {
            self.records.push(record);
        }
    }

    /// Looks up a module's record by name.
    pub fn record(&self, module_name: &str) -> Option<&EstimateRecord> {
        self.records.iter().find(|r| r.module_name == module_name)
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[EstimateRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResultsDbError`] if serialization fails.
    pub fn to_json(&self) -> Result<String, ResultsDbError> {
        serde_json::to_string_pretty(self).map_err(|e| ResultsDbError {
            message: e.to_string(),
        })
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResultsDbError`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, ResultsDbError> {
        serde_json::from_str(json).map_err(|e| ResultsDbError {
            message: e.to_string(),
        })
    }

    /// Writes the database to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`ResultsDbError`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ResultsDbError> {
        let json = self.to_json()?;
        fs::write(path.as_ref(), json).map_err(|e| ResultsDbError {
            message: format!("{}: {e}", path.as_ref().display()),
        })
    }

    /// Reads a database from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`ResultsDbError`] if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ResultsDbError> {
        let json = fs::read_to_string(path.as_ref()).map_err(|e| ResultsDbError {
            message: format!("{}: {e}", path.as_ref().display()),
        })?;
        ResultsDb::from_json(&json)
    }
}

impl Extend<EstimateRecord> for ResultsDb {
    fn extend<T: IntoIterator<Item = EstimateRecord>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl FromIterator<EstimateRecord> for ResultsDb {
    fn from_iter<T: IntoIterator<Item = EstimateRecord>>(iter: T) -> Self {
        let mut db = ResultsDb::new();
        db.extend(iter);
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        full_custom,
        standard_cell::{self, ScParams},
    };
    use maestro_netlist::{generate, LayoutStyle, NetlistStats};
    use maestro_tech::builtin;

    fn sample_record() -> EstimateRecord {
        let tech = builtin::nmos25();
        let m = generate::ripple_adder(2);
        let sc_stats = NetlistStats::resolve(&m, &tech, LayoutStyle::StandardCell).unwrap();
        let sc = standard_cell::estimate(&sc_stats, &tech, &ScParams::default());
        let fc_m = generate::nmos_inverter_chain(4);
        let fc_stats = NetlistStats::resolve(&fc_m, &tech, LayoutStyle::FullCustom).unwrap();
        let fc = full_custom::estimate(&fc_stats, &tech);
        EstimateRecord {
            module_name: "combo".to_owned(),
            standard_cell: Some(sc),
            full_custom: Some(fc),
            standard_cell_candidates: Vec::new(),
        }
    }

    #[test]
    fn insert_replaces_by_name() {
        let mut db = ResultsDb::new();
        let mut r = sample_record();
        db.insert(r.clone());
        r.standard_cell = None;
        db.insert(r);
        assert_eq!(db.len(), 1);
        assert!(db.record("combo").unwrap().standard_cell.is_none());
    }

    #[test]
    fn preferred_area_picks_smaller_style() {
        let r = sample_record();
        let sc = r.standard_cell.as_ref().unwrap().area;
        let fc = r.full_custom.as_ref().unwrap().total_exact;
        assert_eq!(r.preferred_area(), Some(sc.min(fc)));
        let empty = EstimateRecord {
            module_name: "x".to_owned(),
            standard_cell: None,
            full_custom: None,
            standard_cell_candidates: Vec::new(),
        };
        assert_eq!(empty.preferred_area(), None);
    }

    #[test]
    fn json_round_trip() {
        let db: ResultsDb = [sample_record()].into_iter().collect();
        let json = db.to_json().expect("serializes");
        let back = ResultsDb::from_json(&json).expect("parses");
        assert_eq!(db, back);
    }

    #[test]
    fn file_round_trip() {
        let db: ResultsDb = [sample_record()].into_iter().collect();
        let dir = std::env::temp_dir().join("maestro-results-db-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("results.json");
        db.save(&path).expect("saves");
        assert_eq!(ResultsDb::load(&path).expect("loads"), db);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ResultsDb::from_json("[oops").is_err());
    }

    #[test]
    fn empty_db_reports_empty() {
        let db = ResultsDb::new();
        assert!(db.is_empty());
        assert_eq!(db.record("nothing"), None);
    }
}
