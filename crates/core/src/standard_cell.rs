//! The standard-cell area estimator: the paper's §4.1 (Eq. 12) and §5
//! aspect-ratio algorithm (Eq. 14).
//!
//! The module is modeled as `n` rows of height `r_h` with a routing
//! channel between adjacent rows. Three unknowns are replaced by
//! expectations:
//!
//! 1. **Tracks.** Each net with `D` components is charged
//!    `⌈E(i)⌉` routing tracks, where `E(i)` is the expected number of rows
//!    the net's components occupy ([`crate::prob`], Eqs. 2–3). One signal
//!    per track — a deliberate **upper bound** (assumption 3 in §4.1).
//! 2. **Feed-throughs.** Every row is assumed to carry as many
//!    feed-throughs as the most-loaded (central) row, whose expected count
//!    is `E(M) = ⌈H·p_c⌉` ([`crate::feedthrough`], Eqs. 9–11).
//! 3. **Row length.** Each row carries `W_av·N/n` of cell width (Eq. 1)
//!    plus `E(M)` feed-throughs of width `f_w`.
//!
//! Module area (Eq. 12):
//!
//! ```text
//! A = [n·r_h + Σ_D y_D·⌈E(D)⌉·pitch] × [W_av·N/n + E(M)·f_w]
//! ```
//!
//! and the aspect ratio (Eq. 14) is width ÷ height of the same two
//! factors. When no row count is supplied, §5's iterative algorithm picks
//! the initial `n` so that all I/O ports fit along a row edge.

use maestro_geom::{AspectRatio, Lambda, LambdaArea};
use maestro_netlist::NetlistStats;
use maestro_tech::ProcessDb;
use serde::{Deserialize, Serialize};

use crate::feedthrough::expected_feedthroughs;
use crate::prob::{expected_tracks, ProbTable, MAX_COMPONENTS, MAX_ROWS};

/// Tuning knobs for the standard-cell estimator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScParams {
    /// Explicit row count; `None` runs §5's initial-row-count algorithm.
    pub rows: Option<u32>,
    /// Upper bound on the row count explored by the §5 algorithm.
    pub max_rows: u32,
}

impl Default for ScParams {
    fn default() -> Self {
        ScParams {
            rows: None,
            max_rows: MAX_ROWS,
        }
    }
}

impl ScParams {
    /// Parameters forcing an explicit row count (the paper's Table 2 rows
    /// sweep).
    pub fn with_rows(rows: u32) -> Self {
        ScParams {
            rows: Some(rows),
            ..ScParams::default()
        }
    }
}

/// The standard-cell estimate for one module: every quantity the paper's
/// Table 2 reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScEstimate {
    /// Module name the estimate belongs to.
    pub module_name: String,
    /// Row count `n` used.
    pub rows: u32,
    /// Total routing tracks `Σ y_D·⌈E(D)⌉` (the Table 2 "# Tracks
    /// Estimated" column).
    pub tracks: u32,
    /// Expected feed-throughs in a row, `E(M)`.
    pub feedthroughs: u32,
    /// Estimated module width (row length including feed-throughs).
    pub width: Lambda,
    /// Estimated module height (rows plus routing channels).
    pub height: Lambda,
    /// Estimated module area, Eq. 12.
    pub area: LambdaArea,
    /// Estimated aspect ratio, Eq. 14 (width ÷ height).
    pub aspect_ratio: AspectRatio,
}

/// Total expected track count for all nets at a given row count:
/// `Σ_D y_D · ⌈E(D)⌉`. Component counts beyond
/// [`MAX_COMPONENTS`] are clamped (the `k = min(n, D)` truncation makes
/// the result independent of `D` beyond `n` anyway).
///
/// Served from the process-wide [`ProbTable::shared`] memo; see
/// [`total_tracks_using`] for an explicit table and
/// [`total_tracks_uncached`] for the reference path.
///
/// # Panics
///
/// Panics if `rows` is outside `1..=`[`MAX_ROWS`].
pub fn total_tracks(stats: &NetlistStats, rows: u32) -> u32 {
    total_tracks_using(stats, rows, &ProbTable::shared())
}

/// [`total_tracks`] against an explicit probability table.
///
/// # Panics
///
/// Panics if `rows` is outside `1..=`[`MAX_ROWS`].
pub fn total_tracks_using(stats: &NetlistStats, rows: u32, table: &ProbTable) -> u32 {
    stats
        .net_sizes()
        .iter()
        .map(|(d, y)| {
            let d = (d as u32).clamp(1, MAX_COMPONENTS);
            y as u32 * table.expected_tracks(rows, d)
        })
        .sum()
}

/// Uncached reference implementation of [`total_tracks`]: rebuilds the
/// Eq. 2 distribution from scratch per net, as the estimator originally
/// did. Kept for differential tests and as the benchmark baseline.
///
/// # Panics
///
/// Panics if `rows` is outside `1..=`[`MAX_ROWS`].
pub fn total_tracks_uncached(stats: &NetlistStats, rows: u32) -> u32 {
    stats
        .net_sizes()
        .iter()
        .map(|(d, y)| {
            let d = (d as u32).clamp(1, MAX_COMPONENTS);
            y as u32 * expected_tracks(rows, d)
        })
        .sum()
}

/// §5's initial-row-count algorithm: divide the square root of the active
/// cell area by `i` row heights (starting at `i = 2`), and accept the
/// first `n` whose row length fits all I/O ports; otherwise increase `i`
/// (fewer, longer rows) and retry.
///
/// # Panics
///
/// Panics if the module has no devices.
pub fn initial_rows(stats: &NetlistStats, tech: &ProcessDb, max_rows: u32) -> u32 {
    assert!(stats.device_count() > 0, "cannot size an empty module");
    let active_area = stats.total_device_area().as_f64();
    let row_height = tech.row_height().as_f64();
    let port_length = (stats.port_count() as i64 * tech.port_pitch().get()) as f64;
    let max_rows = max_rows.clamp(1, MAX_ROWS);

    let mut i = 2u32;
    loop {
        let n = ((active_area.sqrt() / (i as f64 * row_height)).ceil() as u32).clamp(1, max_rows);
        let row_length = active_area / (n as f64 * row_height);
        if row_length >= port_length || n == 1 {
            return n;
        }
        i += 1;
    }
}

/// Everything in the §4.1 estimate downstream of the track count, shared
/// by the cached and uncached paths so they differ only in where
/// `Σ y_D·⌈E(D)⌉` comes from.
fn assemble_estimate(stats: &NetlistStats, tech: &ProcessDb, rows: u32, tracks: u32) -> ScEstimate {
    let feedthroughs = expected_feedthroughs(rows, stats.net_count());

    // Row length: W_av·N/n cell width plus E(M) feed-through columns.
    let cell_width = stats.average_width() * stats.device_count() as f64 / rows as f64;
    let width = Lambda::from_f64_ceil(cell_width) + tech.feedthrough_width() * feedthroughs as i64;

    // Module height: n rows plus all routing tracks at track pitch.
    let height = tech.row_height() * rows as i64 + tech.track_pitch() * tracks as i64;

    let area = width * height;
    let aspect_ratio = if width.is_positive() && height.is_positive() {
        AspectRatio::of(width, height)
    } else {
        AspectRatio::SQUARE
    };
    ScEstimate {
        module_name: stats.module_name().to_owned(),
        rows,
        tracks,
        feedthroughs,
        width,
        height,
        area,
        aspect_ratio,
    }
}

fn validate_estimate_inputs(stats: &NetlistStats, rows: u32) {
    assert!(stats.device_count() > 0, "cannot estimate an empty module");
    assert!(
        (1..=MAX_ROWS).contains(&rows),
        "row count {rows} outside 1..={MAX_ROWS}"
    );
}

/// Runs the full §4.1 estimator at an explicit row count, with Eq. 2–3
/// served from the process-wide [`ProbTable::shared`] memo.
///
/// # Panics
///
/// Panics if the module has no devices or `rows` is outside
/// `1..=`[`MAX_ROWS`].
pub fn estimate_with_rows(stats: &NetlistStats, tech: &ProcessDb, rows: u32) -> ScEstimate {
    estimate_with_rows_using(stats, tech, rows, &ProbTable::shared())
}

/// [`estimate_with_rows`] against an explicit probability table.
///
/// # Panics
///
/// Panics if the module has no devices or `rows` is outside
/// `1..=`[`MAX_ROWS`].
pub fn estimate_with_rows_using(
    stats: &NetlistStats,
    tech: &ProcessDb,
    rows: u32,
    table: &ProbTable,
) -> ScEstimate {
    validate_estimate_inputs(stats, rows);
    let tracks = total_tracks_using(stats, rows, table);
    assemble_estimate(stats, tech, rows, tracks)
}

/// Uncached reference implementation of [`estimate_with_rows`], for
/// differential tests and as the benchmark baseline.
///
/// # Panics
///
/// Panics if the module has no devices or `rows` is outside
/// `1..=`[`MAX_ROWS`].
pub fn estimate_with_rows_uncached(
    stats: &NetlistStats,
    tech: &ProcessDb,
    rows: u32,
) -> ScEstimate {
    validate_estimate_inputs(stats, rows);
    let tracks = total_tracks_uncached(stats, rows);
    assemble_estimate(stats, tech, rows, tracks)
}

/// Runs the estimator, choosing the row count per `params` (explicit or
/// §5's algorithm).
///
/// # Panics
///
/// Panics if the module has no devices or an explicit row count is out of
/// range.
pub fn estimate(stats: &NetlistStats, tech: &ProcessDb, params: &ScParams) -> ScEstimate {
    estimate_using(stats, tech, params, &ProbTable::shared())
}

/// [`estimate`] against an explicit probability table.
///
/// # Panics
///
/// Panics if the module has no devices or an explicit row count is out of
/// range.
pub fn estimate_using(
    stats: &NetlistStats,
    tech: &ProcessDb,
    params: &ScParams,
    table: &ProbTable,
) -> ScEstimate {
    let rows = params
        .rows
        .unwrap_or_else(|| initial_rows(stats, tech, params.max_rows));
    estimate_with_rows_using(stats, tech, rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::{generate, LayoutStyle, ModuleBuilder};
    use maestro_tech::builtin;

    fn stats_of(module: &maestro_netlist::Module) -> NetlistStats {
        NetlistStats::resolve(module, &builtin::nmos25(), LayoutStyle::StandardCell)
            .expect("resolves")
    }

    #[test]
    fn hand_computed_two_cell_module() {
        // Two INVs (14λ) joined by one 2-component net; nMOS: r_h=40,
        // pitch=6, f_w=7.
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        b.device("u1", "INV", [("A", n)]);
        b.device("u2", "INV", [("A", n)]);
        let stats = stats_of(&b.finish());
        let tech = builtin::nmos25();
        let est = estimate_with_rows(&stats, &tech, 2);
        // E(2,2) = 2 − 1/2 = 1.5 -> 2 tracks.
        assert_eq!(est.tracks, 2);
        // p_c(2) = 1/8, H = 1 -> E(M) = ceil(0.125) = 1.
        assert_eq!(est.feedthroughs, 1);
        // width = ceil(14·2/2) + 1·7 = 21; height = 2·40 + 2·6 = 92.
        assert_eq!(est.width, Lambda::new(21));
        assert_eq!(est.height, Lambda::new(92));
        assert_eq!(est.area, LambdaArea::new(21 * 92));
        assert!((est.aspect_ratio.as_f64() - 21.0 / 92.0).abs() < 1e-12);
    }

    #[test]
    fn single_row_has_no_feedthroughs() {
        let m = generate::ripple_adder(2);
        let est = estimate_with_rows(&stats_of(&m), &builtin::nmos25(), 1);
        assert_eq!(est.feedthroughs, 0);
        assert_eq!(est.rows, 1);
        // One track per net in a single row.
        assert_eq!(est.tracks as usize, stats_of(&m).net_count());
    }

    #[test]
    fn area_decreases_with_more_rows_in_paper_range() {
        // The paper: "the area estimate decreased as the number of rows
        // increased" for its small examples.
        let m = generate::ripple_adder(4);
        let stats = stats_of(&m);
        let tech = builtin::nmos25();
        let a2 = estimate_with_rows(&stats, &tech, 2).area;
        let a4 = estimate_with_rows(&stats, &tech, 4).area;
        assert!(
            a4 < a2,
            "4 rows {a4} should beat 2 rows {a2} for a 20-gate module"
        );
    }

    #[test]
    fn tracks_grow_with_row_count() {
        let m = generate::ripple_adder(4);
        let stats = stats_of(&m);
        let t2 = total_tracks(&stats, 2);
        let t8 = total_tracks(&stats, 8);
        assert!(t8 >= t2, "more rows spread nets over more tracks");
    }

    #[test]
    fn initial_rows_fits_ports() {
        let m = generate::ripple_adder(4); // 14 ports
        let stats = stats_of(&m);
        let tech = builtin::nmos25();
        let n = initial_rows(&stats, &tech, MAX_ROWS);
        assert!(n >= 1);
        // The accepted row length must fit the ports (or be the 1-row
        // fallback).
        let row_length = stats.total_device_area().as_f64() / (n as f64 * 40.0);
        let ports = (stats.port_count() as i64 * tech.port_pitch().get()) as f64;
        assert!(
            n == 1 || row_length >= ports,
            "n={n} len={row_length} ports={ports}"
        );
    }

    #[test]
    fn estimate_uses_params_row_override() {
        let m = generate::counter(4);
        let stats = stats_of(&m);
        let tech = builtin::nmos25();
        let est = estimate(&stats, &tech, &ScParams::with_rows(3));
        assert_eq!(est.rows, 3);
        let auto = estimate(&stats, &tech, &ScParams::default());
        assert!(auto.rows >= 1);
    }

    #[test]
    fn width_includes_feedthrough_columns() {
        let m = generate::shift_register(8);
        let stats = stats_of(&m);
        let tech = builtin::nmos25();
        let est = estimate_with_rows(&stats, &tech, 4);
        let bare_width =
            Lambda::from_f64_ceil(stats.average_width() * stats.device_count() as f64 / 4.0);
        assert_eq!(
            est.width,
            bare_width + tech.feedthrough_width() * est.feedthroughs as i64
        );
    }

    #[test]
    fn estimates_are_deterministic() {
        let m = generate::ripple_adder(3);
        let stats = stats_of(&m);
        let tech = builtin::nmos25();
        assert_eq!(
            estimate(&stats, &tech, &ScParams::default()),
            estimate(&stats, &tech, &ScParams::default())
        );
    }

    #[test]
    #[should_panic(expected = "empty module")]
    fn empty_module_rejected() {
        let b = ModuleBuilder::new("empty");
        let stats = stats_of(&b.finish());
        let _ = estimate_with_rows(&stats, &builtin::nmos25(), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_rows_rejected() {
        let m = generate::counter(2);
        let _ = estimate_with_rows(&stats_of(&m), &builtin::nmos25(), 0);
    }

    #[test]
    fn cmos_process_also_works() {
        // §3: "deals with different chip fabrication technologies".
        let m = generate::ripple_adder(4);
        let tech = builtin::cmos_generic();
        let stats = NetlistStats::resolve(&m, &tech, LayoutStyle::StandardCell).unwrap();
        let est = estimate(&stats, &tech, &ScParams::default());
        assert!(est.area.get() > 0);
        assert!(est.height.is_positive());
    }
}
