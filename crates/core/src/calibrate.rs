//! Empirical calibration of estimates against layout experiments.
//!
//! The paper's prior-work section describes CHAMP, which "estimates the
//! areas of Standard-Cell blocks by using empirical formulas obtained by
//! running numerous layout experiments" — the approach the analytical
//! estimator competes with. This module lets the two be combined: fit a
//! multiplicative correction from a population of (estimate, real-area)
//! pairs and apply it to fresh estimates.
//!
//! The fit is the least-squares slope through the origin,
//! `a = Σ xᵢyᵢ / Σ xᵢ²`, the natural model when the estimator's error is
//! proportional (which Tables 1 and 2 show it is: a consistent
//! under/overestimate fraction per methodology).

use maestro_geom::LambdaArea;
use serde::{Deserialize, Serialize};

/// One training observation: an estimated and a laid-out area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// The estimator's output.
    pub estimated: LambdaArea,
    /// The area the layout actually took.
    pub real: LambdaArea,
}

/// A fitted multiplicative correction.
///
/// # Examples
///
/// ```
/// use maestro_estimator::calibrate::{Calibration, Observation};
/// use maestro_geom::LambdaArea;
///
/// // The estimator consistently reads ~20 % low.
/// let obs = [
///     Observation { estimated: LambdaArea::new(800), real: LambdaArea::new(1000) },
///     Observation { estimated: LambdaArea::new(1600), real: LambdaArea::new(2000) },
/// ];
/// let cal = Calibration::fit(&obs);
/// assert!((cal.factor() - 1.25).abs() < 1e-9);
/// assert_eq!(cal.apply(LambdaArea::new(400)), LambdaArea::new(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    factor: f64,
    samples: usize,
}

impl Calibration {
    /// The identity calibration (factor 1, no training data).
    pub fn identity() -> Self {
        Calibration {
            factor: 1.0,
            samples: 0,
        }
    }

    /// Fits the least-squares through-origin slope `real ≈ a · estimated`.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty or every estimate is zero.
    pub fn fit(observations: &[Observation]) -> Self {
        assert!(!observations.is_empty(), "calibration needs data");
        let sxy: f64 = observations
            .iter()
            .map(|o| o.estimated.as_f64() * o.real.as_f64())
            .sum();
        let sxx: f64 = observations
            .iter()
            .map(|o| o.estimated.as_f64() * o.estimated.as_f64())
            .sum();
        assert!(sxx > 0.0, "cannot calibrate on all-zero estimates");
        Calibration {
            factor: sxy / sxx,
            samples: observations.len(),
        }
    }

    /// The fitted multiplicative factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Number of training observations.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Applies the correction to a fresh estimate.
    pub fn apply(&self, estimate: LambdaArea) -> LambdaArea {
        LambdaArea::from_f64_ceil((estimate.as_f64() * self.factor).max(0.0))
    }

    /// Mean absolute relative error of the (calibrated) estimates over a
    /// data set — the metric to compare before/after calibration.
    pub fn mean_abs_error(&self, observations: &[Observation]) -> f64 {
        assert!(!observations.is_empty(), "error needs data");
        observations
            .iter()
            .map(|o| {
                let corrected = self.apply(o.estimated).as_f64();
                (corrected - o.real.as_f64()).abs() / o.real.as_f64()
            })
            .sum::<f64>()
            / observations.len() as f64
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(estimated: i64, real: i64) -> Observation {
        Observation {
            estimated: LambdaArea::new(estimated),
            real: LambdaArea::new(real),
        }
    }

    #[test]
    fn exact_proportionality_is_recovered() {
        let data = [obs(100, 150), obs(200, 300), obs(400, 600)];
        let cal = Calibration::fit(&data);
        assert!((cal.factor() - 1.5).abs() < 1e-12);
        assert!(cal.mean_abs_error(&data) < 1e-12);
        assert_eq!(cal.samples(), 3);
    }

    #[test]
    fn identity_does_nothing() {
        let cal = Calibration::identity();
        assert_eq!(cal.apply(LambdaArea::new(1234)), LambdaArea::new(1234));
        assert_eq!(cal, Calibration::default());
    }

    #[test]
    fn calibration_reduces_systematic_error() {
        // Noisy but systematically 2× low.
        let data = [obs(100, 210), obs(150, 290), obs(200, 410), obs(250, 490)];
        let raw = Calibration::identity().mean_abs_error(&data);
        let cal = Calibration::fit(&data);
        let fitted = cal.mean_abs_error(&data);
        assert!(fitted < raw / 5.0, "raw {raw:.2}, fitted {fitted:.2}");
    }

    #[test]
    fn calibrating_the_sc_estimator_against_the_router() {
        // End-to-end: train on three modules, test on a fourth.
        use crate::standard_cell::estimate_with_rows;
        use maestro_netlist::{generate, LayoutStyle, NetlistStats};
        use maestro_place::{place, AnnealSchedule, PlaceParams};
        use maestro_tech::builtin;

        let tech = builtin::nmos25();
        let run = |m: &maestro_netlist::Module| -> Observation {
            let stats = NetlistStats::resolve(m, &tech, LayoutStyle::StandardCell).unwrap();
            let est = estimate_with_rows(&stats, &tech, 3);
            let placed = place(
                m,
                &tech,
                &PlaceParams {
                    rows: 3,
                    schedule: AnnealSchedule::quick(),
                    ..PlaceParams::default()
                },
            )
            .unwrap();
            let routed = maestro_route_shim(&placed);
            Observation {
                estimated: est.area,
                real: routed,
            }
        };
        // maestro-route isn't a dependency of the estimator; approximate
        // real area by the placed footprint (rows × height × width) plus
        // density-free channels — enough for a calibration smoke test.
        fn maestro_route_shim(placed: &maestro_place::PlacedModule) -> LambdaArea {
            let rows = placed.rows().len() as i64;
            let height = placed.row_height() * rows + placed.track_pitch() * (rows + 1) * 3;
            placed.width() * height
        }

        let train = [
            run(&generate::ripple_adder(4)),
            run(&generate::counter(6)),
            run(&generate::shift_register(8)),
        ];
        let test = [run(&generate::mux_tree(3))];
        let cal = Calibration::fit(&train);
        assert!(
            cal.factor() < 1.0,
            "upper bound ⇒ factor < 1, got {}",
            cal.factor()
        );
        let raw = Calibration::identity().mean_abs_error(&test);
        let fitted = cal.mean_abs_error(&test);
        assert!(
            fitted < raw,
            "calibration should transfer: raw {raw:.2} vs fitted {fitted:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_fit_rejected() {
        let _ = Calibration::fit(&[]);
    }
}
