//! The full-custom area estimator: the paper's §4.2 (Eq. 13) and §5
//! aspect-ratio algorithm.
//!
//! Device area is read directly from the schematic; only interconnection
//! area needs estimating. Per net, the paper assumes "the transistors
//! connected to the same net are placed into two rows of equal length,
//! with a one-track routing channel between them": the net's
//! interconnection area is a one-track channel spanning half the net's
//! total component width (rounded up).
//!
//! A **two-component** net needs no channel at all — its two devices abut
//! and connect directly, which is how the paper's Table 1 footnote module
//! ("all nets in this module were two-component nets") contributes
//! **zero** estimated wire area. We therefore charge wire area only to
//! nets with three or more components; see DESIGN.md for this reading of
//! the (tersely worded) §4.2.
//!
//! Eq. 13 is evaluated twice:
//!
//! * **exact** — each device contributes its own width/height/area;
//! * **average** — every device contributes `W_av × h_av` and each net's
//!   half-row length is `⌈D/2⌉ · W_av`.
//!
//! Both totals are "minimum interconnection area" lower-bound styles: the
//! paper notes the method may *understate* when a component's multiple
//! nets cannot all be placed closely.
//!
//! The §5 aspect-ratio algorithm starts from a square and widens the
//! module until its perimeter edge fits all I/O ports.

use maestro_geom::{AspectRatio, Lambda, LambdaArea};
use maestro_netlist::NetlistStats;
use maestro_tech::ProcessDb;
use serde::{Deserialize, Serialize};

/// The full-custom estimate for one module: every quantity the paper's
/// Table 1 reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcEstimate {
    /// Module name the estimate belongs to.
    pub module_name: String,
    /// Σ device areas (identical in both variants; the "Device Area"
    /// column).
    pub device_area: LambdaArea,
    /// Estimated wire area using exact device dimensions.
    pub wire_area_exact: LambdaArea,
    /// Estimated wire area using the average device width.
    pub wire_area_average: LambdaArea,
    /// Total estimated area, exact variant (device + wire).
    pub total_exact: LambdaArea,
    /// Total estimated area, average variant.
    pub total_average: LambdaArea,
    /// Estimated aspect ratio, exact variant.
    pub aspect_exact: AspectRatio,
    /// Estimated aspect ratio, average variant.
    pub aspect_average: AspectRatio,
}

/// Nets with fewer components than this contribute no wire area (devices
/// abut; see module docs and the paper's Table 1 footnote).
pub const MIN_WIRED_COMPONENTS: usize = 3;

/// Wire area of one net in the exact variant: a one-track channel spanning
/// half the net's total component width, rounded up; zero for nets below
/// [`MIN_WIRED_COMPONENTS`].
fn net_wire_area_exact(
    components: usize,
    total_component_width: Lambda,
    track_pitch: Lambda,
) -> LambdaArea {
    if components < MIN_WIRED_COMPONENTS {
        return LambdaArea::ZERO;
    }
    let half_width = Lambda::new((total_component_width.get() + 1) / 2);
    track_pitch * half_width
}

/// Wire area of one net in the average variant: `⌈D/2⌉ · W_av` channel
/// length at one track pitch; zero below [`MIN_WIRED_COMPONENTS`].
fn net_wire_area_average(components: usize, w_av: f64, track_pitch: Lambda) -> LambdaArea {
    if components < MIN_WIRED_COMPONENTS {
        return LambdaArea::ZERO;
    }
    let half = components.div_ceil(2) as f64;
    LambdaArea::from_f64_ceil(track_pitch.as_f64() * half * w_av)
}

/// §5's full-custom aspect-ratio algorithm: assume a square of the
/// estimated area; if the square's edge already fits all I/O ports, report
/// 1:1, otherwise widen the module to the port length and report
/// `width ÷ height` of the resulting rectangle.
pub fn aspect_for_area(area: LambdaArea, port_count: usize, tech: &ProcessDb) -> AspectRatio {
    if area.get() <= 0 {
        return AspectRatio::SQUARE;
    }
    let side = area.isqrt_ceil();
    let port_length = tech.port_pitch() * port_count as i64;
    if side >= port_length {
        AspectRatio::SQUARE
    } else {
        let width = port_length;
        let height = Lambda::new((area.get() + width.get() - 1) / width.get()).max(Lambda::ONE);
        AspectRatio::of(width, height)
    }
}

/// Runs the §4.2 estimator (both exact and average variants) on
/// full-custom statistics.
///
/// # Panics
///
/// Panics if `stats` was resolved for the standard-cell style or the
/// module has no devices.
pub fn estimate(stats: &NetlistStats, tech: &ProcessDb) -> FcEstimate {
    assert!(
        stats.style() == maestro_netlist::LayoutStyle::FullCustom,
        "full-custom estimator needs full-custom statistics"
    );
    assert!(stats.device_count() > 0, "cannot estimate an empty module");

    let track_pitch = tech.track_pitch();
    let w_av = stats.average_width();
    let h_av = stats.average_height();

    let mut wire_exact = LambdaArea::ZERO;
    let mut wire_avg = LambdaArea::ZERO;
    for nw in stats.net_wires() {
        wire_exact += net_wire_area_exact(nw.components, nw.total_component_width, track_pitch);
        wire_avg += net_wire_area_average(nw.components, w_av, track_pitch);
    }

    let device_area_exact = stats.total_device_area();
    let device_area_avg = LambdaArea::from_f64_ceil(stats.device_count() as f64 * w_av * h_av);

    let total_exact = device_area_exact + wire_exact;
    let total_average = device_area_avg + wire_avg;

    FcEstimate {
        module_name: stats.module_name().to_owned(),
        device_area: device_area_exact,
        wire_area_exact: wire_exact,
        wire_area_average: wire_avg,
        total_exact,
        total_average,
        aspect_exact: aspect_for_area(total_exact, stats.port_count(), tech),
        aspect_average: aspect_for_area(total_average, stats.port_count(), tech),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::{generate, library_circuits, LayoutStyle, ModuleBuilder};
    use maestro_tech::builtin;

    fn fc_stats(module: &maestro_netlist::Module) -> NetlistStats {
        NetlistStats::resolve(module, &builtin::nmos25(), LayoutStyle::FullCustom)
            .expect("resolves")
    }

    #[test]
    fn two_component_nets_contribute_zero_wire_area() {
        // The Table 1 footnote case: the pass chain has only ≤2-component
        // nets, so estimated wire area is exactly zero.
        let m = library_circuits::pass_chain(8);
        let est = estimate(&fc_stats(&m), &builtin::nmos25());
        assert_eq!(est.wire_area_exact, LambdaArea::ZERO);
        assert_eq!(est.wire_area_average, LambdaArea::ZERO);
        assert_eq!(est.total_exact, est.device_area);
    }

    #[test]
    fn hand_computed_three_component_net() {
        // Three pull-downs (14λ wide each) on one net; pitch 6λ.
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        b.device("q1", "pd", [("d", n)]);
        b.device("q2", "pd", [("d", n)]);
        b.device("q3", "pd", [("d", n)]);
        let est = estimate(&fc_stats(&b.finish()), &builtin::nmos25());
        // exact: half of 42λ = 21λ at 6λ pitch -> 126λ².
        assert_eq!(est.wire_area_exact, LambdaArea::new(126));
        // average: ceil(3/2)=2 components × 14λ × 6λ = 168λ².
        assert_eq!(est.wire_area_average, LambdaArea::new(168));
        // device area: 3 × (14×8) = 336λ².
        assert_eq!(est.device_area, LambdaArea::new(336));
        assert_eq!(est.total_exact, LambdaArea::new(336 + 126));
    }

    #[test]
    fn exact_and_average_agree_for_uniform_devices() {
        // All devices identical -> W_av = Wi, so device areas agree and
        // wire areas are close (rounding aside).
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        let n2 = b.net("n2");
        for i in 0..4 {
            b.device(format!("q{i}"), "pd", [("d", n), ("g", n2)]);
        }
        let est = estimate(&fc_stats(&b.finish()), &builtin::nmos25());
        assert_eq!(est.device_area, est.total_exact - est.wire_area_exact);
        assert_eq!(est.wire_area_exact, est.wire_area_average);
    }

    #[test]
    fn square_when_ports_fit() {
        let m = library_circuits::nmos_full_adder();
        let est = estimate(&fc_stats(&m), &builtin::nmos25());
        // 5 ports × 8λ = 40λ of edge; a 27-transistor module is much wider.
        assert_eq!(est.aspect_exact, AspectRatio::SQUARE);
    }

    #[test]
    fn widens_when_ports_do_not_fit() {
        // A tiny module with many ports must stretch.
        let mut b = ModuleBuilder::new("porty");
        let nets: Vec<_> = (0..12)
            .map(|i| b.port(format!("p{i}"), maestro_netlist::PortDirection::InOut))
            .collect();
        b.device("q0", "pd", [("d", nets[0]), ("g", nets[1]), ("s", nets[2])]);
        let est = estimate(&fc_stats(&b.finish()), &builtin::nmos25());
        assert!(est.aspect_exact.as_f64() > 1.0);
    }

    #[test]
    fn aspect_for_degenerate_area_is_square() {
        let tech = builtin::nmos25();
        assert_eq!(
            aspect_for_area(LambdaArea::ZERO, 4, &tech),
            AspectRatio::SQUARE
        );
    }

    #[test]
    fn table1_suite_estimates_are_positive_and_reasonable() {
        let tech = builtin::nmos25();
        for m in library_circuits::table1_suite() {
            let est = estimate(&fc_stats(&m), &tech);
            assert!(est.device_area.get() > 0, "{}", m.name());
            assert!(est.total_exact >= est.device_area);
            assert!(est.total_average.get() > 0);
            // Wire is a minor fraction for small modules (minimum-area
            // style), not a blow-up.
            assert!(
                est.wire_area_exact.get() <= est.device_area.get() * 3,
                "{}: wire {} vs device {}",
                m.name(),
                est.wire_area_exact,
                est.device_area
            );
        }
    }

    #[test]
    fn random_nmos_estimates_deterministic() {
        let m = generate::random_nmos_logic(11, 12);
        let tech = builtin::nmos25();
        let a = estimate(&fc_stats(&m), &tech);
        let b = estimate(&fc_stats(&m), &tech);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "full-custom statistics")]
    fn standard_cell_stats_rejected() {
        let m = generate::ripple_adder(2);
        let stats =
            NetlistStats::resolve(&m, &builtin::nmos25(), LayoutStyle::StandardCell).unwrap();
        let _ = estimate(&stats, &builtin::nmos25());
    }
}
