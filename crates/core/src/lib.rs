//! The Chen & Bushnell module area estimator — the primary contribution of
//! *"A Module Area Estimator for VLSI Layout"*, DAC 1988.
//!
//! Given a circuit schematic (via [`maestro_netlist`]) and a process
//! database (via [`maestro_tech`]), the estimator predicts module layout
//! area and aspect ratio **before any layout exists**, for two layout
//! methodologies:
//!
//! * [`standard_cell`] — rows of equal-height cells separated by routing
//!   channels. The module area is dominated by routing, so the estimator
//!   computes the *expectation value* of the total number of routing
//!   tracks (Eqs. 2–3), the expected number of feed-throughs in the most
//!   loaded (central) row (Eqs. 4–11), and combines them into the module
//!   area of Eq. 12 and the aspect ratio of Eq. 14.
//! * [`full_custom`] — arbitrary device placement. Per-net *minimum
//!   interconnection areas* are summed with device areas (Eq. 13), once
//!   with exact device dimensions and once with averages.
//!
//! Supporting modules:
//!
//! * [`prob`] — the row-occupancy distribution of Eq. 2 and its
//!   expectation (Eq. 3), with an exact rational reference implementation;
//! * [`feedthrough`] — the per-row feed-through probability profile
//!   (Eqs. 4–8), the central-row argument, and the expected feed-through
//!   count (Eqs. 9–11);
//! * [`report`] — the combined per-module estimate record and the results
//!   database handed to the floorplanner (the paper's Figure 1 output
//!   interface);
//! * [`pipeline`] — the Figure 1 dataflow: netlist + technology in,
//!   results database out;
//! * [`track_sharing`] — the paper's future-work extension correcting the
//!   upper-bound track count for routing-track sharing;
//! * [`multi_aspect`] — the future-work extension producing several
//!   (width, height) candidates per module instead of a single ratio.
//!
//! # Quick start
//!
//! ```
//! use maestro_estimator::standard_cell::{self, ScParams};
//! use maestro_netlist::{generate, LayoutStyle, NetlistStats};
//! use maestro_tech::builtin;
//!
//! let tech = builtin::nmos25();
//! let module = generate::ripple_adder(4);
//! let stats = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell)?;
//! let est = standard_cell::estimate(&stats, &tech, &ScParams::default());
//! assert!(est.area.get() > 0);
//! assert!(est.rows >= 2);
//! # Ok::<(), maestro_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod feedthrough;
pub mod full_custom;
pub mod multi_aspect;
pub mod pipeline;
pub mod prob;
pub mod report;
pub mod request;
pub mod results_cache;
pub mod standard_cell;
pub mod track_sharing;
pub mod wirelength;

pub use full_custom::FcEstimate;
pub use pipeline::{IncrementalRun, Pipeline};
pub use prob::{CacheStats, ProbTable};
pub use report::{EstimateRecord, ResultsDb};
pub use request::{Request, RequestCall, RequestError, Response};
pub use results_cache::{ResultsCache, ResultsCacheStats};
pub use standard_cell::ScEstimate;
