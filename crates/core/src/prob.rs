//! Row-occupancy probability: the paper's Eqs. 2 and 3.
//!
//! For a net with `D` components placed independently and uniformly into
//! `n` standard-cell rows, the estimator needs the probability that the
//! components occupy *exactly* `i` distinct rows, because a net occupying
//! `i` rows consumes (up to) `i` routing tracks.
//!
//! The paper defines (Eq. 2), with `k = min(n, D)`:
//!
//! ```text
//! b[1] = 1
//! b[i] = i^k − Σ_{j=1}^{i−1} C(i, j) · b[j]
//! P_rows(i) = (1/n)^k · C(n, i) · b[i]
//! ```
//!
//! `b[i]` is the number of ways `k` labeled components fill `i` labeled
//! rows with none empty (an inclusion–exclusion surjection count), and the
//! `k = min(n, D)` exponent is the paper's deliberate truncation: when a
//! net has more components than there are rows, only `n` of them are
//! modeled as free placements — the rest "are placed in any row". The
//! expectation (Eq. 3) is
//!
//! ```text
//! E(i) = Σ_{i=1}^{min(n,D)} i · P_rows(i)
//! ```
//!
//! rounded **up** to the next integer when converted to a track count.
//! The distribution sums to exactly 1 for any `n, D ≥ 1` (it is the exact
//! occupancy law for `k` components in `n` rows).
//!
//! Three implementations are provided: a fast `f64` path
//! ([`RowOccupancy::new`]), a memoized kernel ([`ProbTable`]) serving the
//! same bits from a `(rows, k)`-keyed cache for batch workloads, and an
//! exact `u128` rational path ([`exact`]) used by the test-suite to
//! validate both digit-for-digit on small inputs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use serde::{Deserialize, Serialize};

/// Maximum supported row count; beyond this the f64 binomials would lose
/// integer precision.
pub const MAX_ROWS: u32 = 64;

/// Maximum supported net component count (larger nets are truncated by the
/// paper's `k = min(n, D)` rule anyway).
pub const MAX_COMPONENTS: u32 = 256;

/// Binomial coefficient C(n, k) as `f64`.
///
/// Exact for `n ≤ 55`; beyond that the multiplicative loop accumulates
/// rounding error faster than `.round()` can absorb (the first miss is
/// `C(56, 23)`), so values up to [`MAX_ROWS`] can be off by a few units —
/// a relative error below 1e-13, far inside the tolerance of the Eq. 2
/// probabilities built from the ratios of these coefficients. The kernel
/// is kept as-is because [`ProbTable`] goldens pin its exact bits; see
/// `fast_binomial_exactness_bound_is_55` for the exhaustive cross-check.
fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for j in 0..k {
        acc = acc * (n - j) as f64 / (j + 1) as f64;
    }
    acc.round()
}

/// Validates an `(rows, components)` input pair.
///
/// # Panics
///
/// Panics if `rows` is 0 or exceeds [`MAX_ROWS`], or `components` is 0 or
/// exceeds [`MAX_COMPONENTS`].
fn validate(rows: u32, components: u32) {
    assert!(
        (1..=MAX_ROWS).contains(&rows),
        "row count {rows} outside 1..={MAX_ROWS}"
    );
    assert!(
        (1..=MAX_COMPONENTS).contains(&components),
        "component count {components} outside 1..={MAX_COMPONENTS}"
    );
}

/// The Eq. 2 distribution for `k = min(n, D)` free placements in `rows`
/// rows, with binomials supplied by `binom`.
///
/// The cached ([`ProbTable`]) and uncached ([`RowOccupancy::new`]) paths
/// both run this exact sequence of operations, differing only in where
/// `C(n, k)` comes from — and the table is populated by the same
/// [`binomial`] function, so the two paths are bit-identical.
fn distribution(rows: u32, k: u32, binom: impl Fn(u32, u32) -> f64) -> Vec<f64> {
    // b[i] for i = 1..=k (index i-1), Eq. 2.
    let mut b = vec![0.0f64; k as usize];
    for i in 1..=k {
        let mut val = (i as f64).powi(k as i32);
        for j in 1..i {
            val -= binom(i, j) * b[(j - 1) as usize];
        }
        b[(i - 1) as usize] = val;
    }
    let n_pow_k = (rows as f64).powi(k as i32);
    (1..=k)
        .map(|i| binom(rows, i) * b[(i - 1) as usize] / n_pow_k)
        .collect()
}

/// Eq. 3 over a distribution slice: `Σ i · P(i)`.
fn expectation_of(probs: &[f64]) -> f64 {
    probs
        .iter()
        .enumerate()
        .map(|(idx, p)| (idx + 1) as f64 * p)
        .sum()
}

/// Converts an Eq. 3 expectation to a track count: `⌈E(i)⌉`.
fn tracks_for(expectation: f64) -> u32 {
    // Guard against 2.0000000000000004-style noise before ceiling.
    let snapped = (expectation * 1e9).round() / 1e9;
    snapped.ceil() as u32
}

/// The occupancy distribution of one net across rows.
///
/// # Examples
///
/// ```
/// use maestro_estimator::prob::RowOccupancy;
///
/// // A two-component net in 4 rows: both in one row with p = 1/4.
/// let occ = RowOccupancy::new(4, 2);
/// assert!((occ.probability(1) - 0.25).abs() < 1e-12);
/// assert!((occ.expected_rows() - (2.0 - 0.25)).abs() < 1e-12);
/// assert_eq!(occ.expected_tracks(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowOccupancy {
    rows: u32,
    components: u32,
    /// `probs[i-1]` = P(exactly i rows occupied), i = 1..=min(n, D).
    probs: Vec<f64>,
}

impl RowOccupancy {
    /// Computes the distribution for a `components`-component net in
    /// `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is 0 or exceeds [`MAX_ROWS`], or `components` is 0
    /// or exceeds [`MAX_COMPONENTS`].
    pub fn new(rows: u32, components: u32) -> Self {
        validate(rows, components);
        let k = rows.min(components);
        RowOccupancy {
            rows,
            components,
            probs: distribution(rows, k, binomial),
        }
    }

    /// Number of rows `n`.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of net components `D`.
    pub fn components(&self) -> u32 {
        self.components
    }

    /// P(exactly `i` rows occupied), Eq. 2. Zero outside `1..=min(n, D)`.
    pub fn probability(&self, i: u32) -> f64 {
        if i == 0 {
            return 0.0;
        }
        self.probs.get((i - 1) as usize).copied().unwrap_or(0.0)
    }

    /// The full distribution as a slice: index `i-1` holds P(i).
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Eq. 3: `E(i) = Σ i · P_rows(i)`.
    pub fn expected_rows(&self) -> f64 {
        expectation_of(&self.probs)
    }

    /// The track count charged to this net: `⌈E(i)⌉` ("E(i) should be
    /// rounded up to the next higher integer").
    pub fn expected_tracks(&self) -> u32 {
        tracks_for(self.expected_rows())
    }
}

/// One memoized Eq. 2–3 result: the distribution and its derived
/// expectation, shared between every `(rows, D)` query with the same
/// effective `k = min(rows, D)`.
#[derive(Debug, Clone)]
struct CachedDist {
    probs: Arc<[f64]>,
    expected_rows: f64,
    expected_tracks: u32,
}

/// Cache statistics of a [`ProbTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that computed a fresh distribution.
    pub misses: u64,
    /// Distinct `(rows, k)` distributions currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Hit/miss growth since an `earlier` snapshot of the same table —
    /// what a traced pipeline stage charges to itself. `entries` carries
    /// the current level (it is not a monotonic counter). Saturates if
    /// the snapshots are swapped.
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// The memoized Eq. 2–3 probability kernel.
///
/// [`RowOccupancy::new`] rebuilds the surjection table and every binomial
/// coefficient from scratch on each call; inside a floorplanner inner loop
/// the same small set of `(rows, D)` pairs recurs thousands of times. This
/// table precomputes the full binomial triangle once (up to [`MAX_ROWS`],
/// via the same [`binomial`] routine, so lookups are bit-identical to
/// fresh computation) and memoizes each distribution behind a [`RwLock`],
/// keyed by `(rows, min(rows, D))` — the paper's `k = min(n, D)`
/// truncation makes the distribution independent of `D` beyond `rows`, so
/// all large nets share one entry per row count.
///
/// The table is `Sync`: concurrent estimator threads share it directly.
///
/// # Examples
///
/// ```
/// use maestro_estimator::prob::{self, ProbTable};
///
/// let table = ProbTable::new();
/// assert_eq!(table.expected_tracks(4, 2), prob::expected_tracks(4, 2));
/// // The second query with the same k = min(n, D) is a cache hit.
/// let _ = table.expected_tracks(4, 2);
/// let stats = table.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct ProbTable {
    /// `C(n, k)` for `n, k ≤ MAX_ROWS`, row-major, filled by [`binomial`].
    binomials: Box<[f64]>,
    memo: RwLock<HashMap<(u32, u32), CachedDist>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ProbTable {
    fn default() -> Self {
        ProbTable::new()
    }
}

impl ProbTable {
    /// Builds an empty table with the binomial triangle precomputed.
    pub fn new() -> Self {
        let side = (MAX_ROWS + 1) as usize;
        let mut binomials = vec![0.0f64; side * side];
        for n in 0..=MAX_ROWS {
            for k in 0..=n {
                binomials[n as usize * side + k as usize] = binomial(n, k);
            }
        }
        ProbTable {
            binomials: binomials.into_boxed_slice(),
            memo: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide shared table: every caller that does not carry an
    /// explicit table (the plain [`expected_tracks`]-style entry points in
    /// `standard_cell` and `multi_aspect`) memoizes here, so an entire
    /// aspect sweep — or a whole multi-threaded batch run — shares one
    /// cache.
    pub fn shared() -> Arc<ProbTable> {
        static SHARED: OnceLock<Arc<ProbTable>> = OnceLock::new();
        SHARED.get_or_init(|| Arc::new(ProbTable::new())).clone()
    }

    /// Precomputed binomial coefficient `C(n, k)`, bit-identical to the
    /// uncached path's on-the-fly computation.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_ROWS`].
    pub fn binomial(&self, n: u32, k: u32) -> f64 {
        assert!(n <= MAX_ROWS, "binomial row {n} outside 0..={MAX_ROWS}");
        if k > n {
            return 0.0;
        }
        let side = (MAX_ROWS + 1) as usize;
        self.binomials[n as usize * side + k as usize]
    }

    /// The memoized distribution for `(rows, components)`, computing and
    /// caching it on first use.
    fn entry(&self, rows: u32, components: u32) -> CachedDist {
        validate(rows, components);
        let k = rows.min(components);
        if let Some(hit) = self
            .memo
            .read()
            .expect("prob memo poisoned")
            .get(&(rows, k))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Computed outside the lock: racing threads may duplicate the
        // work, but every computation yields identical bits.
        let probs: Arc<[f64]> = distribution(rows, k, |n, j| self.binomial(n, j)).into();
        let expected_rows = expectation_of(&probs);
        let dist = CachedDist {
            probs,
            expected_rows,
            expected_tracks: tracks_for(expected_rows),
        };
        self.memo
            .write()
            .expect("prob memo poisoned")
            .entry((rows, k))
            .or_insert_with(|| dist.clone());
        dist
    }

    /// The occupancy distribution, as [`RowOccupancy::new`] would build
    /// it (digit-for-digit), served from the memo.
    ///
    /// Allocates a fresh `Vec` for the result; hot loops that only need
    /// the expectation should call [`ProbTable::expected_tracks`] or
    /// [`ProbTable::expected_rows`], which are allocation-free after the
    /// first query.
    ///
    /// # Panics
    ///
    /// Panics on the same inputs as [`RowOccupancy::new`].
    pub fn occupancy(&self, rows: u32, components: u32) -> RowOccupancy {
        let dist = self.entry(rows, components);
        RowOccupancy {
            rows,
            components,
            probs: dist.probs.to_vec(),
        }
    }

    /// Memoized Eq. 3 expectation, bit-identical to
    /// [`RowOccupancy::expected_rows`].
    ///
    /// # Panics
    ///
    /// Panics on the same inputs as [`RowOccupancy::new`].
    pub fn expected_rows(&self, rows: u32, components: u32) -> f64 {
        self.entry(rows, components).expected_rows
    }

    /// Memoized track count, identical to
    /// [`RowOccupancy::expected_tracks`].
    ///
    /// # Panics
    ///
    /// Panics on the same inputs as [`RowOccupancy::new`].
    pub fn expected_tracks(&self, rows: u32, components: u32) -> u32 {
        self.entry(rows, components).expected_tracks
    }

    /// Hit/miss/entry counters (hits and misses are read `Relaxed`; exact
    /// only in quiescence, indicative under concurrency).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.memo.read().expect("prob memo poisoned").len(),
        }
    }
}

/// Convenience wrapper: `⌈E(i)⌉` for a `components`-component net in
/// `rows` rows.
///
/// # Panics
///
/// Panics on the same inputs as [`RowOccupancy::new`].
pub fn expected_tracks(rows: u32, components: u32) -> u32 {
    RowOccupancy::new(rows, components).expected_tracks()
}

/// Eq. 3 as a real number, for callers that postpone rounding (the
/// track-sharing extension).
///
/// # Panics
///
/// Panics on the same inputs as [`RowOccupancy::new`].
pub fn expected_rows(rows: u32, components: u32) -> f64 {
    RowOccupancy::new(rows, components).expected_rows()
}

/// Exact rational reference implementation over `u128`, used to validate
/// the `f64` path. Only small inputs are representable (the test-suite
/// stays within `n ≤ 8`, `D ≤ 10`).
pub mod exact {
    /// An unsigned rational number with `u128` parts.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Ratio {
        /// Numerator.
        pub num: u128,
        /// Denominator (non-zero).
        pub den: u128,
    }

    impl Ratio {
        /// Creates `num / den`, reduced.
        ///
        /// # Panics
        ///
        /// Panics if `den == 0`.
        pub fn new(num: u128, den: u128) -> Self {
            assert!(den != 0, "zero denominator");
            let g = gcd(num, den);
            Ratio {
                num: num / g.max(1),
                den: den / g.max(1),
            }
        }

        /// The value as `f64`.
        pub fn as_f64(self) -> f64 {
            self.num as f64 / self.den as f64
        }
    }

    fn gcd(a: u128, b: u128) -> u128 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }

    fn binomial_u128(n: u32, k: u32) -> u128 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut acc: u128 = 1;
        for j in 0..k {
            acc = acc * (n - j) as u128 / (j + 1) as u128;
        }
        acc
    }

    /// Exact P(exactly `i` rows occupied) for Eq. 2.
    ///
    /// # Panics
    ///
    /// Panics if inputs are zero, or intermediate values overflow `u128`
    /// (keep `n·min(n,D) ≲ 120` bits; `n ≤ 8, D ≤ 16` is safe).
    pub fn probability(rows: u32, components: u32, i: u32) -> Ratio {
        assert!(rows >= 1 && components >= 1 && i >= 1, "inputs must be ≥ 1");
        let k = rows.min(components);
        if i > k {
            return Ratio::new(0, 1);
        }
        // b[i] via inclusion–exclusion, exact.
        let mut b = vec![0u128; k as usize];
        for m in 1..=k {
            let mut val = (m as u128).pow(k);
            for j in 1..m {
                val -= binomial_u128(m, j) * b[(j - 1) as usize];
            }
            b[(m - 1) as usize] = val;
        }
        let num = binomial_u128(rows, i) * b[(i - 1) as usize];
        let den = (rows as u128).pow(k);
        Ratio::new(num, den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(3, 4), 0.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
    }

    #[test]
    fn fast_binomial_exactness_bound_is_55() {
        // Exhaustive cross-check of the f64 kernel against an exact u128
        // computation over the estimator's whole domain (n ≤ MAX_ROWS).
        // The multiplicative u128 loop is exact: after j steps `acc` holds
        // C(n, j+1) · (j+1)! / (j+1)! — each division is by a product of
        // consecutive integers that already divides the numerator.
        fn exact_u128(n: u32, k: u32) -> u128 {
            let k = k.min(n - k);
            let mut acc: u128 = 1;
            for j in 0..k {
                acc = acc * (n - j) as u128 / (j + 1) as u128;
            }
            acc
        }
        let mut first_miss = None;
        let mut max_abs = 0.0f64;
        for n in 0..=MAX_ROWS {
            for k in 0..=n {
                let fast = binomial(n, k);
                let exact = exact_u128(n, k) as f64;
                let diff = (fast - exact).abs();
                if n <= 55 {
                    assert_eq!(
                        fast, exact,
                        "C({n},{k}) must be exact below the documented bound"
                    );
                } else if diff > 0.0 {
                    first_miss.get_or_insert((n, k));
                    max_abs = max_abs.max(diff);
                    // Relative error stays negligible for Eq. 2 ratios.
                    assert!(
                        diff / exact < 1e-13,
                        "C({n},{k}): fast={fast} exact={exact}"
                    );
                }
            }
        }
        // The bound is tight: the kernel does diverge past 55, starting
        // exactly where the doc says it does.
        assert_eq!(first_miss, Some((56, 23)));
        assert!(max_abs > 0.0);
    }

    #[test]
    fn two_component_net_matches_closed_form() {
        // D = 2: P(1) = 1/n, P(2) = (n-1)/n, E = 2 - 1/n.
        for n in 1..=20 {
            let occ = RowOccupancy::new(n, 2);
            assert!((occ.probability(1) - 1.0 / n as f64).abs() < 1e-12, "n={n}");
            if n >= 2 {
                assert!(
                    (occ.probability(2) - (n as f64 - 1.0) / n as f64).abs() < 1e-12,
                    "n={n}"
                );
            }
            assert!(
                (occ.expected_rows() - (2.0 - 1.0 / n as f64)).abs() < 1e-12,
                "n={n}"
            );
        }
    }

    #[test]
    fn single_component_net_occupies_one_row() {
        for n in 1..=10 {
            let occ = RowOccupancy::new(n, 1);
            assert!((occ.probability(1) - 1.0).abs() < 1e-12);
            assert_eq!(occ.expected_tracks(), 1);
        }
    }

    #[test]
    fn single_row_pins_everything_to_one_track() {
        for d in 1..=30 {
            let occ = RowOccupancy::new(1, d);
            assert!((occ.probability(1) - 1.0).abs() < 1e-12);
            assert_eq!(occ.expected_tracks(), 1);
        }
    }

    #[test]
    fn distribution_sums_to_one() {
        for n in 1..=12 {
            for d in 1..=20 {
                let occ = RowOccupancy::new(n, d);
                let sum: f64 = occ.probabilities().iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "n={n} d={d}: Σ={sum}");
            }
        }
    }

    #[test]
    fn expectation_bounds() {
        for n in 1..=12 {
            for d in 1..=20 {
                let e = expected_rows(n, d);
                let k = n.min(d) as f64;
                assert!(e >= 1.0 - 1e-12, "n={n} d={d}: {e}");
                assert!(e <= k + 1e-12, "n={n} d={d}: {e}");
                let t = expected_tracks(n, d);
                assert!(t >= 1 && t as f64 <= k + 1.0);
            }
        }
    }

    #[test]
    fn expectation_grows_with_component_count() {
        let n = 8;
        let mut prev = 0.0;
        for d in 1..=16 {
            let e = expected_rows(n, d);
            assert!(e >= prev - 1e-12, "E should be monotone in D: d={d}");
            prev = e;
        }
    }

    #[test]
    fn truncation_freezes_large_nets() {
        // For D ≥ n, k = n: distribution is independent of D.
        let a = RowOccupancy::new(5, 5);
        let b = RowOccupancy::new(5, 50);
        for i in 1..=5 {
            assert!((a.probability(i) - b.probability(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn fast_path_matches_exact_rationals() {
        for n in 1..=8u32 {
            for d in 1..=10u32 {
                let occ = RowOccupancy::new(n, d);
                for i in 1..=n.min(d) {
                    let e = exact::probability(n, d, i).as_f64();
                    let f = occ.probability(i);
                    assert!(
                        (e - f).abs() < 1e-10,
                        "n={n} d={d} i={i}: exact={e} fast={f}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_ratio_reduces() {
        let r = exact::Ratio::new(6, 8);
        assert_eq!((r.num, r.den), (3, 4));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn exact_ratio_rejects_zero_denominator() {
        let _ = exact::Ratio::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_rows_rejected() {
        let _ = RowOccupancy::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_components_rejected() {
        let _ = RowOccupancy::new(2, 0);
    }

    #[test]
    fn tracks_round_up() {
        // n=4, D=2: E = 1.75 -> 2 tracks.
        assert_eq!(expected_tracks(4, 2), 2);
        // n=1: E = 1 -> exactly 1 (no spurious round-up).
        assert_eq!(expected_tracks(1, 7), 1);
    }

    #[test]
    fn table_binomials_match_direct_computation() {
        let table = ProbTable::new();
        for n in 0..=MAX_ROWS {
            for k in 0..=n + 1 {
                assert_eq!(
                    table.binomial(n, k).to_bits(),
                    binomial(n, k).to_bits(),
                    "C({n}, {k})"
                );
            }
        }
    }

    #[test]
    fn table_occupancy_is_bit_identical_to_fresh() {
        let table = ProbTable::new();
        for n in [1, 2, 7, 33, 64] {
            for d in [1, 2, 5, 64, 256] {
                let cached = table.occupancy(n, d);
                let fresh = RowOccupancy::new(n, d);
                assert_eq!(cached.rows(), fresh.rows());
                assert_eq!(cached.components(), fresh.components());
                let c_bits: Vec<u64> = cached.probabilities().iter().map(|p| p.to_bits()).collect();
                let f_bits: Vec<u64> = fresh.probabilities().iter().map(|p| p.to_bits()).collect();
                assert_eq!(c_bits, f_bits, "n={n} d={d}");
                assert_eq!(
                    table.expected_rows(n, d).to_bits(),
                    fresh.expected_rows().to_bits(),
                    "n={n} d={d}"
                );
                assert_eq!(table.expected_tracks(n, d), fresh.expected_tracks());
            }
        }
    }

    #[test]
    fn table_memoizes_by_truncated_k() {
        let table = ProbTable::new();
        let _ = table.expected_tracks(5, 5);
        // D = 50 truncates to k = 5: same entry, so a hit, not a miss.
        let _ = table.expected_tracks(5, 50);
        let stats = table.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn shared_table_is_one_instance() {
        assert!(Arc::ptr_eq(&ProbTable::shared(), &ProbTable::shared()));
    }

    #[test]
    fn table_is_usable_across_threads() {
        let table = Arc::new(ProbTable::new());
        let expect = expected_tracks(6, 4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(table.expected_tracks(6, 4), expect);
                    }
                });
            }
        });
        let stats = table.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn table_rejects_zero_rows() {
        let _ = ProbTable::new().expected_tracks(0, 3);
    }
}
