//! Feed-through probability: the paper's Eqs. 4–11.
//!
//! A *feed-through* is a vertical wire crossing a standard-cell row to
//! connect net components placed above and below it. Row length — and
//! therefore module width — depends on how many feed-throughs the widest
//! row carries, so the estimator needs (a) which row is most likely to
//! carry feed-throughs and (b) how many to expect there.
//!
//! **Which row.** For a net with components placed uniformly at random in
//! `n` rows, the net causes a feed-through in row `i` exactly when at
//! least one component lies strictly above row `i` and at least one
//! strictly below (paper §4.1). By inclusion–exclusion this probability is
//!
//! ```text
//! P_ft(i) = 1 − ((n−i+1)/n)^D − (i/n)^D + (1/n)^D
//! ```
//!
//! which is the closed form of the paper's Eq. 5 double sum. Setting the
//! discrete derivative to zero (the paper's Eqs. 6–7) gives the interior
//! maximum at the **central row** `i* = (n+1)/2` — the paper's headline
//! observation, backed there by numerical simulation and by the
//! top/bottom-area product argument. [`most_likely_row`] and
//! [`row_profile`] expose this.
//!
//! **How many.** The paper then simplifies to the two-component-net model
//! (Eq. 9). For `D = 2` at the central row the closed form above reduces to
//!
//! ```text
//! p_c = 2 · ((i*−1)/n) · ((n−i*)/n) = (n−1)² / (2n²)
//! ```
//!
//! which tends to 0.5 as `n → ∞`, matching the paper's stated limit. (The
//! typeset Eq. 9 in the proceedings scan is garbled — `((n−1)/n)` with a
//! 0.5 limit is internally inconsistent — so we implement the derivable
//! form; see DESIGN.md.) The number of feed-throughs `M` in the central
//! row across `H` independent nets is then binomial (Eq. 10), and its
//! expectation (Eq. 11) `E(M) = H·p_c` is rounded **up**.

use crate::prob::MAX_ROWS;

/// P(net with `components` components causes a feed-through in row `row`)
/// — the closed form of Eq. 5. Rows are numbered from 1 (top) to `rows`.
///
/// # Panics
///
/// Panics if `rows` is 0 or exceeds [`MAX_ROWS`], `row` is outside
/// `1..=rows`, or `components` is 0.
pub fn feedthrough_probability(rows: u32, components: u32, row: u32) -> f64 {
    assert!(
        (1..=MAX_ROWS).contains(&rows),
        "row count {rows} outside 1..={MAX_ROWS}"
    );
    assert!(
        (1..=rows).contains(&row),
        "row index {row} outside 1..={rows}"
    );
    assert!(components >= 1, "component count must be ≥ 1");
    let n = rows as f64;
    let i = row as f64;
    let d = components as i32;
    let p_not_above = ((n - i + 1.0) / n).powi(d); // no component strictly above
    let p_not_below = (i / n).powi(d); // no component strictly below
    let p_neither = (1.0 / n).powi(d); // all in row i itself
    let p = 1.0 - p_not_above - p_not_below + p_neither;
    // Snap the catastrophic-cancellation noise at the boundary rows
    // (analytically exactly zero) back to zero.
    if p < 1e-12 {
        0.0
    } else {
        p
    }
}

/// The paper's Eq. 5 evaluated literally as its double sum, term by term:
/// `l` components in row `i` (probability `(1/n)^l`, `C(D, l)` choices),
/// `j ≥ 1` of the remainder above (probability `((i−1)/n)^j`) and the
/// rest — at least one — below (`((n−i)/n)^(D−l−j)`).
///
/// Kept alongside the closed form of [`feedthrough_probability`] as an
/// executable cross-check of the derivation (the two agree to machine
/// precision for every input; see the `eq5_matches_closed_form` test and
/// the `ablations` bench, where the closed form is ~`D²`× cheaper).
///
/// # Panics
///
/// Panics on the same inputs as [`feedthrough_probability`].
pub fn eq5_probability(rows: u32, components: u32, row: u32) -> f64 {
    assert!(
        (1..=MAX_ROWS).contains(&rows),
        "row count {rows} outside 1..={MAX_ROWS}"
    );
    assert!(
        (1..=rows).contains(&row),
        "row index {row} outside 1..={rows}"
    );
    assert!(components >= 1, "component count must be ≥ 1");
    let n = rows as f64;
    let p_in = 1.0 / n;
    let p_above = (row as f64 - 1.0) / n;
    let p_below = (rows - row) as f64 / n;
    let d = components;
    let mut total = 0.0;
    for l in 0..=d.saturating_sub(2) {
        let rem = d - l;
        for j in 1..rem {
            let k = rem - j;
            total += binomial_f64(d, l)
                * binomial_f64(rem, j)
                * p_in.powi(l as i32)
                * p_above.powi(j as i32)
                * p_below.powi(k as i32);
        }
    }
    total
}

fn binomial_f64(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for j in 0..k {
        acc = acc * (n - j) as f64 / (j + 1) as f64;
    }
    acc.round()
}

/// The per-row feed-through probability profile for one net:
/// `profile[i-1] = P_ft(i)`.
///
/// # Panics
///
/// Panics on the same inputs as [`feedthrough_probability`].
pub fn row_profile(rows: u32, components: u32) -> Vec<f64> {
    (1..=rows)
        .map(|i| feedthrough_probability(rows, components, i))
        .collect()
}

/// The row index (1-based) with the highest feed-through probability.
/// Ties resolve to the lower index; the paper's result is that this is the
/// central row `⌈(n+1)/2⌉` for every `D ≥ 2`.
///
/// # Panics
///
/// Panics on the same inputs as [`feedthrough_probability`].
pub fn most_likely_row(rows: u32, components: u32) -> u32 {
    let profile = row_profile(rows, components);
    let (idx, _) = profile
        .iter()
        .enumerate()
        .fold((0usize, f64::MIN), |(bi, bp), (i, &p)| {
            if p > bp + 1e-15 {
                (i, p)
            } else {
                (bi, bp)
            }
        });
    (idx + 1) as u32
}

/// Eq. 9's central-row feed-through probability under the paper's
/// two-component-net model: `p_c = (n−1)²/(2n²)`, which approaches the
/// paper's stated limit of 0.5 as `n → ∞`.
///
/// # Panics
///
/// Panics if `rows` is 0 or exceeds [`MAX_ROWS`].
pub fn central_row_probability(rows: u32) -> f64 {
    assert!(
        (1..=MAX_ROWS).contains(&rows),
        "row count {rows} outside 1..={MAX_ROWS}"
    );
    let n = rows as f64;
    (n - 1.0) * (n - 1.0) / (2.0 * n * n)
}

/// Eqs. 10–11: the expected number of feed-throughs in the central row for
/// `nets` independent nets, `E(M) = ⌈H · p_c⌉`.
///
/// # Panics
///
/// Panics if `rows` is 0 or exceeds [`MAX_ROWS`].
pub fn expected_feedthroughs(rows: u32, nets: usize) -> u32 {
    let p = central_row_probability(rows);
    let e = nets as f64 * p;
    let snapped = (e * 1e9).round() / 1e9;
    snapped.ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_feedthrough_possible_in_one_or_two_net_free_cases() {
        // Single row: nothing can be above and below.
        assert_eq!(feedthrough_probability(1, 5, 1), 0.0);
        // Top and bottom rows never carry feed-throughs ("generally
        // neither the top row nor the bottom row have feed-throughs").
        for d in 2..=8 {
            assert_eq!(feedthrough_probability(9, d, 1), 0.0);
            assert_eq!(feedthrough_probability(9, d, 9), 0.0);
        }
    }

    #[test]
    fn single_component_net_never_causes_feedthroughs() {
        for n in 1..=10 {
            for i in 1..=n {
                assert!(feedthrough_probability(n, 1, i) < 1e-12);
            }
        }
    }

    #[test]
    fn two_component_closed_form() {
        // D = 2: P_ft(i) = 2·((i−1)/n)·((n−i)/n).
        for n in 2..=12u32 {
            for i in 1..=n {
                let expected = 2.0 * ((i - 1) as f64 / n as f64) * ((n - i) as f64 / n as f64);
                let got = feedthrough_probability(n, 2, i);
                assert!((got - expected).abs() < 1e-12, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn central_row_maximizes_probability_for_all_d() {
        // The paper's numerical-simulation claim, re-verified analytically:
        // sweeping n ∈ [3, 15] and D ∈ [2, 12], the argmax is the center.
        for n in 3..=15u32 {
            for d in 2..=12u32 {
                let best = most_likely_row(n, d);
                let center = n.div_ceil(2); // lower-middle for even n
                assert!(
                    best == center || best == center + (1 - n % 2),
                    "n={n} d={d}: argmax {best}, center {center}"
                );
            }
        }
    }

    #[test]
    fn profile_is_symmetric() {
        for n in 2..=10u32 {
            for d in 2..=6 {
                let p = row_profile(n, d);
                for i in 0..n as usize {
                    let j = n as usize - 1 - i;
                    assert!(
                        (p[i] - p[j]).abs() < 1e-12,
                        "n={n} d={d}: P({})≠P({})",
                        i + 1,
                        j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn probability_increases_with_d() {
        let n = 9;
        let center = 5;
        let mut prev = 0.0;
        for d in 2..=20 {
            let p = feedthrough_probability(n, d, center);
            assert!(p >= prev - 1e-12, "d={d}");
            prev = p;
        }
        // And approaches 1 for huge nets.
        assert!(feedthrough_probability(9, 200, 5) > 0.99);
    }

    #[test]
    fn central_probability_approaches_half() {
        // Paper: P_max-feed-th = lim_{n→∞} P_feed-th = 0.5.
        assert!(central_row_probability(2) < 0.2);
        let p50 = central_row_probability(50);
        assert!(p50 > 0.47 && p50 < 0.5);
        // Monotone in n.
        let mut prev = 0.0;
        for n in 1..=50 {
            let p = central_row_probability(n);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn central_probability_matches_exact_two_component_model_for_odd_n() {
        // For odd n the analytic center is integral and the formulas agree.
        for n in (3..=15u32).step_by(2) {
            let center = n.div_ceil(2);
            let exact = feedthrough_probability(n, 2, center);
            let model = central_row_probability(n);
            assert!((exact - model).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn expected_feedthroughs_rounds_up_and_scales() {
        // p_c(5) = 16/50 = 0.32; H=10 -> E(M)=3.2 -> 4.
        assert_eq!(expected_feedthroughs(5, 10), 4);
        // H=0 -> 0.
        assert_eq!(expected_feedthroughs(5, 0), 0);
        // n=1 -> p=0 -> 0 feed-throughs regardless of H.
        assert_eq!(expected_feedthroughs(1, 100), 0);
        // Monotone in H.
        assert!(expected_feedthroughs(7, 50) >= expected_feedthroughs(7, 10));
    }

    #[test]
    fn eq5_matches_closed_form() {
        // The literal double sum of Eq. 5 and the inclusion–exclusion
        // closed form are the same quantity.
        for n in 1..=12u32 {
            for d in 1..=15u32 {
                for i in 1..=n {
                    let literal = eq5_probability(n, d, i);
                    let closed = feedthrough_probability(n, d, i);
                    assert!(
                        (literal - closed).abs() < 1e-10,
                        "n={n} d={d} i={i}: eq5 {literal} vs closed {closed}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn row_index_out_of_range_rejected() {
        let _ = feedthrough_probability(4, 2, 5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_rows_rejected() {
        let _ = central_row_probability(0);
    }
}
