//! Result memoization above the resolve-once [`StatsCache`] layer.
//!
//! The [`StatsCache`](maestro_netlist::StatsCache) memoizes the *setup*
//! cost (module scan + technology queries); this cache memoizes the full
//! per-module estimation *result* — the [`EstimateRecord`] with its
//! standard-cell estimate, aspect sweep and full-custom estimate — keyed
//! by module content, technology revision, and a digest of the
//! estimation parameters. In an ECO edit loop a re-estimation of a
//! 96-module chip with one edited module then pays estimation cost for
//! exactly one module; the other 95 come straight out of this memo.
//!
//! Like the stats layer, the memo is bounded: a streaming million-module
//! run evicts least-recently-used entries in batches instead of growing
//! without limit. Every lookup emits `estimate.results.hits` /
//! `estimate.results.misses` (and evictions emit
//! `estimate.results.evictions`) trace counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use maestro_netlist::ModuleFingerprint;
use maestro_trace as trace;

use crate::report::EstimateRecord;
use crate::standard_cell::ScParams;

/// Cache key: module content × technology revision × parameter digest.
pub type ResultsKey = (ModuleFingerprint, u64, u64);

/// Default entry cap for [`ResultsCache`].
pub const DEFAULT_RESULTS_CAPACITY: usize = 8192;

/// FNV-1a digest of every estimation parameter that can change a
/// module's [`EstimateRecord`] under a fixed technology. Two pipelines
/// with equal digests produce byte-identical records for the same
/// (module, technology) pair.
pub fn params_digest(params: &ScParams) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut word = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    match params.rows {
        Some(rows) => {
            word(1);
            word(u64::from(rows));
        }
        None => word(0),
    }
    word(u64::from(params.max_rows));
    h
}

/// Counter snapshot of a [`ResultsCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultsCacheStats {
    /// Lookups served from the memo.
    pub hits: u64,
    /// Lookups that missed (the caller then runs the full estimate).
    pub misses: u64,
    /// Entries dropped by the capacity bound since construction.
    pub evictions: u64,
    /// Records currently cached.
    pub entries: usize,
}

impl ResultsCacheStats {
    /// Counter growth since an `earlier` snapshot of the same cache.
    /// `entries` carries the current level. Saturates if the snapshots
    /// are swapped.
    #[must_use]
    pub fn delta_since(&self, earlier: &ResultsCacheStats) -> ResultsCacheStats {
        ResultsCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }
}

#[derive(Debug)]
struct CachedRecord {
    record: Arc<EstimateRecord>,
    last_used: AtomicU64,
}

/// Bounded concurrent memo of per-module estimation results.
///
/// # Examples
///
/// ```
/// use maestro_estimator::results_cache::{params_digest, ResultsCache};
/// use maestro_estimator::standard_cell::ScParams;
/// use maestro_estimator::EstimateRecord;
/// use maestro_netlist::{generate, ModuleFingerprint};
///
/// let cache = ResultsCache::new();
/// let m = generate::counter(3);
/// let key = (ModuleFingerprint::of(&m), 0, params_digest(&ScParams::default()));
/// assert!(cache.get(&key).is_none());
/// cache.insert(key, EstimateRecord {
///     module_name: m.name().to_owned(),
///     standard_cell: None,
///     full_custom: None,
///     standard_cell_candidates: Vec::new(),
/// });
/// assert!(cache.get(&key).is_some());
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
/// ```
#[derive(Debug)]
pub struct ResultsCache {
    memo: RwLock<HashMap<ResultsKey, CachedRecord>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultsCache {
    fn default() -> Self {
        ResultsCache::with_capacity(DEFAULT_RESULTS_CAPACITY)
    }
}

impl ResultsCache {
    /// An empty cache with the default cap ([`DEFAULT_RESULTS_CAPACITY`]).
    pub fn new() -> Self {
        ResultsCache::default()
    }

    /// An empty cache holding at most `capacity` records (clamped to at
    /// least 1). When an insertion would exceed the cap, the
    /// least-recently-used records are dropped in a batch (an eighth of
    /// the capacity, at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        ResultsCache {
            memo: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The entry cap this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a memoized record, counting a hit or a miss (emitted as
    /// `estimate.results.hits` / `estimate.results.misses` trace
    /// counters).
    pub fn get(&self, key: &ResultsKey) -> Option<Arc<EstimateRecord>> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let found = {
            let read = self.memo.read().expect("results memo poisoned");
            read.get(key).map(|entry| {
                entry.last_used.store(now, Ordering::Relaxed);
                Arc::clone(&entry.record)
            })
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            trace::counter("estimate.results.hits", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            trace::counter("estimate.results.misses", 1);
        }
        found
    }

    /// Memoizes a record, evicting least-recently-used entries first if
    /// the cache is at capacity. Re-inserting an existing key replaces
    /// its record.
    pub fn insert(&self, key: ResultsKey, record: EstimateRecord) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut write = self.memo.write().expect("results memo poisoned");
        if !write.contains_key(&key) && write.len() >= self.capacity {
            let batch = (self.capacity / 8).max(1);
            let mut victims: Vec<(ResultsKey, u64)> = write
                .iter()
                .map(|(k, entry)| (*k, entry.last_used.load(Ordering::Relaxed)))
                .collect();
            victims.sort_unstable_by_key(|&(_, used)| used);
            let mut evicted = 0u64;
            for (victim, _) in victims.into_iter().take(batch) {
                write.remove(&victim);
                evicted += 1;
            }
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                trace::counter("estimate.results.evictions", evicted);
            }
        }
        write.insert(
            key,
            CachedRecord {
                record: Arc::new(record),
                last_used: AtomicU64::new(now),
            },
        );
    }

    /// Counter snapshot (monotonic counters are read `Relaxed`; exact
    /// only in quiescence).
    pub fn stats(&self) -> ResultsCacheStats {
        ResultsCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.memo.read().expect("results memo poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::generate;

    fn record(name: &str) -> EstimateRecord {
        EstimateRecord {
            module_name: name.to_owned(),
            standard_cell: None,
            full_custom: None,
            standard_cell_candidates: Vec::new(),
        }
    }

    fn key_of(i: u64) -> ResultsKey {
        let m = generate::counter(3);
        (ModuleFingerprint::of(&m), i, 0)
    }

    #[test]
    fn get_after_insert_hits_and_shares_the_arc() {
        let cache = ResultsCache::new();
        let key = key_of(0);
        assert!(cache.get(&key).is_none());
        cache.insert(key, record("a"));
        let one = cache.get(&key).expect("cached");
        let two = cache.get(&key).expect("cached");
        assert!(Arc::ptr_eq(&one, &two));
        assert_eq!(
            cache.stats(),
            ResultsCacheStats {
                hits: 2,
                misses: 1,
                evictions: 0,
                entries: 1
            }
        );
    }

    #[test]
    fn capacity_bound_evicts_the_least_recently_used() {
        let cache = ResultsCache::with_capacity(2);
        cache.insert(key_of(1), record("a"));
        cache.insert(key_of(2), record("b"));
        // Touch 1 so 2 is the LRU victim.
        assert!(cache.get(&key_of(1)).is_some());
        cache.insert(key_of(3), record("c"));
        let stats = cache.stats();
        assert_eq!((stats.evictions, stats.entries), (1, 2));
        assert!(cache.get(&key_of(1)).is_some());
        assert!(cache.get(&key_of(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key_of(3)).is_some());
    }

    #[test]
    fn params_digest_separates_every_field() {
        let base = ScParams::default();
        let explicit = ScParams {
            rows: Some(4),
            ..base
        };
        let other_rows = ScParams {
            rows: Some(5),
            ..base
        };
        let capped = ScParams {
            max_rows: base.max_rows + 1,
            ..base
        };
        let digests = [
            params_digest(&base),
            params_digest(&explicit),
            params_digest(&other_rows),
            params_digest(&capped),
        ];
        for (i, a) in digests.iter().enumerate() {
            for b in digests.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(params_digest(&base), params_digest(&ScParams::default()));
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let a = ResultsCacheStats {
            hits: 5,
            misses: 2,
            evictions: 0,
            entries: 2,
        };
        let b = ResultsCacheStats {
            hits: 9,
            misses: 3,
            evictions: 1,
            entries: 4,
        };
        assert_eq!(
            b.delta_since(&a),
            ResultsCacheStats {
                hits: 4,
                misses: 1,
                evictions: 1,
                entries: 4
            }
        );
        assert_eq!(a.delta_since(&b).hits, 0);
    }
}
