//! The Figure 1 dataflow: schematic + process database in, results
//! database out.
//!
//! ```text
//! Fabrication Process DB ──┐
//!                          ├─> I/O interface ─> SC estimator ─┐
//! Circuit schematic (.mnl)─┘                  └> FC estimator ├─> ResultsDb ─> floorplanner
//! ```
//!
//! The pipeline tries each layout style a module's templates resolve
//! against: a gate-level module estimates as standard cells, a
//! transistor-level module as full custom, and a module whose templates
//! appear in both tables gets both estimates — exactly the methodology
//! comparison the paper motivates ("trial floor plans for comparing the
//! various different layout methodologies").

use maestro_netlist::{mnl, LayoutStyle, Module, NetlistError, NetlistStats};
use maestro_tech::ProcessDb;

use crate::report::{EstimateRecord, ResultsDb};
use crate::standard_cell::ScParams;
use crate::{full_custom, standard_cell};

/// The module-area-estimation pipeline of the paper's Figure 1.
#[derive(Debug, Clone)]
pub struct Pipeline {
    tech: ProcessDb,
    sc_params: ScParams,
}

impl Pipeline {
    /// Creates a pipeline over a process database with default
    /// standard-cell parameters.
    pub fn new(tech: ProcessDb) -> Self {
        Pipeline {
            tech,
            sc_params: ScParams::default(),
        }
    }

    /// Overrides the standard-cell estimator parameters.
    pub fn with_sc_params(mut self, params: ScParams) -> Self {
        self.sc_params = params;
        self
    }

    /// The process database in use.
    pub fn tech(&self) -> &ProcessDb {
        &self.tech
    }

    /// Estimates one module under every style its templates resolve for.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownTemplate`] only when the module
    /// resolves under *neither* style — a module that fits one table is
    /// fine.
    pub fn run_module(&self, module: &Module) -> Result<EstimateRecord, NetlistError> {
        let (sc, sc_candidates) =
            match NetlistStats::resolve(module, &self.tech, LayoutStyle::StandardCell) {
                Ok(stats) if stats.device_count() > 0 => {
                    let primary = standard_cell::estimate(&stats, &self.tech, &self.sc_params);
                    let candidates = crate::multi_aspect::sc_candidates(
                        &stats,
                        &self.tech,
                        crate::multi_aspect::DEFAULT_CANDIDATES,
                    );
                    (Some(primary), candidates)
                }
                _ => (None, Vec::new()),
            };
        let fc = match NetlistStats::resolve(module, &self.tech, LayoutStyle::FullCustom) {
            Ok(stats) if stats.device_count() > 0 => {
                Some(full_custom::estimate(&stats, &self.tech))
            }
            _ => None,
        };
        if sc.is_none() && fc.is_none() {
            let first = module
                .devices()
                .next()
                .map(|(_, d)| (d.name().to_owned(), d.template().to_owned()))
                .unwrap_or_else(|| ("<none>".to_owned(), "<empty module>".to_owned()));
            return Err(NetlistError::UnknownTemplate {
                device: first.0,
                template: first.1,
            });
        }
        Ok(EstimateRecord {
            module_name: module.name().to_owned(),
            standard_cell: sc,
            full_custom: fc,
            standard_cell_candidates: sc_candidates,
        })
    }

    /// Parses `.mnl` source and estimates the module.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and [`Pipeline::run_module`] errors.
    pub fn run_mnl(&self, source: &str) -> Result<EstimateRecord, NetlistError> {
        let module = mnl::parse(source)?;
        self.run_module(&module)
    }

    /// Estimates a set of modules into a results database — the chip-level
    /// run that feeds the floorplanner.
    ///
    /// # Errors
    ///
    /// Fails on the first module that estimates under neither style.
    pub fn run_all<'m, I>(&self, modules: I) -> Result<ResultsDb, NetlistError>
    where
        I: IntoIterator<Item = &'m Module>,
    {
        let mut db = ResultsDb::new();
        for m in modules {
            db.insert(self.run_module(m)?);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::{generate, library_circuits};
    use maestro_tech::builtin;

    #[test]
    fn gate_level_module_gets_sc_only() {
        let p = Pipeline::new(builtin::nmos25());
        let rec = p.run_module(&generate::ripple_adder(2)).expect("estimates");
        assert!(rec.standard_cell.is_some());
        assert!(rec.full_custom.is_none());
    }

    #[test]
    fn transistor_module_gets_fc_only() {
        let p = Pipeline::new(builtin::nmos25());
        let rec = p
            .run_module(&library_circuits::nmos_full_adder())
            .expect("estimates");
        assert!(rec.standard_cell.is_none());
        assert!(rec.full_custom.is_some());
    }

    #[test]
    fn unresolvable_module_is_an_error() {
        let p = Pipeline::new(builtin::nmos25());
        let mut b = maestro_netlist::ModuleBuilder::new("alien");
        let n = b.net("n");
        b.device("u1", "QUANTUM_GATE", [("A", n)]);
        let err = p.run_module(&b.finish()).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownTemplate { .. }));
    }

    #[test]
    fn mnl_source_runs_end_to_end() {
        let p = Pipeline::new(builtin::nmos25());
        let rec = p
            .run_mnl(
                "module m;\ninput a;\noutput y;\n\
                 device u1 INV (A=a, Y=t);\ndevice u2 INV (A=t, Y=y);\nendmodule\n",
            )
            .expect("estimates");
        assert_eq!(rec.module_name, "m");
        assert!(rec.standard_cell.is_some());
    }

    #[test]
    fn run_all_builds_results_db() {
        let p = Pipeline::new(builtin::nmos25());
        let modules = [
            generate::ripple_adder(2),
            generate::counter(3),
            library_circuits::pass_chain(4),
        ];
        let db = p.run_all(modules.iter()).expect("estimates all");
        assert_eq!(db.len(), 3);
        assert!(db.record("counter_3").is_some());
        // Figure 1's "input to floor planner": serializable.
        assert!(db.to_json().unwrap().contains("counter_3"));
    }

    #[test]
    fn sc_params_override_flows_through() {
        let p = Pipeline::new(builtin::nmos25()).with_sc_params(ScParams::with_rows(5));
        let rec = p.run_module(&generate::ripple_adder(4)).unwrap();
        assert_eq!(rec.standard_cell.unwrap().rows, 5);
    }
}
