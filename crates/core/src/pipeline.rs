//! The Figure 1 dataflow: schematic + process database in, results
//! database out.
//!
//! ```text
//! Fabrication Process DB ──┐
//!                          ├─> I/O interface ─> SC estimator ─┐
//! Circuit schematic (.mnl)─┘                  └> FC estimator ├─> ResultsDb ─> floorplanner
//! ```
//!
//! The pipeline tries each layout style a module's templates resolve
//! against: a gate-level module estimates as standard cells, a
//! transistor-level module as full custom, and a module whose templates
//! appear in both tables gets both estimates — exactly the methodology
//! comparison the paper motivates ("trial floor plans for comparing the
//! various different layout methodologies").

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use maestro_netlist::{
    diff, mnl, LayoutStyle, Module, ModuleFingerprint, NetlistDiff, NetlistError, NetlistStats,
    RevisionManifest, StatsCache,
};
use maestro_tech::ProcessDb;
use maestro_trace as trace;

use crate::prob::{CacheStats, ProbTable};
use crate::report::{EstimateRecord, ResultsDb};
use crate::results_cache::{params_digest, ResultsCache, ResultsKey};
use crate::standard_cell::ScParams;
use crate::{full_custom, standard_cell};

/// Below this many total nets in a batch, [`Pipeline::run_all_parallel`]
/// takes the serial path regardless of the requested job count: thread
/// spawning costs more than estimating a hand-full of nets (the Table 1
/// suite alone carries ~80 nets and stays parallel).
pub const DEFAULT_PARALLEL_NET_THRESHOLD: usize = 48;

/// Ceiling on the per-shard net budget work dispatch uses. Batches are cut
/// into shards of consecutive modules totalling at most
/// `min(DEFAULT_SHARD_NET_BUDGET, ceil(total_nets / jobs))` nets (always
/// at least one module), so a 10^5-module batch of tiny modules dispatches
/// a few hundred chunky shards instead of contending on the work counter
/// once per module, while worker count follows the net workload rather
/// than the module count.
pub const DEFAULT_SHARD_NET_BUDGET: usize = 4096;

/// Totals of a [`Pipeline::run_all_streaming`] batch: what flowed through
/// the sink without ever being held in memory at once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Modules estimated (and emitted through the sink).
    pub modules: usize,
    /// Total devices across those modules.
    pub devices: usize,
    /// Total nets across those modules.
    pub nets: usize,
}

impl StreamSummary {
    fn count(&mut self, module: &Module) {
        self.modules += 1;
        self.devices += module.device_count();
        self.nets += module.net_count();
    }
}

/// Cuts a batch into shards of consecutive modules whose net counts sum to
/// at most `min(cap, ceil(total / jobs))` (single modules may exceed the
/// budget — a module is the smallest unit of work). Returns one
/// `start..end` index range per shard, covering `0..net_counts.len()`.
fn plan_shards(net_counts: &[usize], jobs: usize, cap: usize) -> Vec<std::ops::Range<usize>> {
    let total: usize = net_counts.iter().sum();
    let budget = total.div_ceil(jobs.max(1)).clamp(1, cap.max(1));
    let mut shards = Vec::new();
    let mut start = 0;
    let mut acc = 0usize;
    for (i, &nets) in net_counts.iter().enumerate() {
        if i > start && acc + nets > budget {
            shards.push(start..i);
            start = i;
            acc = 0;
        }
        acc += nets;
    }
    if start < net_counts.len() {
        shards.push(start..net_counts.len());
    }
    shards
}

/// Outcome of one [`Pipeline::run_all_incremental`] revision: the
/// results database (byte-identical to a cold batch over the same
/// modules), the fingerprint diff against the previous revision, and the
/// manifest to diff the *next* revision against.
#[derive(Debug, Clone)]
pub struct IncrementalRun {
    /// Per-module estimates, in module order.
    pub db: ResultsDb,
    /// Classification of every module against the previous revision.
    pub diff: NetlistDiff,
    /// This revision's manifest — feed it to the next incremental run.
    pub manifest: RevisionManifest,
}

/// The module-area-estimation pipeline of the paper's Figure 1.
#[derive(Debug, Clone)]
pub struct Pipeline {
    tech: Arc<ProcessDb>,
    sc_params: ScParams,
    prob: Arc<ProbTable>,
    /// Resolve-once memo for `NetlistStats`; `None` runs the uncached
    /// reference path (differential testing).
    stats: Option<Arc<StatsCache>>,
    /// Whole-result memo for ECO re-estimation; `None` (the default)
    /// recomputes every record, keeping batch counter profiles exact.
    results: Option<Arc<ResultsCache>>,
    parallel_net_threshold: usize,
    shard_net_budget: usize,
    replicas: usize,
    floorplan_backend: String,
}

impl Pipeline {
    /// Creates a pipeline over a process database with default
    /// standard-cell parameters, memoizing Eq. 2–3 in the process-wide
    /// [`ProbTable::shared`] cache and netlist resolution in the
    /// process-wide [`StatsCache::shared`] memo.
    pub fn new(tech: ProcessDb) -> Self {
        Pipeline::from_shared_tech(Arc::new(tech))
    }

    /// As [`Pipeline::new`], but borrowing an already-shared process
    /// database instead of taking ownership — a long-lived daemon keeps
    /// one `Arc<ProcessDb>` per technology and hands it to every
    /// request's pipeline without cloning the table data.
    pub fn from_shared_tech(tech: Arc<ProcessDb>) -> Self {
        Pipeline {
            tech,
            sc_params: ScParams::default(),
            prob: ProbTable::shared(),
            stats: Some(StatsCache::shared()),
            results: None,
            parallel_net_threshold: DEFAULT_PARALLEL_NET_THRESHOLD,
            shard_net_budget: DEFAULT_SHARD_NET_BUDGET,
            replicas: 1,
            floorplan_backend: crate::request::DEFAULT_FLOORPLAN_BACKEND.to_owned(),
        }
    }

    /// Names the floorplan backend downstream front ends should resolve
    /// when they build a chip plan from this pipeline's estimates. The
    /// pipeline itself only carries the name (the backend registry lives
    /// in the floorplan crate, which sits above this one); validate
    /// against [`crate::request::FLOORPLAN_BACKENDS`] before dispatch.
    pub fn with_floorplan_backend(mut self, backend: impl Into<String>) -> Self {
        self.floorplan_backend = backend.into();
        self
    }

    /// The floorplan backend name layout front ends should resolve.
    pub fn floorplan_backend(&self) -> &str {
        &self.floorplan_backend
    }

    /// Sets how many independently seeded annealing walks the layout
    /// stages downstream of this pipeline run per anneal (best final cost
    /// wins; ties break to the lowest replica index). The analytic
    /// estimates this pipeline computes are closed-form and unaffected;
    /// front ends read the value back via [`Pipeline::replicas`] when
    /// building placement, synthesis, and floorplan parameters. `0` is
    /// treated as `1`.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// The annealing replica count layout stages should use.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Overrides the standard-cell estimator parameters.
    pub fn with_sc_params(mut self, params: ScParams) -> Self {
        self.sc_params = params;
        self
    }

    /// Uses an explicit probability table instead of the shared one
    /// (e.g. to isolate cache statistics in tests and benchmarks).
    pub fn with_prob_table(mut self, table: Arc<ProbTable>) -> Self {
        self.prob = table;
        self
    }

    /// Uses an explicit netlist resolution cache instead of the shared
    /// one (isolating cache statistics in tests and benchmarks).
    pub fn with_stats_cache(mut self, cache: Arc<StatsCache>) -> Self {
        self.stats = Some(cache);
        self
    }

    /// Disables netlist resolution memoization: every consumer re-runs
    /// [`NetlistStats::resolve`] from scratch. This is the reference path
    /// the differential suite compares the cached pipeline against.
    pub fn without_stats_cache(mut self) -> Self {
        self.stats = None;
        self
    }

    /// Memoizes whole [`EstimateRecord`]s in `cache`, keyed by module
    /// content × technology revision × parameter digest. Off by default:
    /// only incremental (ECO) entry points opt in, so plain batch runs
    /// keep their exact resolve-counter profiles.
    pub fn with_results_cache(mut self, cache: Arc<ResultsCache>) -> Self {
        self.results = Some(cache);
        self
    }

    /// Overrides the net-count threshold below which
    /// [`Pipeline::run_all_parallel`] stays serial (`0` always fans out).
    pub fn with_parallel_threshold(mut self, total_nets: usize) -> Self {
        self.parallel_net_threshold = total_nets;
        self
    }

    /// Overrides the per-shard net-budget ceiling
    /// ([`DEFAULT_SHARD_NET_BUDGET`]) parallel dispatch cuts batches with.
    /// `0` is treated as `1` (every module its own shard).
    pub fn with_shard_net_budget(mut self, nets: usize) -> Self {
        self.shard_net_budget = nets.max(1);
        self
    }

    /// The process database in use.
    pub fn tech(&self) -> &ProcessDb {
        &self.tech
    }

    /// The probability table estimates are served from.
    pub fn prob_table(&self) -> &Arc<ProbTable> {
        &self.prob
    }

    /// The netlist resolution cache, unless running uncached.
    pub fn stats_cache(&self) -> Option<&Arc<StatsCache>> {
        self.stats.as_ref()
    }

    /// The whole-result memo, when an incremental entry point opted in.
    pub fn results_cache(&self) -> Option<&Arc<ResultsCache>> {
        self.results.as_ref()
    }

    /// The memo key of one module under this pipeline's technology and
    /// parameters.
    fn results_key(&self, module: &Module) -> ResultsKey {
        (
            ModuleFingerprint::of(module),
            self.tech.revision().id(),
            params_digest(&self.sc_params),
        )
    }

    /// Resolves a module's statistics through the cache (shared `Arc` per
    /// (module, technology, style)), or uncached when disabled.
    fn resolve_stats(
        &self,
        module: &Module,
        style: LayoutStyle,
    ) -> Result<Arc<NetlistStats>, NetlistError> {
        match &self.stats {
            Some(cache) => cache.resolve(module, &self.tech, style),
            None => NetlistStats::resolve(module, &self.tech, style).map(Arc::new),
        }
    }

    /// Estimates one module under every style its templates resolve for.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownTemplate`] only when the module
    /// resolves under *neither* style — a module that fits one table is
    /// fine.
    pub fn run_module(&self, module: &Module) -> Result<EstimateRecord, NetlistError> {
        let _module_span = trace::span_with("pipeline.module", || module.name().to_owned());
        trace::counter("estimate.nets", module.net_count() as u64);
        let key = self.results.as_ref().map(|cache| {
            let key = self.results_key(module);
            (Arc::clone(cache), key)
        });
        if let Some((cache, key)) = &key {
            if let Some(record) = cache.get(key) {
                return Ok((*record).clone());
            }
        }
        let (sc, sc_candidates) = match self.resolve_stats(module, LayoutStyle::StandardCell) {
            Ok(stats) if stats.device_count() > 0 => {
                let _sc_span = trace::span("estimate.standard_cell");
                let primary =
                    standard_cell::estimate_using(&stats, &self.tech, &self.sc_params, &self.prob);
                let candidates = crate::multi_aspect::sc_candidates_using(
                    &stats,
                    &self.tech,
                    crate::multi_aspect::DEFAULT_CANDIDATES,
                    &self.sc_params,
                    &self.prob,
                );
                (Some(primary), candidates)
            }
            _ => (None, Vec::new()),
        };
        let fc = match self.resolve_stats(module, LayoutStyle::FullCustom) {
            Ok(stats) if stats.device_count() > 0 => {
                let _fc_span = trace::span("estimate.full_custom");
                Some(full_custom::estimate(&stats, &self.tech))
            }
            _ => None,
        };
        if sc.is_none() && fc.is_none() {
            let first = module
                .devices()
                .next()
                .map(|(_, d)| (d.name().to_owned(), d.template().to_owned()))
                .unwrap_or_else(|| ("<none>".to_owned(), "<empty module>".to_owned()));
            return Err(NetlistError::UnknownTemplate {
                device: first.0,
                template: first.1,
            });
        }
        let record = EstimateRecord {
            module_name: module.name().to_owned(),
            standard_cell: sc,
            full_custom: fc,
            standard_cell_candidates: sc_candidates,
        };
        if let Some((cache, key)) = key {
            cache.insert(key, record.clone());
        }
        Ok(record)
    }

    /// Parses `.mnl` source and estimates the module.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and [`Pipeline::run_module`] errors.
    pub fn run_mnl(&self, source: &str) -> Result<EstimateRecord, NetlistError> {
        let module = mnl::parse(source)?;
        self.run_module(&module)
    }

    /// Estimates a set of modules into a results database — the chip-level
    /// run that feeds the floorplanner.
    ///
    /// # Errors
    ///
    /// Fails on the first module that estimates under neither style.
    pub fn run_all<'m, I>(&self, modules: I) -> Result<ResultsDb, NetlistError>
    where
        I: IntoIterator<Item = &'m Module>,
    {
        let modules: Vec<&Module> = modules.into_iter().collect();
        let _batch = trace::span_with("pipeline.run_all", || {
            format!("serial modules={}", modules.len())
        });
        let before = self.prob_snapshot();
        let mut db = ResultsDb::new();
        let mut outcome = Ok(());
        for m in modules {
            match self.run_module(m) {
                Ok(record) => db.insert(record),
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.emit_prob_delta(before);
        outcome.map(|()| db)
    }

    /// Snapshot of the probability-table counters, taken only when a
    /// trace sink is listening (the disabled path must not touch the
    /// memo's lock).
    fn prob_snapshot(&self) -> Option<CacheStats> {
        trace::enabled().then(|| self.prob.stats())
    }

    /// Charges the hit/miss growth since `before` to the trace. Always
    /// emits both counters (even at zero) so trace consumers see the
    /// cache totals on runs that never query the table.
    fn emit_prob_delta(&self, before: Option<CacheStats>) {
        if let Some(before) = before {
            let delta = self.prob.stats().delta_since(&before);
            trace::counter("prob.hits", delta.hits);
            trace::counter("prob.misses", delta.misses);
        }
    }

    /// [`Pipeline::run_all`] fanned out over worker threads.
    ///
    /// The batch is cut into *shards* — runs of consecutive modules whose
    /// nets sum to at most `min(`[`DEFAULT_SHARD_NET_BUDGET`]`,
    /// ceil(total_nets / jobs))` — and workers pull shards from a shared
    /// counter, so cheap and expensive modules interleave while dispatch
    /// contention scales with the net workload rather than the module
    /// count. At most `min(jobs, shard_count)` workers spawn: worker
    /// count follows how much net-work the batch carries, where it used
    /// to be clamped to `modules.len()`. All workers memoize into this
    /// pipeline's one probability table; results are merged in the
    /// modules' original order, so the produced [`ResultsDb`] — and its
    /// JSON serialization — is identical to the serial run's. `jobs <= 1`
    /// degenerates to the serial loop, as do batches totalling fewer nets
    /// than the pipeline's parallel threshold
    /// ([`DEFAULT_PARALLEL_NET_THRESHOLD`] unless overridden via
    /// [`Pipeline::with_parallel_threshold`]) — thread spawn cost swamps
    /// the estimation work on tiny batches.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::run_all`]: the error reported is the one the serial
    /// run would have hit first (the lowest-index failing module), even
    /// if a later module failed earlier in wall-clock time.
    pub fn run_all_parallel<'m, I>(
        &self,
        modules: I,
        jobs: usize,
    ) -> Result<ResultsDb, NetlistError>
    where
        I: IntoIterator<Item = &'m Module>,
    {
        let modules: Vec<&Module> = modules.into_iter().collect();
        let net_counts: Vec<usize> = modules.iter().map(|m| m.net_count()).collect();
        let total_nets: usize = net_counts.iter().sum();
        if jobs <= 1 || total_nets < self.parallel_net_threshold {
            return self.run_all(modules);
        }
        let shards = plan_shards(&net_counts, jobs, self.shard_net_budget);
        let workers = jobs.min(shards.len());
        let batch = trace::span_with("pipeline.run_all", || {
            format!(
                "jobs={workers} modules={} shards={}",
                modules.len(),
                shards.len()
            )
        });
        let batch_id = batch.id();
        let before = self.prob_snapshot();
        let slots: Vec<Mutex<Option<Result<EstimateRecord, NetlistError>>>> =
            modules.iter().map(|_| Mutex::new(None)).collect();
        self.run_shards(&modules, &shards, workers, batch_id, &slots);
        self.emit_prob_delta(before);
        let mut db = ResultsDb::new();
        for slot in slots {
            let result = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every module was estimated");
            db.insert(result?);
        }
        Ok(db)
    }

    /// Re-estimates a revision against the previous one: fingerprints
    /// every module, diffs against `prev` (emitting `netlist.diff.*`
    /// counters), then runs the batch through [`Pipeline::run_all_parallel`].
    /// With a results cache attached ([`Pipeline::with_results_cache`])
    /// the unchanged modules are served from the memo and only the
    /// modified/added slice pays estimation cost; the produced database
    /// is byte-identical to a cold batch either way, because cache hits
    /// replay the exact record the cold run would compute.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::run_all_parallel`].
    pub fn run_all_incremental<'m, I>(
        &self,
        prev: &RevisionManifest,
        modules: I,
        jobs: usize,
    ) -> Result<IncrementalRun, NetlistError>
    where
        I: IntoIterator<Item = &'m Module>,
    {
        let modules: Vec<&Module> = modules.into_iter().collect();
        let manifest = RevisionManifest::from_modules(modules.iter().copied());
        let changes = diff(prev, &manifest);
        let _span = trace::span_with("pipeline.run_all_incremental", || changes.summary());
        let db = self.run_all_parallel(modules, jobs)?;
        Ok(IncrementalRun {
            db,
            diff: changes,
            manifest,
        })
    }

    /// The shared parallel engine: `workers` scoped threads pull shard
    /// indices from a counter and estimate every module of their shard
    /// into `slots`. Worker spans parent to `batch_id` explicitly — the
    /// spawning thread's span stack is not visible from inside a worker
    /// thread.
    fn run_shards(
        &self,
        modules: &[&Module],
        shards: &[std::ops::Range<usize>],
        workers: usize,
        batch_id: u64,
        slots: &[Mutex<Option<Result<EstimateRecord, NetlistError>>>],
    ) {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let next = &next;
                scope.spawn(move || {
                    if trace::enabled() {
                        trace::set_thread_label(format!("worker-{w}"));
                    }
                    let _worker = trace::span_under("pipeline.worker", batch_id, String::new);
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(s) else { break };
                        for i in shard.clone() {
                            let result = self.run_module(modules[i]);
                            *slots[i].lock().expect("result slot poisoned") = Some(result);
                        }
                    }
                });
            }
        });
    }

    /// Estimates a stream of modules, emitting each [`EstimateRecord`]
    /// through `sink` in module order instead of accumulating a
    /// [`ResultsDb`] — the memory-bounded batch path: peak residency is
    /// one in-flight *wave* of modules (at most `jobs ×`
    /// [`DEFAULT_SHARD_NET_BUDGET`] nets, one module minimum) plus one
    /// record, regardless of how many modules the stream yields. A
    /// million-device generated chip estimates to completion in a bounded
    /// footprint where `run_all` would hold every module and every record
    /// at once.
    ///
    /// `jobs <= 1` estimates strictly one module at a time. `jobs > 1`
    /// pulls a wave of modules, fans it out over the sharded worker pool
    /// (same engine as [`Pipeline::run_all_parallel`]), then emits the
    /// wave's records in order before pulling the next — so the sink
    /// observes exactly the serial emission order and a collected stream
    /// is byte-identical to the in-memory run's JSON.
    ///
    /// # Errors
    ///
    /// Stops at the first failing module in stream order (later modules
    /// of an in-flight wave may have been estimated speculatively; their
    /// records are discarded and subsequent modules are never pulled).
    /// Errors returned by the sink propagate the same way.
    pub fn run_all_streaming<I, S>(
        &self,
        modules: I,
        jobs: usize,
        mut sink: S,
    ) -> Result<StreamSummary, NetlistError>
    where
        I: IntoIterator<Item = Module>,
        S: FnMut(EstimateRecord) -> Result<(), NetlistError>,
    {
        let workers = jobs.max(1);
        let batch = trace::span_with("pipeline.run_all", || format!("streaming jobs={workers}"));
        let batch_id = batch.id();
        let before = self.prob_snapshot();
        let mut summary = StreamSummary::default();
        let mut stream = modules.into_iter();
        let mut outcome = Ok(());
        if workers <= 1 {
            for module in stream {
                summary.count(&module);
                match self.run_module(&module) {
                    Ok(record) => {
                        if let Err(e) = sink(record) {
                            outcome = Err(e);
                            break;
                        }
                    }
                    Err(e) => {
                        outcome = Err(e);
                        break;
                    }
                }
            }
        } else {
            let wave_budget = workers * self.shard_net_budget;
            'waves: loop {
                // Pull one wave: enough modules to keep every worker at a
                // full shard, never more — this bound is the RSS bound.
                let mut wave: Vec<Module> = Vec::new();
                let mut wave_nets = 0usize;
                for module in stream.by_ref() {
                    wave_nets += module.net_count();
                    wave.push(module);
                    if wave_nets >= wave_budget {
                        break;
                    }
                }
                if wave.is_empty() {
                    break;
                }
                for module in &wave {
                    summary.count(module);
                }
                let refs: Vec<&Module> = wave.iter().collect();
                let net_counts: Vec<usize> = refs.iter().map(|m| m.net_count()).collect();
                let shards = plan_shards(&net_counts, workers, self.shard_net_budget);
                let slots: Vec<Mutex<Option<Result<EstimateRecord, NetlistError>>>> =
                    refs.iter().map(|_| Mutex::new(None)).collect();
                self.run_shards(&refs, &shards, workers.min(shards.len()), batch_id, &slots);
                for slot in slots {
                    let result = slot
                        .into_inner()
                        .expect("result slot poisoned")
                        .expect("every module of the wave was estimated");
                    let emit = result.and_then(&mut sink);
                    if let Err(e) = emit {
                        outcome = Err(e);
                        break 'waves;
                    }
                }
            }
        }
        self.emit_prob_delta(before);
        outcome.map(|()| summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::{generate, library_circuits};
    use maestro_tech::builtin;

    #[test]
    fn gate_level_module_gets_sc_only() {
        let p = Pipeline::new(builtin::nmos25());
        let rec = p.run_module(&generate::ripple_adder(2)).expect("estimates");
        assert!(rec.standard_cell.is_some());
        assert!(rec.full_custom.is_none());
    }

    #[test]
    fn transistor_module_gets_fc_only() {
        let p = Pipeline::new(builtin::nmos25());
        let rec = p
            .run_module(&library_circuits::nmos_full_adder())
            .expect("estimates");
        assert!(rec.standard_cell.is_none());
        assert!(rec.full_custom.is_some());
    }

    #[test]
    fn unresolvable_module_is_an_error() {
        let p = Pipeline::new(builtin::nmos25());
        let mut b = maestro_netlist::ModuleBuilder::new("alien");
        let n = b.net("n");
        b.device("u1", "QUANTUM_GATE", [("A", n)]);
        let err = p.run_module(&b.finish()).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownTemplate { .. }));
    }

    #[test]
    fn mnl_source_runs_end_to_end() {
        let p = Pipeline::new(builtin::nmos25());
        let rec = p
            .run_mnl(
                "module m;\ninput a;\noutput y;\n\
                 device u1 INV (A=a, Y=t);\ndevice u2 INV (A=t, Y=y);\nendmodule\n",
            )
            .expect("estimates");
        assert_eq!(rec.module_name, "m");
        assert!(rec.standard_cell.is_some());
    }

    #[test]
    fn run_all_builds_results_db() {
        let p = Pipeline::new(builtin::nmos25());
        let modules = [
            generate::ripple_adder(2),
            generate::counter(3),
            library_circuits::pass_chain(4),
        ];
        let db = p.run_all(modules.iter()).expect("estimates all");
        assert_eq!(db.len(), 3);
        assert!(db.record("counter_3").is_some());
        // Figure 1's "input to floor planner": serializable.
        assert!(db.to_json().unwrap().contains("counter_3"));
    }

    #[test]
    fn sc_params_override_flows_through() {
        let p = Pipeline::new(builtin::nmos25()).with_sc_params(ScParams::with_rows(5));
        let rec = p.run_module(&generate::ripple_adder(4)).unwrap();
        assert_eq!(rec.standard_cell.unwrap().rows, 5);
    }

    #[test]
    fn sc_params_override_recentres_the_candidate_sweep() {
        // The multi-aspect sweep must follow the caller's row override,
        // not the §5 seed: five candidates centred on rows = 5.
        let p = Pipeline::new(builtin::nmos25()).with_sc_params(ScParams::with_rows(5));
        let rec = p.run_module(&generate::ripple_adder(4)).unwrap();
        let rows: Vec<u32> = rec
            .standard_cell_candidates
            .iter()
            .map(|c| c.rows)
            .collect();
        assert_eq!(rows, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn parallel_run_matches_serial_byte_for_byte() {
        let p = Pipeline::new(builtin::nmos25());
        let modules: Vec<_> = (2..10).map(generate::counter).collect();
        let serial = p.run_all(modules.iter()).expect("serial run");
        for jobs in [1, 2, 8, 64] {
            let parallel = p
                .run_all_parallel(modules.iter(), jobs)
                .expect("parallel run");
            assert_eq!(
                serial.to_json().unwrap(),
                parallel.to_json().unwrap(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn parallel_run_reports_first_failing_module() {
        let p = Pipeline::new(builtin::nmos25());
        let bad = |name: &str| {
            let mut b = maestro_netlist::ModuleBuilder::new(name);
            let n = b.net("n");
            b.device("u1", "QUANTUM_GATE", [("A", n)]);
            b.finish()
        };
        let modules = [
            generate::counter(3),
            bad("bad_early"),
            generate::counter(4),
            bad("bad_late"),
        ];
        let serial = p.run_all(modules.iter()).unwrap_err();
        let parallel = p.run_all_parallel(modules.iter(), 4).unwrap_err();
        assert_eq!(format!("{serial}"), format!("{parallel}"));
    }

    #[test]
    fn small_batch_falls_back_to_serial_path() {
        let collector = Arc::new(trace::Collector::new());
        let p = Pipeline::new(builtin::nmos25());
        let modules = [generate::counter(2), generate::counter(3)];
        let total_nets: usize = modules.iter().map(|m| m.net_count()).sum();
        assert!(
            total_nets < DEFAULT_PARALLEL_NET_THRESHOLD,
            "fixture must stay under the threshold, has {total_nets} nets"
        );
        trace::with_sink(Arc::clone(&collector) as Arc<dyn trace::Sink>, || {
            p.run_all_parallel(modules.iter(), 8).expect("estimates");
        });
        let spans = collector.spans();
        let batch = spans
            .iter()
            .find(|s| s.name == "pipeline.run_all")
            .expect("batch span present");
        assert!(
            batch.detail.starts_with("serial"),
            "expected serial fallback, got detail {:?}",
            batch.detail
        );
        assert!(
            !spans.iter().any(|s| s.name == "pipeline.worker"),
            "serial fallback must not spawn workers"
        );
    }

    #[test]
    fn threshold_zero_forces_the_parallel_path() {
        let collector = Arc::new(trace::Collector::new());
        let p = Pipeline::new(builtin::nmos25()).with_parallel_threshold(0);
        let modules = [generate::counter(2), generate::counter(3)];
        trace::with_sink(Arc::clone(&collector) as Arc<dyn trace::Sink>, || {
            p.run_all_parallel(modules.iter(), 2).expect("estimates");
        });
        let spans = collector.spans();
        assert_eq!(
            spans.iter().filter(|s| s.name == "pipeline.worker").count(),
            2,
            "threshold 0 must fan out even for tiny batches"
        );
    }

    #[test]
    fn shards_respect_the_net_budget() {
        // total 20, jobs 2 -> budget 10: two equal shards.
        assert_eq!(plan_shards(&[5, 5, 5, 5], 2, 100), vec![0..2, 2..4]);
        // An oversized module owns its shard; the budget still caps the rest.
        assert_eq!(plan_shards(&[50, 4, 4, 4], 2, 10), vec![0..1, 1..3, 3..4]);
        // The cap wins over ceil(total/jobs) when smaller.
        assert_eq!(plan_shards(&[3, 3, 3], 100, 1), vec![0..1, 1..2, 2..3]);
        // Empty batch, empty plan.
        assert_eq!(
            plan_shards(&[], 4, 100),
            Vec::<std::ops::Range<usize>>::new()
        );
        // Shards always tile the batch contiguously.
        let counts = [7, 100, 3, 3, 3, 60, 1, 1];
        let shards = plan_shards(&counts, 3, 4096);
        assert_eq!(shards.first().unwrap().start, 0);
        assert_eq!(shards.last().unwrap().end, counts.len());
        for pair in shards.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn sharded_dispatch_groups_tiny_modules() {
        // 16 tiny modules, jobs=4: the old dispatch took the counter 16
        // times; net-budget shards group them 4-and-4 so the batch spans
        // report 4 shards and 4 workers.
        let collector = Arc::new(trace::Collector::new());
        let p = Pipeline::new(builtin::nmos25()).with_parallel_threshold(0);
        let modules: Vec<_> = (0..16).map(|_| generate::counter(2)).collect();
        trace::with_sink(Arc::clone(&collector) as Arc<dyn trace::Sink>, || {
            p.run_all_parallel(modules.iter(), 4).expect("estimates");
        });
        let spans = collector.spans();
        let batch = spans
            .iter()
            .find(|s| s.name == "pipeline.run_all")
            .expect("batch span present");
        assert!(
            batch.detail.contains("shards=4"),
            "16×7 nets / 4 jobs -> 4 shards, got {:?}",
            batch.detail
        );
        assert_eq!(
            spans.iter().filter(|s| s.name == "pipeline.worker").count(),
            4
        );
    }

    #[test]
    fn streaming_matches_in_memory_run_byte_for_byte() {
        let p = Pipeline::new(builtin::nmos25());
        let modules: Vec<_> = (2..10).map(generate::counter).collect();
        let reference = p.run_all(modules.iter()).expect("in-memory run");
        for jobs in [1, 2, 8] {
            let mut db = ResultsDb::new();
            let summary = p
                .run_all_streaming(modules.iter().cloned(), jobs, |rec| {
                    db.insert(rec);
                    Ok(())
                })
                .expect("streaming run");
            assert_eq!(summary.modules, modules.len());
            assert_eq!(
                summary.nets,
                modules.iter().map(|m| m.net_count()).sum::<usize>()
            );
            assert_eq!(
                reference.to_json().unwrap(),
                db.to_json().unwrap(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn streaming_reports_first_failing_module_in_stream_order() {
        let p = Pipeline::new(builtin::nmos25()).with_parallel_threshold(0);
        let bad = |name: &str| {
            let mut b = maestro_netlist::ModuleBuilder::new(name);
            let n = b.net("n");
            b.device("u1", "QUANTUM_GATE", [("A", n)]);
            b.finish()
        };
        let modules = [
            generate::counter(3),
            bad("bad_early"),
            generate::counter(4),
            bad("bad_late"),
        ];
        let serial = p.run_all(modules.iter()).unwrap_err();
        for jobs in [1, 4] {
            let err = p
                .run_all_streaming(modules.iter().cloned(), jobs, |_| Ok(()))
                .unwrap_err();
            assert_eq!(format!("{serial}"), format!("{err}"), "jobs={jobs}");
        }
    }

    #[test]
    fn streaming_sink_errors_stop_the_stream() {
        let p = Pipeline::new(builtin::nmos25());
        let modules: Vec<_> = (2..6).map(generate::counter).collect();
        let mut seen = 0;
        let err = p
            .run_all_streaming(modules.iter().cloned(), 1, |_| {
                seen += 1;
                if seen == 2 {
                    Err(NetlistError::invalid("sink full"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("sink full"));
        assert_eq!(seen, 2, "no records after the sink error");
    }

    #[test]
    fn pipeline_resolves_each_module_once_per_style() {
        use maestro_netlist::StatsCache;
        let cache = Arc::new(StatsCache::new());
        let p = Pipeline::new(builtin::nmos25()).with_stats_cache(Arc::clone(&cache));
        let module = generate::counter(4);
        p.run_module(&module).expect("estimates");
        let first = cache.stats();
        assert_eq!(first.misses, 2, "one resolve per style, both fresh");
        assert_eq!(first.hits, 0);
        p.run_module(&module).expect("estimates again");
        let second = cache.stats();
        assert_eq!(second.misses, 2, "re-running must not re-resolve");
        assert_eq!(second.hits, 2);
    }

    #[test]
    fn uncached_pipeline_matches_cached_byte_for_byte() {
        let modules = library_circuits::table1_suite();
        let cached = Pipeline::new(builtin::nmos25());
        let uncached = Pipeline::new(builtin::nmos25()).without_stats_cache();
        assert!(uncached.stats_cache().is_none());
        let a = cached.run_all(modules.iter()).expect("cached run");
        let b = uncached.run_all(modules.iter()).expect("uncached run");
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn replica_count_clamps_and_never_changes_estimates() {
        let base = Pipeline::new(builtin::nmos25());
        let with_replicas = Pipeline::new(builtin::nmos25()).with_replicas(4);
        assert_eq!(base.replicas(), 1);
        assert_eq!(with_replicas.replicas(), 4);
        assert_eq!(
            Pipeline::new(builtin::nmos25()).with_replicas(0).replicas(),
            1
        );
        // The closed-form estimator must be oblivious to the replica
        // count — it only parameterizes downstream annealing stages.
        let modules = [generate::counter(4), generate::ripple_adder(3)];
        let a = base.run_all(modules.iter()).expect("estimates");
        let b = with_replicas.run_all(modules.iter()).expect("estimates");
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn pipeline_populates_its_prob_table() {
        use crate::prob::ProbTable;
        use std::sync::Arc;
        let table = Arc::new(ProbTable::new());
        let p = Pipeline::new(builtin::nmos25()).with_prob_table(Arc::clone(&table));
        p.run_module(&generate::counter(4)).expect("estimates");
        let stats = table.stats();
        assert!(stats.misses > 0, "fresh table must be populated");
        assert!(
            stats.hits > stats.misses,
            "aspect sweep should mostly hit: {stats:?}"
        );
    }

    #[test]
    fn incremental_rerun_is_byte_identical_and_mostly_cached() {
        let results = Arc::new(ResultsCache::new());
        let p = Pipeline::new(builtin::nmos25())
            .with_stats_cache(Arc::new(StatsCache::new()))
            .with_results_cache(Arc::clone(&results));
        let modules = library_circuits::table1_suite();

        // Cold revision: everything is added, everything misses.
        let cold = p
            .run_all_incremental(&RevisionManifest::new(), modules.iter(), 1)
            .expect("cold run");
        assert_eq!(cold.diff.added.len(), modules.len());
        assert_eq!(results.stats().misses, modules.len() as u64);

        // Edit one module; the rerun serves the rest from the memo.
        let mut edited = modules.clone();
        edited[0] = generate::counter(7).renamed(edited[0].name());
        let warm = p
            .run_all_incremental(&cold.manifest, edited.iter(), 1)
            .expect("warm run");
        assert_eq!(warm.diff.modified, vec![edited[0].name().to_string()]);
        assert_eq!(warm.diff.unchanged.len(), modules.len() - 1);
        let stats = results.stats();
        assert_eq!(stats.hits, modules.len() as u64 - 1);
        assert_eq!(stats.misses, modules.len() as u64 + 1);

        // Byte-identical to a cold batch over the same revision.
        let reference = Pipeline::new(builtin::nmos25())
            .run_all(edited.iter())
            .expect("reference run");
        assert_eq!(
            warm.db.to_json().unwrap(),
            reference.to_json().unwrap(),
            "memoized records must replay the cold result exactly"
        );
    }

    #[test]
    fn results_cache_separates_params_and_tech_revisions() {
        let results = Arc::new(ResultsCache::new());
        let m = generate::ripple_adder(3);
        let a = Pipeline::new(builtin::nmos25()).with_results_cache(Arc::clone(&results));
        let b = Pipeline::new(builtin::nmos25())
            .with_sc_params(ScParams::with_rows(5))
            .with_results_cache(Arc::clone(&results));
        let ra = a.run_module(&m).expect("estimates");
        let rb = b.run_module(&m).expect("estimates");
        assert_ne!(
            ra.standard_cell.as_ref().map(|e| e.rows),
            rb.standard_cell.as_ref().map(|e| e.rows),
            "different params must not share a memo entry"
        );
        // Each pipeline wrapped its own tech: distinct revisions, so even
        // equal params would key separately.
        assert_eq!(results.stats().hits, 0);
        assert_eq!(results.stats().entries, 2);
    }
}
