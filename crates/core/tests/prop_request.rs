//! Property tests for the serve-protocol JSON codec: every request and
//! response must survive a wire round trip byte-exactly, and every
//! adversarial mutation — truncation, unknown fields, out-of-range
//! parameters — must come back as a structured error, never a panic.

use maestro_estimator::prob::MAX_ROWS;
use maestro_estimator::request::{
    EstimateRequest, FloorplanRequest, LayoutRequest, ReportRequest, Request, RequestCall,
    Response, FLOORPLAN_BACKENDS, MAX_FANOUT,
};
use proptest::prelude::*;

/// A deterministic string with protocol-hostile content: quotes,
/// backslashes, control characters, non-ASCII, JSON syntax. Built from a
/// seed because the vendored proptest has no string strategies.
fn wild_string(seed: u64) -> String {
    const PIECES: &[&str] = &[
        "module m;",
        "a\"quoted\"b",
        "back\\slash",
        "line\nbreak",
        "tab\there",
        "null\u{0}byte",
        "λ²-area",
        "{\"not\":\"a field\"}",
        "end}",
        "commas,,and:colons",
        "\r\u{1b}[31m",
        "日本語",
    ];
    let mut out = String::new();
    let mut state = seed;
    for _ in 0..(seed % 4 + 1) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push_str(PIECES[(state >> 33) as usize % PIECES.len()]);
    }
    out
}

/// Builds one valid request of the kind selected by `kind`, with all
/// string fields drawn from [`wild_string`].
fn build_request(kind: u8, seed: u64, rows: u32, fanout: u32, aspect_milli: u32) -> Request {
    let id = format!("id-{seed}-{}", wild_string(seed ^ 0xa5));
    let files = vec![wild_string(seed), format!("{}.mnl", seed % 100)];
    let mnl = vec![wild_string(seed ^ 0x3c)];
    let tech = ["nmos", "cmos", "custom.json"][(seed % 3) as usize].to_owned();
    let rows = seed.is_multiple_of(2).then_some(rows);
    let aspect = seed
        .is_multiple_of(3)
        .then_some(aspect_milli as f64 / 1000.0);
    let backend = FLOORPLAN_BACKENDS[(seed % FLOORPLAN_BACKENDS.len() as u64) as usize].to_owned();
    let call = match kind {
        0 => RequestCall::Estimate(EstimateRequest {
            files,
            mnl,
            tech,
            rows,
            jobs: fanout,
            json: seed % 2 == 1,
            incremental: seed.is_multiple_of(5),
        }),
        1 => RequestCall::Layout(LayoutRequest {
            files,
            mnl,
            tech,
            rows,
            replicas: fanout,
            warm: seed.is_multiple_of(5),
        }),
        2 => RequestCall::Floorplan(FloorplanRequest {
            files,
            mnl,
            tech,
            aspect,
            replicas: fanout,
            backend,
        }),
        3 => RequestCall::Report(ReportRequest {
            files,
            mnl,
            tech,
            aspect,
            replicas: fanout,
            backend,
        }),
        4 => RequestCall::CacheStats,
        _ => RequestCall::Shutdown,
    };
    Request { id, call }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_byte_exactly(
        kind in 0u8..=5,
        seed in 0u64..u64::MAX,
        rows in 1u32..=MAX_ROWS,
        fanout in 1u32..=MAX_FANOUT,
        aspect_milli in 1u32..=20_000,
    ) {
        let request = build_request(kind, seed, rows, fanout, aspect_milli);
        let line = request.to_json_line();
        prop_assert!(!line.contains('\n'), "JSON-lines framing broke: {line:?}");
        let back = Request::parse(&line).expect("own output parses");
        prop_assert_eq!(&back, &request, "line: {}", line);
        // Serialization is canonical: a second trip is byte-identical.
        prop_assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn truncated_request_lines_always_error(
        kind in 0u8..=5,
        seed in 0u64..u64::MAX,
        cut_permille in 0u32..1000,
    ) {
        let line = build_request(kind, seed, 2, 1, 1000).to_json_line();
        // Any strict prefix leaves the top-level object unterminated —
        // cut at a char boundary chosen proportionally along the line.
        let cut = (line.len() as u64 * cut_permille as u64 / 1000) as usize;
        let cut = (0..=cut).rev().find(|&i| line.is_char_boundary(i)).unwrap_or(0);
        let err = Request::parse(&line[..cut]).expect_err("truncation must not parse");
        prop_assert!(!err.message.is_empty());
    }

    #[test]
    fn unknown_fields_are_rejected_with_the_id_recovered(
        kind in 0u8..=5,
        seed in 0u64..u64::MAX,
    ) {
        let request = build_request(kind, seed, 2, 1, 1000);
        let line = request.to_json_line();
        // Splice an extra field before the closing brace; `zz_` never
        // collides with a schema field.
        let spliced = format!("{},\"zz_{}\":1}}", &line[..line.len() - 1], seed % 97);
        let err = Request::parse(&spliced).expect_err("unknown field must not parse");
        prop_assert!(err.message.contains("unknown field"), "{}", err.message);
        prop_assert_eq!(err.id.as_deref(), Some(request.id.as_str()));
    }

    #[test]
    fn out_of_range_parameters_are_rejected(
        bad_rows in (MAX_ROWS + 1)..=u32::MAX,
        bad_fanout in (MAX_FANOUT + 1)..=u32::MAX,
        seed in 0u64..u64::MAX,
    ) {
        for line in [
            format!("{{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"rows\":{bad_rows}}}"),
            "{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"rows\":0}".to_owned(),
            format!("{{\"id\":\"x\",\"kind\":\"estimate\",\"files\":[\"a\"],\"jobs\":{bad_fanout}}}"),
            "{\"id\":\"x\",\"kind\":\"layout\",\"files\":[\"a\"],\"replicas\":0}".to_owned(),
            format!(
                "{{\"id\":\"x\",\"kind\":\"floorplan\",\"files\":[\"a\"],\"aspect\":-{}}}",
                seed % 1000 + 1
            ),
            "{\"id\":\"x\",\"kind\":\"report\",\"files\":[\"a\"],\"aspect\":0}".to_owned(),
        ] {
            let err = Request::parse(&line).expect_err(&line);
            prop_assert_eq!(err.id.as_deref(), Some("x"), "{}", line);
        }
    }

    #[test]
    fn responses_round_trip_with_hostile_payloads(
        seed in 0u64..u64::MAX,
        ok in 0u8..=1,
    ) {
        let body = wild_string(seed);
        let response = if ok == 1 {
            Response::ok(wild_string(seed ^ 0xff), body)
        } else {
            Response::error(wild_string(seed ^ 0xff), body)
        };
        let line = response.to_json_line();
        prop_assert!(!line.contains('\n'), "JSON-lines framing broke: {line:?}");
        let back = Response::parse(&line).expect("own output parses");
        prop_assert_eq!(back, response);
    }
}
