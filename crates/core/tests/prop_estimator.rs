//! Property-based tests for the estimator's probability models and the
//! end-to-end estimators.

use maestro_estimator::standard_cell::{estimate_with_rows, total_tracks};
use maestro_estimator::track_sharing::shared_tracks;
use maestro_estimator::{feedthrough, full_custom, prob};
use maestro_netlist::{generate, LayoutStyle, NetlistStats};
use proptest::prelude::*;

fn sc_stats(module: &maestro_netlist::Module) -> NetlistStats {
    NetlistStats::resolve(
        module,
        &maestro_tech::builtin::nmos25(),
        LayoutStyle::StandardCell,
    )
    .expect("resolves")
}

proptest! {
    #[test]
    fn occupancy_distribution_sums_to_one(n in 1u32..32, d in 1u32..64) {
        let occ = prob::RowOccupancy::new(n, d);
        let sum: f64 = occ.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8, "n={n} d={d}: {sum}");
    }

    #[test]
    fn expected_rows_bounded_by_k(n in 1u32..32, d in 1u32..64) {
        let e = prob::expected_rows(n, d);
        prop_assert!(e >= 1.0 - 1e-9);
        prop_assert!(e <= n.min(d) as f64 + 1e-9);
    }

    #[test]
    fn expected_tracks_monotone_in_components(n in 2u32..16, d in 2u32..40) {
        let smaller = prob::expected_rows(n, d - 1);
        let larger = prob::expected_rows(n, d);
        prop_assert!(larger + 1e-9 >= smaller);
    }

    #[test]
    fn feedthrough_profile_peaks_centrally(n in 3u32..24, d in 2u32..16) {
        let best = feedthrough::most_likely_row(n, d);
        let center_lo = n / 2;           // lower-middle for even n
        let center_hi = n / 2 + 1;       // center (odd) / upper-middle (even)
        prop_assert!(
            best == center_lo || best == center_hi,
            "n={n} d={d}: best row {best}"
        );
    }

    #[test]
    fn feedthrough_probability_in_unit_interval(n in 1u32..32, d in 1u32..64, seed in 0u32..1000) {
        let i = 1 + seed % n;
        let p = feedthrough::feedthrough_probability(n, d, i);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn sharing_correction_never_exceeds_upper_bound(
        seed in 0u64..50,
        devices in 10usize..80,
        rows in 2u32..12,
    ) {
        let cfg = maestro_netlist::generate::RandomLogicConfig {
            device_count: devices,
            ..Default::default()
        };
        let m = generate::random_logic(seed, &cfg);
        let stats = sc_stats(&m);
        prop_assert!(shared_tracks(&stats, rows) <= total_tracks(&stats, rows));
    }

    #[test]
    fn sc_estimate_is_positive_and_consistent(
        seed in 0u64..50,
        devices in 10usize..60,
        rows in 1u32..10,
    ) {
        let cfg = maestro_netlist::generate::RandomLogicConfig {
            device_count: devices,
            ..Default::default()
        };
        let m = generate::random_logic(seed, &cfg);
        let stats = sc_stats(&m);
        let tech = maestro_tech::builtin::nmos25();
        let est = estimate_with_rows(&stats, &tech, rows);
        prop_assert!(est.area.get() > 0);
        prop_assert_eq!(est.area, est.width * est.height);
        prop_assert!(est.height.get() >= rows as i64 * tech.row_height().get());
        // Tracks include at least one per net in the single-row case.
        if rows == 1 {
            prop_assert_eq!(est.tracks as usize, stats.net_count());
        }
    }

    #[test]
    fn fc_estimate_wire_area_zero_iff_small_nets(stages in 1usize..20) {
        let m = maestro_netlist::library_circuits::pass_chain(stages);
        let tech = maestro_tech::builtin::nmos25();
        let stats = NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        let est = full_custom::estimate(&stats, &tech);
        prop_assert_eq!(est.wire_area_exact.get(), 0);
        prop_assert_eq!(est.total_exact, est.device_area);
    }

    #[test]
    fn fc_exact_and_average_track_each_other(seed in 0u64..40, gates in 4usize..30) {
        let m = generate::random_nmos_logic(seed, gates);
        let tech = maestro_tech::builtin::nmos25();
        let stats = NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        let est = full_custom::estimate(&stats, &tech);
        // The two variants agree within 2× on these small modules.
        let e = est.total_exact.as_f64();
        let a = est.total_average.as_f64();
        prop_assert!(a > 0.0 && e > 0.0);
        prop_assert!(e / a < 2.0 && a / e < 2.0, "exact {e} vs average {a}");
    }
}
