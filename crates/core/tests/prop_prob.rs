//! Property tests for the memoized probability kernel: over the full
//! supported domain (`1 ≤ n ≤ 64`, `1 ≤ D ≤ 256`), [`ProbTable`] must be
//! digit-for-digit equal to a fresh [`RowOccupancy::new`], agree with the
//! `exact` u128-rational oracle on its representable subdomain, and keep
//! the distribution a probability measure.

use maestro_estimator::prob::{self, ProbTable, RowOccupancy, MAX_COMPONENTS, MAX_ROWS};
use proptest::prelude::*;

fn shared() -> std::sync::Arc<ProbTable> {
    // One table across all cases, so later cases exercise the hit path
    // against fresh recomputation.
    ProbTable::shared()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn table_is_bit_identical_to_fresh_occupancy(
        n in 1u32..=MAX_ROWS,
        d in 1u32..=MAX_COMPONENTS,
    ) {
        let table = shared();
        let cached = table.occupancy(n, d);
        let fresh = RowOccupancy::new(n, d);
        prop_assert_eq!(cached.rows(), fresh.rows());
        prop_assert_eq!(cached.components(), fresh.components());
        prop_assert_eq!(cached.probabilities().len(), fresh.probabilities().len());
        for (i, (c, f)) in cached
            .probabilities()
            .iter()
            .zip(fresh.probabilities())
            .enumerate()
        {
            prop_assert_eq!(c.to_bits(), f.to_bits(), "n={} d={} i={}", n, d, i + 1);
        }
        prop_assert_eq!(
            table.expected_rows(n, d).to_bits(),
            fresh.expected_rows().to_bits()
        );
        prop_assert_eq!(table.expected_tracks(n, d), fresh.expected_tracks());
    }

    #[test]
    fn distribution_is_a_probability_measure(
        n in 1u32..=MAX_ROWS,
        d in 1u32..=MAX_COMPONENTS,
    ) {
        let occ = shared().occupancy(n, d);
        // Eq. 2's inclusion–exclusion cancels enormous intermediate terms,
        // so f64 accuracy degrades with row count. Measured worst error
        // over the full domain: 9e-16 (n ≤ 16), 4e-10 (n ≤ 32),
        // 3.5e-6 (n ≤ 48), 2.6e-2 (n ≤ 64) — the bounds track that curve.
        let tol = match n {
            1..=16 => 1e-12,
            17..=32 => 1e-8,
            33..=48 => 1e-4,
            _ => 0.05,
        };
        let sum: f64 = occ.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < tol, "n={} d={}: Σ={}", n, d, sum);
        for (i, p) in occ.probabilities().iter().enumerate() {
            prop_assert!(
                (-tol..=1.0 + tol).contains(p),
                "n={} d={} i={}: p={}",
                n,
                d,
                i + 1,
                p
            );
        }
    }

    #[test]
    fn table_matches_exact_oracle(n in 1u32..=8, d in 1u32..=16) {
        let occ = shared().occupancy(n, d);
        for i in 1..=n.min(d) {
            let exact = prob::exact::probability(n, d, i).as_f64();
            let fast = occ.probability(i);
            prop_assert!(
                (exact - fast).abs() < 1e-10,
                "n={} d={} i={}: exact={} fast={}",
                n,
                d,
                i,
                exact,
                fast
            );
        }
    }
}

/// The proptest sweeps sample the domain; the effective distribution
/// space is small enough (one per `(n, k)` pair) to cover exhaustively.
#[test]
fn every_distinct_distribution_is_bit_identical_to_fresh() {
    let table = ProbTable::new();
    for n in 1..=MAX_ROWS {
        for k in 1..=n {
            // d = k hits the pair directly; d = MAX_COMPONENTS exercises
            // the k = min(n, D) truncation onto the same entry.
            for d in [k, MAX_COMPONENTS] {
                if n.min(d) != k {
                    continue;
                }
                let cached = table.occupancy(n, d);
                let fresh = RowOccupancy::new(n, d);
                let cached_bits: Vec<u64> =
                    cached.probabilities().iter().map(|p| p.to_bits()).collect();
                let fresh_bits: Vec<u64> =
                    fresh.probabilities().iter().map(|p| p.to_bits()).collect();
                assert_eq!(cached_bits, fresh_bits, "n={n} k={k} d={d}");
                assert_eq!(table.expected_tracks(n, d), fresh.expected_tracks());
            }
        }
    }
    let stats = table.stats();
    assert_eq!(
        stats.entries,
        (1..=MAX_ROWS as usize).sum::<usize>(),
        "one entry per (n, k) pair"
    );
}
