//! Golden snapshot of the JSON-lines trace schema.
//!
//! `--trace` output is a machine interface: the CI bench-smoke step, the
//! `perf-report` folder, and any external tooling parse it. This test
//! serializes a fixed set of events covering every variant and edge
//! (detail omission, escaping, float formatting) and compares the lines
//! byte-for-byte against the committed fixture, so any schema drift shows
//! up as a reviewable diff.
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p maestro-trace --test golden_schema
//! ```

use std::path::PathBuf;

use maestro_trace::report::parse_trace;
use maestro_trace::Event;

fn golden_path() -> PathBuf {
    // Fixtures live with the workspace-level test suites, not the crate.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../tests/golden");
    p.push("trace_events.jsonl");
    p
}

/// A deterministic event set covering every variant and serialization
/// edge. Timings are fixed values, not clock reads, so the fixture is
/// stable.
fn fixture_events() -> Vec<Event> {
    vec![
        Event::Span {
            id: 1,
            parent: 0,
            name: "cli.estimate".to_owned(),
            detail: String::new(),
            thread: "main".to_owned(),
            start_us: 0,
            dur_us: 5000,
        },
        Event::Span {
            id: 2,
            parent: 1,
            name: "pipeline.module".to_owned(),
            detail: "counter_4".to_owned(),
            thread: "worker-1".to_owned(),
            start_us: 120,
            dur_us: 4810,
        },
        Event::Span {
            id: 3,
            parent: 2,
            name: "estimate.standard_cell".to_owned(),
            detail: "quoted \"name\" and\ttab".to_owned(),
            thread: "worker-1".to_owned(),
            start_us: 130,
            dur_us: 900,
        },
        Event::Counter {
            name: "prob.hits".to_owned(),
            value: 912,
            thread: "worker-1".to_owned(),
        },
        Event::Counter {
            name: "prob.misses".to_owned(),
            value: 0,
            thread: "worker-1".to_owned(),
        },
        Event::Metric {
            name: "anneal.temp_final".to_owned(),
            value: 0.35,
            thread: "main".to_owned(),
        },
        Event::Metric {
            name: "anneal.temp_initial".to_owned(),
            value: 100.0,
            thread: "main".to_owned(),
        },
    ]
}

fn render(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json_line());
        out.push('\n');
    }
    out
}

#[test]
fn trace_schema_matches_golden_fixture() {
    let rendered = render(&fixture_events());
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("fixture dir");
        std::fs::write(&path, &rendered).expect("fixture written");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, rendered,
        "trace JSON-lines schema drifted from its committed fixture; \
         adding keys is backwards-compatible (update the fixture), but \
         removals and renames break perf-report and external consumers"
    );
}

#[test]
fn golden_fixture_parses_back_to_the_same_events() {
    let events = fixture_events();
    let reparsed = parse_trace(&render(&events)).expect("fixture parses");
    assert_eq!(reparsed, events, "schema must round-trip losslessly");
}
