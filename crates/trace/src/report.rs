//! Folding a JSON-lines trace into a per-stage timing summary — the
//! machine-readable `BENCH_<label>.json` perf-trajectory artifact.
//!
//! The reader is a deliberately small parser for the flat single-object
//! lines this crate's [`Event::to_json_line`] emits (it tolerates unknown
//! keys and arbitrary key order, rejects anything structurally deeper).

use std::collections::BTreeMap;

use crate::event::format_f64;
use crate::Event;

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the trace.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
}

/// Parses one flat JSON object (`{"key":"str","key2":123,…}`) into its
/// fields. Returns an error message on structural problems.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let text = line.trim();
    let mut fields = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected string, found {other:?}")),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit `{h}` in \\u escape"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("expected `{`".to_owned()),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                other => return Err(format!("expected `:` after key, found {other:?}")),
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some((_, '"')) => Value::Str(parse_string(&mut chars)?),
                Some(&(start, c)) if c == '-' || c.is_ascii_digit() => {
                    let mut end = start;
                    while let Some(&(i, c)) = chars.peek() {
                        if c == '-'
                            || c == '+'
                            || c == '.'
                            || c == 'e'
                            || c == 'E'
                            || c.is_ascii_digit()
                        {
                            end = i + c.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let number = &text[start..end];
                    Value::Num(
                        number
                            .parse::<f64>()
                            .map_err(|_| format!("bad number `{number}`"))?,
                    )
                }
                other => return Err(format!("unsupported value start {other:?}")),
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((_, c)) = chars.next() {
        return Err(format!("trailing content starting at `{c}`"));
    }
    Ok(fields)
}

/// A nested JSON value, as far as the `BENCH_<label>.json` schema needs:
/// objects, arrays, strings and numbers (no booleans or nulls).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_of(&self, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s.clone()),
            Some(_) => Err(format!("field `{key}` must be a string")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    fn u64_of(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(Json::Num(n)) if *n >= 0.0 => Ok(*n as u64),
            Some(_) => Err(format!("field `{key}` must be a non-negative number")),
            None => Err(format!("missing field `{key}`")),
        }
    }
}

/// Parses one nested JSON document (the report schema subset).
fn parse_json(text: &str) -> Result<Json, String> {
    let mut chars = text.char_indices().peekable();
    let value = parse_json_value(text, &mut chars)?;
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
    if let Some((_, c)) = chars.next() {
        return Err(format!("trailing content starting at `{c}`"));
    }
    Ok(value)
}

fn parse_json_value(
    text: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Result<Json, String> {
    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected string, found {other:?}")),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    skip_ws(chars);
    match chars.peek() {
        Some((_, '"')) => Ok(Json::Str(parse_string(chars)?)),
        Some((_, '{')) => {
            chars.next();
            let mut fields = Vec::new();
            skip_ws(chars);
            if matches!(chars.peek(), Some((_, '}'))) {
                chars.next();
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(chars);
                let key = parse_string(chars)?;
                skip_ws(chars);
                match chars.next() {
                    Some((_, ':')) => {}
                    other => return Err(format!("expected `:` after key, found {other:?}")),
                }
                fields.push((key, parse_json_value(text, chars)?));
                skip_ws(chars);
                match chars.next() {
                    Some((_, ',')) => continue,
                    Some((_, '}')) => return Ok(Json::Obj(fields)),
                    other => return Err(format!("expected `,` or `}}`, found {other:?}")),
                }
            }
        }
        Some((_, '[')) => {
            chars.next();
            let mut items = Vec::new();
            skip_ws(chars);
            if matches!(chars.peek(), Some((_, ']'))) {
                chars.next();
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_json_value(text, chars)?);
                skip_ws(chars);
                match chars.next() {
                    Some((_, ',')) => continue,
                    Some((_, ']')) => return Ok(Json::Arr(items)),
                    other => return Err(format!("expected `,` or `]`, found {other:?}")),
                }
            }
        }
        Some(&(start, c)) if c == '-' || c.is_ascii_digit() => {
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                    end = i + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let number = &text[start..end];
            Ok(Json::Num(
                number
                    .parse::<f64>()
                    .map_err(|_| format!("bad number `{number}`"))?,
            ))
        }
        other => Err(format!("unsupported value start {other:?}")),
    }
}

fn field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(fields: &[(String, Value)], key: &str) -> Result<String, String> {
    match field(fields, key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(Value::Num(_)) => Err(format!("field `{key}` must be a string")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn u64_field(fields: &[(String, Value)], key: &str) -> Result<u64, String> {
    match field(fields, key) {
        Some(Value::Num(n)) if *n >= 0.0 => Ok(*n as u64),
        Some(_) => Err(format!("field `{key}` must be a non-negative number")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn f64_field(fields: &[(String, Value)], key: &str) -> Result<f64, String> {
    match field(fields, key) {
        Some(Value::Num(n)) => Ok(*n),
        Some(Value::Str(_)) => Err(format!("field `{key}` must be a number")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// Parses one JSON-lines trace event.
///
/// # Errors
///
/// Returns the structural or schema problem as a message (the caller adds
/// the line number).
pub fn parse_event(line: &str) -> Result<Event, String> {
    let fields = parse_flat_object(line)?;
    match str_field(&fields, "type")?.as_str() {
        "span" => Ok(Event::Span {
            id: u64_field(&fields, "id")?,
            parent: u64_field(&fields, "parent")?,
            name: str_field(&fields, "name")?,
            detail: str_field(&fields, "detail").unwrap_or_default(),
            thread: str_field(&fields, "thread")?,
            start_us: u64_field(&fields, "start_us")?,
            dur_us: u64_field(&fields, "dur_us")?,
        }),
        "counter" => Ok(Event::Counter {
            name: str_field(&fields, "name")?,
            value: u64_field(&fields, "value")?,
            thread: str_field(&fields, "thread")?,
        }),
        "metric" => Ok(Event::Metric {
            name: str_field(&fields, "name")?,
            value: f64_field(&fields, "value")?,
            thread: str_field(&fields, "thread")?,
        }),
        other => Err(format!("unknown event type `{other}`")),
    }
}

/// Parses a whole JSON-lines trace (blank lines ignored).
///
/// # Errors
///
/// Returns the first malformed line as a [`ParseError`].
pub fn parse_trace(text: &str) -> Result<Vec<Event>, ParseError> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            parse_event(line).map_err(|message| ParseError {
                line: i + 1,
                message,
            })
        })
        .collect()
}

/// Aggregated timing of one stage (all spans sharing a name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage (span) name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Σ span durations (µs); nested stages are counted in their parents
    /// too, so totals across stages can exceed the wall clock.
    pub total_us: u64,
    /// Σ self time (µs): duration minus the durations of direct child
    /// spans. Self times partition the trace, so `Σ self_us` over all
    /// stages equals the wall clock (modulo µs truncation and idle gaps).
    pub self_us: u64,
}

/// Latency distribution of one request-style stage — spans folded by
/// *duration* (what a client waits), unlike [`StageSummary`] whose self
/// times partition the trace. Folded for the stage names
/// [`is_latency_stage`] recognizes (the serve daemon's per-request
/// spans).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Stage (span) name, e.g. `serve.request`.
    pub name: String,
    /// Number of completed request spans.
    pub count: u64,
    /// Median span duration (µs), nearest-rank.
    pub p50_us: u64,
    /// 99th-percentile span duration (µs), nearest-rank.
    pub p99_us: u64,
    /// Sustained throughput: count over the active window (earliest span
    /// start to latest span end) in requests/second.
    pub rps: f64,
}

/// Whether a span name folds into a [`LatencySummary`] row. A closed
/// vocabulary, like the stage names themselves: today exactly the serve
/// daemon's per-request span.
pub fn is_latency_stage(name: &str) -> bool {
    name == "serve.request"
}

/// The folded per-stage view of one trace run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Run label (`pr2` → `BENCH_pr2.json`).
    pub label: String,
    /// Wall clock of the traced run: latest span end − earliest span
    /// start (µs).
    pub wall_us: u64,
    /// Σ self time over every stage (µs). Equals `wall_us` for a serial
    /// run; exceeds it when workers overlap on multiple cores.
    pub work_us: u64,
    /// Stages, largest self time first.
    pub stages: Vec<StageSummary>,
    /// Request-latency rows ([`is_latency_stage`] names), by name.
    pub latencies: Vec<LatencySummary>,
    /// Counter sums by name.
    pub counters: BTreeMap<String, u64>,
    /// Metrics by name (last value wins).
    pub metrics: BTreeMap<String, f64>,
}

/// Thread-label prefix the annealing engine gives its replica workers.
/// Spans attributed to such a thread fold into a per-replica stage row
/// (`anneal@replica-3`) so the report shows how work split across the
/// replica fan-out.
pub const REPLICA_THREAD_PREFIX: &str = "replica-";

/// Whether a folded stage name is a per-replica breakdown row.
///
/// Replica rows come and go with the `--replicas` flag, so the
/// [`regressions`] gate never treats one missing from the baseline as a
/// regression.
pub fn is_replica_stage(name: &str) -> bool {
    name.split_once('@')
        .is_some_and(|(_, thread)| thread.starts_with(REPLICA_THREAD_PREFIX))
}

/// The stage key a span folds under: per-replica spans split out by their
/// thread label, everything else groups by plain span name.
fn stage_key(name: &str, thread: &str) -> String {
    if thread.starts_with(REPLICA_THREAD_PREFIX) {
        format!("{name}@{thread}")
    } else {
        name.to_owned()
    }
}

/// Folds parsed events into a [`PerfReport`].
pub fn fold(events: &[Event], label: &str) -> PerfReport {
    let mut child_dur: BTreeMap<u64, u64> = BTreeMap::new();
    let mut min_start = u64::MAX;
    let mut max_end = 0u64;
    for event in events {
        if let Event::Span {
            parent,
            start_us,
            dur_us,
            ..
        } = event
        {
            *child_dur.entry(*parent).or_default() += dur_us;
            min_start = min_start.min(*start_us);
            max_end = max_end.max(start_us + dur_us);
        }
    }

    let mut stages: BTreeMap<String, StageSummary> = BTreeMap::new();
    // Per latency stage: span durations plus the active window bounds.
    let mut request_durs: BTreeMap<String, (Vec<u64>, u64, u64)> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    let mut work_us = 0u64;
    for event in events {
        match event {
            Event::Span {
                id,
                name,
                thread,
                start_us,
                dur_us,
                ..
            } => {
                // Self time saturates at zero: a parent that merely waits
                // on faster cross-thread children can be "covered" by
                // them (multi-core overlap).
                let self_us = dur_us.saturating_sub(child_dur.get(id).copied().unwrap_or(0));
                work_us += self_us;
                // Each span lands in exactly one stage row (replica-thread
                // spans in their per-replica row), so self times still
                // partition the trace and `work_us` telescopes unchanged.
                let key = stage_key(name, thread);
                let entry = stages.entry(key.clone()).or_insert_with(|| StageSummary {
                    name: key.clone(),
                    count: 0,
                    total_us: 0,
                    self_us: 0,
                });
                entry.count += 1;
                entry.total_us += dur_us;
                entry.self_us += self_us;
                if is_latency_stage(name) {
                    let (durs, win_start, win_end) = request_durs
                        .entry(name.clone())
                        .or_insert_with(|| (Vec::new(), u64::MAX, 0));
                    durs.push(*dur_us);
                    *win_start = (*win_start).min(*start_us);
                    *win_end = (*win_end).max(start_us + dur_us);
                }
            }
            Event::Counter { name, value, .. } => {
                *counters.entry(name.clone()).or_default() += value;
            }
            Event::Metric { name, value, .. } => {
                metrics.insert(name.clone(), *value);
            }
        }
    }
    let mut stages: Vec<StageSummary> = stages.into_values().collect();
    stages.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    let latencies = request_durs
        .into_iter()
        .map(|(name, (mut durs, win_start, win_end))| {
            durs.sort_unstable();
            let count = durs.len() as u64;
            let window_us = win_end.saturating_sub(win_start);
            LatencySummary {
                name,
                count,
                p50_us: percentile(&durs, 0.50),
                p99_us: percentile(&durs, 0.99),
                rps: if window_us > 0 {
                    count as f64 * 1e6 / window_us as f64
                } else {
                    0.0
                },
            }
        })
        .collect();
    PerfReport {
        label: label.to_owned(),
        wall_us: max_end.saturating_sub(if min_start == u64::MAX { 0 } else { min_start }),
        work_us,
        stages,
        latencies,
        counters,
        metrics,
    }
}

/// Nearest-rank percentile over an ascending-sorted slice; 0 when empty.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl PerfReport {
    /// Parses and folds a JSON-lines trace in one step.
    ///
    /// # Errors
    ///
    /// Propagates the first malformed line as a [`ParseError`].
    pub fn from_trace(text: &str, label: &str) -> Result<PerfReport, ParseError> {
        Ok(fold(&parse_trace(text)?, label))
    }

    /// Reads back a report serialized by [`PerfReport::to_json`] — the
    /// committed `BENCH_baseline.json` the CI regression gate diffs
    /// against. Tolerates unknown keys and arbitrary key order.
    ///
    /// # Errors
    ///
    /// Returns the structural or schema problem as a message.
    pub fn from_json(text: &str) -> Result<PerfReport, String> {
        let root = parse_json(text)?;
        let mut stages = Vec::new();
        match root.get("stages") {
            Some(Json::Arr(items)) => {
                for item in items {
                    stages.push(StageSummary {
                        name: item.str_of("name")?,
                        count: item.u64_of("count")?,
                        total_us: item.u64_of("total_us")?,
                        self_us: item.u64_of("self_us")?,
                    });
                }
            }
            Some(_) => return Err("field `stages` must be an array".to_owned()),
            None => return Err("missing field `stages`".to_owned()),
        }
        // Optional: baselines predating serve-mode carry no latency rows.
        let mut latencies = Vec::new();
        match root.get("latencies") {
            Some(Json::Arr(items)) => {
                for item in items {
                    let rps = match item.get("rps") {
                        Some(Json::Num(n)) if *n >= 0.0 => *n,
                        Some(_) => return Err("field `rps` must be a non-negative number".into()),
                        None => return Err("missing field `rps`".to_owned()),
                    };
                    latencies.push(LatencySummary {
                        name: item.str_of("name")?,
                        count: item.u64_of("count")?,
                        p50_us: item.u64_of("p50_us")?,
                        p99_us: item.u64_of("p99_us")?,
                        rps,
                    });
                }
            }
            Some(_) => return Err("field `latencies` must be an array".to_owned()),
            None => {}
        }
        let mut counters = BTreeMap::new();
        match root.get("counters") {
            Some(Json::Obj(fields)) => {
                for (name, value) in fields {
                    match value {
                        Json::Num(n) if *n >= 0.0 => {
                            counters.insert(name.clone(), *n as u64);
                        }
                        _ => return Err(format!("counter `{name}` must be a non-negative number")),
                    }
                }
            }
            Some(_) => return Err("field `counters` must be an object".to_owned()),
            None => return Err("missing field `counters`".to_owned()),
        }
        let mut metrics = BTreeMap::new();
        match root.get("metrics") {
            Some(Json::Obj(fields)) => {
                for (name, value) in fields {
                    match value {
                        Json::Num(n) => {
                            metrics.insert(name.clone(), *n);
                        }
                        _ => return Err(format!("metric `{name}` must be a number")),
                    }
                }
            }
            Some(_) => return Err("field `metrics` must be an object".to_owned()),
            None => return Err("missing field `metrics`".to_owned()),
        }
        Ok(PerfReport {
            label: root.str_of("label")?,
            wall_us: root.u64_of("wall_us")?,
            work_us: root.u64_of("work_us")?,
            stages,
            latencies,
            counters,
            metrics,
        })
    }

    /// Serializes the report as pretty-printed JSON — the
    /// `BENCH_<label>.json` artifact CI diffs across PRs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", self.label));
        out.push_str(&format!("  \"wall_us\": {},\n", self.wall_us));
        out.push_str(&format!("  \"work_us\": {},\n", self.work_us));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let comma = if i + 1 < self.stages.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_us\": {}, \"self_us\": {}}}{comma}\n",
                s.name, s.count, s.total_us, s.self_us
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"latencies\": [\n");
        for (i, l) in self.latencies.iter().enumerate() {
            let comma = if i + 1 < self.latencies.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"rps\": {}}}{comma}\n",
                l.name,
                l.count,
                l.p50_us,
                l.p99_us,
                format_f64(l.rps)
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": {\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            out.push_str(&format!("    \"{name}\": {}{comma}\n", format_f64(*value)));
        }
        out.push_str("  }\n");
        out.push('}');
        out
    }

    /// Merges another folded run into this report, as if the two runs had
    /// executed back to back: stage counts and times add, counters sum,
    /// wall and work clocks accumulate, and metrics take the other run's
    /// value (last wins, matching [`fold`]). This is how `perf-report`
    /// combines several trace files — span IDs restart per process, so
    /// traces must be folded separately and merged, never concatenated.
    pub fn merge(&mut self, other: &PerfReport) {
        self.wall_us += other.wall_us;
        self.work_us += other.work_us;
        for s in &other.stages {
            match self.stages.iter_mut().find(|mine| mine.name == s.name) {
                Some(mine) => {
                    mine.count += s.count;
                    mine.total_us += s.total_us;
                    mine.self_us += s.self_us;
                }
                None => self.stages.push(s.clone()),
            }
        }
        self.stages
            .sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
        for l in &other.latencies {
            match self.latencies.iter_mut().find(|mine| mine.name == l.name) {
                Some(mine) => {
                    // Back-to-back semantics: percentiles take the worse
                    // run (conservative — the gate sees the slower tail),
                    // throughput re-derives from the combined count over
                    // the combined active window.
                    let window = |l: &LatencySummary| {
                        if l.rps > 0.0 {
                            l.count as f64 / l.rps
                        } else {
                            0.0
                        }
                    };
                    let total_window = window(mine) + window(l);
                    mine.rps = if total_window > 0.0 {
                        (mine.count + l.count) as f64 / total_window
                    } else {
                        0.0
                    };
                    mine.count += l.count;
                    mine.p50_us = mine.p50_us.max(l.p50_us);
                    mine.p99_us = mine.p99_us.max(l.p99_us);
                }
                None => self.latencies.push(l.clone()),
            }
        }
        self.latencies.sort_by(|a, b| a.name.cmp(&b.name));
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += value;
        }
        for (name, value) in &other.metrics {
            self.metrics.insert(name.clone(), *value);
        }
    }

    /// A terminal-friendly stage table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf report `{}`: wall {} µs, work {} µs",
            self.label, self.wall_us, self.work_us
        );
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12} {:>12} {:>7}",
            "stage", "count", "total µs", "self µs", "self %"
        );
        for s in &self.stages {
            let share = if self.wall_us > 0 {
                s.self_us as f64 / self.wall_us as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12} {:>12} {share:>6.1}%",
                s.name, s.count, s.total_us, s.self_us
            );
        }
        if !self.latencies.is_empty() {
            let _ = writeln!(out, "latency:");
            for l in &self.latencies {
                let _ = writeln!(
                    out,
                    "  {:<28} count {:>5}  p50 {:>8} µs  p99 {:>8} µs  {:>7.1} req/s",
                    l.name, l.count, l.p50_us, l.p99_us, l.rps
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<30} {value}");
            }
        }
        if !self.metrics.is_empty() {
            let _ = writeln!(out, "metrics:");
            for (name, value) in &self.metrics {
                let _ = writeln!(out, "  {name:<30} {value}");
            }
        }
        out
    }
}

/// One stage whose self time grew past the allowed envelope — the unit the
/// CI trace-regression gate reports and fails on.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRegression {
    /// Stage (span) name.
    pub name: String,
    /// Baseline Σ self time (µs); `0` for a stage new since the baseline.
    pub baseline_self_us: u64,
    /// Current Σ self time (µs).
    pub current_self_us: u64,
    /// Fractional growth over baseline (`0.5` = +50%); infinite for a
    /// stage the baseline never saw.
    pub growth: f64,
}

impl std::fmt::Display for StageRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.baseline_self_us == 0 {
            write!(
                f,
                "{}: self {} µs, new since baseline",
                self.name, self.current_self_us
            )
        } else {
            write!(
                f,
                "{}: self {} µs vs baseline {} µs (+{:.0}%)",
                self.name,
                self.current_self_us,
                self.baseline_self_us,
                self.growth * 100.0
            )
        }
    }
}

/// Compares per-stage self times against a baseline run. A stage regresses
/// when its self time exceeds the baseline's by more than `max_increase`
/// (fractional: `0.3` = +30%) — or appears with no baseline entry at all —
/// AND its current self time is at least `noise_floor_us`. The floor keeps
/// sub-millisecond stages, whose timings are scheduling noise, from
/// tripping the gate. Per-replica breakdown rows ([`is_replica_stage`])
/// are exempt from the new-since-baseline rule: runs with different
/// `--replicas` settings legitimately produce different row sets, and a
/// replica-count mismatch is not a performance regression (a replica row
/// the baseline *does* carry is still held to the growth envelope).
///
/// Latency rows are gated alongside: each percentile of a
/// [`LatencySummary`] the baseline also carries is held to the same
/// growth envelope and noise floor, surfacing as a `name:p50` /
/// `name:p99` pseudo-stage. A latency row missing from the baseline is
/// exempt, like replica rows — serve workloads come and go with the
/// benchmark script.
///
/// Regressions come back worst growth first.
pub fn regressions(
    current: &PerfReport,
    baseline: &PerfReport,
    max_increase: f64,
    noise_floor_us: u64,
) -> Vec<StageRegression> {
    let mut found: Vec<StageRegression> = current
        .stages
        .iter()
        .filter(|stage| stage.self_us >= noise_floor_us.max(1))
        .filter_map(|stage| {
            let base = baseline
                .stages
                .iter()
                .find(|b| b.name == stage.name)
                .map(|b| b.self_us)
                .unwrap_or(0);
            let (regressed, growth) = if base == 0 {
                (!is_replica_stage(&stage.name), f64::INFINITY)
            } else {
                let growth = stage.self_us as f64 / base as f64 - 1.0;
                (growth > max_increase, growth)
            };
            regressed.then(|| StageRegression {
                name: stage.name.clone(),
                baseline_self_us: base,
                current_self_us: stage.self_us,
                growth,
            })
        })
        .collect();
    for l in &current.latencies {
        let Some(base) = baseline.latencies.iter().find(|b| b.name == l.name) else {
            continue; // new workload: nothing to gate against
        };
        for (tag, current_us, baseline_us) in [
            ("p50", l.p50_us, base.p50_us),
            ("p99", l.p99_us, base.p99_us),
        ] {
            if current_us < noise_floor_us.max(1) || baseline_us == 0 {
                continue;
            }
            let growth = current_us as f64 / baseline_us as f64 - 1.0;
            if growth > max_increase {
                found.push(StageRegression {
                    name: format!("{}:{tag}", l.name),
                    baseline_self_us: baseline_us,
                    current_self_us: current_us,
                    growth,
                });
            }
        }
    }
    found.sort_by(|a, b| {
        b.growth
            .partial_cmp(&a.growth)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.name.cmp(&b.name))
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank_edges() {
        // Empty input: 0 by convention (no latency rows to rank).
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[], 1.0), 0);
        // Single element: every quantile is that element.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[42], q), 42);
        }
        // q = 1.0 is the maximum, q -> 0 clamps to the minimum.
        let sorted = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&sorted, 1.0), 50);
        assert_eq!(percentile(&sorted, 0.0), 10);
        // Nearest rank: ceil(0.5 * 5) = 3rd element.
        assert_eq!(percentile(&sorted, 0.5), 30);
        // Even length: p50 is the lower of the middle pair (rank 2 of 4).
        assert_eq!(percentile(&[10, 20, 30, 40], 0.5), 20);
        // Ties: rank lands inside a run of equal values.
        assert_eq!(percentile(&[1, 7, 7, 7, 9], 0.5), 7);
        assert_eq!(percentile(&[7, 7, 7, 7], 0.99), 7);
    }

    #[test]
    fn percentile_matches_sort_and_index_oracle() {
        // Property: for seeded random inputs, p50/p99 agree with a naive
        // integer-arithmetic nearest-rank oracle (rank = ceil(q·n) via
        // div_ceil, no floating point) — pins the f64 rank computation
        // against off-by-one drift if percentile() is ever optimized.
        fn oracle(sorted: &[u64], num: usize, den: usize) -> u64 {
            let rank = (sorted.len() * num).div_ceil(den).clamp(1, sorted.len());
            sorted[rank - 1]
        }
        // SplitMix64: deterministic, dependency-free.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for round in 0..200 {
            let len = (next() % 257 + 1) as usize;
            // Small value range so ties are common.
            let mut values: Vec<u64> = (0..len).map(|_| next() % 17).collect();
            values.sort_unstable();
            assert_eq!(
                percentile(&values, 0.5),
                oracle(&values, 1, 2),
                "p50 diverged at round {round}, len {len}"
            );
            assert_eq!(
                percentile(&values, 0.99),
                oracle(&values, 99, 100),
                "p99 diverged at round {round}, len {len}"
            );
        }
    }

    fn span(id: u64, parent: u64, name: &str, start_us: u64, dur_us: u64) -> Event {
        Event::Span {
            id,
            parent,
            name: name.to_owned(),
            detail: String::new(),
            thread: "main".to_owned(),
            start_us,
            dur_us,
        }
    }

    #[test]
    fn events_roundtrip_through_json_lines() {
        let events = vec![
            span(2, 1, "inner \"quoted\"", 5, 10),
            Event::Counter {
                name: "c".to_owned(),
                value: 42,
                thread: "worker-1".to_owned(),
            },
            Event::Metric {
                name: "m".to_owned(),
                value: -1.25,
                thread: "main".to_owned(),
            },
        ];
        for event in events {
            let line = event.to_json_line();
            let parsed = parse_event(&line).expect("parses");
            assert_eq!(parsed, event, "line: {line}");
        }
    }

    #[test]
    fn parser_tolerates_key_reordering_and_unknown_keys() {
        let line = "{\"value\":3,\"future_key\":\"x\",\"thread\":\"t\",\
                    \"name\":\"c\",\"type\":\"counter\"}";
        let event = parse_event(line).expect("parses");
        assert_eq!(
            event,
            Event::Counter {
                name: "c".to_owned(),
                value: 3,
                thread: "t".to_owned(),
            }
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "not json",
            "{\"type\":\"span\"}",
            "{\"type\":\"mystery\",\"name\":\"x\",\"thread\":\"t\"}",
            "{\"type\":\"counter\",\"name\":\"c\",\"value\":\"NaN\",\"thread\":\"t\"}",
            "{\"type\":\"counter\",\"name\":\"c\",\"value\":1,\"thread\":\"t\"} trailing",
        ] {
            assert!(parse_event(bad).is_err(), "accepted: {bad}");
        }
        let err = parse_trace(
            "{\"type\":\"counter\",\"name\":\"c\",\"value\":1,\"thread\":\"t\"}\nbroken",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn merge_combines_runs_as_if_back_to_back() {
        // Two runs with overlapping span IDs (each process restarts its
        // counter at 1) — merging folded reports must not cross-wire them.
        let a = fold(
            &[
                span(1, 0, "root", 0, 100),
                span(2, 1, "anneal", 10, 60),
                Event::Counter {
                    name: "anneal.evals_delta".to_owned(),
                    value: 40,
                    thread: "main".to_owned(),
                },
            ],
            "t",
        );
        let b = fold(
            &[
                span(1, 0, "root", 0, 50),
                span(2, 1, "estimate", 5, 20),
                Event::Counter {
                    name: "anneal.evals_delta".to_owned(),
                    value: 2,
                    thread: "main".to_owned(),
                },
                Event::Metric {
                    name: "m".to_owned(),
                    value: 7.5,
                    thread: "main".to_owned(),
                },
            ],
            "t",
        );
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.wall_us, a.wall_us + b.wall_us);
        assert_eq!(merged.work_us, a.work_us + b.work_us);
        let root = merged.stages.iter().find(|s| s.name == "root").unwrap();
        assert_eq!((root.count, root.total_us), (2, 150));
        assert!(merged.stages.iter().any(|s| s.name == "anneal"));
        assert!(merged.stages.iter().any(|s| s.name == "estimate"));
        assert_eq!(merged.counters["anneal.evals_delta"], 42);
        assert_eq!(merged.metrics["m"], 7.5);
        // Largest self time still leads after the merge.
        for w in merged.stages.windows(2) {
            assert!(w[0].self_us >= w[1].self_us);
        }
    }

    #[test]
    fn fold_partitions_self_time_under_nesting() {
        // root (0..100) > a (10..40, dur 30) + b (50..90, dur 40).
        let events = vec![
            span(2, 1, "a", 10, 30),
            span(3, 1, "b", 50, 40),
            span(1, 0, "root", 0, 100),
        ];
        let report = fold(&events, "t");
        assert_eq!(report.wall_us, 100);
        assert_eq!(report.work_us, 100, "self times partition the wall clock");
        let root = report.stages.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root.total_us, 100);
        assert_eq!(root.self_us, 30);
        let a = report.stages.iter().find(|s| s.name == "a").unwrap();
        assert_eq!((a.count, a.total_us, a.self_us), (1, 30, 30));
    }

    #[test]
    fn fold_aggregates_counters_and_keeps_last_metric() {
        let events = vec![
            Event::Counter {
                name: "hits".to_owned(),
                value: 2,
                thread: "a".to_owned(),
            },
            Event::Counter {
                name: "hits".to_owned(),
                value: 5,
                thread: "b".to_owned(),
            },
            Event::Metric {
                name: "temp".to_owned(),
                value: 10.0,
                thread: "a".to_owned(),
            },
            Event::Metric {
                name: "temp".to_owned(),
                value: 0.5,
                thread: "a".to_owned(),
            },
        ];
        let report = fold(&events, "t");
        assert_eq!(report.counters.get("hits"), Some(&7));
        assert_eq!(report.metrics.get("temp"), Some(&0.5));
    }

    #[test]
    fn report_json_is_parseable_by_the_flat_parser() {
        // Not a full JSON validator, but every leaf object in the report
        // uses the same conventions; spot-check the stage lines.
        let events = vec![span(1, 0, "root", 0, 10)];
        let mut report = fold(&events, "pr2");
        report.counters.insert("c".to_owned(), 3);
        report.metrics.insert("m".to_owned(), 1.5);
        let json = report.to_json();
        assert!(json.contains("\"label\": \"pr2\""));
        assert!(json.contains("\"wall_us\": 10"));
        assert!(
            json.contains("{\"name\": \"root\", \"count\": 1, \"total_us\": 10, \"self_us\": 10}")
        );
        assert!(json.contains("\"c\": 3"));
        assert!(json.contains("\"m\": 1.5"));
        let rendered = report.render();
        assert!(rendered.contains("root"));
    }

    #[test]
    fn report_json_roundtrips_through_from_json() {
        let events = vec![
            span(2, 1, "anneal", 10, 60),
            span(1, 0, "root", 0, 100),
            Event::Counter {
                name: "netlist.resolve.misses".to_owned(),
                value: 7,
                thread: "main".to_owned(),
            },
            Event::Metric {
                name: "temp".to_owned(),
                value: 0.5,
                thread: "main".to_owned(),
            },
        ];
        let report = fold(&events, "pr4");
        let back = PerfReport::from_json(&report.to_json()).expect("parses own output");
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"label\":\"x\",\"wall_us\":1,\"work_us\":1,\"stages\":{},\
             \"counters\":{},\"metrics\":{}}",
            "{\"label\":\"x\",\"wall_us\":1,\"work_us\":1,\
             \"stages\":[{\"name\":\"s\",\"count\":1,\"total_us\":1}],\
             \"counters\":{},\"metrics\":{}}",
        ] {
            assert!(PerfReport::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    fn report_with(stages: &[(&str, u64)]) -> PerfReport {
        PerfReport {
            label: "t".to_owned(),
            wall_us: 0,
            work_us: 0,
            stages: stages
                .iter()
                .map(|(name, self_us)| StageSummary {
                    name: (*name).to_owned(),
                    count: 1,
                    total_us: *self_us,
                    self_us: *self_us,
                })
                .collect(),
            latencies: Vec::new(),
            counters: BTreeMap::new(),
            metrics: BTreeMap::new(),
        }
    }

    fn request_span(id: u64, start_us: u64, dur_us: u64) -> Event {
        Event::Span {
            id,
            parent: 1,
            name: "serve.request".to_owned(),
            detail: format!("r{id} estimate"),
            thread: "main".to_owned(),
            start_us,
            dur_us,
        }
    }

    #[test]
    fn latency_rows_fold_percentiles_and_throughput() {
        // 10 requests over a 1-second window: 9 fast, one slow tail.
        let mut events: Vec<Event> = (0..9)
            .map(|i| request_span(i + 2, i * 100_000, 1_000))
            .collect();
        events.push(request_span(11, 900_000, 100_000));
        events.push(span(1, 0, "serve.session", 0, 1_000_000));
        let report = fold(&events, "t");
        assert_eq!(report.latencies.len(), 1);
        let l = &report.latencies[0];
        assert_eq!(l.name, "serve.request");
        assert_eq!(l.count, 10);
        assert_eq!(l.p50_us, 1_000);
        assert_eq!(l.p99_us, 100_000, "nearest-rank p99 of 10 is the max");
        // Window: first start 0, last end 1_000_000 → 10 req/s.
        assert!((l.rps - 10.0).abs() < 1e-9, "rps {}", l.rps);
        // Latency rows ride along on top of normal stage folding.
        let stage = report
            .stages
            .iter()
            .find(|s| s.name == "serve.request")
            .unwrap();
        assert_eq!(stage.count, 10);
        let rendered = report.render();
        assert!(rendered.contains("latency:"), "{rendered}");
        assert!(rendered.contains("serve.request"), "{rendered}");
    }

    #[test]
    fn latency_rows_roundtrip_and_merge() {
        let events = vec![
            request_span(2, 0, 2_000),
            request_span(3, 2_000, 4_000),
            span(1, 0, "serve.session", 0, 6_000),
        ];
        let report = fold(&events, "t");
        let back = PerfReport::from_json(&report.to_json()).expect("parses own output");
        assert_eq!(back, report);
        // Old baselines carry no `latencies` field at all.
        let legacy = "{\"label\":\"x\",\"wall_us\":1,\"work_us\":1,\
                      \"stages\":[],\"counters\":{},\"metrics\":{}}";
        let parsed = PerfReport::from_json(legacy).expect("legacy schema parses");
        assert!(parsed.latencies.is_empty());
        // Merge: counts add, percentiles take the worse run, throughput
        // re-derives over the combined window.
        let mut merged = report.clone();
        merged.merge(&report);
        assert_eq!(merged.latencies.len(), 1);
        let l = &merged.latencies[0];
        assert_eq!(l.count, 4);
        assert_eq!(l.p50_us, report.latencies[0].p50_us);
        assert_eq!(l.p99_us, report.latencies[0].p99_us);
        assert!(
            (l.rps - report.latencies[0].rps).abs() < 1e-6,
            "rps {}",
            l.rps
        );
    }

    fn with_latency(mut report: PerfReport, p50_us: u64, p99_us: u64) -> PerfReport {
        report.latencies.push(LatencySummary {
            name: "serve.request".to_owned(),
            count: 100,
            p50_us,
            p99_us,
            rps: 50.0,
        });
        report
    }

    #[test]
    fn regression_gate_holds_latency_percentiles_to_the_envelope() {
        let baseline = with_latency(report_with(&[]), 40_000, 80_000);
        // p50 +10% (inside), p99 +50% (outside a 30% envelope).
        let current = with_latency(report_with(&[]), 44_000, 120_000);
        let found = regressions(&current, &baseline, 0.3, 25_000);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].name, "serve.request:p99");
        assert!((found[0].growth - 0.5).abs() < 1e-9);
        // Under the noise floor the same growth is ignored.
        let quiet_base = with_latency(report_with(&[]), 400, 800);
        let quiet_cur = with_latency(report_with(&[]), 440, 1_200);
        assert!(regressions(&quiet_cur, &quiet_base, 0.3, 25_000).is_empty());
        // A latency row the baseline never saw is exempt, like replicas.
        assert!(regressions(&current, &report_with(&[]), 0.3, 25_000).is_empty());
        // Self-comparison always passes.
        assert!(regressions(&current, &current, 0.0, 0).is_empty());
    }

    #[test]
    fn regression_gate_flags_growth_beyond_envelope_and_floor() {
        let baseline = report_with(&[("anneal", 100_000), ("route", 40_000), ("tiny", 10)]);
        let current = report_with(&[
            ("anneal", 140_000), // +40% over a 30% envelope: regressed
            ("route", 50_000),   // +25%: inside the envelope
            ("tiny", 900),       // +8900% but under the noise floor
        ]);
        let found = regressions(&current, &baseline, 0.3, 25_000);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].name, "anneal");
        assert_eq!(found[0].baseline_self_us, 100_000);
        assert_eq!(found[0].current_self_us, 140_000);
        assert!((found[0].growth - 0.4).abs() < 1e-9);
        assert!(found[0].to_string().contains("anneal"));
    }

    #[test]
    fn regression_gate_flags_new_heavy_stages_worst_first() {
        let baseline = report_with(&[("anneal", 100_000)]);
        let current = report_with(&[("anneal", 200_000), ("surprise", 30_000)]);
        let found = regressions(&current, &baseline, 0.3, 25_000);
        let names: Vec<&str> = found.iter().map(|r| r.name.as_str()).collect();
        // The unbounded (new-stage) growth sorts ahead of the +100%.
        assert_eq!(names, ["surprise", "anneal"]);
        assert!(found[0].growth.is_infinite());
        assert!(found[0].to_string().contains("new since baseline"));
    }

    #[test]
    fn regression_gate_passes_a_run_against_itself() {
        let report = report_with(&[("anneal", 100_000), ("route", 40_000)]);
        assert!(regressions(&report, &report, 0.3, 0).is_empty());
        assert!(regressions(&report, &report, 0.0, 0).is_empty());
    }

    fn replica_span(id: u64, parent: u64, name: &str, replica: u64, dur_us: u64) -> Event {
        Event::Span {
            id,
            parent,
            name: name.to_owned(),
            detail: String::new(),
            thread: format!("replica-{replica}"),
            start_us: 0,
            dur_us,
        }
    }

    #[test]
    fn replica_thread_spans_fold_into_per_replica_rows() {
        // Two replica threads, each running anneal.replica > anneal; the
        // set span stays on the main thread.
        let events = vec![
            replica_span(3, 2, "anneal", 0, 70),
            replica_span(2, 1, "anneal.replica", 0, 80),
            replica_span(5, 4, "anneal", 1, 60),
            replica_span(4, 1, "anneal.replica", 1, 75),
            span(1, 0, "anneal.replica_set", 0, 90),
        ];
        let report = fold(&events, "t");
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            "anneal@replica-0",
            "anneal@replica-1",
            "anneal.replica@replica-0",
            "anneal.replica@replica-1",
            "anneal.replica_set",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
            assert_eq!(is_replica_stage(expected), expected != "anneal.replica_set",);
        }
        // Each span still lands in exactly one row: self times partition.
        let total_self: u64 = report.stages.iter().map(|s| s.self_us).sum();
        assert_eq!(total_self, report.work_us);
        let inner0 = report
            .stages
            .iter()
            .find(|s| s.name == "anneal@replica-0")
            .unwrap();
        assert_eq!((inner0.count, inner0.total_us, inner0.self_us), (1, 70, 70));
        // Roundtrip keeps the synthesized names intact.
        let back = PerfReport::from_json(&report.to_json()).expect("parses own output");
        assert_eq!(back, report);
    }

    #[test]
    fn regression_gate_ignores_replica_rows_missing_from_the_baseline() {
        // A baseline traced at --replicas 1 has no per-replica rows; a
        // current run at --replicas 4 must not fail the gate for them.
        let baseline = report_with(&[("anneal", 100_000)]);
        let current = report_with(&[
            ("anneal", 100_000),
            ("anneal@replica-0", 90_000),
            ("anneal@replica-1", 95_000),
        ]);
        assert!(regressions(&current, &baseline, 0.3, 25_000).is_empty());
        // But a replica row the baseline does carry is still gated.
        let tracked_baseline = report_with(&[("anneal", 100_000), ("anneal@replica-0", 50_000)]);
        let found = regressions(&current, &tracked_baseline, 0.3, 25_000);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].name, "anneal@replica-0");
        assert!((found[0].growth - 0.8).abs() < 1e-9);
    }

    #[test]
    fn multi_core_overlap_saturates_instead_of_underflowing() {
        // A parent whose cross-thread children sum past its duration.
        let events = vec![
            span(2, 1, "w", 0, 80),
            span(3, 1, "w", 0, 80),
            span(1, 0, "root", 0, 100),
        ];
        let report = fold(&events, "t");
        let root = report.stages.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root.self_us, 0);
        let w = report.stages.iter().find(|s| s.name == "w").unwrap();
        assert_eq!(w.self_us, 160);
    }
}
