//! Event sinks: the pluggable back half of the trace layer.

use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::Event;

/// A trace event consumer. Implementations must be cheap and
/// thread-safe: events arrive from every instrumented thread.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output; called by [`crate::uninstall`].
    fn flush(&self) {}
}

/// A copy of one span event with struct-field access, for test
/// assertions ([`Collector::spans`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Stage name.
    pub name: String,
    /// Detail qualifier (may be empty).
    pub detail: String,
    /// Emitting thread's label.
    pub thread: String,
    /// Start offset (µs since trace epoch).
    pub start_us: u64,
    /// Duration (µs).
    pub dur_us: u64,
}

/// In-memory sink for tests: keeps every event in arrival order and
/// offers small aggregation helpers.
#[derive(Debug, Default)]
pub struct Collector {
    events: Mutex<Vec<Event>>,
    flushes: AtomicU64,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("collector poisoned").clone()
    }

    /// The span events only, in arrival (= completion) order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Span {
                    id,
                    parent,
                    name,
                    detail,
                    thread,
                    start_us,
                    dur_us,
                } => Some(SpanRecord {
                    id,
                    parent,
                    name,
                    detail,
                    thread,
                    start_us,
                    dur_us,
                }),
                _ => None,
            })
            .collect()
    }

    /// Span names in completion order.
    pub fn span_names(&self) -> Vec<String> {
        self.spans().into_iter().map(|s| s.name).collect()
    }

    /// Sum of all increments recorded for counter `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name: n, value, .. } if n == name => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// Number of [`Sink::flush`] calls observed.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }
}

impl Sink for Collector {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("collector poisoned")
            .push(event.clone());
    }

    fn flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }
}

/// JSON-lines sink: one event per line in the schema pinned by
/// [`Event::to_json_line`]. Backs the CLI's `--trace file.jsonl`.
pub struct JsonLines<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
}

impl<W: Write + Send> JsonLines<W> {
    /// Wraps any writer (a `File`, a `Vec<u8>` in tests).
    pub fn new(writer: W) -> Self {
        JsonLines {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error of the buffered writer.
    pub fn into_inner(self) -> std::io::Result<W> {
        self.writer
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .into_inner()
            .map_err(|e| e.into_error())
    }
}

impl JsonLines<std::fs::File> {
    /// Creates (truncating) a JSON-lines trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonLines::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> Sink for JsonLines<W> {
    fn record(&self, event: &Event) {
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Trace output is best-effort: a full disk must not take the
        // estimator down with it.
        let _ = writeln!(writer, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonLines::new(Vec::new());
        sink.record(&Event::Counter {
            name: "a".to_owned(),
            value: 1,
            thread: "t".to_owned(),
        });
        sink.record(&Event::Counter {
            name: "b".to_owned(),
            value: 2,
            thread: "t".to_owned(),
        });
        let bytes = sink.into_inner().expect("flushes");
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"counter\",\"name\":\"a\""));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn collector_aggregates_counters() {
        let c = Collector::new();
        for v in [1u64, 2, 3] {
            c.record(&Event::Counter {
                name: "x".to_owned(),
                value: v,
                thread: "t".to_owned(),
            });
        }
        c.record(&Event::Counter {
            name: "y".to_owned(),
            value: 100,
            thread: "t".to_owned(),
        });
        assert_eq!(c.counter_total("x"), 6);
        assert_eq!(c.counter_total("y"), 100);
        assert_eq!(c.counter_total("absent"), 0);
    }
}
