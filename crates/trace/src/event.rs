//! The trace event model and its JSON-lines wire form.
//!
//! One event per line, schema kept deliberately flat and stable — the
//! golden fixture under `tests/golden/trace_events.jsonl` pins it:
//!
//! ```json
//! {"type":"span","id":2,"parent":1,"name":"pipeline.module","detail":"counter_4","thread":"main","start_us":120,"dur_us":4810}
//! {"type":"counter","name":"prob.hits","value":912,"thread":"main"}
//! {"type":"metric","name":"anneal.temp_final","value":0.35,"thread":"main"}
//! ```
//!
//! Keys are always emitted in the order shown; `detail` is omitted when
//! empty. Readers must tolerate unknown keys (additions are
//! backwards-compatible; removals and renames are not).

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed stage span.
    Span {
        /// Unique span id (process-wide, never 0).
        id: u64,
        /// Id of the enclosing span, 0 for roots.
        parent: u64,
        /// Stage name (`pipeline.module`, `anneal`, `route`, …).
        name: String,
        /// Free-form qualifier (module name, worker label); may be empty.
        detail: String,
        /// Attribution label of the emitting thread.
        thread: String,
        /// Start offset in microseconds since the trace epoch.
        start_us: u64,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
    },
    /// A monotonic counter increment (a delta, summed by report folding).
    Counter {
        /// Counter name (`prob.hits`, `route.tracks`, …).
        name: String,
        /// Increment.
        value: u64,
        /// Attribution label of the emitting thread.
        thread: String,
    },
    /// A point-in-time gauge (last value wins in report folding).
    Metric {
        /// Metric name (`anneal.temp_final`, …).
        name: String,
        /// Observed value (always finite).
        value: f64,
        /// Attribution label of the emitting thread.
        thread: String,
    },
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Formats an `f64` as a JSON number (shortest round-trip form; callers
/// guarantee finiteness).
pub(crate) fn format_f64(value: f64) -> String {
    debug_assert!(value.is_finite());
    format!("{value}")
}

impl Event {
    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        match self {
            Event::Span {
                id,
                parent,
                name,
                detail,
                thread,
                start_us,
                dur_us,
            } => {
                push_str_field(&mut out, "type", "span");
                out.push_str(&format!(",\"id\":{id},\"parent\":{parent},"));
                push_str_field(&mut out, "name", name);
                if !detail.is_empty() {
                    out.push(',');
                    push_str_field(&mut out, "detail", detail);
                }
                out.push(',');
                push_str_field(&mut out, "thread", thread);
                out.push_str(&format!(",\"start_us\":{start_us},\"dur_us\":{dur_us}"));
            }
            Event::Counter {
                name,
                value,
                thread,
            } => {
                push_str_field(&mut out, "type", "counter");
                out.push(',');
                push_str_field(&mut out, "name", name);
                out.push_str(&format!(",\"value\":{value},"));
                push_str_field(&mut out, "thread", thread);
            }
            Event::Metric {
                name,
                value,
                thread,
            } => {
                push_str_field(&mut out, "type", "metric");
                out.push(',');
                push_str_field(&mut out, "name", name);
                out.push_str(&format!(",\"value\":{},", format_f64(*value)));
                push_str_field(&mut out, "thread", thread);
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_line_has_stable_key_order() {
        let e = Event::Span {
            id: 2,
            parent: 1,
            name: "pipeline.module".to_owned(),
            detail: "counter_4".to_owned(),
            thread: "main".to_owned(),
            start_us: 120,
            dur_us: 4810,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"pipeline.module\",\
             \"detail\":\"counter_4\",\"thread\":\"main\",\"start_us\":120,\"dur_us\":4810}"
        );
    }

    #[test]
    fn empty_detail_is_omitted() {
        let e = Event::Span {
            id: 1,
            parent: 0,
            name: "root".to_owned(),
            detail: String::new(),
            thread: "main".to_owned(),
            start_us: 0,
            dur_us: 1,
        };
        assert!(!e.to_json_line().contains("detail"));
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::Counter {
            name: "weird\"name\\with\ncontrol\u{1}".to_owned(),
            value: 1,
            thread: "t".to_owned(),
        };
        assert_eq!(
            e.to_json_line(),
            "{\"type\":\"counter\",\"name\":\"weird\\\"name\\\\with\\ncontrol\\u0001\",\
             \"value\":1,\"thread\":\"t\"}"
        );
    }

    #[test]
    fn metric_values_render_as_json_numbers() {
        let e = Event::Metric {
            name: "m".to_owned(),
            value: 0.35,
            thread: "t".to_owned(),
        };
        assert!(e.to_json_line().contains("\"value\":0.35,"));
        let whole = Event::Metric {
            name: "m".to_owned(),
            value: 2.0,
            thread: "t".to_owned(),
        };
        assert!(whole.to_json_line().contains("\"value\":2,"));
    }
}
