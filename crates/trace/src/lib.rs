//! `maestro-trace` — stage-level observability for the estimator stack.
//!
//! The paper's pitch is *speed*: an analytical estimator fast enough to
//! sit inside a floorplanner's inner loop. Keeping it fast requires seeing
//! where time and work go inside a run. This crate is the workspace's
//! lightweight, zero-dependency instrumentation layer:
//!
//! - **Spans** ([`span`], [`span_with`]): nestable stages with wall-clock
//!   timings, parent links and per-thread attribution, emitted on drop.
//! - **Counters** ([`counter`]) and **metrics** ([`metric`]): monotonic
//!   work tallies (nets processed, annealing moves accepted/rejected,
//!   ProbTable hits/misses, routing tracks charged, floorplan iterations)
//!   and point-in-time gauges (temperature schedules).
//! - **Sinks** ([`Sink`]): pluggable event consumers — disabled by
//!   default, a [`JsonLines`] writer for `--trace file.jsonl`, and an
//!   in-memory [`Collector`] for tests.
//! - **Reports** ([`report`]): fold a JSON-lines trace into a
//!   machine-readable per-stage timing summary (`BENCH_<label>.json`).
//!
//! # Cost model
//!
//! Tracing is off until a sink is [`install`]ed. Every instrumentation
//! point first checks one relaxed atomic load; the disabled path performs
//! no clock reads, no allocation and no locking, so instrumented hot
//! paths stay within measurement noise of uninstrumented ones. Span
//! details are built lazily (closures) for the same reason.
//!
//! # Example
//!
//! ```
//! use maestro_trace as trace;
//! use std::sync::Arc;
//!
//! let collector = Arc::new(trace::Collector::new());
//! trace::with_sink(collector.clone(), || {
//!     let _outer = trace::span("outer");
//!     {
//!         let _inner = trace::span("inner");
//!         trace::counter("work.items", 3);
//!     }
//! });
//! // Children end (and are recorded) before their parents.
//! let spans = collector.span_names();
//! assert_eq!(spans, vec!["inner", "outer"]);
//! assert_eq!(collector.counter_total("work.items"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod report;
mod sink;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

pub use event::Event;
pub use sink::{Collector, JsonLines, Sink};

/// Fast "is anybody listening" flag; the only cost on the disabled path.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink. Read under an `RwLock` only on the enabled path —
/// event rates are per-stage, not per-inner-loop-iteration, so a shared
/// read lock is plenty.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Trace epoch: all span start offsets are microseconds since this
/// instant. Set on first install and kept for the process lifetime so
/// offsets from successive scoped sinks stay monotonic.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Span id allocator; 0 is reserved for "no parent".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Worker attribution label; falls back to the std thread name.
    static LABEL: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Is a sink installed? One relaxed atomic load — instrumentation points
/// branch on this before doing any real work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-wide event consumer and enables
/// tracing. Replaces any previously installed sink.
pub fn install(sink: Arc<dyn Sink>) {
    EPOCH.get_or_init(Instant::now);
    *SINK.write().expect("trace sink lock poisoned") = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables tracing and drops the installed sink (flushing it first).
/// Spans still open keep their timing state and emit nothing if tracing
/// is still disabled when they drop.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
    let sink = SINK.write().expect("trace sink lock poisoned").take();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Runs `f` with `sink` installed, then uninstalls it. Scoped sinks are
/// process-global state, so concurrent `with_sink` calls (parallel tests)
/// are serialized behind an internal lock.
pub fn with_sink<T>(sink: Arc<dyn Sink>, f: impl FnOnce() -> T) -> T {
    static SCOPE: Mutex<()> = Mutex::new(());
    let _guard = SCOPE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    install(sink);
    let result = f();
    uninstall();
    result
}

/// Sets this thread's attribution label, shown as the `thread` field of
/// every event the thread emits (worker attribution in parallel runs).
pub fn set_thread_label(label: impl Into<String>) {
    let label: Arc<str> = Arc::from(label.into());
    LABEL.with(|cell| *cell.borrow_mut() = Some(label));
}

fn thread_label() -> Arc<str> {
    LABEL.with(|cell| {
        if let Some(label) = cell.borrow().as_ref() {
            return Arc::clone(label);
        }
        let derived: Arc<str> = match std::thread::current().name() {
            Some(name) => Arc::from(name),
            // ThreadId has no stable numeric accessor; its Debug form
            // ("ThreadId(7)") is distinct per thread, which is all
            // attribution needs.
            None => Arc::from(format!("{:?}", std::thread::current().id()).as_str()),
        };
        *cell.borrow_mut() = Some(Arc::clone(&derived));
        derived
    })
}

fn emit(event: Event) {
    if let Some(sink) = SINK.read().expect("trace sink lock poisoned").as_ref() {
        sink.record(&event);
    }
}

fn epoch_us() -> u64 {
    EPOCH
        .get()
        .map(|epoch| epoch.elapsed().as_micros() as u64)
        .unwrap_or(0)
}

/// An open stage span. Created by [`span`]/[`span_with`]; records a
/// [`Event::Span`] with its wall-clock duration when dropped. Cheap to
/// construct and inert when tracing is disabled.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
#[derive(Debug)]
pub struct Span {
    data: Option<SpanData>,
}

#[derive(Debug)]
struct SpanData {
    id: u64,
    parent: u64,
    name: &'static str,
    detail: String,
    start: Instant,
    start_us: u64,
}

impl Span {
    /// This span's id, or 0 when tracing is disabled. Pass to
    /// [`span_under`] to parent work running on *other* threads (worker
    /// spans in a parallel fan-out).
    pub fn id(&self) -> u64 {
        self.data.as_ref().map(|d| d.id).unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else { return };
        CURRENT.with(|current| current.set(data.parent));
        if !enabled() {
            return;
        }
        emit(Event::Span {
            id: data.id,
            parent: data.parent,
            name: data.name.to_owned(),
            detail: data.detail,
            thread: thread_label().as_ref().to_owned(),
            start_us: data.start_us,
            dur_us: data.start.elapsed().as_micros() as u64,
        });
    }
}

fn open_span(name: &'static str, detail: String, parent: u64) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    CURRENT.with(|current| current.set(id));
    Span {
        data: Some(SpanData {
            id,
            parent,
            name,
            detail,
            start: Instant::now(),
            start_us: epoch_us(),
        }),
    }
}

/// Opens a stage span nested under the innermost open span on this
/// thread. No-op (and allocation-free) when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    let parent = CURRENT.with(|current| current.get());
    open_span(name, String::new(), parent)
}

/// [`span`] with a lazily built detail string (a module name, a worker
/// label); `detail` is only invoked when tracing is enabled.
#[inline]
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    let parent = CURRENT.with(|current| current.get());
    open_span(name, detail(), parent)
}

/// [`span_with`] under an explicit parent id instead of the thread's
/// innermost span — the cross-thread variant for worker spans whose
/// logical parent (the batch span) lives on the spawning thread.
#[inline]
pub fn span_under(name: &'static str, parent: u64, detail: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    open_span(name, detail(), parent)
}

/// Emits a monotonic counter increment (`value` is a delta, not a level);
/// report folding sums all increments per counter name. No-op when
/// tracing is disabled.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    emit(Event::Counter {
        name: name.to_owned(),
        value,
        thread: thread_label().as_ref().to_owned(),
    });
}

/// Emits a point-in-time gauge (a temperature, a utilization). Report
/// folding keeps the last value per metric name. No-op when tracing is
/// disabled. Non-finite values are recorded as 0 to keep the JSON valid.
#[inline]
pub fn metric(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    emit(Event::Metric {
        name: name.to_owned(),
        value: if value.is_finite() { value } else { 0.0 },
        thread: thread_label().as_ref().to_owned(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_costs_nothing_and_emits_nothing() {
        let collector = Arc::new(Collector::new());
        // Not installed: spans are inert and carry id 0.
        let s = span("dead");
        assert_eq!(s.id(), 0);
        drop(s);
        counter("dead.counter", 7);
        assert!(collector.events().is_empty());
    }

    #[test]
    fn spans_nest_and_record_parent_links() {
        let collector = Arc::new(Collector::new());
        with_sink(collector.clone(), || {
            let outer = span("outer");
            let outer_id = outer.id();
            assert!(outer_id != 0);
            {
                let inner = span_with("inner", || "detail".to_owned());
                assert!(inner.id() > outer_id);
            }
            drop(outer);
        });
        let events = collector.events();
        assert_eq!(events.len(), 2);
        let (
            Event::Span {
                id: inner_id,
                parent: inner_parent,
                name: inner_name,
                detail,
                ..
            },
            Event::Span {
                id: outer_id,
                parent: outer_parent,
                ..
            },
        ) = (&events[0], &events[1])
        else {
            panic!("expected two span events: {events:?}");
        };
        assert_eq!(inner_name, "inner");
        assert_eq!(detail, "detail");
        assert_eq!(inner_parent, outer_id, "inner nests under outer");
        assert_eq!(*outer_parent, 0, "outer is a root");
        assert!(inner_id > outer_id);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let collector = Arc::new(Collector::new());
        with_sink(collector.clone(), || {
            let root = span("root");
            let _ = root.id();
            {
                let _a = span("a");
            }
            {
                let _b = span("b");
            }
        });
        let spans = collector.spans();
        let root = spans.iter().find(|s| s.name == "root").expect("root");
        for child in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == child).expect("child");
            assert_eq!(s.parent, root.id, "{child} parents to root");
        }
    }

    #[test]
    fn span_under_overrides_thread_nesting() {
        let collector = Arc::new(Collector::new());
        with_sink(collector.clone(), || {
            let root = span("root");
            let root_id = root.id();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    set_thread_label("worker-0");
                    let _w = span_under("worker", root_id, || "worker-0".to_owned());
                    let _inner = span("inner");
                });
            });
        });
        let spans = collector.spans();
        let root = spans.iter().find(|s| s.name == "root").expect("root");
        let worker = spans.iter().find(|s| s.name == "worker").expect("worker");
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(worker.parent, root.id);
        assert_eq!(
            inner.parent, worker.id,
            "nesting continues under the worker span"
        );
        assert_eq!(worker.thread, "worker-0");
        assert_eq!(inner.thread, "worker-0");
    }

    #[test]
    fn counters_and_metrics_attribute_to_the_thread() {
        let collector = Arc::new(Collector::new());
        with_sink(collector.clone(), || {
            set_thread_label("attributed");
            counter("c", 2);
            counter("c", 3);
            metric("m", 0.5);
            metric("m", f64::NAN);
        });
        assert_eq!(collector.counter_total("c"), 5);
        let events = collector.events();
        for e in &events {
            match e {
                Event::Counter { thread, .. } | Event::Metric { thread, .. } => {
                    assert_eq!(thread, "attributed")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let Event::Metric { value, .. } = &events[3] else {
            panic!("expected metric");
        };
        assert_eq!(*value, 0.0, "non-finite metrics are clamped");
    }

    #[test]
    fn uninstall_flushes_and_disables() {
        let collector = Arc::new(Collector::new());
        with_sink(collector.clone(), || {
            counter("c", 1);
        });
        assert!(!enabled());
        counter("c", 1);
        assert_eq!(
            collector.counter_total("c"),
            1,
            "post-uninstall events dropped"
        );
        assert_eq!(collector.flushes(), 1);
    }
}
