//! The `maestro` experiment harness: functions that regenerate every table
//! and figure of Chen & Bushnell, DAC 1988, against this workspace's
//! substrates. Used by the `repro-*` binaries and the Criterion benches.
//!
//! Experiment index (DESIGN.md §4):
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | E1 | Table 1        | [`table1::rows`] / [`table1::render`] |
//! | E2 | Table 2        | [`table2::rows`] / [`table2::render`] |
//! | E3 | Figure 1       | [`figure1::run`] |
//! | E4 | runtime claims | Criterion benches `table1`, `table2`, `estimator_scaling` |
//! | E5 | §7 iterations  | [`extensions::iteration_experiment`] |
//! | E6 | §7 track sharing | [`extensions::track_sharing_table`] |
//! | E7 | §7 multi-aspect | [`extensions::multi_aspect_table`] |
//! | E8 | §4.1 central row | [`extensions::central_row_experiment`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Experiment E1: Table 1 — full-custom estimates vs synthesized layouts.
pub mod table1 {
    use maestro::netlist::library_circuits;
    use maestro::prelude::*;

    /// One row of Table 1.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Experiment number (1-based).
        pub experiment: usize,
        /// Module name.
        pub name: String,
        /// `# Devices`.
        pub devices: usize,
        /// `# Nets`.
        pub nets: usize,
        /// `# Ports`.
        pub ports: usize,
        /// `Device Area (λ²)`.
        pub device_area: LambdaArea,
        /// `Estimated Wire Area`, exact device areas.
        pub wire_exact: LambdaArea,
        /// `Estimated Wire Area`, average device areas.
        pub wire_average: LambdaArea,
        /// `Total Estimated Area`, exact.
        pub total_exact: LambdaArea,
        /// `Total Estimated Area`, average.
        pub total_average: LambdaArea,
        /// `Real Area` from the layout synthesizer.
        pub real_area: LambdaArea,
        /// `Estimated Aspect Ratio`, exact.
        pub aspect_exact: AspectRatio,
        /// `Estimated Aspect Ratio`, average.
        pub aspect_average: AspectRatio,
        /// `Real Aspect Ratio`.
        pub real_aspect: AspectRatio,
    }

    impl Row {
        /// Signed relative error of the exact estimate vs reality.
        pub fn error_exact(&self) -> f64 {
            self.total_exact.relative_error(self.real_area)
        }

        /// Signed relative error of the average estimate vs reality.
        pub fn error_average(&self) -> f64 {
            self.total_average.relative_error(self.real_area)
        }
    }

    /// Runs the five Table 1 experiments.
    pub fn rows() -> Vec<Row> {
        let tech = builtin::nmos25();
        library_circuits::table1_suite()
            .into_iter()
            .enumerate()
            .map(|(i, module)| {
                let stats = NetlistStats::resolve(&module, &tech, LayoutStyle::FullCustom)
                    .expect("suite resolves");
                let est = full_custom::estimate(&stats, &tech);
                let layout = synthesize(&module, &tech, &SynthesisParams::default())
                    .expect("suite synthesizes");
                Row {
                    experiment: i + 1,
                    name: module.name().to_owned(),
                    devices: stats.device_count(),
                    nets: stats.net_count(),
                    ports: stats.port_count(),
                    device_area: est.device_area,
                    wire_exact: est.wire_area_exact,
                    wire_average: est.wire_area_average,
                    total_exact: est.total_exact,
                    total_average: est.total_average,
                    real_area: layout.area(),
                    aspect_exact: est.aspect_exact,
                    aspect_average: est.aspect_average,
                    real_aspect: layout.aspect_ratio(),
                }
            })
            .collect()
    }

    /// Formats the rows in the paper's layout.
    pub fn render(rows: &[Row]) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("Table 1: Full-Custom Module Layout Area Estimates\n");
        s.push_str(
            "exp | module                      | dev | nets | ports | dev area | wire(ex) | wire(av) | total(ex) | total(av) | real area | err(ex) | err(av) | AR(ex) | AR(av) | AR real\n",
        );
        for r in rows {
            let _ = writeln!(
                s,
                "{:>3} | {:<27} | {:>3} | {:>4} | {:>5} | {:>8} | {:>8} | {:>8} | {:>9} | {:>9} | {:>9} | {:>+6.1}% | {:>+6.1}% | {:>6} | {:>6} | {:>7}",
                r.experiment,
                r.name,
                r.devices,
                r.nets,
                r.ports,
                r.device_area.get(),
                r.wire_exact.get(),
                r.wire_average.get(),
                r.total_exact.get(),
                r.total_average.get(),
                r.real_area.get(),
                r.error_exact() * 100.0,
                r.error_average() * 100.0,
                r.aspect_exact.to_string(),
                r.aspect_average.to_string(),
                r.real_aspect.to_string(),
            );
        }
        let avg = rows.iter().map(|r| r.error_exact().abs()).sum::<f64>() / rows.len() as f64;
        let _ = writeln!(
            s,
            "average |error| (exact variant): {:.1}%  (paper: 12%, range −17%..+26%)",
            avg * 100.0
        );
        s
    }
}

/// Experiment E2: Table 2 — standard-cell estimates vs place & route.
pub mod table2 {
    use maestro::estimator::standard_cell;
    use maestro::netlist::library_circuits;
    use maestro::prelude::*;

    /// One row of Table 2 (one module at one row count).
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Experiment number (1-based).
        pub experiment: usize,
        /// Module name.
        pub name: String,
        /// Row count.
        pub rows: u32,
        /// `# Devices`.
        pub devices: usize,
        /// `# External Ports`.
        pub ports: usize,
        /// Estimated module height.
        pub est_height: Lambda,
        /// Estimated module width.
        pub est_width: Lambda,
        /// `# Tracks Estimated`.
        pub tracks_estimated: u32,
        /// `# Tracks Real` from the channel router.
        pub tracks_real: u32,
        /// `Total Est. Area`.
        pub est_area: LambdaArea,
        /// `Real Area` from place & route.
        pub real_area: LambdaArea,
        /// `Est. Aspect Ratio`.
        pub est_aspect: AspectRatio,
        /// `Real Aspect Ratio`.
        pub real_aspect: AspectRatio,
    }

    impl Row {
        /// Signed overestimate fraction (positive = upper bound held).
        pub fn overestimate(&self) -> f64 {
            self.est_area.relative_error(self.real_area)
        }
    }

    /// The row counts swept per experiment: three for experiment 1, two
    /// for experiment 2, like the paper.
    pub const ROW_SWEEPS: [&[u32]; 2] = [&[2, 3, 4], &[4, 6]];

    /// Runs the Table 2 experiments.
    pub fn rows() -> Vec<Row> {
        let tech = builtin::nmos25();
        let mut out = Vec::new();
        for (i, (module, sweep)) in library_circuits::table2_suite()
            .into_iter()
            .zip(ROW_SWEEPS)
            .enumerate()
        {
            let stats = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell)
                .expect("suite resolves");
            for &rows in sweep {
                let est = standard_cell::estimate_with_rows(&stats, &tech, rows);
                let placed = place(
                    &module,
                    &tech,
                    &PlaceParams {
                        rows,
                        ..Default::default()
                    },
                )
                .expect("suite places");
                let routed = route(&placed);
                out.push(Row {
                    experiment: i + 1,
                    name: module.name().to_owned(),
                    rows,
                    devices: stats.device_count(),
                    ports: stats.port_count(),
                    est_height: est.height,
                    est_width: est.width,
                    tracks_estimated: est.tracks,
                    tracks_real: routed.total_tracks(),
                    est_area: est.area,
                    real_area: routed.area(),
                    est_aspect: est.aspect_ratio,
                    real_aspect: routed.aspect_ratio(),
                });
            }
        }
        out
    }

    /// Formats the rows in the paper's layout.
    pub fn render(rows: &[Row]) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("Table 2: Standard-Cell Module Layout Area Estimates\n");
        s.push_str(
            "exp | module               | rows | dev | ports | est H | est W | trk(est) | trk(real) | est area | real area | over   | AR est | AR real\n",
        );
        for r in rows {
            let _ = writeln!(
                s,
                "{:>3} | {:<20} | {:>4} | {:>3} | {:>5} | {:>5} | {:>5} | {:>8} | {:>9} | {:>8} | {:>9} | {:>+5.0}% | {:>6} | {:>7}",
                r.experiment,
                r.name,
                r.rows,
                r.devices,
                r.ports,
                r.est_height.get(),
                r.est_width.get(),
                r.tracks_estimated,
                r.tracks_real,
                r.est_area.get(),
                r.real_area.get(),
                r.overestimate() * 100.0,
                r.est_aspect.to_string(),
                r.real_aspect.to_string(),
            );
        }
        s.push_str("(paper: overestimates of +42%..+70%, decreasing with more rows; upper bound from one-net-per-track)\n");
        s
    }
}

/// Experiment E3: Figure 1 — the end-to-end pipeline dataflow.
pub mod figure1 {
    use maestro::estimator::pipeline::Pipeline;
    use maestro::netlist::{generate, library_circuits};
    use maestro::prelude::*;

    /// Runs the Figure 1 dataflow and returns a textual trace plus the
    /// resulting floorplan.
    pub fn run() -> (String, maestro::floorplan::Floorplan) {
        let mut out = String::new();
        out.push_str("Figure 1: Structure of the Module Area Estimator\n");
        out.push_str("  [process DB] + [circuit schematics] -> estimators -> [results DB] -> floorplanner\n\n");

        let tech = builtin::nmos25();
        out.push_str(&format!("process database : {tech}\n"));

        let modules = [
            generate::ripple_adder(4),
            generate::counter(6),
            library_circuits::nmos_full_adder(),
            library_circuits::pass_chain(6),
            generate::mux_tree(3),
        ];
        let pipeline = Pipeline::new(tech);
        let db = pipeline.run_all(modules.iter()).expect("suite estimates");
        out.push_str(&format!("results database : {} module records\n", db.len()));
        for rec in db.records() {
            let style = match (&rec.standard_cell, &rec.full_custom) {
                (Some(_), None) => "standard-cell",
                (None, Some(_)) => "full-custom",
                _ => "both",
            };
            let area = rec.preferred_area().expect("estimated");
            out.push_str(&format!("  {:<24} [{style}] {area}\n", rec.module_name));
        }

        let blocks: Vec<Block> = db
            .records()
            .iter()
            .filter_map(|r| Block::from_record(r, 5))
            .collect();
        let plan = floorplan(&blocks, &PlanParams::default());
        out.push_str(&format!(
            "floorplanner     : chip {} × {} = {} (utilization {:.0}%)\n",
            plan.width(),
            plan.height(),
            plan.area(),
            plan.utilization() * 100.0
        ));
        (out, plan)
    }
}

/// Experiments E5–E8: the paper's future-work extensions and the
/// central-row verification.
pub mod extensions {
    use maestro::estimator::{feedthrough, multi_aspect, standard_cell, track_sharing};
    use maestro::floorplan::iterate::{converge, ModuleTruth};
    use maestro::netlist::{generate, library_circuits};
    use maestro::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// E8: Monte-Carlo vs analytic feed-through row profile. Returns a
    /// rendered table; every row reports the argmax of each method.
    pub fn central_row_experiment() -> String {
        let mut out = String::new();
        out.push_str("E8: central-row feed-through probability (paper §4.1 claim)\n");
        out.push_str("  n  |  D | analytic argmax | monte-carlo argmax | p(center)\n");
        let mut rng = StdRng::seed_from_u64(1988);
        for &(n, d) in &[(3u32, 2u32), (5, 2), (7, 3), (9, 5), (11, 8), (15, 12)] {
            let analytic = feedthrough::most_likely_row(n, d);
            let trials = 40_000;
            let mut counts = vec![0u32; n as usize];
            for _ in 0..trials {
                let rows: Vec<u32> = (0..d).map(|_| rng.gen_range(0..n)).collect();
                for i in 0..n {
                    if rows.iter().any(|&r| r < i) && rows.iter().any(|&r| r > i) {
                        counts[i as usize] += 1;
                    }
                }
            }
            let mc = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(i, _)| i as u32 + 1)
                .expect("non-empty");
            let p_center = feedthrough::feedthrough_probability(n, d, n.div_ceil(2));
            out.push_str(&format!(
                "  {n:>2} | {d:>2} | {analytic:>15} | {mc:>18} | {p_center:.3}\n"
            ));
        }
        out.push_str(
            "  (both argmaxes sit at the central row for every n, D — the paper's claim)\n",
        );
        out
    }

    /// E6: the track-sharing correction against the routed truth.
    pub fn track_sharing_table() -> String {
        let tech = builtin::nmos25();
        let mut out = String::new();
        out.push_str("E6: track-sharing correction (paper §7 future work)\n");
        out.push_str(
            "  module               | rows | bound | shared | real | bound err | shared err\n",
        );
        for (module, sweep) in library_circuits::table2_suite()
            .into_iter()
            .zip(super::table2::ROW_SWEEPS)
        {
            let stats =
                NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).expect("resolves");
            for &rows in sweep {
                let sh = track_sharing::estimate_with_sharing(&stats, &tech, rows);
                let placed = place(
                    &module,
                    &tech,
                    &PlaceParams {
                        rows,
                        ..Default::default()
                    },
                )
                .expect("places");
                let routed = route(&placed);
                let be = sh.upper_bound.area.relative_error(routed.area()) * 100.0;
                let se = sh.corrected.area.relative_error(routed.area()) * 100.0;
                out.push_str(&format!(
                    "  {:<20} | {rows:>4} | {:>5} | {:>6} | {:>4} | {be:>+8.0}% | {se:>+9.0}%\n",
                    module.name(),
                    sh.upper_bound.tracks,
                    sh.shared_tracks,
                    routed.total_tracks(),
                ));
            }
        }
        out
    }

    /// E7: multi-aspect candidates for the Table 2 modules.
    pub fn multi_aspect_table() -> String {
        let tech = builtin::nmos25();
        let mut out = String::new();
        out.push_str("E7: multiple aspect-ratio candidates (paper §7 future work)\n");
        for module in library_circuits::table2_suite() {
            let stats =
                NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).expect("resolves");
            let cands = multi_aspect::sc_candidates(&stats, &tech, 5);
            out.push_str(&format!("  {}:\n", module.name()));
            for c in cands {
                out.push_str(&format!(
                    "    rows {:>2}: {:>5} × {:<5} area {:>9} aspect {}\n",
                    c.rows, c.width, c.height, c.area, c.aspect_ratio
                ));
            }
        }
        out
    }

    /// E11: wire-aware floorplanning with the results database's "global
    /// interconnections" (Figure 1): the connectivity-aware planner must
    /// shorten global wiring relative to area-only planning.
    pub fn wire_aware_floorplan() -> String {
        use maestro::estimator::pipeline::Pipeline;
        use maestro::floorplan::{floorplan_connected, ChipNetlist, ConnectedPlanParams};

        let tech = builtin::nmos25();
        let modules = [
            generate::ripple_adder(4),
            generate::counter(6),
            generate::shift_register(8),
            generate::decoder(3),
            generate::mux_tree(3),
            generate::counter(3),
        ];
        let pipeline = Pipeline::new(tech);
        let db = pipeline.run_all(modules.iter()).expect("estimates");
        let blocks: Vec<Block> = db
            .records()
            .iter()
            .filter_map(|r| Block::from_record(r, 5))
            .collect();
        // A datapath-style chain plus a control net fanning out.
        let mut netlist = ChipNetlist::new();
        for i in 0..blocks.len() as u32 - 1 {
            netlist.add_net([i, i + 1]);
        }
        netlist.add_net(0..blocks.len() as u32);

        let area_only = floorplan(&blocks, &PlanParams::default());
        let base_wl = netlist.wirelength(&area_only);
        let (plan, wl) = floorplan_connected(&blocks, &netlist, &ConnectedPlanParams::default());
        let mut out = String::new();
        out.push_str("E11: connectivity-aware floorplanning (Figure 1 global interconnections)\n");
        out.push_str(&format!(
            "  area-only plan : {} chip, global wirelength {}\n",
            area_only.area(),
            base_wl
        ));
        out.push_str(&format!(
            "  wire-aware plan: {} chip, global wirelength {}\n",
            plan.area(),
            wl
        ));
        out.push_str(&format!(
            "  wirelength change: {:+.0}%\n",
            (wl.as_f64() / base_wl.as_f64() - 1.0) * 100.0
        ));
        out
    }

    /// E10: estimator accuracy statistics over a population of seeded
    /// random modules — beyond the paper's five/two hand-picked
    /// circuits. Reports mean/min/max signed error for the full-custom
    /// estimator (vs synthesis), the sharing-corrected standard-cell
    /// estimator (vs place & route), and the wirelength predictor
    /// (vs placed HPWL).
    pub fn accuracy_sweep() -> String {
        use maestro::estimator::wirelength;
        use maestro::fullcustom::SynthesisParams;
        use maestro::netlist::generate::RandomLogicConfig;

        let tech = builtin::nmos25();
        let mut out = String::new();
        out.push_str("E10: accuracy statistics over random module populations\n");

        // Full-custom: 10 random transistor modules.
        let mut fc_errors = Vec::new();
        let mut fc_observations = Vec::new();
        for seed in 0..10u64 {
            let module = generate::random_nmos_logic(seed, 12 + (seed as usize % 5) * 4);
            let stats =
                NetlistStats::resolve(&module, &tech, LayoutStyle::FullCustom).expect("resolves");
            let est = full_custom::estimate(&stats, &tech);
            let real = synthesize(&module, &tech, &SynthesisParams::quick()).expect("synthesizes");
            fc_errors.push(est.total_exact.relative_error(real.area()));
            fc_observations.push((est.total_exact, real.area()));
        }
        let (mean, lo, hi) = summarize(&fc_errors);
        out.push_str(&format!(
            "  full-custom estimate vs synthesis    (10 modules): mean {mean:+.1}%, range {lo:+.1}%..{hi:+.1}%\n"
        ));
        // CHAMP-style empirical calibration (estimator::calibrate):
        // leave-one-out over the same population.
        {
            use maestro::estimator::calibrate::{Calibration, Observation};
            let obs: Vec<Observation> = fc_observations
                .iter()
                .map(|&(e, r)| Observation {
                    estimated: e,
                    real: r,
                })
                .collect();
            let mut raw_sum = 0.0;
            let mut cal_sum = 0.0;
            for i in 0..obs.len() {
                let train: Vec<Observation> = obs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, o)| *o)
                    .collect();
                let held_out = [obs[i]];
                raw_sum += Calibration::identity().mean_abs_error(&held_out);
                cal_sum += Calibration::fit(&train).mean_abs_error(&held_out);
            }
            let n = obs.len() as f64;
            out.push_str(&format!(
                "  with leave-one-out calibration       (10 modules): mean |err| {:.1}% -> {:.1}%\n",
                raw_sum / n * 100.0,
                cal_sum / n * 100.0
            ));
        }

        // Standard-cell (sharing-corrected): 10 random gate modules.
        let mut sc_errors = Vec::new();
        let mut wl_ratios = Vec::new();
        for seed in 0..10u64 {
            let cfg = RandomLogicConfig {
                device_count: 24 + (seed as usize % 4) * 12,
                ..RandomLogicConfig::default()
            };
            let module = generate::random_logic(seed, &cfg);
            let stats =
                NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).expect("resolves");
            let rows = 3u32;
            let corrected = track_sharing::estimate_with_sharing(&stats, &tech, rows).corrected;
            let placed = place(
                &module,
                &tech,
                &PlaceParams {
                    rows,
                    ..Default::default()
                },
            )
            .expect("places");
            let routed = route(&placed);
            sc_errors.push(corrected.area.relative_error(routed.area()));
            let wl = wirelength::estimate(&stats, &tech, rows);
            wl_ratios.push(wl.total().as_f64() / placed.hpwl().as_f64().max(1.0));
        }
        let (mean, lo, hi) = summarize(&sc_errors);
        out.push_str(&format!(
            "  corrected SC estimate vs place&route (10 modules): mean {mean:+.1}%, range {lo:+.1}%..{hi:+.1}%\n"
        ));
        let mean_r = wl_ratios.iter().sum::<f64>() / wl_ratios.len() as f64;
        let lo_r = wl_ratios.iter().cloned().fold(f64::MAX, f64::min);
        let hi_r = wl_ratios.iter().cloned().fold(f64::MIN, f64::max);
        out.push_str(&format!(
            "  predicted wirelength / placed HPWL   (10 modules): mean {mean_r:.2}x, range {lo_r:.2}x..{hi_r:.2}x\n"
        ));
        out
    }

    fn summarize(errors: &[f64]) -> (f64, f64, f64) {
        let mean = errors.iter().sum::<f64>() / errors.len() as f64 * 100.0;
        let lo = errors.iter().cloned().fold(f64::MAX, f64::min) * 100.0;
        let hi = errors.iter().cloned().fold(f64::MIN, f64::max) * 100.0;
        (mean, lo, hi)
    }

    /// E9: the multi-process claim (§3: "deals with different chip
    /// fabrication technologies … can easily be adjusted to cope with new
    /// chip fabrication processes"): the same netlists estimated and laid
    /// out under nMOS and CMOS, upper bound checked in both.
    pub fn cross_process_table() -> String {
        let mut out = String::new();
        out.push_str("E9: multi-process estimation (paper §3 requirement)\n");
        out.push_str("  module               | process | rows | est area | real area | over\n");
        for tech in [builtin::nmos25(), builtin::cmos_generic()] {
            for module in library_circuits::table2_suite() {
                let stats = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell)
                    .expect("both libraries carry the cell set");
                let rows = 3u32;
                let est = standard_cell::estimate_with_rows(&stats, &tech, rows);
                let placed = place(
                    &module,
                    &tech,
                    &PlaceParams {
                        rows,
                        ..Default::default()
                    },
                )
                .expect("places");
                let routed = route(&placed);
                let over = est.area.relative_error(routed.area()) * 100.0;
                out.push_str(&format!(
                    "  {:<20} | {:<7} | {rows:>4} | {:>8} | {:>9} | {over:>+5.0}%\n",
                    module.name(),
                    if tech.name().contains("nmos") {
                        "nmos"
                    } else {
                        "cmos"
                    },
                    est.area.get(),
                    routed.area().get(),
                ));
            }
        }
        out.push_str("  (the upper-bound property holds under both processes)\n");
        out
    }

    /// E5: the floorplanning-iteration experiment; returns the rendered
    /// table plus (estimator iterations, naive iterations).
    pub fn iteration_experiment() -> (String, u32, u32) {
        let tech = builtin::nmos25();
        let modules = [
            generate::ripple_adder(4),
            generate::counter(6),
            generate::shift_register(8),
            generate::decoder(3),
            generate::mux_tree(3),
            generate::ripple_adder(2),
            generate::counter(3),
            generate::shift_register(4),
        ];
        let mut est_beliefs = Vec::new();
        let mut naive_beliefs = Vec::new();
        for module in &modules {
            let stats =
                NetlistStats::resolve(module, &tech, LayoutStyle::StandardCell).expect("resolves");
            let seed = standard_cell::estimate(&stats, &tech, &ScParams::default());
            let corrected =
                track_sharing::estimate_with_sharing(&stats, &tech, seed.rows).corrected;
            let placed = place(
                module,
                &tech,
                &PlaceParams {
                    rows: seed.rows,
                    ..Default::default()
                },
            )
            .expect("places");
            let routed = route(&placed);
            est_beliefs.push(ModuleTruth {
                name: module.name().to_owned(),
                estimated: corrected.area,
                true_width: routed.width(),
                true_height: routed.height(),
            });
            naive_beliefs.push(ModuleTruth {
                name: module.name().to_owned(),
                estimated: stats.total_device_area(),
                true_width: routed.width(),
                true_height: routed.height(),
            });
        }
        let est = converge(&est_beliefs, 0.40, &PlanParams::quick());
        let naive = converge(&naive_beliefs, 0.40, &PlanParams::quick());
        let mut out = String::new();
        out.push_str("E5: floorplanning-iteration reduction (paper §1/§7 claim)\n");
        out.push_str(&format!(
            "  estimator-seeded beliefs : {} floorplanning iterations\n",
            est.iterations
        ));
        out.push_str(&format!(
            "  naive (device-area-only) : {} floorplanning iterations\n",
            naive.iterations
        ));
        (out, est.iterations, naive.iterations)
    }
}

/// Renders the full experiment report (all tables).
pub fn full_report() -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let t1 = table1::rows();
    let _ = write!(s, "{}\n\n", table1::render(&t1));
    let t2 = table2::rows();
    let _ = write!(s, "{}\n\n", table2::render(&t2));
    let (fig, _) = figure1::run();
    let _ = writeln!(s, "{fig}");
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_has_five_experiments() {
        let rows = super::table1::rows();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.real_area.get() > 0);
            assert!(r.total_exact.get() > 0);
        }
        let rendered = super::table1::render(&rows);
        assert!(rendered.contains("Table 1"));
    }

    #[test]
    fn table2_has_five_rows_over_two_experiments() {
        let rows = super::table2::rows();
        assert_eq!(rows.len(), 5); // 3 + 2 row counts
        for r in &rows {
            assert!(r.overestimate() > 0.0, "{} rows={}", r.name, r.rows);
        }
        let rendered = super::table2::render(&rows);
        assert!(rendered.contains("Table 2"));
    }

    #[test]
    fn table1_average_error_stays_in_band() {
        // The headline reproduction number: paper 12 %, ours ~11 %.
        let rows = super::table1::rows();
        let avg = rows.iter().map(|r| r.error_exact().abs()).sum::<f64>() / rows.len() as f64;
        assert!(avg < 0.25, "average |error| {:.1}% drifted", avg * 100.0);
        // The footnote module contributes zero wire area.
        let chain = rows.iter().find(|r| r.name.contains("pass_chain")).unwrap();
        assert_eq!(chain.wire_exact.get(), 0);
        assert_eq!(chain.total_exact, chain.device_area);
    }

    #[test]
    fn table2_estimates_decrease_with_rows_within_experiments() {
        let rows = super::table2::rows();
        for exp in [1usize, 2] {
            let areas: Vec<i64> = rows
                .iter()
                .filter(|r| r.experiment == exp)
                .map(|r| r.est_area.get())
                .collect();
            for w in areas.windows(2) {
                assert!(w[1] < w[0], "exp {exp}: {areas:?} not decreasing");
            }
        }
    }

    #[test]
    fn figure1_produces_a_floorplan() {
        let (trace, plan) = super::figure1::run();
        assert!(trace.contains("results database"));
        assert!(plan.utilization() > 0.4);
    }
}
