//! Regenerates the paper's Table 1: full-custom module layout area
//! estimates vs "real" (synthesized) layouts.
//!
//! ```text
//! cargo run -p maestro-bench --bin repro-table1
//! ```

fn main() {
    let rows = maestro_bench::table1::rows();
    print!("{}", maestro_bench::table1::render(&rows));
}
