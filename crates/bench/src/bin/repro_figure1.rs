//! Regenerates the paper's Figure 1: the estimator pipeline structure,
//! exercised end-to-end (process DB + schematics → estimates → results
//! DB → floorplanner).
//!
//! ```text
//! cargo run -p maestro-bench --bin repro-figure1
//! ```

fn main() {
    let (trace, _plan) = maestro_bench::figure1::run();
    print!("{trace}");
}
