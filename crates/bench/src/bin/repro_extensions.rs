//! Regenerates the extension experiments (paper §7 future work plus the
//! §4.1 central-row verification):
//!
//! ```text
//! cargo run -p maestro-bench --bin repro-extensions              # all
//! cargo run -p maestro-bench --bin repro-extensions -- central-row
//! cargo run -p maestro-bench --bin repro-extensions -- track-sharing
//! cargo run -p maestro-bench --bin repro-extensions -- multi-aspect
//! cargo run -p maestro-bench --bin repro-extensions -- iterations
//! ```

use maestro_bench::extensions;

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let wants = |name: &str| all || which.iter().any(|w| w == name);

    if wants("central-row") {
        print!("{}", extensions::central_row_experiment());
        println!();
    }
    if wants("track-sharing") {
        print!("{}", extensions::track_sharing_table());
        println!();
    }
    if wants("multi-aspect") {
        print!("{}", extensions::multi_aspect_table());
        println!();
    }
    if wants("wire-aware") {
        print!("{}", extensions::wire_aware_floorplan());
        println!();
    }
    if wants("accuracy") {
        print!("{}", extensions::accuracy_sweep());
        println!();
    }
    if wants("cross-process") {
        print!("{}", extensions::cross_process_table());
        println!();
    }
    if wants("iterations") {
        let (report, _, _) = extensions::iteration_experiment();
        print!("{report}");
    }
}
