//! Regenerates the paper's Table 2: standard-cell module layout area
//! estimates vs TimberWolf-style place & route.
//!
//! ```text
//! cargo run -p maestro-bench --bin repro-table2
//! ```

fn main() {
    let rows = maestro_bench::table2::rows();
    print!("{}", maestro_bench::table2::render(&rows));
}
