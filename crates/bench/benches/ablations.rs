//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * exact-rational vs f64 probability path (Eqs. 2–3);
//! * track-sharing correction cost on top of the plain estimate (E6);
//! * multi-aspect candidate generation cost vs a single estimate (E7);
//! * feed-through closed form vs a brute-force Eq. 5 double sum.

use criterion::{criterion_group, criterion_main, Criterion};
use maestro::estimator::standard_cell::{self};
use maestro::estimator::{feedthrough, multi_aspect, prob, track_sharing};
use maestro::netlist::library_circuits;
use maestro::prelude::*;

fn bench_ablations(c: &mut Criterion) {
    let tech = builtin::nmos25();
    let module = library_circuits::sc_adder4();
    let stats = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).expect("resolves");

    // Probability paths.
    c.bench_function("ablation/prob_f64_path", |b| {
        b.iter(|| (1..=8u32).map(|n| prob::expected_rows(n, 6)).sum::<f64>())
    });
    c.bench_function("ablation/prob_exact_rational_path", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 1..=8u32 {
                for i in 1..=n.min(6) {
                    acc += i as f64 * prob::exact::probability(n, 6, i).as_f64();
                }
            }
            acc
        })
    });

    // Feed-through formulations.
    c.bench_function("ablation/feedthrough_closed_form", |b| {
        b.iter(|| {
            (1..=9u32)
                .map(|i| feedthrough::feedthrough_probability(9, 6, i))
                .sum::<f64>()
        })
    });
    c.bench_function("ablation/feedthrough_eq5_double_sum", |b| {
        b.iter(|| {
            (1..=9u32)
                .map(|i| feedthrough::eq5_probability(9, 6, i))
                .sum::<f64>()
        })
    });

    // Estimate variants.
    c.bench_function("ablation/estimate_plain", |b| {
        b.iter(|| standard_cell::estimate_with_rows(&stats, &tech, 3))
    });
    c.bench_function("ablation/estimate_with_track_sharing", |b| {
        b.iter(|| track_sharing::estimate_with_sharing(&stats, &tech, 3))
    });
    c.bench_function("ablation/estimate_multi_aspect_5", |b| {
        b.iter(|| multi_aspect::sc_candidates(&stats, &tech, 5))
    });
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
