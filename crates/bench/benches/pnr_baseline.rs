//! E4 (contrast): the layout substrates the estimator replaces. One
//! place-and-route and one full-custom synthesis, timed against the
//! corresponding estimate — preserving the paper's "estimation is cheap,
//! layout is expensive" ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use maestro::estimator::standard_cell::{self};
use maestro::netlist::library_circuits;
use maestro::prelude::*;

fn bench_pnr(c: &mut Criterion) {
    let tech = builtin::nmos25();

    // Standard-cell: estimate vs place & route on the Table 2 adder.
    let module = library_circuits::sc_adder4();
    let stats = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).expect("resolves");
    c.bench_function("baseline/sc_estimate_rows3", |b| {
        b.iter(|| standard_cell::estimate_with_rows(&stats, &tech, 3))
    });
    c.bench_function("baseline/sc_place_and_route_rows3", |b| {
        b.iter(|| {
            let placed = place(
                &module,
                &tech,
                &PlaceParams {
                    rows: 3,
                    schedule: maestro::place::AnnealSchedule::quick(),
                    ..Default::default()
                },
            )
            .expect("places");
            route(&placed)
        })
    });

    // Full-custom: estimate vs synthesis on the Table 1 decoder.
    let module = library_circuits::nmos_decoder2to4();
    let fc_stats =
        NetlistStats::resolve(&module, &tech, LayoutStyle::FullCustom).expect("resolves");
    c.bench_function("baseline/fc_estimate", |b| {
        b.iter(|| full_custom::estimate(&fc_stats, &tech))
    });
    c.bench_function("baseline/fc_synthesize", |b| {
        b.iter(|| synthesize(&module, &tech, &SynthesisParams::quick()).expect("synthesizes"))
    });
}

criterion_group!(benches, bench_pnr);
criterion_main!(benches);
