//! E1/E4: benchmark the full-custom estimator on the Table 1 suite —
//! the paper's "< 1.5 CPU seconds on a Sun 3/50 for all examples".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use maestro::netlist::library_circuits;
use maestro::prelude::*;

fn bench_table1(c: &mut Criterion) {
    let tech = builtin::nmos25();
    let suite: Vec<(Module, NetlistStats)> = library_circuits::table1_suite()
        .into_iter()
        .map(|m| {
            let s = NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).expect("resolves");
            (m, s)
        })
        .collect();

    // The paper's headline: estimate the whole suite.
    c.bench_function("table1/estimate_all_five_modules", |b| {
        b.iter(|| {
            suite
                .iter()
                .map(|(_, s)| full_custom::estimate(s, &tech).total_exact)
                .collect::<Vec<_>>()
        })
    });

    // Per-module breakdown.
    let mut group = c.benchmark_group("table1/estimate");
    for (m, s) in &suite {
        group.bench_function(m.name(), |b| b.iter(|| full_custom::estimate(s, &tech)));
    }
    group.finish();

    // Statistics extraction (the §3 "translation" step).
    let mut group = c.benchmark_group("table1/resolve_stats");
    for (m, _) in &suite {
        group.bench_function(m.name(), |b| {
            b.iter_batched(
                || m.clone(),
                |m| NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
