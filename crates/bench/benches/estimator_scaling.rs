//! E4: estimator runtime scaling with module size — the "modest amount of
//! computer time" claim quantified. Sweeps synthetic modules from 25 to
//! 800 gates, then times a 96-module batch through the estimation engine:
//! the seed-style uncached serial loop vs the memoized kernel, serial and
//! fanned out over worker threads.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maestro::estimator::multi_aspect::{
    sc_candidates_uncached, sc_candidates_using, DEFAULT_CANDIDATES,
};
use maestro::estimator::pipeline::Pipeline;
use maestro::estimator::prob::{ProbTable, MAX_ROWS};
use maestro::estimator::standard_cell::{self, ScParams};
use maestro::netlist::chip::{ChipFamily, ChipSpec};
use maestro::netlist::generate::{self, RandomLogicConfig};
use maestro::prelude::*;

fn bench_scaling(c: &mut Criterion) {
    let tech = builtin::nmos25();
    let mut group = c.benchmark_group("scaling/standard_cell_estimate");
    for &n in &[25usize, 50, 100, 200, 400, 800] {
        let cfg = RandomLogicConfig {
            device_count: n,
            input_count: (n / 8).max(4),
            ..RandomLogicConfig::default()
        };
        let module = generate::random_logic(1988, &cfg);
        let stats =
            NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).expect("resolves");
        group.bench_with_input(BenchmarkId::from_parameter(n), &stats, |b, s| {
            b.iter(|| standard_cell::estimate(s, &tech, &ScParams::default()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/full_custom_estimate");
    for &gates in &[10usize, 25, 50, 100, 200] {
        let module = generate::random_nmos_logic(1988, gates);
        let stats =
            NetlistStats::resolve(&module, &tech, LayoutStyle::FullCustom).expect("resolves");
        group.bench_with_input(BenchmarkId::from_parameter(gates), &stats, |b, s| {
            b.iter(|| full_custom::estimate(s, &tech))
        });
    }
    group.finish();
}

/// A 96-module chip-scale batch: register-heavy modules (wide clock and
/// reset fan-outs, the expensive Eq. 2 inputs) mixed with random logic,
/// sizes spread so cheap and expensive modules interleave across workers.
fn batch_modules() -> Vec<Module> {
    (0..96u64)
        .map(|seed| {
            let step = (seed / 4) as usize;
            match seed % 4 {
                0 => generate::shift_register(256 * (1 + step % 4)),
                1 => generate::counter(16 + (step % 5) * 16),
                2 => generate::shift_register(64 + (step % 4) * 64),
                _ => {
                    let cfg = RandomLogicConfig {
                        device_count: 60 + (step % 7) * 40,
                        input_count: 8,
                        ..RandomLogicConfig::default()
                    };
                    generate::random_logic(seed, &cfg)
                }
            }
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let tech = builtin::nmos25();
    let modules = batch_modules();

    // The estimation stage in isolation (stats pre-resolved once): this is
    // the work the memoized kernel replaces — the seed path rebuilds every
    // Eq. 2 distribution per net class per row count, the table computes
    // each distinct (rows, k) pair once for the whole batch.
    let resolved: Vec<_> = modules
        .iter()
        .map(|m| {
            NetlistStats::resolve(m, &tech, LayoutStyle::StandardCell)
                .expect("batch modules are gate-level")
        })
        .collect();
    let mut group = c.benchmark_group("batch/96_modules_estimation_stage");
    group.bench_function("seed_uncached", |b| {
        b.iter(|| {
            resolved
                .iter()
                .map(|stats| {
                    let rows = standard_cell::initial_rows(stats, &tech, MAX_ROWS);
                    let primary = standard_cell::estimate_with_rows_uncached(stats, &tech, rows);
                    let sweep = sc_candidates_uncached(stats, &tech, DEFAULT_CANDIDATES);
                    (primary, sweep)
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("cached", |b| {
        b.iter(|| {
            // A fresh table per iteration: the measurement includes
            // populating the memo, not just serving warm hits.
            let table = ProbTable::new();
            resolved
                .iter()
                .map(|stats| {
                    let rows = standard_cell::initial_rows(stats, &tech, MAX_ROWS);
                    let primary =
                        standard_cell::estimate_with_rows_using(stats, &tech, rows, &table);
                    let sweep = sc_candidates_using(
                        stats,
                        &tech,
                        DEFAULT_CANDIDATES,
                        &ScParams::default(),
                        &table,
                    );
                    (primary, sweep)
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();

    // End to end through the pipeline (resolve + estimate + record),
    // serial vs worker threads. Thread scaling tracks the machine's core
    // count; on a single-core host the parallel rows measure pure
    // scheduling overhead.
    let mut group = c.benchmark_group("batch/96_modules_end_to_end");
    group.bench_function("seed_uncached_serial", |b| {
        b.iter(|| {
            // Mirrors Pipeline::run_module per module: resolve under both
            // styles, primary estimate, candidate sweep — with the seed's
            // uncached kernel.
            modules
                .iter()
                .map(|m| {
                    let stats = NetlistStats::resolve(m, &tech, LayoutStyle::StandardCell)
                        .expect("batch modules are gate-level");
                    let rows = standard_cell::initial_rows(&stats, &tech, MAX_ROWS);
                    let primary = standard_cell::estimate_with_rows_uncached(&stats, &tech, rows);
                    let sweep = sc_candidates_uncached(&stats, &tech, DEFAULT_CANDIDATES);
                    let fc = NetlistStats::resolve(m, &tech, LayoutStyle::FullCustom).ok();
                    (primary, sweep, fc)
                })
                .collect::<Vec<_>>()
        })
    });
    // Fresh prob table AND stats cache per iteration: each sample measures
    // a cold batch, not the process-wide memo warming across iterations.
    group.bench_function("cached_serial", |b| {
        b.iter(|| {
            let pipeline = Pipeline::new(tech.clone())
                .with_prob_table(Arc::new(ProbTable::new()))
                .with_stats_cache(Arc::new(StatsCache::new()));
            pipeline.run_all(modules.iter()).expect("batch estimates")
        })
    });
    for jobs in [2usize, 8] {
        group.bench_function(format!("cached_parallel_{jobs}_jobs"), |b| {
            b.iter(|| {
                let pipeline = Pipeline::new(tech.clone())
                    .with_prob_table(Arc::new(ProbTable::new()))
                    .with_stats_cache(Arc::new(StatsCache::new()));
                pipeline
                    .run_all_parallel(modules.iter(), jobs)
                    .expect("batch estimates")
            })
        });
    }
    // The resolve-once path this PR adds: same batch, one warm shared
    // cache, so only the estimation math is left per iteration.
    group.bench_function("cached_serial_warm_resolve", |b| {
        let cache = Arc::new(StatsCache::new());
        b.iter(|| {
            let pipeline = Pipeline::new(tech.clone())
                .with_prob_table(Arc::new(ProbTable::new()))
                .with_stats_cache(Arc::clone(&cache));
            pipeline.run_all(modules.iter()).expect("batch estimates")
        })
    });
    group.finish();
}

/// Whole generated chips through the memory-bounded streaming path, one
/// row per decade of device count: generation, resolve, estimation and
/// in-order emission all inside the measurement, with cold caches per
/// iteration so the resolve stage is exercised at scale.
fn bench_device_scale(c: &mut Criterion) {
    let tech = builtin::nmos25();
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let mut group = c.benchmark_group("scaling/streaming_device_count");
    for &devices in &[10_000usize, 100_000, 1_000_000] {
        if quick && devices > 100_000 {
            // Not a silent cap: the full (non-quick) suite runs this row.
            eprintln!(
                "scaling/streaming_device_count: skipping the {devices}-device row \
                 under CRITERION_QUICK"
            );
            continue;
        }
        let spec = ChipSpec::new(ChipFamily::Mixed, devices).expect("valid chip spec");
        group.bench_with_input(BenchmarkId::from_parameter(devices), &spec, |b, spec| {
            b.iter(|| {
                let pipeline = Pipeline::new(tech.clone())
                    .with_prob_table(Arc::new(ProbTable::new()))
                    .with_stats_cache(Arc::new(StatsCache::new()));
                let mut records = 0usize;
                let summary = pipeline
                    .run_all_streaming(spec.modules(), 4, |_rec| {
                        records += 1;
                        Ok(())
                    })
                    .expect("chip streams");
                assert_eq!(records, spec.module_count());
                summary
            })
        });
    }
    group.finish();
}

/// Replica-parallel annealing: the same placement problem annealed with a
/// single walk vs a best-of fan-out of independently seeded walks. On a
/// multi-core host the replica row approaches the single-walk time (the
/// walks run concurrently on their own threads); on one core it measures
/// the serial cost of running every walk back to back — the multi-core
/// fan-out measurement the PR 4 roadmap left open.
fn bench_replicas(c: &mut Criterion) {
    let tech = builtin::nmos25();
    let module = generate::counter(32);
    let mut group = c.benchmark_group("anneal/replica_fanout");
    for &replicas in &[1usize, 4] {
        group.bench_function(format!("place_{replicas}_replicas"), |b| {
            b.iter(|| {
                place(
                    &module,
                    &tech,
                    &PlaceParams {
                        rows: 4,
                        replicas,
                        schedule: maestro::place::AnnealSchedule::quick(),
                        ..PlaceParams::default()
                    },
                )
                .expect("places")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_batch,
    bench_device_scale,
    bench_replicas
);
criterion_main!(benches);
