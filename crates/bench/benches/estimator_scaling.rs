//! E4: estimator runtime scaling with module size — the "modest amount of
//! computer time" claim quantified. Sweeps synthetic modules from 25 to
//! 800 gates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maestro::estimator::standard_cell::{self, ScParams};
use maestro::netlist::generate::{self, RandomLogicConfig};
use maestro::prelude::*;

fn bench_scaling(c: &mut Criterion) {
    let tech = builtin::nmos25();
    let mut group = c.benchmark_group("scaling/standard_cell_estimate");
    for &n in &[25usize, 50, 100, 200, 400, 800] {
        let cfg = RandomLogicConfig {
            device_count: n,
            input_count: (n / 8).max(4),
            ..RandomLogicConfig::default()
        };
        let module = generate::random_logic(1988, &cfg);
        let stats =
            NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).expect("resolves");
        group.bench_with_input(BenchmarkId::from_parameter(n), &stats, |b, s| {
            b.iter(|| standard_cell::estimate(s, &tech, &ScParams::default()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/full_custom_estimate");
    for &gates in &[10usize, 25, 50, 100, 200] {
        let module = generate::random_nmos_logic(1988, gates);
        let stats =
            NetlistStats::resolve(&module, &tech, LayoutStyle::FullCustom).expect("resolves");
        group.bench_with_input(BenchmarkId::from_parameter(gates), &stats, |b, s| {
            b.iter(|| full_custom::estimate(s, &tech))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
