//! E2/E4: benchmark the standard-cell estimator on the Table 2 suite —
//! the paper's "< 3 CPU seconds on a Sun 3/50 for each example".

use criterion::{criterion_group, criterion_main, Criterion};
use maestro::estimator::standard_cell::{self, ScParams};
use maestro::netlist::library_circuits;
use maestro::prelude::*;

fn bench_table2(c: &mut Criterion) {
    let tech = builtin::nmos25();
    let suite: Vec<(Module, NetlistStats)> = library_circuits::table2_suite()
        .into_iter()
        .map(|m| {
            let s = NetlistStats::resolve(&m, &tech, LayoutStyle::StandardCell).expect("resolves");
            (m, s)
        })
        .collect();

    // Full estimates including the §5 row-count iteration.
    let mut group = c.benchmark_group("table2/estimate_auto_rows");
    for (m, s) in &suite {
        group.bench_function(m.name(), |b| {
            b.iter(|| standard_cell::estimate(s, &tech, &ScParams::default()))
        });
    }
    group.finish();

    // The paper's row sweep: every (module, row-count) cell of Table 2.
    let mut group = c.benchmark_group("table2/estimate_fixed_rows");
    for ((m, s), sweep) in suite.iter().zip(maestro_bench::table2::ROW_SWEEPS) {
        for &rows in sweep {
            group.bench_function(format!("{}/rows{rows}", m.name()), |b| {
                b.iter(|| standard_cell::estimate_with_rows(s, &tech, rows))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
