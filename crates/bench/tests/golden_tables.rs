//! Golden snapshot tests for the `repro-table1` / `repro-table2`
//! experiments: the reproduced tables are serialized to JSON and compared
//! byte-for-byte against committed fixtures under `tests/golden/`, so any
//! change to the estimators, the synthesizer, or the place & route
//! substrate that shifts a reproduced number shows up as a reviewable
//! fixture diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p maestro-bench --test golden_tables
//! ```

use std::path::PathBuf;

use maestro_bench::{table1, table2};
use serde::Serialize;

fn golden_path(name: &str) -> PathBuf {
    // Fixtures live with the workspace-level test suites, not the crate.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../tests/golden");
    p.push(name);
    p
}

fn assert_matches_golden<T: Serialize>(name: &str, snapshot: &T) {
    let path = golden_path(name);
    let mut pretty = serde_json::to_string_pretty(snapshot).expect("snapshot serializes");
    pretty.push('\n');
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("fixture dir");
        std::fs::write(&path, &pretty).expect("fixture written");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, pretty,
        "{name} drifted from its committed fixture; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[derive(Serialize)]
struct Table1Row {
    experiment: usize,
    name: String,
    devices: usize,
    nets: usize,
    ports: usize,
    device_area: i64,
    wire_exact: i64,
    wire_average: i64,
    total_exact: i64,
    total_average: i64,
    real_area: i64,
    aspect_exact: String,
    aspect_average: String,
    real_aspect: String,
}

#[derive(Serialize)]
struct Table1Snapshot {
    rows: Vec<Table1Row>,
}

#[test]
fn table1_matches_golden_fixture() {
    let rows = table1::rows()
        .iter()
        .map(|r| Table1Row {
            experiment: r.experiment,
            name: r.name.clone(),
            devices: r.devices,
            nets: r.nets,
            ports: r.ports,
            device_area: r.device_area.get(),
            wire_exact: r.wire_exact.get(),
            wire_average: r.wire_average.get(),
            total_exact: r.total_exact.get(),
            total_average: r.total_average.get(),
            real_area: r.real_area.get(),
            aspect_exact: r.aspect_exact.to_string(),
            aspect_average: r.aspect_average.to_string(),
            real_aspect: r.real_aspect.to_string(),
        })
        .collect();
    assert_matches_golden("table1.json", &Table1Snapshot { rows });
}

#[derive(Serialize)]
struct Table2Row {
    experiment: usize,
    name: String,
    rows: u32,
    devices: usize,
    ports: usize,
    est_height: i64,
    est_width: i64,
    tracks_estimated: u32,
    tracks_real: u32,
    est_area: i64,
    real_area: i64,
    est_aspect: String,
    real_aspect: String,
}

#[derive(Serialize)]
struct Table2Snapshot {
    rows: Vec<Table2Row>,
}

#[test]
fn table2_matches_golden_fixture() {
    let rows = table2::rows()
        .iter()
        .map(|r| Table2Row {
            experiment: r.experiment,
            name: r.name.clone(),
            rows: r.rows,
            devices: r.devices,
            ports: r.ports,
            est_height: r.est_height.get(),
            est_width: r.est_width.get(),
            tracks_estimated: r.tracks_estimated,
            tracks_real: r.tracks_real,
            est_area: r.est_area.get(),
            real_area: r.real_area.get(),
            est_aspect: r.est_aspect.to_string(),
            real_aspect: r.real_aspect.to_string(),
        })
        .collect();
    assert_matches_golden("table2.json", &Table2Snapshot { rows });
}
