//! Interconnect-area allocation from a finished placement.
//!
//! A slicing placement packs tiles edge to edge; a real (manual) layout
//! additionally spends area on wiring. Like a careful human designer,
//! we charge each net its actual placed extent: the half-perimeter of the
//! bounding box of its devices' centers, times the metal wire pitch,
//! derated by a sharing factor (wires run over diffusion, share columns,
//! and abutting devices connect for free).

use maestro_geom::{LambdaArea, Point, Rect};
use maestro_netlist::Module;

use crate::polish::Evaluated;

/// Fraction of nominal wire area actually consumed, calibrated so that
/// synthesized layouts land in the density range of hand-packed
/// Mead–Conway cells (wires largely run over and between devices).
pub const WIRE_SHARING_FACTOR: f64 = 0.35;

/// Total wiring area for a placement: Σ over nets of
/// `HPWL(net) × wire_pitch × WIRE_SHARING_FACTOR`. Nets whose devices
/// abut (HPWL within one pitch) are free, like a shared diffusion node.
pub fn wiring_area(
    module: &Module,
    placement: &Evaluated,
    wire_pitch: maestro_geom::Lambda,
) -> LambdaArea {
    let mut total = 0.0f64;
    for (_, net) in module.nets() {
        let comps = net.components();
        if comps.len() < 2 {
            continue;
        }
        let centers = comps.iter().map(|d| {
            let r: Rect = placement.placements[d.index()];
            Point::new(r.origin().x + r.width() / 2, r.origin().y + r.height() / 2)
        });
        let bbox = Rect::bounding_box(centers).expect("at least two components");
        let hpwl = bbox.half_perimeter();
        if hpwl <= wire_pitch {
            continue; // abutting devices: direct connection
        }
        total += hpwl.as_f64() * wire_pitch.as_f64() * WIRE_SHARING_FACTOR;
    }
    LambdaArea::from_f64_ceil(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polish::PolishExpr;
    use maestro_geom::Lambda;
    use maestro_netlist::ModuleBuilder;

    fn pitch() -> Lambda {
        Lambda::new(6)
    }

    #[test]
    fn single_component_nets_are_free() {
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        b.device("q0", "pd", [("d", n)]);
        let m = b.finish();
        let expr = PolishExpr::initial(1);
        let ev = expr.evaluate(&[(Lambda::new(14), Lambda::new(8))]);
        assert_eq!(wiring_area(&m, &ev, pitch()), LambdaArea::ZERO);
    }

    #[test]
    fn abutting_devices_connect_for_free() {
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        b.device("q0", "pd", [("d", n)]);
        b.device("q1", "pd", [("s", n)]);
        let m = b.finish();
        // Two 4×8 tiles side by side: centers 4λ apart, within pitch 6λ.
        let expr = PolishExpr::initial(2);
        let ev = expr.evaluate(&[
            (Lambda::new(4), Lambda::new(8)),
            (Lambda::new(4), Lambda::new(8)),
        ]);
        assert_eq!(wiring_area(&m, &ev, pitch()), LambdaArea::ZERO);
    }

    #[test]
    fn distant_devices_cost_their_span() {
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        b.device("q0", "pd", [("d", n)]);
        b.device("q1", "pd", [("s", n)]);
        let m = b.finish();
        let expr = PolishExpr::initial(2);
        let ev = expr.evaluate(&[
            (Lambda::new(40), Lambda::new(8)),
            (Lambda::new(40), Lambda::new(8)),
        ]);
        // Centers 40λ apart horizontally: hpwl = 40.
        let expected = (40.0 * 6.0 * WIRE_SHARING_FACTOR).ceil() as i64;
        assert_eq!(wiring_area(&m, &ev, pitch()), LambdaArea::new(expected));
    }

    #[test]
    fn wiring_grows_with_net_spread() {
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        for i in 0..4 {
            b.device(format!("q{i}"), "pd", [("d", n)]);
        }
        let m = b.finish();
        let tiles = vec![(Lambda::new(14), Lambda::new(8)); 4];
        let compact = PolishExpr::initial(4).evaluate(&tiles);
        // A pathological all-in-one-row expression spreads the net more.
        let mut row = PolishExpr::initial(4);
        // initial(4) is 2×2; complementing chains yields different shapes.
        row.complement_chain(0);
        let spread = row.evaluate(&tiles);
        let wa_compact = wiring_area(&m, &compact, pitch());
        let wa_spread = wiring_area(&m, &spread, pitch());
        // Not a strict theorem, but for these shapes the 2×2 is tighter.
        assert!(wa_compact <= wa_spread + LambdaArea::new(200));
    }
}
