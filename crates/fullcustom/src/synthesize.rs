//! The layout-synthesis driver: tiles → annealed slicing floorplan →
//! wiring allocation → the "real" full-custom module.

use maestro_geom::{AspectRatio, Lambda, LambdaArea};
use maestro_netlist::{DeviceId, LayoutStyle, Module, NetlistError, NetlistStats};
use maestro_place::{anneal, AnnealSchedule, AnnealState};
use maestro_tech::ProcessDb;
use maestro_trace as trace;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::polish::{Evaluated, PolishExpr};
use crate::wiring;

/// Parameters of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisParams {
    /// Annealing seed.
    pub seed: u64,
    /// Cooling schedule.
    pub schedule: AnnealSchedule,
    /// Weight of the wirelength term relative to bounding area
    /// (λ of HPWL per λ² of area).
    pub wire_weight: f64,
    /// Weight of the elongation penalty. Aspect ratios beyond 2:1 scale
    /// the area term by `1 + aspect_weight * (aspect − 2)`: manual
    /// layouts in the paper's Table 1 all fall between 1:1 and 2:1, so
    /// the synthesizer is steered away from degenerate strip layouts
    /// that a pure area + wirelength cost is indifferent to.
    pub aspect_weight: f64,
}

impl Default for SynthesisParams {
    fn default() -> Self {
        SynthesisParams {
            seed: 1988,
            schedule: AnnealSchedule::default(),
            wire_weight: 2.0,
            aspect_weight: 0.15,
        }
    }
}

impl SynthesisParams {
    /// A short schedule for tests.
    pub fn quick() -> Self {
        SynthesisParams {
            schedule: AnnealSchedule::quick(),
            ..SynthesisParams::default()
        }
    }
}

/// A synthesized full-custom layout: the "real" columns of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcLayout {
    module_name: String,
    width: Lambda,
    height: Lambda,
    device_area: LambdaArea,
    wire_area: LambdaArea,
    placements: Vec<maestro_geom::Rect>,
}

impl FcLayout {
    /// Module name.
    pub fn module_name(&self) -> &str {
        &self.module_name
    }

    /// Layout width (tile bounding box).
    pub fn width(&self) -> Lambda {
        self.width
    }

    /// Layout height (tile bounding box).
    pub fn height(&self) -> Lambda {
        self.height
    }

    /// Total "real" module area: tile bounding box plus allocated wiring.
    pub fn area(&self) -> LambdaArea {
        self.width * self.height + self.wire_area
    }

    /// Σ device tile areas.
    pub fn device_area(&self) -> LambdaArea {
        self.device_area
    }

    /// Wiring area allocated from placed net extents.
    pub fn wire_area(&self) -> LambdaArea {
        self.wire_area
    }

    /// Whitespace inside the bounding box (box − devices).
    pub fn whitespace(&self) -> LambdaArea {
        self.width * self.height - self.device_area
    }

    /// Real aspect ratio of the synthesized layout, wiring distributed
    /// proportionally (the reported shape matches the placed bounding
    /// box).
    pub fn aspect_ratio(&self) -> AspectRatio {
        AspectRatio::of(self.width, self.height)
    }

    /// Per-device tile placements, indexed like the module's devices.
    pub fn placements(&self) -> &[maestro_geom::Rect] {
        &self.placements
    }

    /// Renders the layout as an SVG sketch: one labelled rectangle per
    /// transistor tile inside the bounding box.
    pub fn to_svg(&self) -> String {
        use maestro_geom::svg::SvgDocument;
        let mut doc = SvgDocument::new(self.width.max(Lambda::ONE), self.height.max(Lambda::ONE))
            .with_scale(4.0);
        for (i, r) in self.placements.iter().enumerate() {
            doc.rect(*r, "#a3d9a5", Some(&format!("q{i}")));
        }
        doc.finish()
    }
}

/// The annealing state over Polish expressions.
#[derive(Clone)]
struct SynthState<'m> {
    module: &'m Module,
    tiles: Vec<(Lambda, Lambda)>,
    expr: PolishExpr,
    wire_weight: f64,
    aspect_weight: f64,
    cached_cost: f64,
    cached_eval: Evaluated,
    undo: Option<Undo>,
}

#[derive(Clone)]
enum Undo {
    Swap((usize, usize)),
    Chain((usize, usize)),
    Rotation(usize),
    None,
}

impl SynthState<'_> {
    fn evaluate_cost(&self, eval: &Evaluated) -> f64 {
        let mut hpwl = 0.0f64;
        for (_, net) in self.module.nets() {
            let comps = net.components();
            if comps.len() < 2 {
                continue;
            }
            let mut min_x = f64::MAX;
            let mut max_x = f64::MIN;
            let mut min_y = f64::MAX;
            let mut max_y = f64::MIN;
            for d in comps {
                let r = eval.placements[d.index()];
                let cx = r.origin().x.as_f64() + r.width().as_f64() / 2.0;
                let cy = r.origin().y.as_f64() + r.height().as_f64() / 2.0;
                min_x = min_x.min(cx);
                max_x = max_x.max(cx);
                min_y = min_y.min(cy);
                max_y = max_y.max(cy);
            }
            hpwl += (max_x - min_x) + (max_y - min_y);
        }
        let (w, h) = (eval.width.as_f64(), eval.height.as_f64());
        let aspect = if w > 0.0 && h > 0.0 {
            w.max(h) / w.min(h)
        } else {
            1.0
        };
        let elongation = 1.0 + self.aspect_weight * (aspect - 2.0).max(0.0);
        eval.area().as_f64() * elongation + self.wire_weight * hpwl
    }

    fn refresh(&mut self) {
        self.cached_eval = self.expr.evaluate(&self.tiles);
        self.cached_cost = self.evaluate_cost(&self.cached_eval);
    }
}

impl AnnealState for SynthState<'_> {
    fn cost(&self) -> f64 {
        self.cached_cost
    }

    fn propose_and_apply(&mut self, rng: &mut StdRng) -> f64 {
        let n = self.expr.tile_count();
        let undo = match rng.gen_range(0..4u8) {
            0 => self
                .expr
                .swap_adjacent_operands(rng.gen_range(0..n.max(2)))
                .map(Undo::Swap)
                .unwrap_or(Undo::None),
            1 => self
                .expr
                .complement_chain(rng.gen_range(0..n.max(1)))
                .map(Undo::Chain)
                .unwrap_or(Undo::None),
            2 => self
                .expr
                .swap_operand_operator(rng.gen_range(0..n.max(1)))
                .map(Undo::Swap)
                .unwrap_or(Undo::None),
            _ => Undo::Rotation(self.expr.flip_rotation(rng.gen_range(0..n))),
        };
        self.undo = Some(undo);
        self.refresh();
        self.cached_cost
    }

    fn revert(&mut self) {
        match self.undo.take().expect("revert without move") {
            Undo::Swap(pair) => self.expr.unswap(pair),
            Undo::Chain(range) => self.expr.uncomplement(range),
            Undo::Rotation(tile) => {
                self.expr.flip_rotation(tile);
            }
            Undo::None => {}
        }
        self.refresh();
    }
}

/// Synthesizes a dense full-custom layout for a transistor-level module.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownTemplate`] if a device's template is not
/// in the technology's transistor table, or [`NetlistError::Invalid`] for
/// an empty module.
pub fn synthesize(
    module: &Module,
    tech: &ProcessDb,
    params: &SynthesisParams,
) -> Result<FcLayout, NetlistError> {
    if module.device_count() == 0 {
        return Err(NetlistError::invalid("cannot lay out an empty module"));
    }
    let _synth_span = trace::span_with("fullcustom.synthesize", || module.name().to_owned());
    trace::counter("fullcustom.devices", module.device_count() as u64);
    let stats = NetlistStats::resolve(module, tech, LayoutStyle::FullCustom)?;
    let tiles: Vec<(Lambda, Lambda)> = (0..module.device_count())
        .map(|i| {
            let d = module.device(DeviceId::new(i as u32));
            let t = tech.device(d.template()).expect("resolved above");
            (t.width(), t.height())
        })
        .collect();

    let expr = PolishExpr::initial(tiles.len());
    let initial_eval = expr.evaluate(&tiles);
    let mut state = SynthState {
        module,
        tiles,
        expr,
        wire_weight: params.wire_weight,
        aspect_weight: params.aspect_weight,
        cached_cost: 0.0,
        cached_eval: initial_eval,
        undo: None,
    };
    state.refresh();
    let initial_expr = state.expr.clone();
    let initial_cost = state.cached_cost;
    let schedule = params
        .schedule
        .clone()
        .calibrated(&mut state, params.seed, 64);
    let final_cost = anneal(&mut state, &schedule, params.seed);
    if final_cost > initial_cost {
        state.expr = initial_expr;
        state.refresh();
    }

    let eval = state.cached_eval.clone();
    let wire_area = wiring::wiring_area(
        module,
        &eval,
        tech.rules()
            .wire_pitch(maestro_geom::design_rules::Layer::Metal1),
    );
    Ok(FcLayout {
        module_name: module.name().to_owned(),
        width: eval.width,
        height: eval.height,
        device_area: stats.total_device_area(),
        wire_area,
        placements: eval.placements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::{generate, library_circuits};
    use maestro_tech::builtin;

    #[test]
    fn layout_contains_all_devices() {
        let m = library_circuits::nmos_decoder2to4();
        let l = synthesize(&m, &builtin::nmos25(), &SynthesisParams::quick()).unwrap();
        assert!(l.area() >= l.device_area());
        assert!(l.whitespace().get() >= 0);
        assert!(l.width().is_positive() && l.height().is_positive());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let m = library_circuits::nmos_full_adder();
        let tech = builtin::nmos25();
        let a = synthesize(&m, &tech, &SynthesisParams::quick()).unwrap();
        let b = synthesize(&m, &tech, &SynthesisParams::quick()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn annealed_layout_is_reasonably_dense() {
        // A competent manual-style layout packs ≥ 40 % device utilization
        // inside the bounding box for these small regular circuits.
        let tech = builtin::nmos25();
        for m in library_circuits::table1_suite() {
            let l = synthesize(&m, &tech, &SynthesisParams::default()).unwrap();
            let util = l.device_area().as_f64() / (l.width() * l.height()).as_f64();
            assert!(
                util >= 0.4,
                "{}: utilization {util:.2} too low ({} × {})",
                m.name(),
                l.width(),
                l.height()
            );
        }
    }

    #[test]
    fn aspect_ratio_is_moderate_after_annealing() {
        // Manual layouts fall "in the range from 1:1 to 1:2" (paper §6);
        // the annealer should land within a generous version of that band.
        let tech = builtin::nmos25();
        let m = library_circuits::nmos_shift_register(3);
        let l = synthesize(&m, &tech, &SynthesisParams::default()).unwrap();
        assert!(
            l.aspect_ratio().normalized().as_f64() <= 3.0,
            "aspect {} too extreme",
            l.aspect_ratio()
        );
    }

    #[test]
    fn two_component_chain_has_minimal_wire_area() {
        // The pass chain's nets connect abutting devices, so synthesized
        // wiring is small relative to device area.
        let tech = builtin::nmos25();
        let m = library_circuits::pass_chain(8);
        let l = synthesize(&m, &tech, &SynthesisParams::default()).unwrap();
        assert!(
            l.wire_area().as_f64() <= 0.6 * l.device_area().as_f64(),
            "wire {} vs devices {}",
            l.wire_area(),
            l.device_area()
        );
    }

    #[test]
    fn svg_has_one_tile_per_device() {
        let m = library_circuits::nmos_decoder2to4();
        let l = synthesize(&m, &builtin::nmos25(), &SynthesisParams::quick()).unwrap();
        assert_eq!(l.placements().len(), m.device_count());
        let svg = l.to_svg();
        // Background rect + one per tile.
        assert_eq!(svg.matches("<rect").count(), m.device_count() + 1);
        // Tiles stay disjoint in the rendered layout too.
        for (i, a) in l.placements().iter().enumerate() {
            for b in &l.placements()[i + 1..] {
                assert!(!a.overlaps_strictly(*b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn empty_module_is_an_error() {
        let b = maestro_netlist::ModuleBuilder::new("empty");
        let err =
            synthesize(&b.finish(), &builtin::nmos25(), &SynthesisParams::quick()).unwrap_err();
        assert!(matches!(err, NetlistError::Invalid { .. }));
    }

    #[test]
    fn gate_level_module_is_rejected() {
        let m = generate::ripple_adder(2);
        let err = synthesize(&m, &builtin::nmos25(), &SynthesisParams::quick()).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownTemplate { .. }));
    }
}
