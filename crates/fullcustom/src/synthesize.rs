//! The layout-synthesis driver: tiles → annealed slicing floorplan →
//! wiring allocation → the "real" full-custom module.

use maestro_geom::{AspectRatio, Lambda, LambdaArea};
use maestro_netlist::{DeviceId, LayoutStyle, Module, NetlistError, StatsCache};
use maestro_place::{anneal_replicas_warm, AnnealSchedule, AnnealState};
use maestro_tech::ProcessDb;
use maestro_trace as trace;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::polish::{DeltaEval, Evaluated, PolishExpr};
use crate::wiring;

/// Parameters of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisParams {
    /// Annealing seed.
    pub seed: u64,
    /// Cooling schedule.
    pub schedule: AnnealSchedule,
    /// Weight of the wirelength term relative to bounding area
    /// (λ of HPWL per λ² of area).
    pub wire_weight: f64,
    /// Weight of the elongation penalty. Aspect ratios beyond 2:1 scale
    /// the area term by `1 + aspect_weight * (aspect − 2)`: manual
    /// layouts in the paper's Table 1 all fall between 1:1 and 2:1, so
    /// the synthesizer is steered away from degenerate strip layouts
    /// that a pure area + wirelength cost is indifferent to.
    pub aspect_weight: f64,
    /// Independently seeded annealing walks to run and reduce best-of
    /// (`1` = single walk, bit-identical to the pre-replica engine).
    pub replicas: usize,
}

impl Default for SynthesisParams {
    fn default() -> Self {
        SynthesisParams {
            seed: 1988,
            schedule: AnnealSchedule::default(),
            wire_weight: 2.0,
            aspect_weight: 0.15,
            replicas: 1,
        }
    }
}

impl SynthesisParams {
    /// A short schedule for tests.
    pub fn quick() -> Self {
        SynthesisParams {
            schedule: AnnealSchedule::quick(),
            ..SynthesisParams::default()
        }
    }
}

/// The reusable outcome of one synthesis anneal: the winning Polish
/// expression and its cost, for warm-starting the next synthesis of a
/// (possibly edited) revision of the same module.
///
/// A seed is advisory — [`synthesize_seeded`] validates it against the
/// new tile set and falls back to a cold start when the module's device
/// count changed or the expression no longer parses as a valid slicing
/// tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSeed {
    expr: PolishExpr,
    cost: f64,
}

impl SynthSeed {
    /// Number of tiles the seed's expression places.
    pub fn tile_count(&self) -> usize {
        self.expr.tile_count()
    }

    /// The annealing cost the seed's expression achieved.
    pub fn cost(&self) -> f64 {
        self.cost
    }
}

/// A synthesized full-custom layout: the "real" columns of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcLayout {
    module_name: String,
    width: Lambda,
    height: Lambda,
    device_area: LambdaArea,
    wire_area: LambdaArea,
    placements: Vec<maestro_geom::Rect>,
}

impl FcLayout {
    /// Module name.
    pub fn module_name(&self) -> &str {
        &self.module_name
    }

    /// Layout width (tile bounding box).
    pub fn width(&self) -> Lambda {
        self.width
    }

    /// Layout height (tile bounding box).
    pub fn height(&self) -> Lambda {
        self.height
    }

    /// Total "real" module area: tile bounding box plus allocated wiring.
    pub fn area(&self) -> LambdaArea {
        self.width * self.height + self.wire_area
    }

    /// Σ device tile areas.
    pub fn device_area(&self) -> LambdaArea {
        self.device_area
    }

    /// Wiring area allocated from placed net extents.
    pub fn wire_area(&self) -> LambdaArea {
        self.wire_area
    }

    /// Whitespace inside the bounding box (box − devices).
    pub fn whitespace(&self) -> LambdaArea {
        self.width * self.height - self.device_area
    }

    /// Real aspect ratio of the synthesized layout, wiring distributed
    /// proportionally (the reported shape matches the placed bounding
    /// box).
    pub fn aspect_ratio(&self) -> AspectRatio {
        AspectRatio::of(self.width, self.height)
    }

    /// Per-device tile placements, indexed like the module's devices.
    pub fn placements(&self) -> &[maestro_geom::Rect] {
        &self.placements
    }

    /// Renders the layout as an SVG sketch: one labelled rectangle per
    /// transistor tile inside the bounding box.
    pub fn to_svg(&self) -> String {
        use maestro_geom::svg::SvgDocument;
        let mut doc = SvgDocument::new(self.width.max(Lambda::ONE), self.height.max(Lambda::ONE))
            .with_scale(4.0);
        for (i, r) in self.placements.iter().enumerate() {
            doc.rect(*r, "#a3d9a5", Some(&format!("q{i}")));
        }
        doc.finish()
    }
}

/// How a [`SynthState`] recomputes its cost after a move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvalMode {
    /// Re-evaluate the whole expression and every net on each move and
    /// each revert. The original implementation, kept as the reference
    /// for differential testing.
    Full,
    /// Re-evaluate only the covering Polish subtree and the nets
    /// incident to re-placed tiles; reverts restore journaled state.
    Delta,
}

/// The annealing state over Polish expressions.
#[derive(Clone)]
struct SynthState<'m> {
    module: &'m Module,
    tiles: Vec<(Lambda, Lambda)>,
    expr: PolishExpr,
    wire_weight: f64,
    aspect_weight: f64,
    mode: EvalMode,
    cached_cost: f64,
    /// Full-mode evaluation cache (unused, but kept current, in delta
    /// mode only at rebuild points).
    cached_eval: Evaluated,
    /// Delta-mode incremental evaluation.
    eval: DeltaEval,
    /// Per-net component tile indices, in module net order.
    net_comps: Vec<Vec<usize>>,
    /// Nets with ≥ 2 pins incident to each tile.
    tile_nets: Vec<Vec<u32>>,
    /// Cached per-net HPWL contributions, in module net order.
    net_hpwl: Vec<f64>,
    /// Scratch: dirty flags + list of nets touched by the current move.
    net_dirty: Vec<bool>,
    dirty_nets: Vec<u32>,
    /// Journal of `(net, previous HPWL)` overwritten by the current move.
    undo_hpwl: Vec<(u32, f64)>,
    /// Pre-move cost snapshot for O(1) restore on revert.
    snap_cost: f64,
    undo: Option<Undo>,
    evals_full: u64,
    evals_delta: u64,
}

#[derive(Clone)]
enum Undo {
    Swap((usize, usize)),
    Chain((usize, usize)),
    Rotation(usize),
    None,
}

impl SynthState<'_> {
    /// Area term of the cost: bounding area scaled by the elongation
    /// penalty. Shared by both evaluation modes so they stay
    /// bit-identical.
    fn box_cost(&self, width: Lambda, height: Lambda, area: LambdaArea) -> f64 {
        let (w, h) = (width.as_f64(), height.as_f64());
        let aspect = if w > 0.0 && h > 0.0 {
            w.max(h) / w.min(h)
        } else {
            1.0
        };
        let elongation = 1.0 + self.aspect_weight * (aspect - 2.0).max(0.0);
        area.as_f64() * elongation
    }

    fn evaluate_cost(&self, eval: &Evaluated) -> f64 {
        let mut hpwl = 0.0f64;
        for (_, net) in self.module.nets() {
            let comps = net.components();
            if comps.len() < 2 {
                continue;
            }
            let mut min_x = f64::MAX;
            let mut max_x = f64::MIN;
            let mut min_y = f64::MAX;
            let mut max_y = f64::MIN;
            for d in comps {
                let r = eval.placements[d.index()];
                let cx = r.origin().x.as_f64() + r.width().as_f64() / 2.0;
                let cy = r.origin().y.as_f64() + r.height().as_f64() / 2.0;
                min_x = min_x.min(cx);
                max_x = max_x.max(cx);
                min_y = min_y.min(cy);
                max_y = max_y.max(cy);
            }
            hpwl += (max_x - min_x) + (max_y - min_y);
        }
        self.box_cost(eval.width, eval.height, eval.area()) + self.wire_weight * hpwl
    }

    /// HPWL contribution of one net from the delta evaluator's current
    /// placements. Mirrors the per-net loop in
    /// [`SynthState::evaluate_cost`] operation-for-operation.
    fn net_contribution(&self, net: usize) -> f64 {
        let comps = &self.net_comps[net];
        if comps.len() < 2 {
            return 0.0;
        }
        let placements = self.eval.placements();
        let mut min_x = f64::MAX;
        let mut max_x = f64::MIN;
        let mut min_y = f64::MAX;
        let mut max_y = f64::MIN;
        for &d in comps {
            let r = placements[d];
            let cx = r.origin().x.as_f64() + r.width().as_f64() / 2.0;
            let cy = r.origin().y.as_f64() + r.height().as_f64() / 2.0;
            min_x = min_x.min(cx);
            max_x = max_x.max(cx);
            min_y = min_y.min(cy);
            max_y = max_y.max(cy);
        }
        (max_x - min_x) + (max_y - min_y)
    }

    /// Cost from the cached per-net HPWLs. Summing every entry in net
    /// order (two-pin-less nets hold +0.0) reproduces the reference
    /// accumulation bit-for-bit.
    fn delta_cost(&self) -> f64 {
        let mut hpwl = 0.0f64;
        for &h in &self.net_hpwl {
            hpwl += h;
        }
        self.box_cost(self.eval.width(), self.eval.height(), self.eval.area())
            + self.wire_weight * hpwl
    }

    /// Full re-evaluation, in whichever representation the mode uses.
    fn refresh(&mut self) {
        self.evals_full += 1;
        match self.mode {
            EvalMode::Full => {
                self.cached_eval = self.expr.evaluate(&self.tiles);
                self.cached_cost = self.evaluate_cost(&self.cached_eval);
            }
            EvalMode::Delta => {
                self.eval.rebuild(&self.expr, &self.tiles);
                for k in 0..self.net_hpwl.len() {
                    let v = self.net_contribution(k);
                    self.net_hpwl[k] = v;
                }
                self.cached_cost = self.delta_cost();
            }
        }
    }

    /// Delta re-evaluation after the expression changed within element
    /// positions `lo..=hi`: updates the covering subtree's dimensions
    /// and origins, then recomputes only the nets incident to tiles
    /// whose placement actually moved.
    fn apply_delta(&mut self, lo: usize, hi: usize) {
        self.evals_delta += 1;
        self.eval.update(&self.expr, &self.tiles, lo, hi);
        self.undo_hpwl.clear();
        self.dirty_nets.clear();
        for &t in self.eval.changed_tiles() {
            for &k in &self.tile_nets[t as usize] {
                if !self.net_dirty[k as usize] {
                    self.net_dirty[k as usize] = true;
                    self.dirty_nets.push(k);
                }
            }
        }
        for idx in 0..self.dirty_nets.len() {
            let k = self.dirty_nets[idx] as usize;
            self.net_dirty[k] = false;
            let fresh = self.net_contribution(k);
            let old = std::mem::replace(&mut self.net_hpwl[k], fresh);
            self.undo_hpwl.push((k as u32, old));
        }
        self.cached_cost = self.delta_cost();
    }
}

impl AnnealState for SynthState<'_> {
    fn cost(&self) -> f64 {
        self.cached_cost
    }

    fn propose_and_apply(&mut self, rng: &mut StdRng) -> f64 {
        let n = self.expr.tile_count();
        let undo = match rng.gen_range(0..4u8) {
            0 => self
                .expr
                .swap_adjacent_operands(rng.gen_range(0..n))
                .map(Undo::Swap)
                .unwrap_or(Undo::None),
            1 => self
                .expr
                .complement_chain(rng.gen_range(0..n))
                .map(Undo::Chain)
                .unwrap_or(Undo::None),
            2 => self
                .expr
                .swap_operand_operator(rng.gen_range(0..n))
                .map(Undo::Swap)
                .unwrap_or(Undo::None),
            _ => Undo::Rotation(self.expr.flip_rotation(rng.gen_range(0..n))),
        };
        match self.mode {
            EvalMode::Full => {
                self.undo = Some(undo);
                self.refresh();
            }
            EvalMode::Delta => {
                // Element-position span touched by the move. A chain
                // `(s, e)` flips elements `s..e`; the rotation leaves its
                // operand in place, so its position is still current.
                let span = match &undo {
                    Undo::Swap((i, j)) => Some((*i.min(j), *i.max(j))),
                    Undo::Chain((s, e)) => Some((*s, e - 1)),
                    Undo::Rotation(tile) => {
                        let p = self.eval.tile_pos(*tile);
                        Some((p, p))
                    }
                    Undo::None => None,
                };
                self.undo = Some(undo);
                self.snap_cost = self.cached_cost;
                match span {
                    Some((lo, hi)) => self.apply_delta(lo, hi),
                    None => {
                        // Rejected move: nothing changed, but the engine
                        // may still call `revert`, which must then be a
                        // no-op.
                        self.eval.clear_undo();
                        self.undo_hpwl.clear();
                    }
                }
            }
        }
        self.cached_cost
    }

    fn revert(&mut self) {
        match self.undo.take().expect("revert without move") {
            Undo::Swap(pair) => self.expr.unswap(pair),
            Undo::Chain(range) => self.expr.uncomplement(range),
            Undo::Rotation(tile) => {
                self.expr.flip_rotation(tile);
            }
            Undo::None => {}
        }
        match self.mode {
            EvalMode::Full => self.refresh(),
            EvalMode::Delta => {
                self.eval.revert();
                for (k, v) in self.undo_hpwl.drain(..).rev() {
                    self.net_hpwl[k as usize] = v;
                }
                self.cached_cost = self.snap_cost;
            }
        }
    }

    fn eval_counts(&self) -> (u64, u64) {
        (self.evals_full, self.evals_delta)
    }
}

/// Synthesizes a dense full-custom layout for a transistor-level module.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownTemplate`] if a device's template is not
/// in the technology's transistor table, or [`NetlistError::Invalid`] for
/// an empty module.
pub fn synthesize(
    module: &Module,
    tech: &ProcessDb,
    params: &SynthesisParams,
) -> Result<FcLayout, NetlistError> {
    synthesize_with(module, tech, params, EvalMode::Delta)
}

/// [`synthesize`] with an optional warm-start seed from a prior run.
///
/// The seed's expression joins the best-of-replicas reduction as one
/// *extra* walk (see `anneal_replicas_warm`): the cold walks run exactly
/// as an unseeded [`synthesize`] would, so the result is never worse —
/// in cost — than either the unseeded run at the same parameters or the
/// seed itself. A seed whose tile count no longer matches the module (a
/// device was added or dropped) or whose expression is invalid is
/// rejected, counted by `fullcustom.warm_rejected`, and the run proceeds
/// cold; accepted seeds count `fullcustom.warm_start`.
///
/// Returns the layout plus the winning [`SynthSeed`] to feed into the
/// next revision's synthesis.
///
/// # Errors
///
/// As [`synthesize`].
pub fn synthesize_seeded(
    module: &Module,
    tech: &ProcessDb,
    params: &SynthesisParams,
    seed: Option<&SynthSeed>,
) -> Result<(FcLayout, SynthSeed), NetlistError> {
    synthesize_with_seed(module, tech, params, seed, EvalMode::Delta)
}

/// [`synthesize`] on the full-refresh reference path: every move and
/// revert re-evaluates the whole expression and every net. Output is
/// bit-identical to [`synthesize`]; kept (and exercised by the
/// differential suite) to pin the delta evaluator to the original
/// semantics.
#[doc(hidden)]
pub fn synthesize_full_refresh(
    module: &Module,
    tech: &ProcessDb,
    params: &SynthesisParams,
) -> Result<FcLayout, NetlistError> {
    synthesize_with(module, tech, params, EvalMode::Full)
}

fn synthesize_with(
    module: &Module,
    tech: &ProcessDb,
    params: &SynthesisParams,
    mode: EvalMode,
) -> Result<FcLayout, NetlistError> {
    synthesize_with_seed(module, tech, params, None, mode).map(|(layout, _)| layout)
}

fn synthesize_with_seed(
    module: &Module,
    tech: &ProcessDb,
    params: &SynthesisParams,
    warm: Option<&SynthSeed>,
    mode: EvalMode,
) -> Result<(FcLayout, SynthSeed), NetlistError> {
    if module.device_count() == 0 {
        return Err(NetlistError::invalid("cannot lay out an empty module"));
    }
    let _synth_span = trace::span_with("fullcustom.synthesize", || module.name().to_owned());
    trace::counter("fullcustom.devices", module.device_count() as u64);
    // Served from the shared resolve-once cache: synthesis after an
    // estimate of the same module re-uses the estimate's analysis.
    let stats = StatsCache::shared().resolve(module, tech, LayoutStyle::FullCustom)?;
    let tiles: Vec<(Lambda, Lambda)> = (0..module.device_count())
        .map(|i| {
            let d = module.device(DeviceId::new(i as u32));
            let t = tech.device(d.template()).expect("resolved above");
            (t.width(), t.height())
        })
        .collect();

    let expr = PolishExpr::initial(tiles.len());
    let net_comps: Vec<Vec<usize>> = module
        .nets()
        .map(|(_, net)| net.components().iter().map(|d| d.index()).collect())
        .collect();
    let mut tile_nets: Vec<Vec<u32>> = vec![Vec::new(); tiles.len()];
    for (k, comps) in net_comps.iter().enumerate() {
        // One-pin nets never contribute HPWL, so they never need
        // recomputation either.
        if comps.len() < 2 {
            continue;
        }
        for &d in comps {
            tile_nets[d].push(k as u32);
        }
    }
    let initial_eval = expr.evaluate(&tiles);
    let delta = expr.delta_eval(&tiles);
    let net_count = net_comps.len();
    let mut state = SynthState {
        module,
        tiles,
        expr,
        wire_weight: params.wire_weight,
        aspect_weight: params.aspect_weight,
        mode,
        cached_cost: 0.0,
        cached_eval: initial_eval,
        eval: delta,
        net_comps,
        tile_nets,
        net_hpwl: vec![0.0; net_count],
        net_dirty: vec![false; net_count],
        dirty_nets: Vec::new(),
        undo_hpwl: Vec::new(),
        snap_cost: 0.0,
        undo: None,
        evals_full: 0,
        evals_delta: 0,
    };
    state.refresh();
    let initial_expr = state.expr.clone();
    let initial_cost = state.cached_cost;
    let work_size = state.tiles.len();
    // An accepted seed becomes one extra annealing walk; the cold walks
    // below run exactly as an unseeded synthesis would, so seeding can
    // only improve the reduced cost.
    let warm_state = warm.and_then(|seed| {
        if seed.expr.tile_count() == state.tiles.len() && seed.expr.is_valid() {
            trace::counter("fullcustom.warm_start", 1);
            let mut w = state.clone();
            w.expr = seed.expr.clone();
            w.refresh();
            Some(w)
        } else {
            trace::counter("fullcustom.warm_rejected", 1);
            None
        }
    });
    let final_cost = anneal_replicas_warm(
        &mut state,
        warm_state,
        &params.schedule,
        params.seed,
        params.replicas,
        64,
        work_size,
    );
    if final_cost > initial_cost {
        state.expr = initial_expr;
        state.refresh();
    }

    let eval = match state.mode {
        EvalMode::Full => state.cached_eval.clone(),
        EvalMode::Delta => state.eval.to_evaluated(),
    };
    let wire_area = wiring::wiring_area(
        module,
        &eval,
        tech.rules()
            .wire_pitch(maestro_geom::design_rules::Layer::Metal1),
    );
    let winning_seed = SynthSeed {
        expr: state.expr.clone(),
        cost: state.cached_cost,
    };
    Ok((
        FcLayout {
            module_name: module.name().to_owned(),
            width: eval.width,
            height: eval.height,
            device_area: stats.total_device_area(),
            wire_area,
            placements: eval.placements,
        },
        winning_seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::{generate, library_circuits};
    use maestro_tech::builtin;

    #[test]
    fn layout_contains_all_devices() {
        let m = library_circuits::nmos_decoder2to4();
        let l = synthesize(&m, &builtin::nmos25(), &SynthesisParams::quick()).unwrap();
        assert!(l.area() >= l.device_area());
        assert!(l.whitespace().get() >= 0);
        assert!(l.width().is_positive() && l.height().is_positive());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let m = library_circuits::nmos_full_adder();
        let tech = builtin::nmos25();
        let a = synthesize(&m, &tech, &SynthesisParams::quick()).unwrap();
        let b = synthesize(&m, &tech, &SynthesisParams::quick()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn one_replica_matches_the_default_path_and_four_are_deterministic() {
        let m = library_circuits::nmos_full_adder();
        let tech = builtin::nmos25();
        let one = synthesize(&m, &tech, &SynthesisParams::quick()).unwrap();
        let explicit_one = synthesize(
            &m,
            &tech,
            &SynthesisParams {
                replicas: 1,
                ..SynthesisParams::quick()
            },
        )
        .unwrap();
        assert_eq!(one, explicit_one);

        let four_params = SynthesisParams {
            replicas: 4,
            ..SynthesisParams::quick()
        };
        let a = synthesize(&m, &tech, &four_params).unwrap();
        let b = synthesize(&m, &tech, &four_params).unwrap();
        assert_eq!(a, b, "replicas=4 must be reproducible");
    }

    #[test]
    fn annealed_layout_is_reasonably_dense() {
        // A competent manual-style layout packs ≥ 40 % device utilization
        // inside the bounding box for these small regular circuits.
        let tech = builtin::nmos25();
        for m in library_circuits::table1_suite() {
            let l = synthesize(&m, &tech, &SynthesisParams::default()).unwrap();
            let util = l.device_area().as_f64() / (l.width() * l.height()).as_f64();
            assert!(
                util >= 0.4,
                "{}: utilization {util:.2} too low ({} × {})",
                m.name(),
                l.width(),
                l.height()
            );
        }
    }

    #[test]
    fn aspect_ratio_is_moderate_after_annealing() {
        // Manual layouts fall "in the range from 1:1 to 1:2" (paper §6);
        // the annealer should land within a generous version of that band.
        let tech = builtin::nmos25();
        let m = library_circuits::nmos_shift_register(3);
        let l = synthesize(&m, &tech, &SynthesisParams::default()).unwrap();
        assert!(
            l.aspect_ratio().normalized().as_f64() <= 3.0,
            "aspect {} too extreme",
            l.aspect_ratio()
        );
    }

    #[test]
    fn two_component_chain_has_minimal_wire_area() {
        // The pass chain's nets connect abutting devices, so synthesized
        // wiring is small relative to device area.
        let tech = builtin::nmos25();
        let m = library_circuits::pass_chain(8);
        let l = synthesize(&m, &tech, &SynthesisParams::default()).unwrap();
        assert!(
            l.wire_area().as_f64() <= 0.6 * l.device_area().as_f64(),
            "wire {} vs devices {}",
            l.wire_area(),
            l.device_area()
        );
    }

    #[test]
    fn svg_has_one_tile_per_device() {
        let m = library_circuits::nmos_decoder2to4();
        let l = synthesize(&m, &builtin::nmos25(), &SynthesisParams::quick()).unwrap();
        assert_eq!(l.placements().len(), m.device_count());
        let svg = l.to_svg();
        // Background rect + one per tile.
        assert_eq!(svg.matches("<rect").count(), m.device_count() + 1);
        // Tiles stay disjoint in the rendered layout too.
        for (i, a) in l.placements().iter().enumerate() {
            for b in &l.placements()[i + 1..] {
                assert!(!a.overlaps_strictly(*b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn tiny_modules_synthesize_under_long_schedules() {
        // One- and two-device modules must survive the full default
        // schedule (tens of thousands of proposed moves): most move
        // kinds are no-ops there, and every index draw must stay in
        // bounds.
        let tech = builtin::nmos25();
        for stages in [1, 2] {
            let m = library_circuits::pass_chain(stages);
            let l = synthesize(&m, &tech, &SynthesisParams::default()).unwrap();
            assert_eq!(l.placements().len(), stages);
            assert!(l.width().is_positive() && l.height().is_positive());
        }
    }

    #[test]
    fn delta_matches_full_refresh_quick() {
        // Smoke-level differential; the full default-schedule sweep over
        // `table1_suite()` lives in `tests/differential.rs`.
        let tech = builtin::nmos25();
        for m in [
            library_circuits::pass_chain(1),
            library_circuits::pass_chain(5),
            library_circuits::nmos_full_adder(),
        ] {
            let delta = synthesize(&m, &tech, &SynthesisParams::quick()).unwrap();
            let full = synthesize_full_refresh(&m, &tech, &SynthesisParams::quick()).unwrap();
            assert_eq!(delta, full, "{} diverged", m.name());
        }
    }

    #[test]
    fn seeded_with_none_matches_unseeded_bit_for_bit() {
        let m = library_circuits::nmos_full_adder();
        let tech = builtin::nmos25();
        let plain = synthesize(&m, &tech, &SynthesisParams::quick()).unwrap();
        let (layout, seed) = synthesize_seeded(&m, &tech, &SynthesisParams::quick(), None).unwrap();
        assert_eq!(plain, layout);
        assert_eq!(seed.tile_count(), m.device_count());
    }

    #[test]
    fn stale_seed_is_rejected_and_the_run_stays_cold() {
        let tech = builtin::nmos25();
        // A seed from a 3-tile module cannot warm-start a 14-tile one.
        let (_, stale) = synthesize_seeded(
            &library_circuits::pass_chain(3),
            &tech,
            &SynthesisParams::quick(),
            None,
        )
        .unwrap();
        let m = library_circuits::nmos_full_adder();
        let cold = synthesize(&m, &tech, &SynthesisParams::quick()).unwrap();
        let (seeded, _) =
            synthesize_seeded(&m, &tech, &SynthesisParams::quick(), Some(&stale)).unwrap();
        assert_eq!(cold, seeded, "a rejected seed must not perturb the run");
    }

    #[test]
    fn seeding_never_worsens_the_cost_and_is_deterministic() {
        let m = library_circuits::nmos_full_adder();
        let tech = builtin::nmos25();
        let (_, cold_seed) = synthesize_seeded(&m, &tech, &SynthesisParams::quick(), None).unwrap();
        let run = || synthesize_seeded(&m, &tech, &SynthesisParams::quick(), Some(&cold_seed));
        let (warm_layout, warm_seed) = run().unwrap();
        assert!(
            warm_seed.cost() <= cold_seed.cost(),
            "warm {} must not exceed cold {}",
            warm_seed.cost(),
            cold_seed.cost()
        );
        let (again_layout, again_seed) = run().unwrap();
        assert_eq!(warm_layout, again_layout);
        assert_eq!(warm_seed, again_seed);
    }

    #[test]
    fn empty_module_is_an_error() {
        let b = maestro_netlist::ModuleBuilder::new("empty");
        let err =
            synthesize(&b.finish(), &builtin::nmos25(), &SynthesisParams::quick()).unwrap_err();
        assert!(matches!(err, NetlistError::Invalid { .. }));
    }

    #[test]
    fn gate_level_module_is_rejected() {
        let m = generate::ripple_adder(2);
        let err = synthesize(&m, &builtin::nmos25(), &SynthesisParams::quick()).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownTemplate { .. }));
    }
}
