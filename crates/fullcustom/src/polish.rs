//! Polish-expression slicing floorplans over fixed rectangular tiles.
//!
//! A slicing floorplan is a recursive cut of a rectangle into two halves;
//! its canonical encoding is a postfix ("Polish") expression over tile
//! operands and the two cut operators. Annealing over expressions with
//! the Wong–Liu move set explores the slicing-floorplan space without
//! ever producing an invalid layout.

use maestro_geom::{Lambda, LambdaArea, Point, Rect};
use maestro_place::postfix::{IncrementalPostfix, Tok, UpdateResult};
use serde::{Deserialize, Serialize};

/// A cut operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cut {
    /// Horizontal cut: the two children stack vertically
    /// (width = max, height = sum).
    Horizontal,
    /// Vertical cut: the two children sit side by side
    /// (width = sum, height = max).
    Vertical,
}

impl Cut {
    /// The opposite cut direction.
    pub fn flipped(self) -> Cut {
        match self {
            Cut::Horizontal => Cut::Vertical,
            Cut::Vertical => Cut::Horizontal,
        }
    }
}

/// One element of a Polish expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Elem {
    /// A tile operand (index into the tile list).
    Tile(u32),
    /// A cut operator combining the two sub-floorplans below it.
    Op(Cut),
}

/// A slicing floorplan: a Polish expression plus a rotation flag per tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolishExpr {
    elems: Vec<Elem>,
    rotated: Vec<bool>,
}

/// The evaluated floorplan: the bounding box and each tile's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluated {
    /// Overall bounding width.
    pub width: Lambda,
    /// Overall bounding height.
    pub height: Lambda,
    /// Placement of each tile, indexed like the tile list.
    pub placements: Vec<Rect>,
}

impl Evaluated {
    /// Bounding-box area.
    pub fn area(&self) -> LambdaArea {
        self.width * self.height
    }
}

impl PolishExpr {
    /// Builds an initial roughly-square floorplan: tiles are grouped into
    /// `⌈√N⌉`-sized runs joined side-by-side, and the runs stacked.
    ///
    /// # Panics
    ///
    /// Panics if `tile_count == 0`.
    pub fn initial(tile_count: usize) -> Self {
        assert!(tile_count > 0, "need at least one tile");
        let per_row = (tile_count as f64).sqrt().ceil() as usize;
        let mut elems = Vec::with_capacity(tile_count * 2);
        let mut rows_emitted = 0usize;
        let mut i = 0usize;
        while i < tile_count {
            let end = (i + per_row).min(tile_count);
            elems.push(Elem::Tile(i as u32));
            for t in i + 1..end {
                elems.push(Elem::Tile(t as u32));
                elems.push(Elem::Op(Cut::Vertical));
            }
            rows_emitted += 1;
            if rows_emitted >= 2 {
                elems.push(Elem::Op(Cut::Horizontal));
            }
            i = end;
        }
        PolishExpr {
            elems,
            rotated: vec![false; tile_count],
        }
    }

    /// The expression elements (postfix order).
    pub fn elems(&self) -> &[Elem] {
        &self.elems
    }

    /// Rotation flags per tile.
    pub fn rotations(&self) -> &[bool] {
        &self.rotated
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.rotated.len()
    }

    /// `true` if `elems` is a valid postfix slicing expression over all
    /// tiles (each exactly once, operators one fewer than operands, and
    /// every prefix has more operands than operators).
    pub fn is_valid(&self) -> bool {
        let mut operands = 0usize;
        let mut ops = 0usize;
        let mut seen = vec![false; self.rotated.len()];
        for e in &self.elems {
            match e {
                Elem::Tile(t) => {
                    let idx = *t as usize;
                    if idx >= seen.len() || seen[idx] {
                        return false;
                    }
                    seen[idx] = true;
                    operands += 1;
                }
                Elem::Op(_) => {
                    ops += 1;
                    if ops >= operands {
                        return false;
                    }
                }
            }
        }
        operands == self.rotated.len() && ops + 1 == operands
    }

    /// Evaluates the floorplan over tiles of the given sizes.
    ///
    /// # Panics
    ///
    /// Panics if the expression is invalid or `tile_sizes` is shorter than
    /// the tile count.
    pub fn evaluate(&self, tile_sizes: &[(Lambda, Lambda)]) -> Evaluated {
        assert!(
            tile_sizes.len() >= self.rotated.len(),
            "a size per tile is required"
        );
        struct Node {
            width: Lambda,
            height: Lambda,
            /// (tile, x-offset, y-offset) within this node.
            tiles: Vec<(u32, Lambda, Lambda)>,
        }
        let mut stack: Vec<Node> = Vec::new();
        for e in &self.elems {
            match *e {
                Elem::Tile(t) => {
                    let (mut w, mut h) = tile_sizes[t as usize];
                    if self.rotated[t as usize] {
                        std::mem::swap(&mut w, &mut h);
                    }
                    stack.push(Node {
                        width: w,
                        height: h,
                        tiles: vec![(t, Lambda::ZERO, Lambda::ZERO)],
                    });
                }
                Elem::Op(cut) => {
                    let right = stack.pop().expect("valid expression");
                    let left = stack.pop().expect("valid expression");
                    let node = match cut {
                        Cut::Vertical => {
                            let mut tiles = left.tiles;
                            for (t, x, y) in right.tiles {
                                tiles.push((t, x + left.width, y));
                            }
                            Node {
                                width: left.width + right.width,
                                height: left.height.max(right.height),
                                tiles,
                            }
                        }
                        Cut::Horizontal => {
                            let mut tiles = left.tiles;
                            for (t, x, y) in right.tiles {
                                tiles.push((t, x, y + left.height));
                            }
                            Node {
                                width: left.width.max(right.width),
                                height: left.height + right.height,
                                tiles,
                            }
                        }
                    };
                    stack.push(node);
                }
            }
        }
        let root = stack.pop().expect("valid expression");
        assert!(stack.is_empty(), "valid expression leaves one root");
        let mut placements = vec![Rect::from_size(Lambda::ONE, Lambda::ONE); self.rotated.len()];
        for (t, x, y) in root.tiles {
            let (mut w, mut h) = tile_sizes[t as usize];
            if self.rotated[t as usize] {
                std::mem::swap(&mut w, &mut h);
            }
            placements[t as usize] = Rect::new(maestro_geom::Point::new(x, y), w, h);
        }
        Evaluated {
            width: root.width,
            height: root.height,
            placements,
        }
    }

    /// Prefix-balance validity: every prefix holds more operands than
    /// operators and the totals match. Equivalent to
    /// [`PolishExpr::is_valid`] for any element permutation of an
    /// already-valid expression (the move set never changes the element
    /// multiset, so the duplicate-tile check cannot newly fail), but
    /// allocation-free — this is what the per-move validity probe uses.
    fn balance_valid(&self) -> bool {
        let mut operands = 0usize;
        let mut ops = 0usize;
        for e in &self.elems {
            match e {
                Elem::Tile(_) => operands += 1,
                Elem::Op(_) => {
                    ops += 1;
                    if ops >= operands {
                        return false;
                    }
                }
            }
        }
        operands == self.rotated.len() && ops + 1 == operands
    }

    /// Move M1: swaps two adjacent operands (tiles adjacent in the
    /// expression, ignoring operators between them). Returns the two
    /// element indices swapped, or `None` if fewer than two tiles.
    ///
    /// The target pair is located by a counting scan — the count equals
    /// the old collected list's length, so the `nth_pair` reduction (and
    /// with it the annealing walk) is unchanged, without the per-move
    /// position `Vec`.
    pub fn swap_adjacent_operands(&mut self, nth_pair: usize) -> Option<(usize, usize)> {
        let operand_count = self
            .elems
            .iter()
            .filter(|e| matches!(e, Elem::Tile(_)))
            .count();
        if operand_count < 2 {
            return None;
        }
        let pair = nth_pair % (operand_count - 1);
        let (mut i, mut j) = (0usize, 0usize);
        let mut seen = 0usize;
        for (pos, e) in self.elems.iter().enumerate() {
            if matches!(e, Elem::Tile(_)) {
                if seen == pair {
                    i = pos;
                } else if seen == pair + 1 {
                    j = pos;
                    break;
                }
                seen += 1;
            }
        }
        self.elems.swap(i, j);
        Some((i, j))
    }

    /// Move M2: complements a maximal chain of operators starting at the
    /// `nth` operator position. Returns the range complemented.
    pub fn complement_chain(&mut self, nth_chain: usize) -> Option<(usize, usize)> {
        let is_start = |elems: &[Elem], i: usize| {
            matches!(elems[i], Elem::Op(_)) && (i == 0 || matches!(elems[i - 1], Elem::Tile(_)))
        };
        let chain_count = (0..self.elems.len())
            .filter(|&i| is_start(&self.elems, i))
            .count();
        if chain_count == 0 {
            return None;
        }
        let pick = nth_chain % chain_count;
        let mut start = 0usize;
        let mut seen = 0usize;
        for i in 0..self.elems.len() {
            if is_start(&self.elems, i) {
                if seen == pick {
                    start = i;
                    break;
                }
                seen += 1;
            }
        }
        let mut end = start;
        while end < self.elems.len() {
            match self.elems[end] {
                Elem::Op(c) => {
                    self.elems[end] = Elem::Op(c.flipped());
                    end += 1;
                }
                Elem::Tile(_) => break,
            }
        }
        Some((start, end))
    }

    /// Undoes a prior [`PolishExpr::complement_chain`] over the same range.
    pub fn uncomplement(&mut self, range: (usize, usize)) {
        for i in range.0..range.1 {
            if let Elem::Op(c) = self.elems[i] {
                self.elems[i] = Elem::Op(c.flipped());
            }
        }
    }

    /// Move M3: swaps an adjacent operand–operator pair at the `nth`
    /// such boundary, if the result remains a valid expression. Returns
    /// the swapped indices.
    ///
    /// Each probe re-scans for the boundary position from the unmodified
    /// expression (failed swaps are undone first), so the positions match
    /// the old collected list; the validity probe checks prefix balance
    /// only — a swap preserves the element multiset, so that is the whole
    /// of [`PolishExpr::is_valid`] that can change.
    pub fn swap_operand_operator(&mut self, nth_boundary: usize) -> Option<(usize, usize)> {
        let is_boundary = |elems: &[Elem], i: usize| {
            matches!(elems[i], Elem::Tile(_)) && matches!(elems[i + 1], Elem::Op(_))
        };
        let boundary_count = (0..self.elems.len().saturating_sub(1))
            .filter(|&i| is_boundary(&self.elems, i))
            .count();
        if boundary_count == 0 {
            return None;
        }
        for probe in 0..boundary_count {
            let nth = (nth_boundary + probe) % boundary_count;
            let mut seen = 0usize;
            for i in 0..self.elems.len() - 1 {
                if is_boundary(&self.elems, i) {
                    if seen == nth {
                        self.elems.swap(i, i + 1);
                        if self.balance_valid() {
                            return Some((i, i + 1));
                        }
                        self.elems.swap(i, i + 1);
                        break;
                    }
                    seen += 1;
                }
            }
        }
        None
    }

    /// Move M4: toggles one tile's rotation. Returns the tile index.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn flip_rotation(&mut self, tile: usize) -> usize {
        self.rotated[tile] = !self.rotated[tile];
        tile
    }

    /// Swaps two elements back (undo for M1/M3).
    pub fn unswap(&mut self, pair: (usize, usize)) {
        self.elems.swap(pair.0, pair.1);
    }

    /// Builds an incremental evaluator for this expression — the
    /// delta-update counterpart of [`PolishExpr::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if the expression is invalid or `tile_sizes` is shorter
    /// than the tile count.
    pub fn delta_eval(&self, tile_sizes: &[(Lambda, Lambda)]) -> DeltaEval {
        assert!(
            tile_sizes.len() >= self.rotated.len(),
            "a size per tile is required"
        );
        let mut eval = DeltaEval {
            post: IncrementalPostfix::build(
                self.elems.len(),
                tok_at(&self.elems),
                leaf_at(self, tile_sizes),
                combine,
            ),
            ox: Vec::new(),
            oy: Vec::new(),
            placements: Vec::new(),
            changed_tiles: Vec::new(),
            undo_origins: Vec::new(),
            undo_placements: Vec::new(),
            descent: Vec::new(),
        };
        eval.derive_all(self);
        eval
    }
}

/// `elems` as abstract postfix tokens (vertical cut = op 0).
fn tok_at(elems: &[Elem]) -> impl Fn(usize) -> Tok + '_ {
    |i| match elems[i] {
        Elem::Tile(t) => Tok::Operand(t),
        Elem::Op(Cut::Vertical) => Tok::Op(0),
        Elem::Op(Cut::Horizontal) => Tok::Op(1),
    }
}

/// Leaf dimensions under the expression's current rotation flags.
fn leaf_at<'a>(
    expr: &'a PolishExpr,
    tile_sizes: &'a [(Lambda, Lambda)],
) -> impl Fn(u32) -> (Lambda, Lambda) + 'a {
    |t| {
        let (w, h) = tile_sizes[t as usize];
        if expr.rotated[t as usize] {
            (h, w)
        } else {
            (w, h)
        }
    }
}

/// The slicing combine: identical arithmetic to [`PolishExpr::evaluate`].
fn combine(op: u8, l: &(Lambda, Lambda), r: &(Lambda, Lambda)) -> (Lambda, Lambda) {
    match op {
        0 => (l.0 + r.0, l.1.max(r.1)),
        _ => (l.0.max(r.0), l.1 + r.1),
    }
}

/// An incrementally maintained evaluation of a [`PolishExpr`]: subtree
/// dimensions plus absolute per-tile placements, updated per move in time
/// proportional to the touched subtree. All arithmetic is integer
/// ([`Lambda`]), so the maintained state is *bit-identical* to a fresh
/// [`PolishExpr::evaluate`] of the same expression.
///
/// The owner applies a move to the expression, then calls
/// [`DeltaEval::update`] with the touched element range; on rejection it
/// undoes the move and calls [`DeltaEval::revert`].
#[derive(Debug, Clone)]
pub struct DeltaEval {
    post: IncrementalPostfix<(Lambda, Lambda)>,
    /// Absolute origin per expression position.
    ox: Vec<Lambda>,
    oy: Vec<Lambda>,
    /// Placement per tile, kept in step with the origins.
    placements: Vec<Rect>,
    /// Tiles whose placement changed in the last update/rebuild.
    changed_tiles: Vec<u32>,
    // Undo journals for the placement layer (the parse/value journal
    // lives inside `post`).
    undo_origins: Vec<(u32, Lambda, Lambda)>,
    undo_placements: Vec<(u32, Rect)>,
    /// Descent scratch, kept to avoid per-move allocation.
    descent: Vec<(u32, Lambda, Lambda)>,
}

impl DeltaEval {
    /// Overall bounding width.
    pub fn width(&self) -> Lambda {
        self.post.root_val().0
    }

    /// Overall bounding height.
    pub fn height(&self) -> Lambda {
        self.post.root_val().1
    }

    /// Bounding-box area.
    pub fn area(&self) -> LambdaArea {
        self.width() * self.height()
    }

    /// Placement of each tile, indexed like the tile list.
    pub fn placements(&self) -> &[Rect] {
        &self.placements
    }

    /// Tiles re-placed by the most recent [`DeltaEval::update`] (or all
    /// tiles after a build/rebuild).
    pub fn changed_tiles(&self) -> &[u32] {
        &self.changed_tiles
    }

    /// Current expression position of `tile`'s operand.
    pub fn tile_pos(&self, tile: usize) -> usize {
        self.post.operand_pos(tile as u32) as usize
    }

    /// Snapshots the evaluation in [`PolishExpr::evaluate`]'s format.
    pub fn to_evaluated(&self) -> Evaluated {
        Evaluated {
            width: self.width(),
            height: self.height(),
            placements: self.placements.clone(),
        }
    }

    /// Delta-updates after `expr` changed within element positions
    /// `lo..=hi` (inclusive): recomputes the covering subtree's
    /// dimensions, then re-derives origins only where they moved.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds for the expression.
    pub fn update(
        &mut self,
        expr: &PolishExpr,
        tile_sizes: &[(Lambda, Lambda)],
        lo: usize,
        hi: usize,
    ) {
        let result = self.post.update(
            tok_at(&expr.elems),
            leaf_at(expr, tile_sizes),
            combine,
            lo,
            hi,
        );
        self.undo_origins.clear();
        self.undo_placements.clear();
        self.replace_from(expr, result);
    }

    /// Recomputes placements below `result.anchor`, skipping subtrees
    /// whose origin is unchanged and whose span the move did not touch.
    fn replace_from(&mut self, expr: &PolishExpr, result: UpdateResult) {
        self.changed_tiles.clear();
        let anchor = result.anchor;
        let (s, e) = result.span;
        self.descent.clear();
        self.descent
            .push((anchor, self.ox[anchor as usize], self.oy[anchor as usize]));
        while let Some((p, x, y)) = self.descent.pop() {
            let untouched = self.post.span_start(p) > e || p < s;
            if untouched && self.ox[p as usize] == x && self.oy[p as usize] == y {
                continue;
            }
            if self.ox[p as usize] != x || self.oy[p as usize] != y {
                self.undo_origins
                    .push((p, self.ox[p as usize], self.oy[p as usize]));
                self.ox[p as usize] = x;
                self.oy[p as usize] = y;
            }
            self.visit(expr, p, x, y);
        }
    }

    /// Places a leaf or pushes an operator's children at their origins.
    fn visit(&mut self, expr: &PolishExpr, p: u32, x: Lambda, y: Lambda) {
        match expr.elems[p as usize] {
            Elem::Tile(t) => {
                let (w, h) = *self.post.val(p);
                let rect = Rect::new(Point::new(x, y), w, h);
                if self.placements[t as usize] != rect {
                    self.undo_placements.push((t, self.placements[t as usize]));
                    self.placements[t as usize] = rect;
                    self.changed_tiles.push(t);
                }
            }
            Elem::Op(cut) => {
                let (l, r) = self.post.kids(p);
                let ldim = *self.post.val(l);
                match cut {
                    Cut::Vertical => {
                        self.descent.push((l, x, y));
                        self.descent.push((r, x + ldim.0, y));
                    }
                    Cut::Horizontal => {
                        self.descent.push((l, x, y));
                        self.descent.push((r, x, y + ldim.1));
                    }
                }
            }
        }
    }

    /// Restores the state before the most recent [`DeltaEval::update`];
    /// the caller must already have undone the expression move. A no-op
    /// when nothing was journaled.
    pub fn revert(&mut self) {
        self.post.revert();
        for (p, x, y) in self.undo_origins.drain(..).rev() {
            self.ox[p as usize] = x;
            self.oy[p as usize] = y;
        }
        for (t, rect) in self.undo_placements.drain(..).rev() {
            self.placements[t as usize] = rect;
        }
    }

    /// Drops the undo journals so a following [`DeltaEval::revert`] is a
    /// no-op — for moves that did not change the expression.
    pub fn clear_undo(&mut self) {
        self.post.clear_undo();
        self.undo_origins.clear();
        self.undo_placements.clear();
    }

    /// Fully re-evaluates `expr` from scratch (e.g. after wholesale
    /// expression replacement), reusing buffers.
    pub fn rebuild(&mut self, expr: &PolishExpr, tile_sizes: &[(Lambda, Lambda)]) {
        self.post.rebuild(
            expr.elems.len(),
            tok_at(&expr.elems),
            leaf_at(expr, tile_sizes),
            combine,
        );
        self.undo_origins.clear();
        self.undo_placements.clear();
        self.derive_all(expr);
    }

    /// Derives every origin and placement top-down from the root.
    fn derive_all(&mut self, expr: &PolishExpr) {
        let len = expr.elems.len();
        self.ox.clear();
        self.ox.resize(len, Lambda::ZERO);
        self.oy.clear();
        self.oy.resize(len, Lambda::ZERO);
        self.placements.clear();
        self.placements
            .resize(expr.tile_count(), Rect::from_size(Lambda::ONE, Lambda::ONE));
        self.changed_tiles.clear();
        self.descent.clear();
        self.descent
            .push((self.post.root(), Lambda::ZERO, Lambda::ZERO));
        while let Some((p, x, y)) = self.descent.pop() {
            self.ox[p as usize] = x;
            self.oy[p as usize] = y;
            match expr.elems[p as usize] {
                Elem::Tile(t) => {
                    let (w, h) = *self.post.val(p);
                    self.placements[t as usize] = Rect::new(Point::new(x, y), w, h);
                    self.changed_tiles.push(t);
                }
                Elem::Op(_) => self.visit(expr, p, x, y),
            }
        }
        self.changed_tiles.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(list: &[(i64, i64)]) -> Vec<(Lambda, Lambda)> {
        list.iter()
            .map(|&(w, h)| (Lambda::new(w), Lambda::new(h)))
            .collect()
    }

    #[test]
    fn initial_expression_is_valid_for_many_sizes() {
        for n in 1..=40 {
            let e = PolishExpr::initial(n);
            assert!(e.is_valid(), "n={n}: {:?}", e.elems());
            assert_eq!(e.tile_count(), n);
        }
    }

    #[test]
    fn single_tile_evaluates_to_itself() {
        let e = PolishExpr::initial(1);
        let ev = e.evaluate(&sizes(&[(10, 4)]));
        assert_eq!(ev.width, Lambda::new(10));
        assert_eq!(ev.height, Lambda::new(4));
        assert_eq!(ev.area(), LambdaArea::new(40));
    }

    #[test]
    fn vertical_cut_adds_widths() {
        let e = PolishExpr {
            elems: vec![Elem::Tile(0), Elem::Tile(1), Elem::Op(Cut::Vertical)],
            rotated: vec![false, false],
        };
        let ev = e.evaluate(&sizes(&[(10, 4), (6, 8)]));
        assert_eq!(ev.width, Lambda::new(16));
        assert_eq!(ev.height, Lambda::new(8));
        // Right child offset by left width.
        assert_eq!(ev.placements[1].origin().x, Lambda::new(10));
    }

    #[test]
    fn horizontal_cut_adds_heights() {
        let e = PolishExpr {
            elems: vec![Elem::Tile(0), Elem::Tile(1), Elem::Op(Cut::Horizontal)],
            rotated: vec![false, false],
        };
        let ev = e.evaluate(&sizes(&[(10, 4), (6, 8)]));
        assert_eq!(ev.width, Lambda::new(10));
        assert_eq!(ev.height, Lambda::new(12));
        assert_eq!(ev.placements[1].origin().y, Lambda::new(4));
    }

    #[test]
    fn rotation_swaps_tile_dimensions() {
        let mut e = PolishExpr::initial(1);
        e.flip_rotation(0);
        let ev = e.evaluate(&sizes(&[(10, 4)]));
        assert_eq!((ev.width, ev.height), (Lambda::new(4), Lambda::new(10)));
    }

    #[test]
    fn placements_never_overlap() {
        let tile_sizes = sizes(&[(10, 4), (6, 8), (5, 5), (7, 3), (2, 9)]);
        let mut e = PolishExpr::initial(5);
        // Shake the expression with every move type.
        e.swap_adjacent_operands(1);
        e.complement_chain(0);
        e.swap_operand_operator(2);
        e.flip_rotation(3);
        assert!(e.is_valid());
        let ev = e.evaluate(&tile_sizes);
        for i in 0..5 {
            for j in i + 1..5 {
                assert!(
                    !ev.placements[i].overlaps_strictly(ev.placements[j]),
                    "tiles {i} and {j} overlap: {} vs {}",
                    ev.placements[i],
                    ev.placements[j]
                );
            }
        }
        // All inside the bounding box.
        for p in &ev.placements {
            assert!(p.top_right().x <= ev.width && p.top_right().y <= ev.height);
        }
    }

    #[test]
    fn moves_preserve_validity_and_are_undoable() {
        let mut e = PolishExpr::initial(6);
        let snapshot = e.clone();
        if let Some(pair) = e.swap_adjacent_operands(2) {
            assert!(e.is_valid());
            e.unswap(pair);
            assert_eq!(e, snapshot);
        }
        if let Some(range) = e.complement_chain(1) {
            assert!(e.is_valid());
            e.uncomplement(range);
            assert_eq!(e, snapshot);
        }
        if let Some(pair) = e.swap_operand_operator(0) {
            assert!(e.is_valid());
            e.unswap(pair);
            assert_eq!(e, snapshot);
        }
        let t = e.flip_rotation(4);
        e.flip_rotation(t);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn swap_operand_operator_balance_probe_keeps_full_validity() {
        // The M3 probe checks prefix balance only; the result must still
        // satisfy the full validity predicate (multiset included).
        for n in [2usize, 3, 5, 9] {
            let mut e = PolishExpr::initial(n);
            for nth in 0..2 * n {
                if let Some(pair) = e.swap_operand_operator(nth) {
                    assert!(e.is_valid(), "n={n} nth={nth}: {:?}", e.elems());
                    e.unswap(pair);
                }
                assert!(e.is_valid());
            }
        }
    }

    #[test]
    fn area_conservation_tiles_fit_in_bounding_box() {
        let tile_sizes = sizes(&[(3, 3), (4, 2), (2, 5), (6, 1)]);
        let e = PolishExpr::initial(4);
        let ev = e.evaluate(&tile_sizes);
        let tile_area: i64 = tile_sizes.iter().map(|(w, h)| w.get() * h.get()).sum();
        assert!(ev.area().get() >= tile_area);
    }

    /// Drives a [`DeltaEval`] through every Wong–Liu move kind with
    /// random accept/reject decisions; after each step the incremental
    /// state must equal a fresh [`PolishExpr::evaluate`].
    #[test]
    fn delta_eval_matches_full_evaluate_under_random_moves() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for n in [1usize, 2, 3, 7, 12] {
            let tile_sizes: Vec<(Lambda, Lambda)> = (0..n)
                .map(|i| {
                    (
                        Lambda::new(3 + (i as i64 * 7) % 11),
                        Lambda::new(2 + (i as i64 * 5) % 9),
                    )
                })
                .collect();
            let mut e = PolishExpr::initial(n);
            let mut eval = e.delta_eval(&tile_sizes);
            let mut rng = StdRng::seed_from_u64(n as u64);
            for step in 0..300 {
                let before = e.clone();
                let range = match rng.gen_range(0..4u8) {
                    0 => e
                        .swap_adjacent_operands(rng.gen_range(0..n.max(2)))
                        .map(|(i, j)| (i.min(j), i.max(j))),
                    1 => e
                        .complement_chain(rng.gen_range(0..n.max(1)))
                        .map(|(s, end)| (s, end - 1)),
                    2 => e
                        .swap_operand_operator(rng.gen_range(0..n.max(1)))
                        .map(|(i, j)| (i.min(j), i.max(j))),
                    _ => {
                        let t = e.flip_rotation(rng.gen_range(0..n));
                        let p = e
                            .elems
                            .iter()
                            .position(|el| *el == Elem::Tile(t as u32))
                            .unwrap();
                        Some((p, p))
                    }
                };
                let Some((lo, hi)) = range else {
                    continue;
                };
                eval.update(&e, &tile_sizes, lo, hi);
                let reference = e.evaluate(&tile_sizes);
                assert_eq!(eval.to_evaluated(), reference, "n={n} step={step}");
                if rng.gen_bool(0.4) {
                    // Reject: undo the move and revert the evaluation.
                    e = before;
                    eval.revert();
                    assert_eq!(
                        eval.to_evaluated(),
                        e.evaluate(&tile_sizes),
                        "n={n} step={step} revert"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_eval_rebuild_resets_to_any_expression() {
        let tile_sizes = sizes(&[(10, 4), (6, 8), (5, 5), (7, 3)]);
        let mut e = PolishExpr::initial(4);
        let mut eval = e.delta_eval(&tile_sizes);
        e.swap_adjacent_operands(1);
        e.complement_chain(0);
        eval.rebuild(&e, &tile_sizes);
        assert_eq!(eval.to_evaluated(), e.evaluate(&tile_sizes));
        let mut all: Vec<u32> = eval.changed_tiles().to_vec();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "rebuild re-places every tile");
    }

    #[test]
    fn invalid_expressions_detected() {
        let bad = PolishExpr {
            elems: vec![Elem::Op(Cut::Vertical), Elem::Tile(0), Elem::Tile(1)],
            rotated: vec![false, false],
        };
        assert!(!bad.is_valid());
        let dup = PolishExpr {
            elems: vec![Elem::Tile(0), Elem::Tile(0), Elem::Op(Cut::Vertical)],
            rotated: vec![false, false],
        };
        assert!(!dup.is_valid());
    }
}
