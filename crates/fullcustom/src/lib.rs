//! Full-custom transistor-level layout synthesis — the stand-in for the
//! manually drawn Newkirk & Mathews layouts of the paper's Table 1.
//!
//! The paper compares its full-custom estimates against hand layouts in
//! Mead–Conway nMOS (λ = 2.5 µm). Those artworks no longer exist in
//! machine-readable form, so this crate *synthesizes* a dense,
//! rule-respecting layout for each experiment circuit and reports its
//! area as the "real" value:
//!
//! 1. each transistor becomes a rectangular **tile** sized by the process
//!    design rules ([`maestro_tech::DeviceTemplate`]);
//! 2. tiles are packed by a **slicing floorplan** — a Polish expression
//!    annealed with the classic Wong–Liu moves plus per-tile rotation
//!    ([`polish`], [`synthesize`]) — minimizing bounding area plus a
//!    wirelength term;
//! 3. interconnect area is then allocated from the placement's actual net
//!    bounding boxes ([`wiring`]): each net contributes its half-perimeter
//!    wirelength times the metal pitch, derated by a sharing factor, the
//!    way a careful manual designer reuses space over diffusion and
//!    between tiles.
//!
//! The result, [`FcLayout`], is the "Real Area" / "Real Aspect Ratio"
//! column of Table 1: deterministic per seed, reproducible, and — like a
//! human layout — denser than the tile bounding box alone would suggest.
//!
//! # Examples
//!
//! ```
//! use maestro_fullcustom::{synthesize, SynthesisParams};
//! use maestro_netlist::library_circuits;
//! use maestro_tech::builtin;
//!
//! let tech = builtin::nmos25();
//! let module = library_circuits::nmos_decoder2to4();
//! let layout = synthesize(&module, &tech, &SynthesisParams::quick())?;
//! assert!(layout.area().get() > 0);
//! # Ok::<(), maestro_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod polish;
pub mod synthesize;
pub mod warm;
pub mod wiring;

pub use synthesize::{
    synthesize, synthesize_full_refresh, synthesize_seeded, FcLayout, SynthSeed, SynthesisParams,
};
pub use warm::WarmStore;
