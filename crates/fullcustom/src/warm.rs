//! Session-scoped persistence of winning synthesis seeds.
//!
//! A serve daemon (or any long-lived caller) keeps one [`WarmStore`] and
//! threads the [`SynthSeed`] won by each synthesis back in, so the next
//! layout request for the same module — typically after a small ECO edit
//! — warm-starts from the prior solution instead of annealing from
//! scratch.
//!
//! Seeds are keyed by (module name, technology revision): an edited
//! module keeps its name, and the seed survives precisely because the
//! fingerprint changed — [`crate::synthesize_seeded`] revalidates the
//! seed against the new tile set, so a stale seed degrades to a cold
//! start, never to a wrong layout.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::synthesize::SynthSeed;

/// Default entry cap for [`WarmStore`].
pub const DEFAULT_WARM_CAPACITY: usize = 1024;

/// Bounded map of the most recent winning seed per (module name,
/// technology revision).
#[derive(Debug)]
pub struct WarmStore {
    seeds: Mutex<HashMap<(String, u64), (SynthSeed, u64)>>,
    capacity: usize,
    tick: std::sync::atomic::AtomicU64,
}

impl Default for WarmStore {
    fn default() -> Self {
        WarmStore::with_capacity(DEFAULT_WARM_CAPACITY)
    }
}

impl WarmStore {
    /// An empty store with the default cap ([`DEFAULT_WARM_CAPACITY`]).
    pub fn new() -> Self {
        WarmStore::default()
    }

    /// An empty store holding at most `capacity` seeds (clamped to at
    /// least 1); the least-recently-touched seed is dropped when a new
    /// insertion would exceed the cap.
    pub fn with_capacity(capacity: usize) -> Self {
        WarmStore {
            seeds: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// The stored seed for a module under a technology revision, if any.
    pub fn get(&self, module_name: &str, tech_revision: u64) -> Option<SynthSeed> {
        let now = self.next_tick();
        let mut seeds = self.seeds.lock().expect("warm store poisoned");
        seeds
            .get_mut(&(module_name.to_owned(), tech_revision))
            .map(|(seed, used)| {
                *used = now;
                seed.clone()
            })
    }

    /// Stores (or replaces) a module's winning seed.
    pub fn put(&self, module_name: &str, tech_revision: u64, seed: SynthSeed) {
        let now = self.next_tick();
        let key = (module_name.to_owned(), tech_revision);
        let mut seeds = self.seeds.lock().expect("warm store poisoned");
        if !seeds.contains_key(&key) && seeds.len() >= self.capacity {
            if let Some(victim) = seeds
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                seeds.remove(&victim);
            }
        }
        seeds.insert(key, (seed, now));
    }

    /// Number of seeds currently stored.
    pub fn len(&self) -> usize {
        self.seeds.lock().expect("warm store poisoned").len()
    }

    /// True when no seeds are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize::{synthesize_seeded, SynthesisParams};
    use maestro_netlist::library_circuits;
    use maestro_tech::builtin;

    fn seed_for(stages: usize) -> SynthSeed {
        let m = library_circuits::pass_chain(stages);
        let (_, seed) =
            synthesize_seeded(&m, &builtin::nmos25(), &SynthesisParams::quick(), None).unwrap();
        seed
    }

    #[test]
    fn round_trips_and_keys_by_name_and_revision() {
        let store = WarmStore::new();
        let seed = seed_for(3);
        store.put("chain", 7, seed.clone());
        assert_eq!(store.get("chain", 7), Some(seed));
        assert_eq!(store.get("chain", 8), None);
        assert_eq!(store.get("other", 7), None);
    }

    #[test]
    fn capacity_evicts_the_least_recently_touched() {
        let store = WarmStore::with_capacity(2);
        store.put("a", 0, seed_for(2));
        store.put("b", 0, seed_for(3));
        // Touch "a" so "b" is the victim.
        assert!(store.get("a", 0).is_some());
        store.put("c", 0, seed_for(4));
        assert_eq!(store.len(), 2);
        assert!(store.get("a", 0).is_some());
        assert!(store.get("b", 0).is_none());
        assert!(store.get("c", 0).is_some());
    }
}
