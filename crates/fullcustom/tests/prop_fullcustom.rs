//! Property-based tests for the slicing-floorplan machinery: any sequence
//! of annealing moves must preserve expression validity, and every
//! evaluation must be a packing (disjoint tiles inside the bounding box).

use maestro_fullcustom::polish::PolishExpr;
use maestro_geom::Lambda;
use proptest::prelude::*;

fn tile_sizes(dims: &[(i64, i64)]) -> Vec<(Lambda, Lambda)> {
    dims.iter()
        .map(|&(w, h)| (Lambda::new(w), Lambda::new(h)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_move_sequences_preserve_validity(
        dims in proptest::collection::vec((2i64..40, 2i64..40), 1..12),
        moves in proptest::collection::vec((0u8..4, 0usize..64), 0..40),
    ) {
        let mut expr = PolishExpr::initial(dims.len());
        for &(kind, arg) in &moves {
            match kind {
                0 => {
                    expr.swap_adjacent_operands(arg);
                }
                1 => {
                    expr.complement_chain(arg);
                }
                2 => {
                    expr.swap_operand_operator(arg);
                }
                _ => {
                    expr.flip_rotation(arg % dims.len());
                }
            }
            prop_assert!(expr.is_valid(), "invalid after {kind}/{arg}: {:?}", expr.elems());
        }
    }

    #[test]
    fn every_evaluation_is_a_packing(
        dims in proptest::collection::vec((2i64..40, 2i64..40), 1..12),
        moves in proptest::collection::vec((0u8..4, 0usize..64), 0..30),
    ) {
        let sizes = tile_sizes(&dims);
        let mut expr = PolishExpr::initial(dims.len());
        for &(kind, arg) in &moves {
            match kind {
                0 => {
                    expr.swap_adjacent_operands(arg);
                }
                1 => {
                    expr.complement_chain(arg);
                }
                2 => {
                    expr.swap_operand_operator(arg);
                }
                _ => {
                    expr.flip_rotation(arg % dims.len());
                }
            }
        }
        let ev = expr.evaluate(&sizes);
        // Disjoint tiles…
        for i in 0..dims.len() {
            for j in i + 1..dims.len() {
                prop_assert!(
                    !ev.placements[i].overlaps_strictly(ev.placements[j]),
                    "tiles {i}/{j} overlap: {} vs {}",
                    ev.placements[i],
                    ev.placements[j]
                );
            }
        }
        // …inside the bounding box…
        for p in &ev.placements {
            prop_assert!(p.top_right().x <= ev.width);
            prop_assert!(p.top_right().y <= ev.height);
        }
        // …whose area is at least the tile sum.
        let tile_area: i64 = ev.placements.iter().map(|p| p.area().get()).sum();
        prop_assert!(ev.area().get() >= tile_area);
        // Rotation flags preserve per-tile area.
        for (i, &(w, h)) in dims.iter().enumerate() {
            prop_assert_eq!(ev.placements[i].area().get(), w * h);
        }
    }

    #[test]
    fn moves_are_exactly_undoable(
        dims in proptest::collection::vec((2i64..20, 2i64..20), 2..10),
        seed in 0usize..64,
    ) {
        let mut expr = PolishExpr::initial(dims.len());
        let snapshot = expr.clone();
        if let Some(pair) = expr.swap_adjacent_operands(seed) {
            expr.unswap(pair);
            prop_assert_eq!(&expr, &snapshot);
        }
        if let Some(range) = expr.complement_chain(seed) {
            expr.uncomplement(range);
            prop_assert_eq!(&expr, &snapshot);
        }
        if let Some(pair) = expr.swap_operand_operator(seed) {
            expr.unswap(pair);
            prop_assert_eq!(&expr, &snapshot);
        }
        let t = expr.flip_rotation(seed % dims.len());
        expr.flip_rotation(t);
        prop_assert_eq!(&expr, &snapshot);
    }
}
