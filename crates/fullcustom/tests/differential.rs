//! Differential proof of the incremental (delta) cost evaluator: the
//! annealed result must be bit-identical to the full-refresh reference
//! for every Table 1 circuit under the default schedule — same RNG draw
//! sequence, same accept/reject decisions, same final layout.

use maestro_fullcustom::{synthesize, synthesize_full_refresh, SynthesisParams};
use maestro_netlist::library_circuits;
use maestro_tech::builtin;

#[test]
fn delta_and_full_refresh_synthesize_identical_table1_layouts() {
    let tech = builtin::nmos25();
    for m in library_circuits::table1_suite() {
        let delta = synthesize(&m, &tech, &SynthesisParams::default()).unwrap();
        let full = synthesize_full_refresh(&m, &tech, &SynthesisParams::default()).unwrap();
        assert_eq!(delta, full, "{} diverged from the reference path", m.name());
    }
}

#[test]
fn replica_runs_keep_delta_and_full_refresh_identical() {
    // The best-of reduction must pick the same winner whichever cost
    // evaluator the replicas ran on — each walk's draw sequence and
    // accept/reject decisions are evaluator-independent.
    let tech = builtin::nmos25();
    let params = SynthesisParams {
        replicas: 4,
        ..SynthesisParams::quick()
    };
    for m in library_circuits::table1_suite() {
        let delta = synthesize(&m, &tech, &params).unwrap();
        let full = synthesize_full_refresh(&m, &tech, &params).unwrap();
        assert_eq!(
            delta,
            full,
            "{} diverged from the reference path at replicas=4",
            m.name()
        );
    }
}
