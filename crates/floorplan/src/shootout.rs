//! The cross-backend shootout: every registered [`FloorplanBackend`]
//! over a fixed case suite, with a CI quality gate.
//!
//! `maestro-cli shootout` runs [`paper_cases`] (the Table 1+2 blocks
//! plus generated chips) through [`ShootoutReport::run`] and writes
//! `SHOOTOUT_<label>.json`. Against a committed `SHOOTOUT_baseline.json`,
//! [`regressions`] fails any backend whose area or wirelength grew more
//! than the allowed fraction on any case — the quality analogue of the
//! `perf-report --baseline` trace gate. Wall time is *recorded* per run
//! but never gated: quality metrics are deterministic across machines,
//! timing is not.

use std::fmt::Write as _;
use std::time::Instant;

use maestro_estimator::pipeline::Pipeline;
use maestro_geom::LambdaArea;
use maestro_netlist::{generate, library_circuits, Module};
use serde::{Deserialize, Serialize};

use crate::backend::FloorplanBackend;
use crate::connectivity::ChipNetlist;
use crate::Block;

/// One shootout workload: named blocks plus their global connectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct ShootoutCase {
    /// Case name, stable across runs (it keys the baseline diff).
    pub name: String,
    /// The blocks to floorplan.
    pub blocks: Vec<Block>,
    /// Global nets over the blocks (may be empty).
    pub netlist: ChipNetlist,
}

/// One backend's measured result on one case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendResult {
    /// Backend registry name.
    pub backend: String,
    /// Chip area in λ².
    pub area: i64,
    /// Chip width in λ.
    pub width: i64,
    /// Chip height in λ.
    pub height: i64,
    /// Normalized chip aspect ratio (long side ÷ short side).
    pub aspect: f64,
    /// Global HPWL over the case netlist, in λ.
    pub wirelength: i64,
    /// Σ placed block areas ÷ chip area.
    pub utilization: f64,
    /// Wall time of the backend run in µs (recorded, never gated).
    pub wall_us: u64,
    /// The backend's own work counters.
    pub counters: Vec<(String, u64)>,
}

/// One case's results across every backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    /// Case name.
    pub name: String,
    /// Block count.
    pub blocks: usize,
    /// Global net count.
    pub nets: usize,
    /// Per-backend results, in registry order.
    pub results: Vec<BackendResult>,
}

/// The full shootout report, serialized as `SHOOTOUT_<label>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShootoutReport {
    /// Run label (CLI `--label`).
    pub label: String,
    /// Per-case results.
    pub cases: Vec<CaseReport>,
}

impl ShootoutReport {
    /// Runs every backend over every case, measuring quality and wall
    /// time per run under a `floorplan.shootout` trace span.
    pub fn run(
        label: impl Into<String>,
        cases: &[ShootoutCase],
        backends: &[Box<dyn FloorplanBackend>],
    ) -> ShootoutReport {
        let _span = maestro_trace::span_with("floorplan.shootout", || {
            format!("cases={} backends={}", cases.len(), backends.len())
        });
        let cases = cases
            .iter()
            .map(|case| {
                let results = backends
                    .iter()
                    .map(|backend| {
                        let start = Instant::now();
                        let run = backend.plan(&case.blocks, Some(&case.netlist));
                        let wall_us = start.elapsed().as_micros() as u64;
                        let plan = &run.plan;
                        let w = plan.width().as_f64();
                        let h = plan.height().as_f64();
                        BackendResult {
                            backend: backend.name().to_owned(),
                            area: plan.area().get(),
                            width: plan.width().get(),
                            height: plan.height().get(),
                            aspect: if w > 0.0 && h > 0.0 {
                                (w / h).max(h / w)
                            } else {
                                1.0
                            },
                            wirelength: case.netlist.wirelength(plan).get(),
                            utilization: plan.utilization(),
                            wall_us,
                            counters: run.counters,
                        }
                    })
                    .collect();
                CaseReport {
                    name: case.name.clone(),
                    blocks: case.blocks.len(),
                    nets: case.netlist.nets().len(),
                    results,
                }
            })
            .collect();
        ShootoutReport {
            label: label.into(),
            cases,
        }
    }

    /// Serializes the report to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("shootout report serializes")
    }

    /// Parses a report back from its JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse failure as a message.
    pub fn from_json(text: &str) -> Result<ShootoutReport, String> {
        serde_json::from_str(text).map_err(|e| format!("shootout report: {e}"))
    }

    /// Renders the human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "shootout `{}`", self.label).expect("string write");
        for case in &self.cases {
            writeln!(
                out,
                "\ncase {} ({} blocks, {} nets)",
                case.name, case.blocks, case.nets
            )
            .expect("string write");
            writeln!(
                out,
                "  {:<16} {:>12} {:>10} {:>8} {:>6} {:>10}",
                "backend", "area λ²", "wl λ", "aspect", "util", "wall"
            )
            .expect("string write");
            for r in &case.results {
                writeln!(
                    out,
                    "  {:<16} {:>12} {:>10} {:>8.2} {:>5.0}% {:>7} µs",
                    r.backend,
                    r.area,
                    r.wirelength,
                    r.aspect,
                    r.utilization * 100.0,
                    r.wall_us
                )
                .expect("string write");
            }
        }
        out
    }

    fn result(&self, case: &str, backend: &str) -> Option<&BackendResult> {
        self.cases
            .iter()
            .find(|c| c.name == case)
            .and_then(|c| c.results.iter().find(|r| r.backend == backend))
    }
}

/// Compares `current` against `baseline`: one finding per (case,
/// backend) whose area or wirelength grew more than `max_growth`
/// (a fraction, e.g. `0.05`), plus one per baseline entry missing from
/// the current run (a silently dropped backend must not pass the gate).
/// Entries new in `current` are exempt — that is how a new backend
/// lands before its first baseline refresh.
pub fn regressions(
    current: &ShootoutReport,
    baseline: &ShootoutReport,
    max_growth: f64,
) -> Vec<String> {
    let mut found = Vec::new();
    for case in &baseline.cases {
        for base in &case.results {
            let Some(cur) = current.result(&case.name, &base.backend) else {
                found.push(format!(
                    "{}/{}: present in baseline but missing from current run",
                    case.name, base.backend
                ));
                continue;
            };
            let mut check = |metric: &str, cur_v: i64, base_v: i64| {
                if base_v <= 0 {
                    return;
                }
                let growth = (cur_v - base_v) as f64 / base_v as f64;
                if growth > max_growth {
                    found.push(format!(
                        "{}/{}: {metric} {cur_v} vs baseline {base_v} (+{:.1}%, limit {:.1}%)",
                        case.name,
                        base.backend,
                        growth * 100.0,
                        max_growth * 100.0
                    ));
                }
            };
            check("area", cur.area, base.area);
            check("wirelength", cur.wirelength, base.wirelength);
        }
    }
    found
}

/// A chain netlist 0–1, 1–2, … plus one net spanning first and last
/// block: enough structure that wirelength differentiates orderings.
fn chain_netlist(n: usize) -> ChipNetlist {
    let mut netlist = ChipNetlist::new();
    for i in 1..n as u32 {
        netlist.add_net([i - 1, i]);
    }
    if n > 2 {
        netlist.add_net([0, n as u32 - 1]);
    }
    netlist
}

fn blocks_from_modules(pipeline: &Pipeline, modules: &[Module]) -> Result<Vec<Block>, String> {
    let mut blocks = Vec::new();
    for module in modules {
        match Block::from_module(pipeline, module, 5).map_err(|e| e.to_string())? {
            Some(block) => blocks.push(block),
            None => return Err(format!("module `{}` yields no estimate", module.name())),
        }
    }
    Ok(blocks)
}

/// The standard shootout suite: the paper's Table 1 and Table 2 blocks
/// (shaped by the estimator, exactly the Figure 1 hand-off), their
/// union, a generated adder family, and a 24-block synthetic chip with
/// deterministic pseudo-random areas. Every case carries a chain
/// netlist so wirelength is a live metric.
///
/// # Errors
///
/// Estimation failures on the library modules (should not happen for
/// built-in technologies).
pub fn paper_cases() -> Result<Vec<ShootoutCase>, String> {
    let pipeline = Pipeline::new(maestro_tech::builtin::nmos25());
    let table1 = blocks_from_modules(&pipeline, &library_circuits::table1_suite())?;
    let table2 = blocks_from_modules(&pipeline, &library_circuits::table2_suite())?;
    let adders: Vec<Module> = (2..=5).map(generate::ripple_adder).collect();
    let adder_blocks = blocks_from_modules(&pipeline, &adders)?;
    let mut union = table1.clone();
    union.extend(table2.iter().cloned());

    // 24 soft blocks with areas from a SplitMix64 walk: a stand-in for a
    // generated chip an order of magnitude past paper scale, identical
    // on every machine.
    let mut state = 0x9e3779b97f4a7c15u64;
    let soft24: Vec<Block> = (0..24)
        .map(|i| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            Block::soft(format!("g{i}"), LambdaArea::new(800 + (z % 9200) as i64), 5)
        })
        .collect();

    let case = |name: &str, blocks: Vec<Block>| ShootoutCase {
        name: name.to_owned(),
        netlist: chain_netlist(blocks.len()),
        blocks,
    };
    Ok(vec![
        case("table1", table1),
        case("table2", table2),
        case("table1+2", union),
        case("gen-adders", adder_blocks),
        case("gen-soft24", soft24),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{registry, SpanningTree};
    use crate::PlanParams;

    fn tiny_cases() -> Vec<ShootoutCase> {
        let blocks: Vec<Block> = (0..4)
            .map(|i| Block::soft(format!("b{i}"), LambdaArea::new(1000 + 500 * i), 4))
            .collect();
        vec![ShootoutCase {
            name: "tiny".to_owned(),
            netlist: chain_netlist(blocks.len()),
            blocks,
        }]
    }

    #[test]
    fn report_round_trips_through_json() {
        let cases = tiny_cases();
        let report = ShootoutReport::run("t", &cases, &registry(&PlanParams::quick()));
        assert_eq!(report.cases.len(), 1);
        assert_eq!(report.cases[0].results.len(), 3);
        let back = ShootoutReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(back, report);
    }

    #[test]
    fn quality_metrics_are_deterministic_but_wall_time_is_free() {
        let cases = tiny_cases();
        let backends = registry(&PlanParams::quick());
        let a = ShootoutReport::run("t", &cases, &backends);
        let b = ShootoutReport::run("t", &cases, &backends);
        for (ra, rb) in a.cases[0].results.iter().zip(&b.cases[0].results) {
            assert_eq!(ra.area, rb.area, "{}", ra.backend);
            assert_eq!(ra.wirelength, rb.wirelength, "{}", ra.backend);
            assert_eq!(ra.counters, rb.counters, "{}", ra.backend);
        }
    }

    #[test]
    fn gate_fires_on_growth_and_on_missing_backends() {
        let cases = tiny_cases();
        let backends: Vec<Box<dyn FloorplanBackend>> = vec![Box::new(SpanningTree)];
        let baseline = ShootoutReport::run("base", &cases, &backends);
        // Identical run: clean.
        let current = ShootoutReport::run("cur", &cases, &backends);
        assert!(regressions(&current, &baseline, 0.05).is_empty());
        // Inflate current area beyond 5%.
        let mut worse = current.clone();
        worse.cases[0].results[0].area = baseline.cases[0].results[0].area * 2;
        let found = regressions(&worse, &baseline, 0.05);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("area"), "{found:?}");
        // Dropped backend: caught.
        let mut dropped = current.clone();
        dropped.cases[0].results.clear();
        let found = regressions(&dropped, &baseline, 0.05);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("missing"), "{found:?}");
        // A backend new in current is exempt.
        let mut extended = current.clone();
        let mut extra = extended.cases[0].results[0].clone();
        extra.backend = "brand-new".to_owned();
        extra.area *= 10;
        extended.cases[0].results.push(extra);
        assert!(regressions(&extended, &baseline, 0.05).is_empty());
    }

    #[test]
    fn paper_cases_cover_the_tables_and_generated_chips() {
        let cases = paper_cases().expect("suite builds");
        let names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            ["table1", "table2", "table1+2", "gen-adders", "gen-soft24"]
        );
        let by_name = |n: &str| cases.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("table1").blocks.len(), 5);
        assert_eq!(by_name("table2").blocks.len(), 2);
        assert_eq!(by_name("table1+2").blocks.len(), 7);
        assert_eq!(by_name("gen-soft24").blocks.len(), 24);
        for case in &cases {
            assert!(
                case.blocks.len() < 3 || !case.netlist.nets().is_empty(),
                "{} has no nets",
                case.name
            );
        }
    }
}
