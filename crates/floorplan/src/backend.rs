//! Pluggable floorplan backends.
//!
//! The slicing annealer behind [`crate::plan::floorplan`] used to be the
//! only optimizer in the repo. This module turns the floorplanner into a
//! *surface*: every optimizer implements [`FloorplanBackend`] — blocks
//! (plus optional global connectivity) in, a packed [`Floorplan`] with
//! per-backend counters out — and registers under a stable name, so new
//! contenders land PR-sized and are compared automatically by the
//! [`crate::shootout`] harness.
//!
//! Three backends ship today:
//!
//! * [`Annealing`] (`"annealing"`) — the original Polish-expression
//!   simulated annealer, re-homed behind the trait. Bit-identical to
//!   [`crate::plan::floorplan`] for the same [`PlanParams`]: it *is* the
//!   same code path.
//! * `"annealing-warm"` ([`Annealing::warm_started`]) — the same
//!   annealer seeded with the spanning-tree expression instead of the
//!   serpentine one, so the walk starts from an already-compact plan.
//! * [`SpanningTree`] (`"spanning-tree"`) — a deterministic, RNG-free
//!   compact floorplanner in the spirit of Liao/Lu/Yen's orderly-
//!   spanning-tree compaction: one area-balanced recursive bisection
//!   builds a slicing tree in O(n log n) tree steps, then one Stockmeyer
//!   pass packs it. It is the fast baseline every stochastic backend
//!   must beat, and its expression doubles as the annealer's warm start.

use std::cmp::Reverse;

use crate::connectivity::ChipNetlist;
use crate::plan::{
    eval_slicing, floorplan_seeded, serpentine_elems, Cut, Elem, EvalMode, Floorplan, PlanParams,
};
use crate::Block;

/// The result of one backend run: the plan plus whatever the backend
/// counted about its own work (evaluation tallies, tree sizes, …).
/// Counter names are backend-scoped, e.g. `anneal.evals_delta`.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendRun {
    /// The packed floorplan.
    pub plan: Floorplan,
    /// Per-backend work counters, in emission order.
    pub counters: Vec<(String, u64)>,
}

/// A floorplan optimizer: blocks in, a packed plan plus counters out.
///
/// Implementations must be deterministic for a fixed configuration —
/// the shootout gate diffs their areas and wirelengths against a
/// committed baseline, so a nondeterministic backend would flap CI.
/// The optional [`ChipNetlist`] carries global connectivity; a backend
/// that ignores wiring may disregard it (the harness still measures the
/// resulting wirelength).
pub trait FloorplanBackend: Send + Sync {
    /// The backend's stable registry name (`"annealing"`, …).
    fn name(&self) -> &'static str;

    /// Floorplans `blocks` into a packed, overlap-free arrangement.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    fn plan(&self, blocks: &[Block], netlist: Option<&ChipNetlist>) -> BackendRun;
}

/// The re-homed slicing annealer (see [`crate::plan::floorplan`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Annealing {
    params: PlanParams,
    warm_start: bool,
}

impl Annealing {
    /// The annealer with explicit parameters, cold-started from the
    /// serpentine expression — exactly [`crate::plan::floorplan`].
    pub fn with_params(params: PlanParams) -> Annealing {
        Annealing {
            params,
            warm_start: false,
        }
    }

    /// The annealer seeded with the spanning-tree expression: the walk
    /// starts from [`SpanningTree`]'s compact plan and can only keep or
    /// improve its cost (the engine restores the seed when the walk ends
    /// worse).
    pub fn warm_started(params: PlanParams) -> Annealing {
        Annealing {
            params,
            warm_start: true,
        }
    }

    /// The backend's annealing parameters.
    pub fn params(&self) -> &PlanParams {
        &self.params
    }
}

impl FloorplanBackend for Annealing {
    fn name(&self) -> &'static str {
        if self.warm_start {
            "annealing-warm"
        } else {
            "annealing"
        }
    }

    fn plan(&self, blocks: &[Block], _netlist: Option<&ChipNetlist>) -> BackendRun {
        let elems = if self.warm_start {
            spanning_elems(blocks)
        } else {
            serpentine_elems(blocks.len())
        };
        let (plan, counters) = floorplan_seeded(blocks, &self.params, EvalMode::Delta, elems);
        BackendRun {
            plan,
            counters: vec![
                ("anneal.evals_full".to_owned(), counters.evals_full),
                ("anneal.evals_delta".to_owned(), counters.evals_delta),
                ("anneal.replicas".to_owned(), self.params.replicas as u64),
                ("anneal.warm_start".to_owned(), u64::from(self.warm_start)),
            ],
        }
    }
}

/// The deterministic spanning-tree compact floorplanner: area-balanced
/// recursive bisection over blocks ordered by decreasing minimum area,
/// alternating cut direction per level, packed by one Stockmeyer pass.
/// No RNG, no iteration — a fast baseline and a warm-start seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanningTree;

impl SpanningTree {
    /// Optional chip aspect-ratio limit applied when choosing the root
    /// realization (same policy as [`PlanParams::aspect_limit`]).
    pub fn with_aspect_limit(limit: f64) -> SpanningTreeLimited {
        assert!(limit >= 1.0, "aspect limit is a normalized ratio ≥ 1");
        SpanningTreeLimited { limit }
    }
}

/// [`SpanningTree`] constrained to a chip aspect-ratio limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanningTreeLimited {
    limit: f64,
}

fn spanning_run(blocks: &[Block], aspect_limit: Option<f64>) -> BackendRun {
    assert!(!blocks.is_empty(), "cannot floorplan zero blocks");
    let _span =
        maestro_trace::span_with("floorplan.spanning", || format!("blocks={}", blocks.len()));
    maestro_trace::counter("floorplan.blocks", blocks.len() as u64);
    let elems = spanning_elems(blocks);
    let plan = eval_slicing(blocks, &elems, aspect_limit);
    let combines = (blocks.len() - 1) as u64;
    maestro_trace::counter("spanning.combines", combines);
    BackendRun {
        plan,
        counters: vec![
            ("spanning.combines".to_owned(), combines),
            ("spanning.blocks".to_owned(), blocks.len() as u64),
        ],
    }
}

impl FloorplanBackend for SpanningTree {
    fn name(&self) -> &'static str {
        "spanning-tree"
    }

    fn plan(&self, blocks: &[Block], _netlist: Option<&ChipNetlist>) -> BackendRun {
        spanning_run(blocks, None)
    }
}

impl FloorplanBackend for SpanningTreeLimited {
    fn name(&self) -> &'static str {
        "spanning-tree"
    }

    fn plan(&self, blocks: &[Block], _netlist: Option<&ChipNetlist>) -> BackendRun {
        spanning_run(blocks, Some(self.limit))
    }
}

/// The spanning-tree slicing expression over `blocks`: indices ordered
/// by decreasing minimum area (ties by index, so the order — and every
/// downstream result — is deterministic), then recursively bisected at
/// the most area-balanced split point, alternating vertical/horizontal
/// cuts per level.
pub(crate) fn spanning_elems(blocks: &[Block]) -> Vec<Elem> {
    let mut order: Vec<u32> = (0..blocks.len() as u32).collect();
    order.sort_by_key(|&i| (Reverse(blocks[i as usize].min_area().get()), i));
    let areas: Vec<i64> = order
        .iter()
        .map(|&i| blocks[i as usize].min_area().get())
        .collect();
    let mut elems = Vec::with_capacity(blocks.len() * 2);
    bisect(&order, &areas, 0, &mut elems);
    elems
}

/// Emits the postfix expression for one area-balanced bisection level.
fn bisect(order: &[u32], areas: &[i64], depth: usize, out: &mut Vec<Elem>) {
    if order.len() == 1 {
        out.push(Elem::Leaf(order[0]));
        return;
    }
    // Split after the prefix whose area is closest to half the total.
    let total: i64 = areas.iter().sum();
    let mut best_split = 1usize;
    let mut best_gap = i64::MAX;
    let mut prefix = 0i64;
    for (k, &a) in areas.iter().enumerate().take(order.len() - 1) {
        prefix += a;
        let gap = (2 * prefix - total).abs();
        if gap < best_gap {
            best_gap = gap;
            best_split = k + 1;
        }
    }
    bisect(&order[..best_split], &areas[..best_split], depth + 1, out);
    bisect(&order[best_split..], &areas[best_split..], depth + 1, out);
    out.push(Elem::Op(if depth.is_multiple_of(2) {
        Cut::Vertical
    } else {
        Cut::Horizontal
    }));
}

/// Every registered backend, in shootout order, configured with `params`
/// (the spanning tree ignores everything but the aspect limit).
pub fn registry(params: &PlanParams) -> Vec<Box<dyn FloorplanBackend>> {
    vec![
        Box::new(Annealing::with_params(params.clone())),
        Box::new(Annealing::warm_started(params.clone())),
        spanning_boxed(params),
    ]
}

fn spanning_boxed(params: &PlanParams) -> Box<dyn FloorplanBackend> {
    match params.aspect_limit {
        Some(limit) => Box::new(SpanningTree::with_aspect_limit(limit)),
        None => Box::new(SpanningTree),
    }
}

/// Resolves a backend by registry name, configured with `params`.
/// Returns `None` for an unknown name; the canonical name list lives in
/// [`maestro_estimator::request::FLOORPLAN_BACKENDS`] so front ends can
/// validate before dispatch.
pub fn by_name(name: &str, params: &PlanParams) -> Option<Box<dyn FloorplanBackend>> {
    match name {
        "annealing" => Some(Box::new(Annealing::with_params(params.clone()))),
        "annealing-warm" => Some(Box::new(Annealing::warm_started(params.clone()))),
        "spanning-tree" => Some(spanning_boxed(params)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::floorplan;
    use maestro_geom::{Lambda, LambdaArea, Rect};

    fn soft(name: &str, area: i64) -> Block {
        Block::soft(name, LambdaArea::new(area), 5)
    }

    fn mixed_blocks() -> Vec<Block> {
        vec![
            soft("a", 4000),
            soft("b", 2500),
            Block::hard("c", Lambda::new(80), Lambda::new(25)),
            soft("d", 1200),
            soft("e", 900),
            soft("f", 3100),
        ]
    }

    #[test]
    fn annealing_backend_matches_plain_floorplan() {
        let blocks = mixed_blocks();
        for params in [
            PlanParams::default(),
            PlanParams::quick(),
            PlanParams::quick().with_aspect_limit(1.5),
        ] {
            let via_trait = Annealing::with_params(params.clone()).plan(&blocks, None);
            assert_eq!(via_trait.plan, floorplan(&blocks, &params));
        }
    }

    #[test]
    fn annealing_counters_are_live() {
        let run = Annealing::with_params(PlanParams::quick()).plan(&mixed_blocks(), None);
        let get = |name: &str| {
            run.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        assert!(get("anneal.evals_delta").unwrap() > 0);
        assert_eq!(get("anneal.replicas"), Some(1));
    }

    #[test]
    fn spanning_tree_is_deterministic_and_complete() {
        let blocks = mixed_blocks();
        let a = SpanningTree.plan(&blocks, None);
        let b = SpanningTree.plan(&blocks, None);
        assert_eq!(a, b);
        assert_eq!(a.plan.placements().len(), blocks.len());
        for block in &blocks {
            assert!(a.plan.placement(block.name()).is_some(), "{}", block.name());
        }
    }

    #[test]
    fn spanning_tree_blocks_never_overlap() {
        let run = SpanningTree.plan(&mixed_blocks(), None);
        let rects: Vec<Rect> = run.plan.placements().iter().map(|&(_, r)| r).collect();
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                assert!(
                    !rects[i].overlaps_strictly(rects[j]),
                    "blocks {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn spanning_tree_single_block_is_the_block() {
        let run = SpanningTree.plan(
            &[Block::hard("only", Lambda::new(30), Lambda::new(20))],
            None,
        );
        assert_eq!(run.plan.area(), LambdaArea::new(600));
    }

    #[test]
    fn spanning_tree_packs_equal_blocks_tightly() {
        let blocks: Vec<Block> = (0..16).map(|i| soft(&format!("b{i}"), 2500)).collect();
        let run = SpanningTree.plan(&blocks, None);
        assert!(
            run.plan.utilization() > 0.7,
            "utilization {:.2}",
            run.plan.utilization()
        );
    }

    #[test]
    fn warm_started_annealer_never_loses_to_its_seed() {
        let blocks = mixed_blocks();
        let seed = SpanningTree.plan(&blocks, None);
        let warm = Annealing::warm_started(PlanParams::quick()).plan(&blocks, None);
        assert!(
            warm.plan.area() <= seed.plan.area(),
            "warm {} vs seed {}",
            warm.plan.area(),
            seed.plan.area()
        );
    }

    #[test]
    fn aspect_limited_spanning_tree_prefers_squarer_roots() {
        let blocks: Vec<Block> = (0..8).map(|i| soft(&format!("b{i}"), 3000)).collect();
        let free = SpanningTree.plan(&blocks, None).plan;
        let limited = SpanningTree::with_aspect_limit(1.5)
            .plan(&blocks, None)
            .plan;
        let norm = |p: &Floorplan| {
            let w = p.width().as_f64();
            let h = p.height().as_f64();
            (w / h).max(h / w)
        };
        assert!(norm(&limited) <= norm(&free) + 1e-9);
    }

    #[test]
    fn registry_names_match_the_protocol_list() {
        let names: Vec<&str> = registry(&PlanParams::default())
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(names, maestro_estimator::request::FLOORPLAN_BACKENDS);
        for name in &names {
            let backend = by_name(name, &PlanParams::default()).expect("registered");
            assert_eq!(backend.name(), *name);
        }
        assert!(by_name("simplex", &PlanParams::default()).is_none());
    }
}
