//! Slicing floorplanning: Polish-expression annealing with Stockmeyer
//! shape-curve combination.

use maestro_geom::{Lambda, LambdaArea, Point, Rect, ShapeCurve, ShapePoint};
use maestro_place::postfix::{IncrementalPostfix, Tok};
use maestro_place::{anneal_replicas, AnnealSchedule, AnnealState};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Block;

/// Parameters of a floorplanning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanParams {
    /// Annealing seed.
    pub seed: u64,
    /// Cooling schedule.
    pub schedule: AnnealSchedule,
    /// Optional chip aspect-ratio limit (long side ÷ short side). When
    /// set, root realizations beyond the limit pay a quadratic area
    /// penalty, steering the annealer toward packable near-rectangles the
    /// way commercial floorplanners take a die-shape constraint.
    pub aspect_limit: Option<f64>,
    /// Independently seeded annealing walks to run and reduce best-of
    /// (`1` = single walk, bit-identical to the pre-replica engine).
    pub replicas: usize,
}

impl Default for PlanParams {
    fn default() -> Self {
        PlanParams {
            seed: 1988,
            schedule: AnnealSchedule::default(),
            aspect_limit: None,
            replicas: 1,
        }
    }
}

impl PlanParams {
    /// A short schedule for tests and small block counts.
    pub fn quick() -> Self {
        PlanParams {
            schedule: AnnealSchedule::quick(),
            ..PlanParams::default()
        }
    }

    /// Constrains the chip's normalized aspect ratio.
    ///
    /// # Panics
    ///
    /// Panics if `limit < 1.0`.
    pub fn with_aspect_limit(mut self, limit: f64) -> Self {
        assert!(limit >= 1.0, "aspect limit is a normalized ratio ≥ 1");
        self.aspect_limit = Some(limit);
        self
    }
}

/// Scores one root realization: area times a quadratic penalty for
/// exceeding the aspect limit.
fn point_cost(p: ShapePoint, aspect_limit: Option<f64>) -> f64 {
    let area = p.area().as_f64();
    match aspect_limit {
        None => area,
        Some(limit) => {
            let w = p.width.as_f64();
            let h = p.height.as_f64();
            let aspect = (w / h).max(h / w);
            let excess = (aspect / limit).max(1.0);
            area * excess * excess
        }
    }
}

/// The best root realization of a curve under the aspect policy.
fn best_point(curve: &ShapeCurve, aspect_limit: Option<f64>) -> ShapePoint {
    curve
        .points()
        .iter()
        .copied()
        .min_by(|a, b| {
            point_cost(*a, aspect_limit)
                .partial_cmp(&point_cost(*b, aspect_limit))
                .expect("finite costs")
        })
        .expect("curves are non-empty")
}

/// A finished floorplan: chip bounding box and per-block placements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    width: Lambda,
    height: Lambda,
    placements: Vec<(String, Rect)>,
    blocks_area: LambdaArea,
}

impl Floorplan {
    /// Chip width.
    pub fn width(&self) -> Lambda {
        self.width
    }

    /// Chip height.
    pub fn height(&self) -> Lambda {
        self.height
    }

    /// Chip area.
    pub fn area(&self) -> LambdaArea {
        self.width * self.height
    }

    /// Per-block placements (name, rectangle) in block order.
    pub fn placements(&self) -> &[(String, Rect)] {
        &self.placements
    }

    /// Σ placed block areas ÷ chip area.
    pub fn utilization(&self) -> f64 {
        if self.area().get() == 0 {
            return 0.0;
        }
        self.blocks_area.as_f64() / self.area().as_f64()
    }

    /// The placement rectangle of a named block.
    pub fn placement(&self, name: &str) -> Option<Rect> {
        self.placements
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
    }

    /// Renders the floorplan as an SVG sketch: one labelled rectangle per
    /// block inside the chip outline.
    pub fn to_svg(&self) -> String {
        use maestro_geom::svg::SvgDocument;
        let mut doc = SvgDocument::new(self.width.max(Lambda::ONE), self.height.max(Lambda::ONE))
            .with_scale(1.0);
        const PALETTE: [&str; 6] = [
            "#9bc4e2", "#a3d9a5", "#e2d49b", "#d9a3c4", "#c4a3d9", "#a5c9c4",
        ];
        for (i, (name, rect)) in self.placements.iter().enumerate() {
            doc.rect(*rect, PALETTE[i % PALETTE.len()], Some(name));
        }
        doc.finish()
    }
}

/// Cut direction (same convention as the full-custom synthesizer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cut {
    Horizontal,
    Vertical,
}

impl Cut {
    fn flipped(self) -> Cut {
        match self {
            Cut::Horizontal => Cut::Vertical,
            Cut::Vertical => Cut::Horizontal,
        }
    }
}

/// One token of a block Polish expression: a block index or a cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Elem {
    Leaf(u32),
    Op(Cut),
}

/// How a [`PlanState`] recomputes its cost after a move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EvalMode {
    /// Recombine every shape curve on each move and each revert — the
    /// original implementation, kept as the differential reference.
    Full,
    /// Recombine only the covering subtree's curves; reverts restore
    /// journaled state.
    Delta,
}

/// `elems` as abstract postfix tokens (vertical cut = op 0, matching the
/// combine order in [`PlanState::root_curve`]).
fn plan_tok(elems: &[Elem]) -> impl Fn(usize) -> Tok + '_ {
    |i| match elems[i] {
        Elem::Leaf(b) => Tok::Operand(b),
        Elem::Op(Cut::Vertical) => Tok::Op(0),
        Elem::Op(Cut::Horizontal) => Tok::Op(1),
    }
}

fn plan_comb(op: u8, l: &ShapeCurve, r: &ShapeCurve) -> ShapeCurve {
    if op == 0 {
        l.beside(r)
    } else {
        l.stacked(r)
    }
}

/// The annealing state over block Polish expressions. The evaluation
/// combines full shape curves (Stockmeyer), so each expression's cost is
/// the best achievable chip area over all block realizations.
#[derive(Clone)]
struct PlanState<'b> {
    blocks: &'b [Block],
    elems: Vec<Elem>,
    aspect_limit: Option<f64>,
    mode: EvalMode,
    cached_cost: f64,
    /// Delta-mode incremental curve evaluation.
    post: IncrementalPostfix<ShapeCurve>,
    /// Pre-move cost snapshot for O(1) restore on revert.
    snap_cost: f64,
    undo: Option<(usize, usize, bool)>, // (i, j, is_chain) — chain stores range
    evals_full: u64,
    evals_delta: u64,
}

impl PlanState<'_> {
    fn is_valid(&self) -> bool {
        let mut operands = 0usize;
        let mut ops = 0usize;
        for e in &self.elems {
            match e {
                Elem::Leaf(_) => operands += 1,
                Elem::Op(_) => {
                    ops += 1;
                    if ops >= operands {
                        return false;
                    }
                }
            }
        }
        ops + 1 == operands
    }

    fn root_curve(&self) -> ShapeCurve {
        let mut stack: Vec<ShapeCurve> = Vec::new();
        for e in &self.elems {
            match *e {
                Elem::Leaf(b) => stack.push(self.blocks[b as usize].curve().clone()),
                Elem::Op(cut) => {
                    let right = stack.pop().expect("valid expression");
                    let left = stack.pop().expect("valid expression");
                    stack.push(match cut {
                        Cut::Vertical => left.beside(&right),
                        Cut::Horizontal => left.stacked(&right),
                    });
                }
            }
        }
        stack.pop().expect("valid expression")
    }

    fn delta_cost(&self) -> f64 {
        point_cost(
            best_point(self.post.root_val(), self.aspect_limit),
            self.aspect_limit,
        )
    }

    fn refresh(&mut self) {
        self.evals_full += 1;
        match self.mode {
            EvalMode::Full => {
                let curve = self.root_curve();
                self.cached_cost =
                    point_cost(best_point(&curve, self.aspect_limit), self.aspect_limit);
            }
            EvalMode::Delta => {
                let blocks = self.blocks;
                let elems = &self.elems;
                self.post.rebuild(
                    elems.len(),
                    plan_tok(elems),
                    |b| blocks[b as usize].curve().clone(),
                    plan_comb,
                );
                self.cached_cost = self.delta_cost();
            }
        }
    }

    /// Delta re-evaluation after the expression changed within element
    /// positions `lo..=hi`.
    fn apply_delta(&mut self, lo: usize, hi: usize) {
        self.evals_delta += 1;
        let blocks = self.blocks;
        let elems = &self.elems;
        self.post.update(
            plan_tok(elems),
            |b| blocks[b as usize].curve().clone(),
            plan_comb,
            lo,
            hi,
        );
        self.cached_cost = self.delta_cost();
    }
}

impl AnnealState for PlanState<'_> {
    fn cost(&self) -> f64 {
        self.cached_cost
    }

    fn propose_and_apply(&mut self, rng: &mut StdRng) -> f64 {
        let n = self.elems.len();
        // Each move locates its target by a counting scan instead of
        // collecting candidate positions into a scratch `Vec`: the counts
        // equal the old lists' lengths, so every RNG draw range — and
        // therefore the walk — is unchanged, but the move loop no longer
        // allocates.
        match rng.gen_range(0..3u8) {
            0 => {
                // M1: swap adjacent operands.
                let leaf_count = self
                    .elems
                    .iter()
                    .filter(|e| matches!(e, Elem::Leaf(_)))
                    .count();
                let k = rng.gen_range(0..leaf_count.max(2) - 1);
                let k2 = (k + 1).min(leaf_count - 1);
                let (mut i, mut j) = (0usize, 0usize);
                let mut seen = 0usize;
                for (pos, e) in self.elems.iter().enumerate() {
                    if matches!(e, Elem::Leaf(_)) {
                        if seen == k {
                            i = pos;
                        }
                        if seen == k2 {
                            j = pos;
                            break;
                        }
                        seen += 1;
                    }
                }
                self.elems.swap(i, j);
                self.undo = Some((i, j, false));
            }
            1 => {
                // M2: complement one operator chain.
                let is_start = |elems: &[Elem], i: usize| {
                    matches!(elems[i], Elem::Op(_))
                        && (i == 0 || matches!(elems[i - 1], Elem::Leaf(_)))
                };
                let start_count = (0..n).filter(|&i| is_start(&self.elems, i)).count();
                if start_count == 0 {
                    self.undo = Some((0, 0, true));
                } else {
                    let pick = rng.gen_range(0..start_count);
                    let mut start = 0usize;
                    let mut seen = 0usize;
                    for i in 0..n {
                        if is_start(&self.elems, i) {
                            if seen == pick {
                                start = i;
                                break;
                            }
                            seen += 1;
                        }
                    }
                    let mut end = start;
                    while end < n {
                        match self.elems[end] {
                            Elem::Op(c) => {
                                self.elems[end] = Elem::Op(c.flipped());
                                end += 1;
                            }
                            Elem::Leaf(_) => break,
                        }
                    }
                    self.undo = Some((start, end, true));
                }
            }
            _ => {
                // M3: swap an operand–operator boundary, keeping validity.
                // Every probe re-scans from the unmodified expression
                // (failed swaps are undone before the next probe), so the
                // boundary positions match the old collected list.
                let is_boundary = |elems: &[Elem], i: usize| {
                    matches!(elems[i], Elem::Leaf(_)) && matches!(elems[i + 1], Elem::Op(_))
                };
                let boundary_count = (0..n.saturating_sub(1))
                    .filter(|&i| is_boundary(&self.elems, i))
                    .count();
                let mut done = None;
                if boundary_count > 0 {
                    let offset = rng.gen_range(0..boundary_count);
                    'probe: for probe in 0..boundary_count {
                        let nth = (offset + probe) % boundary_count;
                        let mut seen = 0usize;
                        for i in 0..n - 1 {
                            if is_boundary(&self.elems, i) {
                                if seen == nth {
                                    self.elems.swap(i, i + 1);
                                    if self.is_valid() {
                                        done = Some((i, i + 1, false));
                                        break 'probe;
                                    }
                                    self.elems.swap(i, i + 1);
                                    break;
                                }
                                seen += 1;
                            }
                        }
                    }
                }
                self.undo = Some(done.unwrap_or((0, 0, false)));
                if done.is_none() {
                    // No-op move.
                    self.undo = Some((0, 0, true));
                }
            }
        }
        match self.mode {
            EvalMode::Full => self.refresh(),
            EvalMode::Delta => {
                // Element-position span touched by the move: a chain
                // `(s, e, true)` flipped elements `s..e` (empty ⇒ no-op),
                // a swap `(i, j, false)` touched exactly `i` and `j`.
                let span = match self.undo {
                    Some((s, e, true)) if s == e => None,
                    Some((s, e, true)) => Some((s, e - 1)),
                    Some((i, j, false)) => Some((i.min(j), i.max(j))),
                    None => unreachable!("undo set above"),
                };
                self.snap_cost = self.cached_cost;
                match span {
                    Some((lo, hi)) => self.apply_delta(lo, hi),
                    // A following revert must be a no-op.
                    None => self.post.clear_undo(),
                }
            }
        }
        self.cached_cost
    }

    fn revert(&mut self) {
        match self.undo.take().expect("revert without move") {
            (start, end, true) => {
                for i in start..end {
                    if let Elem::Op(c) = self.elems[i] {
                        self.elems[i] = Elem::Op(c.flipped());
                    }
                }
            }
            (i, j, false) => {
                self.elems.swap(i, j);
            }
        }
        match self.mode {
            EvalMode::Full => self.refresh(),
            EvalMode::Delta => {
                self.post.revert();
                self.cached_cost = self.snap_cost;
            }
        }
    }

    fn eval_counts(&self) -> (u64, u64) {
        (self.evals_full, self.evals_delta)
    }
}

/// Expression tree used for top-down realization selection: each node
/// keeps its combined shape curve so placement can recover which child
/// realizations produced the chosen root point.
enum Tree {
    Leaf(u32, ShapeCurve),
    Node(Cut, Box<Tree>, Box<Tree>, ShapeCurve),
}

impl Tree {
    fn curve(&self) -> &ShapeCurve {
        match self {
            Tree::Leaf(_, c) => c,
            Tree::Node(_, _, _, c) => c,
        }
    }

    fn place(&self, chosen: ShapePoint, origin: Point, out: &mut Vec<(u32, Rect)>) {
        match self {
            Tree::Leaf(b, _) => {
                out.push((*b, Rect::new(origin, chosen.width, chosen.height)));
            }
            Tree::Node(cut, left, right, _) => {
                // Find child realizations producing `chosen`.
                let mut found = None;
                'outer: for &a in left.curve().points() {
                    for &b in right.curve().points() {
                        let combined = match cut {
                            Cut::Vertical => {
                                ShapePoint::new(a.width + b.width, a.height.max(b.height))
                            }
                            Cut::Horizontal => {
                                ShapePoint::new(a.width.max(b.width), a.height + b.height)
                            }
                        };
                        if combined == chosen {
                            found = Some((a, b));
                            break 'outer;
                        }
                    }
                }
                let (a, b) = found.expect("chosen point originates from children");
                match cut {
                    Cut::Vertical => {
                        left.place(a, origin, out);
                        right.place(b, origin.translated(a.width, Lambda::ZERO), out);
                    }
                    Cut::Horizontal => {
                        left.place(a, origin, out);
                        right.place(b, origin.translated(Lambda::ZERO, a.height), out);
                    }
                }
            }
        }
    }
}

fn build_tree(blocks: &[Block], elems: &[Elem]) -> Tree {
    let mut stack: Vec<Tree> = Vec::new();
    for e in elems {
        match *e {
            Elem::Leaf(b) => stack.push(Tree::Leaf(b, blocks[b as usize].curve().clone())),
            Elem::Op(cut) => {
                let right = stack.pop().expect("valid expression");
                let left = stack.pop().expect("valid expression");
                let curve = match cut {
                    Cut::Vertical => left.curve().beside(right.curve()),
                    Cut::Horizontal => left.curve().stacked(right.curve()),
                };
                stack.push(Tree::Node(cut, Box::new(left), Box::new(right), curve));
            }
        }
    }
    stack.pop().expect("valid expression")
}

/// Floorplans a set of blocks into a minimum-area slicing arrangement.
///
/// # Panics
///
/// Panics if `blocks` is empty.
pub fn floorplan(blocks: &[Block], params: &PlanParams) -> Floorplan {
    floorplan_with(blocks, params, EvalMode::Delta)
}

/// [`floorplan`] on the full-refresh reference path: every move and
/// revert recombines every shape curve. Output is bit-identical to
/// [`floorplan`]; kept for differential testing of the delta evaluator.
///
/// # Panics
///
/// Panics if `blocks` is empty.
#[doc(hidden)]
pub fn floorplan_full_refresh(blocks: &[Block], params: &PlanParams) -> Floorplan {
    floorplan_with(blocks, params, EvalMode::Full)
}

/// Per-run evaluation tallies a backend reports alongside its plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PlanCounters {
    /// Full shape-curve recombinations (including calibration refreshes).
    pub evals_full: u64,
    /// Incremental (covering-subtree) recombinations.
    pub evals_delta: u64,
}

/// The serpentine initial Polish expression over `n` blocks, the same
/// pairing the full-custom synthesizer starts from.
pub(crate) fn serpentine_elems(n: usize) -> Vec<Elem> {
    let per_row = (n as f64).sqrt().ceil() as usize;
    let mut elems = Vec::with_capacity(n * 2);
    let mut rows_emitted = 0usize;
    let mut i = 0usize;
    while i < n {
        let end = (i + per_row).min(n);
        elems.push(Elem::Leaf(i as u32));
        for t in i + 1..end {
            elems.push(Elem::Leaf(t as u32));
            elems.push(Elem::Op(Cut::Vertical));
        }
        rows_emitted += 1;
        if rows_emitted >= 2 {
            elems.push(Elem::Op(Cut::Horizontal));
        }
        i = end;
    }
    elems
}

/// Packs an already-chosen slicing expression: Stockmeyer-combine the
/// curves bottom-up, pick the best root realization under the aspect
/// policy, and recover concrete block rectangles top-down.
pub(crate) fn eval_slicing(
    blocks: &[Block],
    elems: &[Elem],
    aspect_limit: Option<f64>,
) -> Floorplan {
    let tree = build_tree(blocks, elems);
    let root_point = best_point(tree.curve(), aspect_limit);
    let mut raw = Vec::with_capacity(blocks.len());
    tree.place(root_point, Point::ORIGIN, &mut raw);
    raw.sort_by_key(|&(b, _)| b);
    let blocks_area: LambdaArea = raw.iter().map(|&(_, r)| r.area()).sum();
    Floorplan {
        width: root_point.width,
        height: root_point.height,
        placements: raw
            .into_iter()
            .map(|(b, r)| (blocks[b as usize].name().to_owned(), r))
            .collect(),
        blocks_area,
    }
}

fn floorplan_with(blocks: &[Block], params: &PlanParams, mode: EvalMode) -> Floorplan {
    floorplan_seeded(blocks, params, mode, serpentine_elems(blocks.len())).0
}

/// The annealing core behind every entry point: starts from `elems` (a
/// valid Polish expression over all of `blocks`), anneals, and packs the
/// best expression seen. [`floorplan`] seeds it with the serpentine
/// expression; the warm-started backend seeds it with the spanning-tree
/// expression instead.
pub(crate) fn floorplan_seeded(
    blocks: &[Block],
    params: &PlanParams,
    mode: EvalMode,
    elems: Vec<Elem>,
) -> (Floorplan, PlanCounters) {
    assert!(!blocks.is_empty(), "cannot floorplan zero blocks");
    let _plan_span = maestro_trace::span("floorplan");
    maestro_trace::counter("floorplan.blocks", blocks.len() as u64);
    let n = blocks.len();

    let post = IncrementalPostfix::build(
        elems.len(),
        plan_tok(&elems),
        |b| blocks[b as usize].curve().clone(),
        plan_comb,
    );
    let mut state = PlanState {
        blocks,
        elems,
        aspect_limit: params.aspect_limit,
        mode,
        cached_cost: 0.0,
        post,
        snap_cost: 0.0,
        undo: None,
        evals_full: 0,
        evals_delta: 0,
    };
    state.refresh();
    if n > 1 {
        let initial_elems = state.elems.clone();
        let initial_cost = state.cached_cost;
        let final_cost = anneal_replicas(
            &mut state,
            &params.schedule,
            params.seed,
            params.replicas,
            48,
            n,
        );
        if final_cost > initial_cost {
            state.elems = initial_elems;
            state.refresh();
        }
    }

    let counters = PlanCounters {
        evals_full: state.evals_full,
        evals_delta: state.evals_delta,
    };
    (
        eval_slicing(blocks, &state.elems, params.aspect_limit),
        counters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soft(name: &str, area: i64) -> Block {
        Block::soft(name, LambdaArea::new(area), 5)
    }

    #[test]
    fn single_block_floorplan_is_the_block() {
        let blocks = vec![Block::hard("only", Lambda::new(30), Lambda::new(20))];
        let plan = floorplan(&blocks, &PlanParams::quick());
        assert_eq!(plan.placements().len(), 1);
        assert_eq!(plan.area(), LambdaArea::new(600));
        assert!((plan.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_never_overlap() {
        let blocks = vec![
            soft("a", 4000),
            soft("b", 2500),
            Block::hard("c", Lambda::new(80), Lambda::new(25)),
            soft("d", 1200),
            soft("e", 900),
        ];
        let plan = floorplan(&blocks, &PlanParams::quick());
        let rects: Vec<Rect> = plan.placements().iter().map(|&(_, r)| r).collect();
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                assert!(
                    !rects[i].overlaps_strictly(rects[j]),
                    "blocks {i} and {j} overlap: {} vs {}",
                    rects[i],
                    rects[j]
                );
            }
        }
    }

    #[test]
    fn blocks_stay_inside_the_chip() {
        let blocks = vec![soft("a", 3000), soft("b", 3000), soft("c", 3000)];
        let plan = floorplan(&blocks, &PlanParams::quick());
        for (name, r) in plan.placements() {
            assert!(
                r.top_right().x <= plan.width() && r.top_right().y <= plan.height(),
                "{name} escapes the chip: {r}"
            );
        }
    }

    #[test]
    fn utilization_is_high_for_compatible_blocks() {
        // Four equal soft blocks pack near-perfectly.
        let blocks: Vec<Block> = (0..4).map(|i| soft(&format!("b{i}"), 2500)).collect();
        let plan = floorplan(&blocks, &PlanParams::default());
        assert!(
            plan.utilization() > 0.8,
            "utilization {:.2} too low",
            plan.utilization()
        );
    }

    #[test]
    fn floorplan_is_deterministic() {
        let blocks = vec![soft("a", 1000), soft("b", 2000), soft("c", 1500)];
        let p1 = floorplan(&blocks, &PlanParams::quick());
        let p2 = floorplan(&blocks, &PlanParams::quick());
        assert_eq!(p1, p2);
    }

    #[test]
    fn one_replica_matches_the_default_path_and_four_are_deterministic() {
        let blocks = vec![soft("a", 1000), soft("b", 2000), soft("c", 1500)];
        let one = floorplan(&blocks, &PlanParams::quick());
        let explicit_one = floorplan(
            &blocks,
            &PlanParams {
                replicas: 1,
                ..PlanParams::quick()
            },
        );
        assert_eq!(one, explicit_one);

        let four_params = PlanParams {
            replicas: 4,
            ..PlanParams::quick()
        };
        let a = floorplan(&blocks, &four_params);
        let b = floorplan(&blocks, &four_params);
        assert_eq!(a, b, "replicas=4 must be reproducible");
    }

    #[test]
    fn delta_matches_full_refresh() {
        // The incremental curve evaluator must not change a single
        // accept/reject decision: final floorplans are bit-identical.
        let blocks = vec![
            soft("a", 4000),
            soft("b", 2500),
            Block::hard("c", Lambda::new(80), Lambda::new(25)),
            soft("d", 1200),
            soft("e", 900),
            soft("f", 3100),
        ];
        for params in [
            PlanParams::quick(),
            PlanParams::quick().with_aspect_limit(1.5),
        ] {
            let delta = floorplan(&blocks, &params);
            let full = floorplan_full_refresh(&blocks, &params);
            assert_eq!(delta, full);
        }
    }

    #[test]
    fn svg_labels_every_block() {
        let blocks = vec![soft("alu", 1000), soft("rom", 800), soft("ram", 1200)];
        let plan = floorplan(&blocks, &PlanParams::quick());
        let svg = plan.to_svg();
        for b in &blocks {
            assert!(svg.contains(b.name()), "missing {}", b.name());
        }
        assert_eq!(svg.matches("<rect").count(), blocks.len() + 1);
    }

    #[test]
    fn named_placement_lookup() {
        let blocks = vec![soft("alu", 1000), soft("rom", 800)];
        let plan = floorplan(&blocks, &PlanParams::quick());
        assert!(plan.placement("alu").is_some());
        assert!(plan.placement("cache").is_none());
    }

    #[test]
    #[should_panic(expected = "zero blocks")]
    fn empty_block_list_rejected() {
        let _ = floorplan(&[], &PlanParams::quick());
    }

    #[test]
    fn aspect_limit_yields_squarer_chips() {
        // Many identical blocks tempt the annealer into a tall stack; the
        // limit must pull the chip toward a near-square.
        let blocks: Vec<Block> = (0..8).map(|i| soft(&format!("b{i}"), 3000)).collect();
        let free = floorplan(&blocks, &PlanParams::quick());
        let limited = floorplan(&blocks, &PlanParams::quick().with_aspect_limit(1.5));
        let norm = |p: &Floorplan| {
            let w = p.width().as_f64();
            let h = p.height().as_f64();
            (w / h).max(h / w)
        };
        assert!(
            norm(&limited) <= norm(&free) + 1e-9,
            "limited {:.2} vs free {:.2}",
            norm(&limited),
            norm(&free)
        );
        assert!(
            norm(&limited) <= 2.2,
            "limited chip still {:.2}",
            norm(&limited)
        );
        // Area cost of the constraint stays moderate.
        assert!(limited.area().as_f64() <= free.area().as_f64() * 1.5);
    }

    #[test]
    #[should_panic(expected = "normalized ratio")]
    fn sub_unity_aspect_limit_rejected() {
        let _ = PlanParams::quick().with_aspect_limit(0.5);
    }
}
