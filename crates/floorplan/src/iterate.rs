//! The floorplanning-iteration experiment (the paper's §7 claim).
//!
//! §1: "inaccurate aspect ratio estimates may lead to an unacceptable
//! floor plan, requiring another design iteration. More accurate module
//! aspect ratio estimates will significantly reduce the number of floor
//! planning iterations." §7 promises to "determine the reduction in floor
//! planning iterations due to the estimator". This module measures it
//! under a simple, explicit designer model:
//!
//! 1. floorplan with the current belief about each module's size;
//! 2. "lay out" the modules — their *true* sizes are revealed;
//! 3. if some module's believed area is off by more than `tolerance`,
//!    the designer fixes the **worst** one (replaces its belief with the
//!    truth) and floorplans again — one module per iteration, the way
//!    floorplan rework actually proceeds;
//! 4. stop when every belief is within tolerance.
//!
//! The iteration count is therefore `1 + #modules whose initial estimate
//! was outside tolerance` — directly comparable between estimator-seeded
//! and naive (active-area-only) beliefs.

use maestro_geom::{Lambda, LambdaArea};
use serde::{Deserialize, Serialize};

use crate::backend::{Annealing, FloorplanBackend};
use crate::plan::{Floorplan, PlanParams};
use crate::Block;

/// One module in the iteration experiment: the initial belief and the
/// ground truth revealed by layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleTruth {
    /// Module name.
    pub name: String,
    /// Believed (estimated) area before layout.
    pub estimated: LambdaArea,
    /// True width after layout.
    pub true_width: Lambda,
    /// True height after layout.
    pub true_height: Lambda,
}

impl ModuleTruth {
    /// True area.
    pub fn true_area(&self) -> LambdaArea {
        self.true_width * self.true_height
    }

    /// |estimate − truth| ÷ truth.
    pub fn estimate_error(&self) -> f64 {
        (self.estimated.as_f64() - self.true_area().as_f64()).abs() / self.true_area().as_f64()
    }
}

/// Result of the iteration experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationOutcome {
    /// Number of floorplanning runs until convergence.
    pub iterations: u32,
    /// Chip area after each run.
    pub area_history: Vec<LambdaArea>,
    /// The converged floorplan.
    pub final_plan: Floorplan,
}

/// Runs the iterative floorplanning loop.
///
/// # Panics
///
/// Panics if `modules` is empty or `tolerance` is not positive.
pub fn converge(modules: &[ModuleTruth], tolerance: f64, params: &PlanParams) -> IterationOutcome {
    converge_with(modules, tolerance, &Annealing::with_params(params.clone()))
}

/// [`converge`] over an explicit [`FloorplanBackend`]: every iteration's
/// floorplan goes through `backend`. With [`Annealing`] at the same
/// params this is exactly [`converge`]; the deterministic spanning tree
/// makes the whole experiment RNG-free.
///
/// # Panics
///
/// Panics if `modules` is empty or `tolerance` is not positive.
pub fn converge_with(
    modules: &[ModuleTruth],
    tolerance: f64,
    backend: &dyn FloorplanBackend,
) -> IterationOutcome {
    assert!(!modules.is_empty(), "need at least one module");
    assert!(tolerance > 0.0, "tolerance must be positive");
    let _converge_span = maestro_trace::span_with("floorplan.converge", || {
        format!("modules={} tolerance={tolerance}", modules.len())
    });

    // Beliefs start at the estimates; fixed modules become hard blocks.
    let mut fixed = vec![false; modules.len()];
    let mut area_history = Vec::new();
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let blocks: Vec<Block> = modules
            .iter()
            .zip(&fixed)
            .map(|(m, &is_fixed)| {
                if is_fixed {
                    Block::hard(m.name.clone(), m.true_width, m.true_height)
                } else {
                    Block::soft(m.name.clone(), m.estimated, 5)
                }
            })
            .collect();
        let plan = backend.plan(&blocks, None).plan;
        area_history.push(plan.area());

        // Layout reveals truth: find the worst unfixed mismatch.
        let worst = modules
            .iter()
            .enumerate()
            .filter(|&(i, _)| !fixed[i])
            .map(|(i, m)| (i, m.estimate_error()))
            .filter(|&(_, err)| err > tolerance)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite errors"));
        match worst {
            Some((i, _)) if iterations <= modules.len() as u32 + 1 => {
                fixed[i] = true;
            }
            _ => {
                maestro_trace::counter("floorplan.iterations", u64::from(iterations));
                return IterationOutcome {
                    iterations,
                    area_history,
                    final_plan: plan,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(name: &str, estimated: i64, w: i64, h: i64) -> ModuleTruth {
        ModuleTruth {
            name: name.to_owned(),
            estimated: LambdaArea::new(estimated),
            true_width: Lambda::new(w),
            true_height: Lambda::new(h),
        }
    }

    #[test]
    fn accurate_estimates_converge_in_one_iteration() {
        let modules = vec![
            module("a", 5000, 70, 71), // ~0.6 % error
            module("b", 2500, 50, 50), // exact
            module("c", 1200, 40, 30), // exact
        ];
        let out = converge(&modules, 0.15, &PlanParams::quick());
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn bad_estimates_cost_one_iteration_each() {
        let modules = vec![
            module("a", 2000, 70, 70), // 4900 true: 59 % off
            module("b", 1000, 50, 50), // 2500 true: 60 % off
            module("c", 1200, 40, 30), // exact
        ];
        let out = converge(&modules, 0.15, &PlanParams::quick());
        assert_eq!(out.iterations, 3, "two bad modules -> two extra runs");
        assert_eq!(out.area_history.len(), 3);
    }

    #[test]
    fn estimator_beats_naive_guessing() {
        // Same truth; estimator beliefs within 10 %, naive beliefs are the
        // bare device area (half the truth).
        let truth = [(80i64, 60i64), (70, 70), (50, 40), (90, 30)];
        let estimator: Vec<ModuleTruth> = truth
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| module(&format!("m{i}"), w * h * 105 / 100, w, h))
            .collect();
        let naive: Vec<ModuleTruth> = truth
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| module(&format!("m{i}"), w * h / 2, w, h))
            .collect();
        let p = PlanParams::quick();
        let est_out = converge(&estimator, 0.15, &p);
        let naive_out = converge(&naive, 0.15, &p);
        assert!(
            est_out.iterations < naive_out.iterations,
            "estimator {} vs naive {}",
            est_out.iterations,
            naive_out.iterations
        );
        assert_eq!(naive_out.iterations, truth.len() as u32 + 1);
    }

    #[test]
    fn converge_with_any_backend_counts_the_same_iterations() {
        // The designer model fixes beliefs by estimate error, which no
        // backend influences — only the plans differ.
        use crate::backend::SpanningTree;
        let modules = vec![
            module("a", 2000, 70, 70), // 59 % off
            module("b", 1200, 40, 30), // exact
        ];
        let annealed = converge(&modules, 0.15, &PlanParams::quick());
        let spanned = converge_with(&modules, 0.15, &SpanningTree);
        assert_eq!(annealed.iterations, spanned.iterations);
        assert_eq!(spanned.final_plan.placements().len(), 2);
    }

    #[test]
    fn estimate_error_is_relative() {
        let m = module("x", 150, 10, 10);
        assert!((m.estimate_error() - 0.5).abs() < 1e-12);
        assert_eq!(m.true_area(), LambdaArea::new(100));
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn empty_modules_rejected() {
        let _ = converge(&[], 0.1, &PlanParams::quick());
    }
}
