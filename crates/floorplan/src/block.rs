//! Floorplan blocks: named shape curves fed by the estimator.

use maestro_estimator::{EstimateRecord, Pipeline};
use maestro_geom::{Lambda, LambdaArea, ShapeCurve};
use maestro_netlist::{Module, NetlistError};
use serde::{Deserialize, Serialize};

/// A module as the floorplanner sees it: a name and a curve of feasible
/// (width, height) realizations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    name: String,
    curve: ShapeCurve,
}

impl Block {
    /// A rigid block with exactly one realization (rotations allowed).
    ///
    /// # Panics
    ///
    /// Panics if a dimension is non-positive or the name is empty.
    pub fn hard(name: impl Into<String>, width: Lambda, height: Lambda) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "block name must be non-empty");
        Block {
            name,
            curve: ShapeCurve::hard(width, height).with_rotations(),
        }
    }

    /// A soft block of the given area, realizable at `steps` aspect ratios
    /// in the paper's typical 1:2…2:1 band.
    ///
    /// # Panics
    ///
    /// Panics if the area is non-positive, `steps == 0`, or the name is
    /// empty.
    pub fn soft(name: impl Into<String>, area: LambdaArea, steps: usize) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "block name must be non-empty");
        Block {
            name,
            curve: ShapeCurve::soft(area, 0.5, 2.0, steps),
        }
    }

    /// A block with an explicit shape curve.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty.
    pub fn with_curve(name: impl Into<String>, curve: ShapeCurve) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "block name must be non-empty");
        Block { name, curve }
    }

    /// Builds a block from an estimator record: the standard-cell estimate
    /// becomes a hard(-ish) shape, the full-custom estimate a soft area;
    /// when both exist the smaller-area style wins (the designer "chooses
    /// the most appropriate methodology").
    ///
    /// Returns `None` when the record carries no estimate.
    pub fn from_record(record: &EstimateRecord, steps: usize) -> Option<Block> {
        let sc = record.standard_cell.as_ref();
        let fc = record.full_custom.as_ref();
        let use_sc = match (sc, fc) {
            (Some(s), Some(f)) => s.area <= f.total_exact,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if use_sc {
            let s = sc.expect("checked above");
            // The §7 multi-aspect candidates make the block flexible: one
            // realization per row count, plus rotations.
            let mut points = vec![maestro_geom::ShapePoint::new(s.width, s.height)];
            points.extend(
                record
                    .standard_cell_candidates
                    .iter()
                    .map(|c| maestro_geom::ShapePoint::new(c.width, c.height)),
            );
            let curve = ShapeCurve::from_points(points).with_rotations();
            Some(Block::with_curve(record.module_name.clone(), curve))
        } else {
            let f = fc.expect("checked above");
            Some(Block::soft(
                record.module_name.clone(),
                f.total_exact,
                steps,
            ))
        }
    }

    /// Estimates a module through `pipeline` and builds its block, the
    /// Figure 1 estimator → floorplanner hand-off in one call. The
    /// pipeline's resolve-once cache makes repeat floorplans of the same
    /// module skip the netlist analysis.
    ///
    /// Returns `Ok(None)` when the record carries no estimate.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Pipeline::run_module`].
    pub fn from_module(
        pipeline: &Pipeline,
        module: &Module,
        steps: usize,
    ) -> Result<Option<Block>, NetlistError> {
        let record = pipeline.run_module(module)?;
        Ok(Block::from_record(&record, steps))
    }

    /// Block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The realization curve.
    pub fn curve(&self) -> &ShapeCurve {
        &self.curve
    }

    /// The smallest realizable area.
    pub fn min_area(&self) -> LambdaArea {
        self.curve.min_area_point().area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_block_allows_rotation() {
        let b = Block::hard("rom", Lambda::new(100), Lambda::new(40));
        assert_eq!(b.curve().len(), 2);
        assert_eq!(b.min_area(), LambdaArea::new(4000));
        assert_eq!(b.name(), "rom");
    }

    #[test]
    fn soft_block_has_multiple_shapes() {
        let b = Block::soft("alu", LambdaArea::new(10_000), 5);
        assert!(b.curve().len() >= 3);
        for p in b.curve().points() {
            assert!(p.area().get() >= 10_000);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_name_rejected() {
        let _ = Block::soft("", LambdaArea::new(100), 3);
    }

    #[test]
    fn from_record_prefers_smaller_style() {
        use maestro_estimator::{
            full_custom,
            standard_cell::{self, ScParams},
        };
        use maestro_netlist::{generate, library_circuits, LayoutStyle, NetlistStats};
        use maestro_tech::builtin;

        let tech = builtin::nmos25();
        let sc_m = generate::ripple_adder(2);
        let sc_stats = NetlistStats::resolve(&sc_m, &tech, LayoutStyle::StandardCell).unwrap();
        let sc = standard_cell::estimate(&sc_stats, &tech, &ScParams::default());
        let fc_m = library_circuits::pass_chain(3);
        let fc_stats = NetlistStats::resolve(&fc_m, &tech, LayoutStyle::FullCustom).unwrap();
        let fc = full_custom::estimate(&fc_stats, &tech);

        let rec = maestro_estimator::EstimateRecord {
            module_name: "mix".to_owned(),
            standard_cell: Some(sc.clone()),
            full_custom: Some(fc.clone()),
            standard_cell_candidates: Vec::new(),
        };
        let block = Block::from_record(&rec, 4).expect("has estimates");
        let expected = sc.area.min(fc.total_exact);
        // The chosen curve's min area is within rounding of the winner.
        assert!(block.min_area().get() <= expected.get() + expected.get() / 10 + 4);

        let none = maestro_estimator::EstimateRecord {
            module_name: "void".to_owned(),
            standard_cell: None,
            full_custom: None,
            standard_cell_candidates: Vec::new(),
        };
        assert!(Block::from_record(&none, 4).is_none());
    }

    #[test]
    fn from_module_runs_the_pipeline_and_matches_from_record() {
        use maestro_netlist::generate;
        use maestro_tech::builtin;

        let pipeline = Pipeline::new(builtin::nmos25());
        let module = generate::ripple_adder(2);
        let via_module = Block::from_module(&pipeline, &module, 4)
            .expect("estimates")
            .expect("has an estimate");
        let record = pipeline.run_module(&module).expect("estimates");
        let via_record = Block::from_record(&record, 4).expect("has an estimate");
        assert_eq!(via_module, via_record);
        assert_eq!(via_module.name(), "ripple_adder_2");
    }
}
