//! Inter-module connectivity and wire-aware floorplanning.
//!
//! The paper's Figure 1 database "also contains the global module
//! descriptions and **global interconnections** for the whole chip" —
//! a floorplanner is expected to use them. This module adds that layer:
//! a [`ChipNetlist`] names which blocks each global net touches, and
//! [`floorplan_connected`] extends the slicing annealer's cost with the
//! half-perimeter wirelength of those nets over block centers.

use maestro_geom::{Lambda, Point, Rect};
use maestro_place::{anneal, AnnealSchedule, AnnealState};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::backend::{Annealing, FloorplanBackend};
use crate::plan::{Floorplan, PlanParams};
use crate::Block;

/// Global (inter-module) nets over a set of floorplan blocks, referenced
/// by block index.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipNetlist {
    nets: Vec<Vec<u32>>,
}

impl ChipNetlist {
    /// An empty chip netlist.
    pub fn new() -> Self {
        ChipNetlist::default()
    }

    /// Adds a global net touching the given blocks. Single-block and
    /// empty nets are accepted and ignored by the cost (no span).
    pub fn add_net(&mut self, blocks: impl IntoIterator<Item = u32>) {
        let mut b: Vec<u32> = blocks.into_iter().collect();
        b.sort_unstable();
        b.dedup();
        self.nets.push(b);
    }

    /// The global nets.
    pub fn nets(&self) -> &[Vec<u32>] {
        &self.nets
    }

    /// Total HPWL of the global nets over the placements of `plan`
    /// (block centers), assuming `plan` placed the same block list the
    /// netlist indexes.
    pub fn wirelength(&self, plan: &Floorplan) -> Lambda {
        let centers: Vec<Point> = plan.placements().iter().map(|&(_, r)| center(r)).collect();
        let mut total = 0i64;
        for net in &self.nets {
            if net.len() < 2 {
                continue;
            }
            let pts = net.iter().filter_map(|&b| centers.get(b as usize).copied());
            if let Some(bb) = Rect::bounding_box(pts) {
                total += bb.half_perimeter().get();
            }
        }
        Lambda::new(total)
    }
}

fn center(r: Rect) -> Point {
    Point::new(r.origin().x + r.width() / 2, r.origin().y + r.height() / 2)
}

/// Parameters for wire-aware floorplanning.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectedPlanParams {
    /// Parameters of the final, full-quality floorplan run (and the seed).
    pub base: PlanParams,
    /// Parameters of the cheap inner floorplan evaluated per ordering
    /// move. Keep this schedule very short: it runs hundreds of times.
    pub inner: PlanParams,
    /// Ordering-anneal rounds (each round tries ~3 swaps per block).
    pub order_rounds: usize,
    /// λ² of cost charged per λ of global wirelength. Zero reduces to
    /// pure area floorplanning.
    pub wire_weight: f64,
}

impl Default for ConnectedPlanParams {
    fn default() -> Self {
        ConnectedPlanParams {
            base: PlanParams::default(),
            inner: ConnectedPlanParams::tiny_inner(),
            order_rounds: 6,
            wire_weight: 20.0,
        }
    }
}

impl ConnectedPlanParams {
    /// A very short slicing schedule for the per-move inner evaluation.
    fn tiny_inner() -> PlanParams {
        PlanParams {
            schedule: AnnealSchedule {
                rounds: 3,
                moves_per_round: 24,
                ..AnnealSchedule::quick()
            },
            ..PlanParams::default()
        }
    }

    /// A fast configuration for tests.
    pub fn quick() -> Self {
        ConnectedPlanParams {
            base: PlanParams::quick(),
            inner: ConnectedPlanParams::tiny_inner(),
            order_rounds: 3,
            wire_weight: 20.0,
        }
    }
}

/// The annealing state: a block *permutation*. The slicing structure is
/// delegated to the area-driven [`floorplan`] on the permuted order, and
/// this outer anneal reorders blocks so connected ones land adjacent —
/// a two-level scheme that keeps the inner Stockmeyer machinery intact.
#[derive(Clone)]
struct OrderState<'a> {
    blocks: &'a [Block],
    netlist: &'a ChipNetlist,
    inner: &'a dyn FloorplanBackend,
    wire_weight: f64,
    order: Vec<u32>,
    cached_cost: f64,
    cached_plan: Floorplan,
    undo: Option<UndoSwap>,
    evals_full: u64,
}

#[derive(Clone)]
struct UndoSwap {
    i: usize,
    j: usize,
    prev_cost: f64,
    prev_plan: Floorplan,
}

impl OrderState<'_> {
    fn plan_for(&self, order: &[u32]) -> Floorplan {
        let permuted: Vec<Block> = order
            .iter()
            .map(|&i| self.blocks[i as usize].clone())
            .collect();
        self.inner.plan(&permuted, None).plan
    }

    fn cost_of(&self, plan: &Floorplan, order: &[u32]) -> f64 {
        // Remap the netlist through the permutation: block `i` of the
        // original list sits at position `pos[i]` in the plan.
        let mut pos = vec![0u32; order.len()];
        for (p, &i) in order.iter().enumerate() {
            pos[i as usize] = p as u32;
        }
        let mut remapped = ChipNetlist::new();
        for net in self.netlist.nets() {
            remapped.add_net(net.iter().map(|&b| pos[b as usize]));
        }
        plan.area().as_f64() + self.wire_weight * remapped.wirelength(plan).as_f64()
    }

    fn refresh(&mut self) {
        // Every evaluation here is inherently "full": it runs a complete
        // inner floorplan. Reverts restore the cached plan snapshot, so
        // they cost nothing.
        self.evals_full += 1;
        self.cached_plan = self.plan_for(&self.order);
        self.cached_cost = self.cost_of(&self.cached_plan, &self.order);
    }
}

impl AnnealState for OrderState<'_> {
    fn cost(&self) -> f64 {
        self.cached_cost
    }

    fn propose_and_apply(&mut self, rng: &mut StdRng) -> f64 {
        let n = self.order.len();
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        while j == i && n > 1 {
            j = rng.gen_range(0..n);
        }
        let prev_cost = self.cached_cost;
        let prev_plan = self.cached_plan.clone();
        self.order.swap(i, j);
        self.undo = Some(UndoSwap {
            i,
            j,
            prev_cost,
            prev_plan,
        });
        self.refresh();
        self.cached_cost
    }

    fn revert(&mut self) {
        let undo = self.undo.take().expect("revert without move");
        self.order.swap(undo.i, undo.j);
        self.cached_cost = undo.prev_cost;
        self.cached_plan = undo.prev_plan;
    }

    fn eval_counts(&self) -> (u64, u64) {
        (self.evals_full, 0)
    }
}

/// Floorplans `blocks` taking global connectivity into account. Returns
/// the plan (block order restored to the input order) and its global
/// wirelength.
///
/// # Panics
///
/// Panics if `blocks` is empty or the netlist references a block index
/// out of range.
pub fn floorplan_connected(
    blocks: &[Block],
    netlist: &ChipNetlist,
    params: &ConnectedPlanParams,
) -> (Floorplan, Lambda) {
    floorplan_connected_with(
        blocks,
        netlist,
        params,
        &Annealing::with_params(params.inner.clone()),
        &Annealing::with_params(params.base.clone()),
    )
}

/// [`floorplan_connected`] over explicit backends: `inner` evaluates the
/// cheap per-move floorplan inside the ordering anneal (keep it fast —
/// it runs hundreds of times; the deterministic spanning tree is a
/// natural fit), `base` produces the final full-quality plan. The
/// default path uses the annealing backend for both, which is exactly
/// the pre-trait behaviour.
///
/// # Panics
///
/// Panics if `blocks` is empty or the netlist references a block index
/// out of range.
pub fn floorplan_connected_with(
    blocks: &[Block],
    netlist: &ChipNetlist,
    params: &ConnectedPlanParams,
    inner: &dyn FloorplanBackend,
    base: &dyn FloorplanBackend,
) -> (Floorplan, Lambda) {
    assert!(!blocks.is_empty(), "cannot floorplan zero blocks");
    for net in netlist.nets() {
        for &b in net {
            assert!(
                (b as usize) < blocks.len(),
                "net references block {b} of {}",
                blocks.len()
            );
        }
    }
    let mut state = OrderState {
        blocks,
        netlist,
        inner,
        wire_weight: params.wire_weight,
        order: (0..blocks.len() as u32).collect(),
        cached_cost: 0.0,
        cached_plan: inner.plan(blocks, None).plan,
        undo: None,
        evals_full: 0,
    };
    state.refresh();
    if blocks.len() > 1 {
        // The outer anneal re-floorplans per move; keep it short.
        let schedule = AnnealSchedule {
            rounds: params.order_rounds,
            moves_per_round: blocks.len() * 3,
            ..AnnealSchedule::quick()
        }
        .calibrated(&mut state, params.base.seed, 4);
        anneal(&mut state, &schedule, params.base.seed);
    }
    // Final full-quality floorplan on the chosen order.
    let permuted: Vec<Block> = state
        .order
        .iter()
        .map(|&i| blocks[i as usize].clone())
        .collect();
    let plan = base.plan(&permuted, None).plan;
    let mut pos = vec![0u32; state.order.len()];
    for (p, &i) in state.order.iter().enumerate() {
        pos[i as usize] = p as u32;
    }
    let mut remapped = ChipNetlist::new();
    for net in netlist.nets() {
        remapped.add_net(net.iter().map(|&b| pos[b as usize]));
    }
    let wl = remapped.wirelength(&plan);
    (plan, wl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SpanningTree;
    use crate::plan::floorplan;
    use maestro_geom::LambdaArea;

    fn blocks(n: usize) -> Vec<Block> {
        (0..n)
            .map(|i| Block::soft(format!("b{i}"), LambdaArea::new(2_000 + 300 * i as i64), 4))
            .collect()
    }

    #[test]
    fn empty_netlist_reduces_to_area_floorplanning() {
        let blocks = blocks(4);
        let netlist = ChipNetlist::new();
        let (plan, wl) = floorplan_connected(&blocks, &netlist, &ConnectedPlanParams::quick());
        assert_eq!(plan.placements().len(), 4);
        assert_eq!(wl, Lambda::ZERO);
    }

    #[test]
    fn wirelength_counts_multi_block_nets_only() {
        let blocks = blocks(3);
        let plan = floorplan(&blocks, &PlanParams::quick());
        let mut netlist = ChipNetlist::new();
        netlist.add_net([0]);
        assert_eq!(netlist.wirelength(&plan), Lambda::ZERO);
        netlist.add_net([0, 1, 2]);
        assert!(netlist.wirelength(&plan).is_positive());
    }

    #[test]
    fn wire_aware_plan_beats_or_matches_area_only_on_wirelength() {
        // A chain of connections: 0-1, 1-2, 2-3, 3-4, 4-5. The wire-aware
        // planner should not be worse than the area-only order.
        let blocks = blocks(6);
        let mut netlist = ChipNetlist::new();
        for i in 0..5u32 {
            netlist.add_net([i, i + 1]);
        }
        let area_only = floorplan(&blocks, &PlanParams::quick());
        let baseline_wl = netlist.wirelength(&area_only);
        let params = ConnectedPlanParams {
            wire_weight: 50.0,
            ..ConnectedPlanParams::quick()
        };
        let (_, wl) = floorplan_connected(&blocks, &netlist, &params);
        assert!(
            wl <= baseline_wl,
            "wire-aware {wl} vs area-only {baseline_wl}"
        );
    }

    #[test]
    fn connected_plan_keeps_all_blocks() {
        let blocks = blocks(5);
        let mut netlist = ChipNetlist::new();
        netlist.add_net([0, 4]);
        let (plan, _) = floorplan_connected(&blocks, &netlist, &ConnectedPlanParams::quick());
        assert_eq!(plan.placements().len(), 5);
        // All names survive the permutation.
        for b in &blocks {
            assert!(plan.placement(b.name()).is_some(), "{} lost", b.name());
        }
    }

    #[test]
    fn explicit_backends_reduce_to_the_default_path() {
        // Annealing inner+base through the `_with` entry point is the
        // pre-trait `floorplan_connected`, bit for bit.
        let blocks = blocks(5);
        let mut netlist = ChipNetlist::new();
        netlist.add_net([0, 2, 4]);
        netlist.add_net([1, 3]);
        let params = ConnectedPlanParams::quick();
        let default_path = floorplan_connected(&blocks, &netlist, &params);
        let explicit = floorplan_connected_with(
            &blocks,
            &netlist,
            &params,
            &Annealing::with_params(params.inner.clone()),
            &Annealing::with_params(params.base.clone()),
        );
        assert_eq!(default_path, explicit);
    }

    #[test]
    fn spanning_tree_inner_keeps_all_blocks_and_is_deterministic() {
        let blocks = blocks(6);
        let mut netlist = ChipNetlist::new();
        for i in 0..5u32 {
            netlist.add_net([i, i + 1]);
        }
        let params = ConnectedPlanParams::quick();
        let run = || {
            floorplan_connected_with(
                &blocks,
                &netlist,
                &params,
                &SpanningTree,
                &Annealing::with_params(params.base.clone()),
            )
        };
        let (plan, wl) = run();
        assert_eq!(plan.placements().len(), 6);
        assert!(wl.is_positive());
        assert_eq!(run(), (plan, wl));
    }

    #[test]
    #[should_panic(expected = "references block")]
    fn out_of_range_net_rejected() {
        let blocks = blocks(2);
        let mut netlist = ChipNetlist::new();
        netlist.add_net([0, 7]);
        let _ = floorplan_connected(&blocks, &netlist, &ConnectedPlanParams::quick());
    }

    #[test]
    fn duplicate_blocks_in_net_are_deduplicated() {
        let mut netlist = ChipNetlist::new();
        netlist.add_net([1, 1, 0, 1]);
        assert_eq!(netlist.nets()[0], vec![0, 1]);
    }
}
