//! A slicing chip floorplanner consuming `maestro` estimates.
//!
//! Figure 1 of the paper ends with "Input to Floor Planner": the whole
//! point of pre-layout area estimation is to give a floorplanner realistic
//! module sizes before any layout exists, so that fewer floorplanning
//! iterations are wasted on shapes that turn out wrong. This crate is
//! that floorplanner plus the iteration experiment:
//!
//! * [`Block`] — a floorplan block carrying a [`maestro_geom::ShapeCurve`]
//!   of feasible realizations, built from an estimator
//!   [`maestro_estimator::EstimateRecord`] or directly;
//! * [`plan`] — slicing floorplanning: normalized-Polish-expression
//!   simulated annealing with Stockmeyer shape-curve combination, yielding
//!   a packed [`Floorplan`] with concrete block placements;
//! * [`iterate`] — the paper's §7 claim made measurable: floorplan with
//!   estimated sizes, "lay out" the modules (reveal their true sizes),
//!   re-floorplan where the estimates were wrong, and count iterations
//!   until the plan stabilizes;
//! * [`backend`] — the pluggable-optimizer surface: the annealer
//!   re-homed as [`backend::Annealing`], the deterministic
//!   [`backend::SpanningTree`] compact floorplanner, and a registry
//!   front ends resolve by name;
//! * [`shootout`] — the cross-backend comparison harness behind
//!   `maestro-cli shootout` and its CI quality gate.
//!
//! # Examples
//!
//! ```
//! use maestro_floorplan::{plan::floorplan, Block, PlanParams};
//! use maestro_geom::{Lambda, LambdaArea};
//!
//! let blocks = vec![
//!     Block::soft("alu", LambdaArea::new(10_000), 5),
//!     Block::soft("regfile", LambdaArea::new(8_000), 5),
//!     Block::hard("rom", Lambda::new(120), Lambda::new(60)),
//! ];
//! let plan = floorplan(&blocks, &PlanParams::quick());
//! assert_eq!(plan.placements().len(), 3);
//! assert!(plan.utilization() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod block;
pub mod connectivity;
pub mod iterate;
pub mod plan;
pub mod shootout;

pub use backend::{Annealing, BackendRun, FloorplanBackend, SpanningTree};
pub use block::Block;
pub use connectivity::{
    floorplan_connected, floorplan_connected_with, ChipNetlist, ConnectedPlanParams,
};
pub use plan::{floorplan, Floorplan, PlanParams};
