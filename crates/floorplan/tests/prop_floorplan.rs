//! Property-based tests for the slicing floorplanner.

use maestro_floorplan::{floorplan, Block, PlanParams};
use maestro_geom::{Lambda, LambdaArea, Rect};
use maestro_place::AnnealSchedule;
use proptest::prelude::*;

fn quick_params(seed: u64) -> PlanParams {
    PlanParams {
        seed,
        schedule: AnnealSchedule {
            rounds: 6,
            moves_per_round: 40,
            ..AnnealSchedule::quick()
        },
        ..PlanParams::default()
    }
}

fn blocks_from(specs: &[(i64, i64, bool)]) -> Vec<Block> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(w, h, soft))| {
            if soft {
                Block::soft(format!("s{i}"), LambdaArea::new(w * h), 4)
            } else {
                Block::hard(format!("h{i}"), Lambda::new(w), Lambda::new(h))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn no_overlaps_and_all_inside(
        specs in proptest::collection::vec((5i64..80, 5i64..80, any::<bool>()), 1..9),
        seed in 0u64..50,
    ) {
        let blocks = blocks_from(&specs);
        let plan = floorplan(&blocks, &quick_params(seed));
        prop_assert_eq!(plan.placements().len(), blocks.len());
        let rects: Vec<Rect> = plan.placements().iter().map(|&(_, r)| r).collect();
        for (i, a) in rects.iter().enumerate() {
            prop_assert!(a.top_right().x <= plan.width());
            prop_assert!(a.top_right().y <= plan.height());
            for b in &rects[i + 1..] {
                prop_assert!(!a.overlaps_strictly(*b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn chip_area_bounds(
        specs in proptest::collection::vec((5i64..80, 5i64..80, any::<bool>()), 1..9),
        seed in 0u64..50,
    ) {
        let blocks = blocks_from(&specs);
        let plan = floorplan(&blocks, &quick_params(seed));
        let min_sum: i64 = blocks.iter().map(|b| b.min_area().get()).sum();
        prop_assert!(plan.area().get() >= min_sum);
        prop_assert!(plan.utilization() <= 1.0 + 1e-9);
        prop_assert!(plan.utilization() > 0.0);
    }

    #[test]
    fn hard_blocks_keep_their_shape(
        specs in proptest::collection::vec((5i64..60, 5i64..60), 1..7),
        seed in 0u64..50,
    ) {
        let blocks: Vec<Block> = specs
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| Block::hard(format!("h{i}"), Lambda::new(w), Lambda::new(h)))
            .collect();
        let plan = floorplan(&blocks, &quick_params(seed));
        for (i, &(w, h)) in specs.iter().enumerate() {
            let rect = plan.placement(&format!("h{i}")).expect("placed");
            let dims = (rect.width().get(), rect.height().get());
            prop_assert!(
                dims == (w, h) || dims == (h, w),
                "block {i}: {dims:?} not a rotation of ({w}, {h})"
            );
        }
    }

    #[test]
    fn aspect_limit_is_respected_within_slack(
        specs in proptest::collection::vec((10i64..50, 10i64..50, any::<bool>()), 2..8),
        seed in 0u64..30,
    ) {
        let blocks = blocks_from(&specs);
        let plan = floorplan(&blocks, &quick_params(seed).with_aspect_limit(2.0));
        let w = plan.width().as_f64();
        let h = plan.height().as_f64();
        let aspect = (w / h).max(h / w);
        // Soft constraint: the penalty steers, it does not clamp — allow
        // slack for incompatible hard blocks.
        prop_assert!(aspect <= 5.0, "aspect {aspect:.2} far beyond the limit");
    }
}
