//! Backend-boundary differential tests.
//!
//! The trait extraction must be invisible: `backend::Annealing` at the
//! same [`PlanParams`] has to produce byte-identical floorplans to the
//! pre-trait `plan::floorplan` entry point (which still exists and still
//! carries the original code path). And the deterministic spanning-tree
//! backend must uphold the floorplanner's core invariant — every block
//! placed, no two blocks overlapping — over arbitrary block mixes.

use maestro_estimator::pipeline::Pipeline;
use maestro_floorplan::{floorplan, Annealing, Block, FloorplanBackend, PlanParams, SpanningTree};
use maestro_geom::{Lambda, LambdaArea, Rect};
use maestro_netlist::library_circuits;
use proptest::prelude::*;

/// The paper's Table 1 modules shaped by the estimator — the exact
/// Figure 1 hand-off the floorplanner was built to consume.
fn table1_blocks() -> Vec<Block> {
    let pipeline = Pipeline::new(maestro_tech::builtin::nmos25());
    library_circuits::table1_suite()
        .iter()
        .map(|m| {
            Block::from_module(&pipeline, m, 5)
                .expect("table1 estimates")
                .expect("table1 modules shape")
        })
        .collect()
}

#[test]
fn annealing_backend_is_byte_identical_to_pre_trait_floorplan() {
    let blocks = table1_blocks();
    assert_eq!(blocks.len(), 5);
    for params in [
        PlanParams::default(),
        PlanParams::quick(),
        PlanParams::default().with_aspect_limit(1.5),
        PlanParams {
            replicas: 3,
            ..PlanParams::quick()
        },
    ] {
        let direct = floorplan(&blocks, &params);
        let via_trait = Annealing::with_params(params.clone()).plan(&blocks, None);
        assert_eq!(via_trait.plan, direct);
        // Byte-identical, not merely equal: serialize both and compare
        // the exact JSON the reports and SVG paths are derived from.
        let a = serde_json::to_string(&direct).expect("plan serializes");
        let b = serde_json::to_string(&via_trait.plan).expect("plan serializes");
        assert_eq!(a, b);
    }
}

/// A deterministic splitmix64 walk: the proptest seed below fans out
/// into an arbitrary mix of soft and hard blocks.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn random_blocks(seed: u64, count: usize) -> Vec<Block> {
    let mut state = seed;
    (0..count)
        .map(|i| {
            if mix(&mut state).is_multiple_of(3) {
                let w = 10 + (mix(&mut state) % 200) as i64;
                let h = 10 + (mix(&mut state) % 200) as i64;
                Block::hard(format!("h{i}"), Lambda::new(w), Lambda::new(h))
            } else {
                let area = 100 + (mix(&mut state) % 20_000) as i64;
                let shapes = 2 + (mix(&mut state) % 7) as usize;
                Block::soft(format!("s{i}"), LambdaArea::new(area), shapes)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn spanning_tree_places_every_block_without_overlap(
        seed in 0u64..u64::MAX,
        count in 1usize..=24,
    ) {
        let blocks = random_blocks(seed, count);
        let run = SpanningTree.plan(&blocks, None);
        prop_assert_eq!(run.plan.placements().len(), blocks.len());
        for block in &blocks {
            let rect = run.plan.placement(block.name());
            prop_assert!(rect.is_some(), "block `{}` missing", block.name());
        }
        let rects: Vec<Rect> = run.plan.placements().iter().map(|&(_, r)| r).collect();
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                prop_assert!(
                    !rects[i].overlaps_strictly(rects[j]),
                    "blocks {} and {} overlap: {:?} vs {:?}",
                    i, j, rects[i], rects[j]
                );
            }
        }
        // The plan is self-consistent: the bounding box covers at least
        // the sum of minimum block areas.
        let min_total: i64 = blocks.iter().map(|b| b.min_area().get()).sum();
        prop_assert!(run.plan.area().get() >= min_total);
    }

    #[test]
    fn spanning_tree_is_a_pure_function_of_its_input(
        seed in 0u64..u64::MAX,
        count in 1usize..=12,
    ) {
        let blocks = random_blocks(seed, count);
        let a = SpanningTree.plan(&blocks, None);
        let b = SpanningTree.plan(&blocks, None);
        prop_assert_eq!(a, b);
    }
}
