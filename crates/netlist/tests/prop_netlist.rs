//! Property-based tests for the netlist substrate: format round-trips,
//! generator invariants and statistics consistency.

use maestro_netlist::generate::{self, RandomLogicConfig};
use maestro_netlist::{expand, mnl, spice, LayoutStyle, NetlistStats};
use maestro_tech::builtin;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mnl_round_trip_reaches_a_fixed_point(seed in 0u64..500, devices in 3usize..50) {
        // Net ids may be renumbered by the writer's ports-then-internals
        // ordering, so the invariant is: one round trip is a *textual*
        // fixed point, and every estimator-relevant statistic survives.
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let text = mnl::to_mnl(&module);
        let back = mnl::parse(&text).expect("round-trip parses");
        prop_assert_eq!(&text, &mnl::to_mnl(&back), "writer not a fixed point");

        let tech = builtin::nmos25();
        let s1 = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).unwrap();
        let s2 = NetlistStats::resolve(&back, &tech, LayoutStyle::StandardCell).unwrap();
        prop_assert_eq!(s1.device_count(), s2.device_count());
        prop_assert_eq!(s1.net_count(), s2.net_count());
        prop_assert_eq!(s1.port_count(), s2.port_count());
        prop_assert_eq!(s1.total_device_area(), s2.total_device_area());
        let h1: Vec<_> = s1.net_sizes().iter().collect();
        let h2: Vec<_> = s2.net_sizes().iter().collect();
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn spice_round_trip_preserves_connectivity(seed in 0u64..200, gates in 2usize..20) {
        let module = generate::random_nmos_logic(seed, gates);
        let deck = spice::to_spice(&module);
        let back = spice::parse(&deck).expect("round-trip parses");
        prop_assert_eq!(back.device_count(), module.device_count());
        prop_assert_eq!(back.port_count(), module.port_count());
        // Per-net component counts survive.
        for (_, net) in module.nets() {
            if net.component_count() == 0 {
                continue;
            }
            let n2 = back.find_net(net.name());
            prop_assert!(n2.is_some(), "net {} lost", net.name());
            prop_assert_eq!(
                back.net(n2.unwrap()).component_count(),
                net.component_count(),
                "net {}", net.name()
            );
        }
    }

    #[test]
    fn stats_are_consistent_with_module(seed in 0u64..300, devices in 3usize..60) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let tech = builtin::nmos25();
        let stats = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).unwrap();
        prop_assert_eq!(stats.device_count(), module.device_count());
        prop_assert_eq!(stats.port_count(), module.port_count());
        // H counts exactly the nets with components.
        let connected = module.nets().filter(|(_, n)| n.component_count() > 0).count();
        prop_assert_eq!(stats.net_count(), connected);
        // Width histogram covers every device.
        prop_assert_eq!(stats.widths().total_count(), module.device_count());
        // Eq. 1 is a convex combination of observed widths.
        let widths: Vec<f64> = stats.widths().iter().map(|(w, _)| w.as_f64()).collect();
        let wav = stats.average_width();
        let lo = widths.iter().cloned().fold(f64::MAX, f64::min);
        let hi = widths.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(wav >= lo - 1e-9 && wav <= hi + 1e-9);
    }

    #[test]
    fn expansion_multiplies_devices_and_keeps_ports(seed in 0u64..200, devices in 3usize..30) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let xt = expand::to_nmos_transistors(&module).expect("expands");
        prop_assert!(xt.device_count() >= module.device_count());
        prop_assert_eq!(xt.port_count(), module.port_count());
        // Expanded module resolves against the transistor table.
        let tech = builtin::nmos25();
        let stats = NetlistStats::resolve(&xt, &tech, LayoutStyle::FullCustom).unwrap();
        prop_assert!(stats.total_device_area().get() > 0);
    }

    #[test]
    fn generated_modules_validate_cleanly(seed in 0u64..200, devices in 3usize..40) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let warnings = maestro_netlist::validate::check(
            &module,
            &builtin::nmos25(),
            LayoutStyle::StandardCell,
        )
        .expect("validates");
        prop_assert!(warnings.is_empty(), "{warnings:?}");
    }
}
