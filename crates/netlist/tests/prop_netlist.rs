//! Property-based tests for the netlist substrate: format round-trips,
//! generator invariants and statistics consistency.

use maestro_netlist::generate::{self, RandomLogicConfig};
use maestro_netlist::{
    diff, expand, mnl, spice, LayoutStyle, Module, ModuleBuilder, NetId, NetlistStats,
    RevisionManifest,
};
use maestro_tech::builtin;
use proptest::prelude::*;

/// Rebuilds `module` with exactly one device-level mutation applied:
/// 0 = add a device, 1 = drop a device, 2 = rewire one pin to the next
/// net, 3 = retemplate a device, 4 = rename a device.
fn mutate_one(module: &Module, kind: u8) -> Module {
    let mut b = ModuleBuilder::new(module.name());
    let mut mapped: Vec<Option<NetId>> = vec![None; module.net_count()];
    for (_, port) in module.ports() {
        mapped[port.net().index()] = Some(b.port(port.name(), port.direction()));
    }
    for (old, net) in module.nets() {
        if mapped[old.index()].is_none() {
            mapped[old.index()] = Some(b.net(net.name()));
        }
    }
    let m = |id: NetId| mapped[id.index()].expect("net mapped");
    let nets_in_order: Vec<NetId> = module.nets().map(|(old, _)| m(old)).collect();
    let target = module.device_count() / 2;
    for (id, dev) in module.devices() {
        let plain = dev.pins().iter().map(|(p, n)| (p.as_str(), m(*n)));
        if id.index() != target {
            b.device(dev.name(), dev.template(), plain);
            continue;
        }
        match kind {
            0 => {
                b.device(dev.name(), dev.template(), plain);
            }
            1 => {} // drop: re-add nothing
            2 => {
                let pins: Vec<(String, NetId)> = dev
                    .pins()
                    .iter()
                    .enumerate()
                    .map(|(pi, (p, n))| {
                        let net = if pi == 0 {
                            nets_in_order[(n.index() + 1) % nets_in_order.len()]
                        } else {
                            m(*n)
                        };
                        (p.clone(), net)
                    })
                    .collect();
                b.device(
                    dev.name(),
                    dev.template(),
                    pins.iter().map(|(p, n)| (p.as_str(), *n)),
                );
            }
            3 => {
                b.device(dev.name(), format!("{}_ALT", dev.template()), plain);
            }
            _ => {
                b.device(format!("{}_renamed", dev.name()), dev.template(), plain);
            }
        }
    }
    if kind == 0 {
        b.device("zz_eco_added", "INV", [("A", nets_in_order[0])]);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mnl_round_trip_reaches_a_fixed_point(seed in 0u64..500, devices in 3usize..50) {
        // Net ids may be renumbered by the writer's ports-then-internals
        // ordering, so the invariant is: one round trip is a *textual*
        // fixed point, and every estimator-relevant statistic survives.
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let text = mnl::to_mnl(&module);
        let back = mnl::parse(&text).expect("round-trip parses");
        prop_assert_eq!(&text, &mnl::to_mnl(&back), "writer not a fixed point");

        let tech = builtin::nmos25();
        let s1 = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).unwrap();
        let s2 = NetlistStats::resolve(&back, &tech, LayoutStyle::StandardCell).unwrap();
        prop_assert_eq!(s1.device_count(), s2.device_count());
        prop_assert_eq!(s1.net_count(), s2.net_count());
        prop_assert_eq!(s1.port_count(), s2.port_count());
        prop_assert_eq!(s1.total_device_area(), s2.total_device_area());
        let h1: Vec<_> = s1.net_sizes().iter().collect();
        let h2: Vec<_> = s2.net_sizes().iter().collect();
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn spice_round_trip_preserves_connectivity(seed in 0u64..200, gates in 2usize..20) {
        let module = generate::random_nmos_logic(seed, gates);
        let deck = spice::to_spice(&module);
        let back = spice::parse(&deck).expect("round-trip parses");
        prop_assert_eq!(back.device_count(), module.device_count());
        prop_assert_eq!(back.port_count(), module.port_count());
        // Per-net component counts survive.
        for (_, net) in module.nets() {
            if net.component_count() == 0 {
                continue;
            }
            let n2 = back.find_net(net.name());
            prop_assert!(n2.is_some(), "net {} lost", net.name());
            prop_assert_eq!(
                back.net(n2.unwrap()).component_count(),
                net.component_count(),
                "net {}", net.name()
            );
        }
    }

    #[test]
    fn stats_are_consistent_with_module(seed in 0u64..300, devices in 3usize..60) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let tech = builtin::nmos25();
        let stats = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell).unwrap();
        prop_assert_eq!(stats.device_count(), module.device_count());
        prop_assert_eq!(stats.port_count(), module.port_count());
        // H counts exactly the nets with components.
        let connected = module.nets().filter(|(_, n)| n.component_count() > 0).count();
        prop_assert_eq!(stats.net_count(), connected);
        // Width histogram covers every device.
        prop_assert_eq!(stats.widths().total_count(), module.device_count());
        // Eq. 1 is a convex combination of observed widths.
        let widths: Vec<f64> = stats.widths().iter().map(|(w, _)| w.as_f64()).collect();
        let wav = stats.average_width();
        let lo = widths.iter().cloned().fold(f64::MAX, f64::min);
        let hi = widths.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(wav >= lo - 1e-9 && wav <= hi + 1e-9);
    }

    #[test]
    fn expansion_multiplies_devices_and_keeps_ports(seed in 0u64..200, devices in 3usize..30) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let xt = expand::to_nmos_transistors(&module).expect("expands");
        prop_assert!(xt.device_count() >= module.device_count());
        prop_assert_eq!(xt.port_count(), module.port_count());
        // Expanded module resolves against the transistor table.
        let tech = builtin::nmos25();
        let stats = NetlistStats::resolve(&xt, &tech, LayoutStyle::FullCustom).unwrap();
        prop_assert!(stats.total_device_area().get() > 0);
    }

    #[test]
    fn single_module_mutations_land_exactly_in_modified(
        which in 0usize..5,
        kind in 0u8..5,
        seed in 0u64..100,
    ) {
        let cfg = RandomLogicConfig { device_count: 12, ..Default::default() };
        let suite: Vec<Module> = (0..5u64)
            .map(|i| generate::random_logic(seed * 5 + i, &cfg).renamed(format!("blk{i}")))
            .collect();
        let prev = RevisionManifest::from_modules(&suite);

        let mut next_mods = suite.clone();
        next_mods[which] = mutate_one(&suite[which], kind);
        let next = RevisionManifest::from_modules(&next_mods);

        let d = diff(&prev, &next);
        let name = suite[which].name().to_string();
        prop_assert_eq!(d.modified, vec![name.clone()], "kind {}", kind);
        prop_assert!(d.added.is_empty() && d.removed.is_empty());
        prop_assert_eq!(d.unchanged.len(), suite.len() - 1);
        prop_assert!(!d.unchanged.contains(&name));
        // Nothing in `unchanged` changed identity across the revisions.
        for n in &d.unchanged {
            prop_assert_eq!(prev.fingerprint(n), next.fingerprint(n));
        }
    }

    #[test]
    fn generated_modules_validate_cleanly(seed in 0u64..200, devices in 3usize..40) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let warnings = maestro_netlist::validate::check(
            &module,
            &builtin::nmos25(),
            LayoutStyle::StandardCell,
        )
        .expect("validates");
        prop_assert!(warnings.is_empty(), "{warnings:?}");
    }
}
