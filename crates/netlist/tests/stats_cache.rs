//! Integration tests for the resolve-once [`StatsCache`]:
//!
//! * property tests that [`ModuleFingerprint`] separates semantically
//!   distinct modules (and only those) — mutations that change what
//!   [`NetlistStats::resolve`] observes must change the key;
//! * a concurrency stress test proving one cache instance hands out one
//!   computation per key with no deadlock under thread contention.

use std::sync::{Arc, Barrier};

use maestro_netlist::generate::{self, RandomLogicConfig};
use maestro_netlist::{
    LayoutStyle, Module, ModuleBuilder, ModuleFingerprint, NetlistStats, StatsCache,
};
use maestro_tech::builtin;
use proptest::prelude::*;

/// A structural edit applied while rebuilding a module from its parts.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Faithful rebuild — the control arm.
    None,
    /// Append one extra device on a fresh net.
    AddDevice,
    /// Drop the last device.
    DropLastDevice,
    /// Swap one device's template for a different known one.
    Retemplate(usize),
    /// Move one device's first pin onto a fresh net.
    Rewire(usize),
}

/// Rebuilds `module` through a fresh [`ModuleBuilder`], applying the
/// mutation. A [`Mutation::None`] rebuild is structurally identical, which
/// is itself part of the property: the fingerprint must not depend on
/// builder identity or insertion incidentals the module doesn't keep.
fn rebuild_with(module: &Module, mutation: Mutation) -> Module {
    let mut b = ModuleBuilder::new(module.name());
    // Pre-declare every net in original id order: the builder numbers nets
    // by first reference, and the fingerprint covers net ids.
    for (_, net) in module.nets() {
        b.net(net.name());
    }
    for (_, port) in module.ports() {
        b.port(port.name(), port.direction());
    }
    let last = module.device_count().saturating_sub(1);
    for (i, (_, dev)) in module.devices().enumerate() {
        if matches!(mutation, Mutation::DropLastDevice) && i == last {
            continue;
        }
        let template = match mutation {
            Mutation::Retemplate(target) if i == target % module.device_count() => {
                if dev.template() == "INV" {
                    "NAND2"
                } else {
                    "INV"
                }
            }
            _ => dev.template(),
        };
        let rewire_first = matches!(
            mutation,
            Mutation::Rewire(target) if i == target % module.device_count()
        );
        let pins: Vec<(&str, maestro_netlist::NetId)> = dev
            .pins()
            .iter()
            .enumerate()
            .map(|(p, (pin, net))| {
                let id = if rewire_first && p == 0 {
                    b.net("__rewired")
                } else {
                    b.net(module.net(*net).name())
                };
                (pin.as_str(), id)
            })
            .collect();
        b.device(dev.name(), template, pins);
    }
    if matches!(mutation, Mutation::AddDevice) {
        let a = b.net("__grafted");
        let y = b.net("__grafted_y");
        b.device("__extra", "INV", [("A", a), ("Y", y)]);
    }
    b.finish()
}

fn mutation_for(pick: usize, index: usize) -> Mutation {
    match pick % 4 {
        0 => Mutation::AddDevice,
        1 => Mutation::DropLastDevice,
        2 => Mutation::Retemplate(index),
        _ => Mutation::Rewire(index),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fingerprint_separates_semantically_distinct_modules(
        seed in 0u64..300,
        devices in 3usize..30,
        pick in 0usize..4,
        index in 0usize..64,
    ) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let base_fp = ModuleFingerprint::of(&module);

        // Control arm: a faithful rebuild keys identically.
        let same = rebuild_with(&module, Mutation::None);
        prop_assert_eq!(ModuleFingerprint::of(&same), base_fp);

        // Mutated arm: every structural edit separates.
        let mutated = rebuild_with(&module, mutation_for(pick, index));
        let mutated_fp = ModuleFingerprint::of(&mutated);
        prop_assert_ne!(mutated_fp, base_fp, "mutation {:?}", mutation_for(pick, index));

        // And whenever the edit changes what resolution observes, the
        // keys MUST differ — the cache-correctness direction.
        let tech = builtin::nmos25();
        let before = NetlistStats::resolve(&module, &tech, LayoutStyle::StandardCell);
        let after = NetlistStats::resolve(&mutated, &tech, LayoutStyle::StandardCell);
        if let (Ok(before), Ok(after)) = (before, after) {
            if before != after {
                prop_assert_ne!(mutated_fp, base_fp);
            }
        }
    }

    #[test]
    fn cloned_identical_modules_share_one_cache_entry(
        seed in 0u64..300,
        devices in 3usize..30,
    ) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let clone = module.clone();
        let rebuilt = rebuild_with(&module, Mutation::None);

        let tech = builtin::nmos25();
        let cache = StatsCache::new();
        let first = cache
            .resolve(&module, &tech, LayoutStyle::StandardCell)
            .expect("resolves");
        for other in [&clone, &rebuilt] {
            let again = cache
                .resolve(other, &tech, LayoutStyle::StandardCell)
                .expect("resolves");
            prop_assert!(Arc::ptr_eq(&first, &again), "distinct allocation returned");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 2);
        prop_assert_eq!(stats.entries, 1);
    }
}

#[test]
fn contended_cache_resolves_each_key_exactly_once() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 16;

    let tech = builtin::nmos25();
    let modules: Vec<Module> = (2..6).map(generate::counter).collect();
    let cache = Arc::new(StatsCache::new());
    let barrier = Arc::new(Barrier::new(THREADS));

    let references: Vec<Arc<NetlistStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (cache, barrier, tech, modules) = (&cache, &barrier, &tech, &modules);
                scope.spawn(move || {
                    // All threads release together so first-resolve races
                    // actually happen.
                    barrier.wait();
                    let mut seen = Vec::new();
                    for round in 0..ROUNDS {
                        for module in modules {
                            let stats = cache
                                .resolve(module, tech, LayoutStyle::StandardCell)
                                .expect("resolves");
                            if round == 0 {
                                seen.push(stats);
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        let mut per_thread = handles.into_iter().map(|h| h.join().expect("no panic"));
        let references = per_thread.next().expect("at least one thread");
        // Every thread got the same allocation for every key.
        for other in per_thread {
            for (a, b) in references.iter().zip(&other) {
                assert!(Arc::ptr_eq(a, b), "duplicate computation leaked out");
            }
        }
        references
    });
    assert_eq!(references.len(), modules.len());

    let stats = cache.stats();
    let total = (THREADS * ROUNDS * modules.len()) as u64;
    assert_eq!(
        stats.misses,
        modules.len() as u64,
        "exactly one miss per distinct key"
    );
    assert_eq!(stats.hits, total - stats.misses);
    assert_eq!(stats.entries, modules.len());
}

#[test]
fn distinct_styles_are_distinct_keys() {
    let tech = builtin::nmos25();
    let cache = StatsCache::new();
    let module = generate::counter(3);
    let sc = cache.resolve(&module, &tech, LayoutStyle::StandardCell);
    let fc = cache.resolve(&module, &tech, LayoutStyle::FullCustom);
    // A gate-level module resolves SC; FC is a separate (here failing)
    // entry, not a hit on the SC slot.
    assert!(sc.is_ok());
    assert!(fc.is_err());
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
}
