//! Typed indices into a module's device, net and port arenas.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! arena_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw arena index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The raw arena index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

arena_id!(
    /// Index of a [`Device`](crate::Device) within its module.
    DeviceId,
    "d"
);
arena_id!(
    /// Index of a [`Net`](crate::Net) within its module.
    NetId,
    "n"
);
arena_id!(
    /// Index of a [`Port`](crate::Port) within its module.
    PortId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        assert_eq!(DeviceId::new(7).index(), 7);
        assert_eq!(NetId::new(0).index(), 0);
        assert_eq!(PortId::new(42).index(), 42);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(DeviceId::new(1) < DeviceId::new(2));
        assert_eq!(DeviceId::new(3).to_string(), "d3");
        assert_eq!(NetId::new(3).to_string(), "n3");
        assert_eq!(PortId::new(3).to_string(), "p3");
    }
}
