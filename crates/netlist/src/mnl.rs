//! The `.mnl` structural netlist language.
//!
//! The paper requires "the circuit schematic expressed in a standard
//! hardware description language" (§3). `.mnl` (maestro netlist) is the
//! minimal structural format carrying exactly what the estimator consumes:
//!
//! ```text
//! # a full adder on standard cells
//! module full_adder;
//! input a, b, cin;
//! output sum, cout;
//! net t1, t2, t3;
//! device x1 XOR2 (A=a, B=b, Y=t1);
//! device x2 XOR2 (A=t1, B=cin, Y=sum);
//! device a1 AND2 (A=a, B=b, Y=t2);
//! device a2 AND2 (A=t1, B=cin, Y=t3);
//! device o1 OR2 (A=t2, B=t3, Y=cout);
//! endmodule
//! ```
//!
//! Identifiers are `[A-Za-z_][A-Za-z0-9_]*`; `#` starts a line comment;
//! nets may be declared lazily by first use inside a `device` binding.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{Module, ModuleBuilder, NetlistError, ParseErrorKind, PortDirection};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Semi,
    Comma,
    LParen,
    RParen,
    Equals,
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    line: usize,
}

fn lex(source: &str) -> Result<Vec<Spanned>, NetlistError> {
    let mut out = Vec::new();
    for (lineno, line) in source.lines().enumerate() {
        let line_no = lineno + 1;
        let code = match line.find('#') {
            Some(i) => &line[..i],
            None => line,
        };
        let mut chars = code.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                ';' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::Semi,
                        line: line_no,
                    });
                }
                ',' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::Comma,
                        line: line_no,
                    });
                }
                '(' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::LParen,
                        line: line_no,
                    });
                }
                ')' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::RParen,
                        line: line_no,
                    });
                }
                '=' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::Equals,
                        line: line_no,
                    });
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut end = i + c.len_utf8();
                    chars.next();
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Spanned {
                        token: Token::Ident(code[start..end].to_owned()),
                        line: line_no,
                    });
                }
                other => {
                    return Err(NetlistError::parse(
                        ParseErrorKind::UnexpectedToken,
                        line_no,
                        format!("unexpected character `{other}`"),
                    ));
                }
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn last_line(&self) -> usize {
        self.tokens.last().map_or(1, |t| t.line)
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, usize), NetlistError> {
        match self.next() {
            Some(Spanned {
                token: Token::Ident(s),
                line,
            }) => Ok((s, line)),
            Some(Spanned { token, line }) => Err(NetlistError::parse(
                ParseErrorKind::UnexpectedToken,
                line,
                format!("expected {what}, found {token:?}"),
            )),
            None => Err(NetlistError::parse(
                ParseErrorKind::UnexpectedEof,
                self.last_line(),
                format!("expected {what}"),
            )),
        }
    }

    fn expect(&mut self, token: Token, what: &str) -> Result<usize, NetlistError> {
        match self.next() {
            Some(Spanned { token: t, line }) if t == token => Ok(line),
            Some(Spanned { token: t, line }) => Err(NetlistError::parse(
                ParseErrorKind::UnexpectedToken,
                line,
                format!("expected {what}, found {t:?}"),
            )),
            None => Err(NetlistError::parse(
                ParseErrorKind::UnexpectedEof,
                self.last_line(),
                format!("expected {what}"),
            )),
        }
    }

    fn name_list(&mut self) -> Result<Vec<(String, usize)>, NetlistError> {
        let mut names = vec![self.expect_ident("a name")?];
        while let Some(Spanned {
            token: Token::Comma,
            ..
        }) = self.peek()
        {
            self.next();
            names.push(self.expect_ident("a name")?);
        }
        self.expect(Token::Semi, "`;`")?;
        Ok(names)
    }
}

/// Parses a single `.mnl` module.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a 1-based line number on any
/// lexical or syntactic problem, duplicate declaration, or missing
/// `endmodule`.
///
/// # Examples
///
/// ```
/// let m = maestro_netlist::mnl::parse(
///     "module inv_pair;\n\
///      input a;\n\
///      output y;\n\
///      device u1 INV (A=a, Y=t);\n\
///      device u2 INV (A=t, Y=y);\n\
///      endmodule\n",
/// )?;
/// assert_eq!(m.device_count(), 2);
/// assert_eq!(m.net_count(), 3); // a, y, t (lazily declared)
/// # Ok::<(), maestro_netlist::NetlistError>(())
/// ```
pub fn parse(source: &str) -> Result<Module, NetlistError> {
    let modules = parse_design(source)?;
    match <[Module; 1]>::try_from(modules) {
        Ok([module]) => Ok(module),
        Err(modules) => Err(NetlistError::parse(
            ParseErrorKind::Malformed,
            1,
            format!(
                "expected exactly one module, found {} (use parse_design for multi-module files)",
                modules.len()
            ),
        )),
    }
}

/// Parses a multi-module `.mnl` design: a sequence of
/// `module … endmodule` blocks in one file — the "global module
/// descriptions … for the whole chip" of the paper's Figure 1 database.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on any syntax problem, or a
/// [`ParseErrorKind::DuplicateName`] error when two modules share a name.
///
/// # Examples
///
/// ```
/// let design = maestro_netlist::mnl::parse_design(
///     "module a;\ninput x;\ndevice u INV (A=x, Y=y);\nendmodule\n\
///      module b;\ninput x;\ndevice u BUF (A=x, Y=y);\nendmodule\n",
/// )?;
/// assert_eq!(design.len(), 2);
/// # Ok::<(), maestro_netlist::NetlistError>(())
/// ```
pub fn parse_design(source: &str) -> Result<Vec<Module>, NetlistError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut modules: Vec<Module> = Vec::new();
    while p.peek().is_some() {
        let module = parse_one(&mut p)?;
        if modules.iter().any(|m| m.name() == module.name()) {
            return Err(NetlistError::parse(
                ParseErrorKind::DuplicateName,
                p.last_line(),
                format!("module `{}` defined twice", module.name()),
            ));
        }
        modules.push(module);
    }
    if modules.is_empty() {
        return Err(NetlistError::parse(
            ParseErrorKind::Malformed,
            1,
            "source contains no modules",
        ));
    }
    Ok(modules)
}

fn parse_one(p: &mut Parser) -> Result<Module, NetlistError> {
    let line = p.expect(Token::Ident("module".to_owned()), "keyword `module`");
    // Better message when the first token isn't `module`.
    let line = match line {
        Ok(l) => l,
        Err(NetlistError::Parse { line, .. }) => {
            return Err(NetlistError::parse(
                ParseErrorKind::Malformed,
                line,
                "netlist must start with `module <name>;`",
            ));
        }
        Err(e) => return Err(e),
    };
    let _ = line;
    let (module_name, _) = p.expect_ident("module name")?;
    p.expect(Token::Semi, "`;`")?;

    let mut b = ModuleBuilder::new(module_name);
    let mut declared_ports: BTreeSet<String> = BTreeSet::new();
    let mut declared_devices: BTreeSet<String> = BTreeSet::new();

    loop {
        let (kw, line) = p.expect_ident("a statement keyword")?;
        match kw.as_str() {
            "endmodule" => break,
            "input" | "output" | "inout" => {
                let dir = match kw.as_str() {
                    "input" => PortDirection::Input,
                    "output" => PortDirection::Output,
                    _ => PortDirection::InOut,
                };
                for (name, line) in p.name_list()? {
                    if !declared_ports.insert(name.clone()) {
                        return Err(NetlistError::parse(
                            ParseErrorKind::DuplicateName,
                            line,
                            format!("port `{name}` declared twice"),
                        ));
                    }
                    b.port(name, dir);
                }
            }
            "net" => {
                for (name, _) in p.name_list()? {
                    b.net(name);
                }
            }
            "device" => {
                let (inst, line) = p.expect_ident("device instance name")?;
                if !declared_devices.insert(inst.clone()) {
                    return Err(NetlistError::parse(
                        ParseErrorKind::DuplicateName,
                        line,
                        format!("device `{inst}` declared twice"),
                    ));
                }
                let (template, _) = p.expect_ident("device template name")?;
                p.expect(Token::LParen, "`(`")?;
                let mut bindings: Vec<(String, String)> = Vec::new();
                if !matches!(
                    p.peek(),
                    Some(Spanned {
                        token: Token::RParen,
                        ..
                    })
                ) {
                    loop {
                        let (pin, line) = p.expect_ident("pin name")?;
                        p.expect(Token::Equals, "`=`")?;
                        let (net, _) = p.expect_ident("net name")?;
                        if bindings.iter().any(|(existing, _)| *existing == pin) {
                            return Err(NetlistError::parse(
                                ParseErrorKind::DuplicateName,
                                line,
                                format!("pin `{pin}` bound twice on `{inst}`"),
                            ));
                        }
                        bindings.push((pin, net));
                        match p.peek() {
                            Some(Spanned {
                                token: Token::Comma,
                                ..
                            }) => {
                                p.next();
                            }
                            _ => break,
                        }
                    }
                }
                p.expect(Token::RParen, "`)`")?;
                p.expect(Token::Semi, "`;`")?;
                let resolved: Vec<(String, crate::NetId)> = bindings
                    .into_iter()
                    .map(|(pin, net)| {
                        let id = b.net(net);
                        (pin, id)
                    })
                    .collect();
                b.device(
                    inst,
                    template,
                    resolved.iter().map(|(p, n)| (p.as_str(), *n)),
                );
            }
            other => {
                return Err(NetlistError::parse(
                    ParseErrorKind::UnexpectedToken,
                    line,
                    format!("unknown statement `{other}`"),
                ));
            }
        }
    }

    Ok(b.finish())
}

/// Serializes a module back to `.mnl` text.
///
/// The output parses back to a structurally identical module (same device,
/// net and port order), which the round-trip tests rely on.
pub fn to_mnl(module: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module {};", module.name());
    for dir in [
        PortDirection::Input,
        PortDirection::Output,
        PortDirection::InOut,
    ] {
        let names: Vec<&str> = module
            .ports()
            .filter(|(_, p)| p.direction() == dir)
            .map(|(_, p)| p.name())
            .collect();
        if !names.is_empty() {
            let kw = match dir {
                PortDirection::Input => "input",
                PortDirection::Output => "output",
                PortDirection::InOut => "inout",
            };
            let _ = writeln!(s, "{kw} {};", names.join(", "));
        }
    }
    let internal: Vec<&str> = module
        .nets()
        .filter(|(_, n)| !n.is_external())
        .map(|(_, n)| n.name())
        .collect();
    if !internal.is_empty() {
        let _ = writeln!(s, "net {};", internal.join(", "));
    }
    for (_, d) in module.devices() {
        let pins: Vec<String> = d
            .pins()
            .iter()
            .map(|(pin, net)| format!("{pin}={}", module.net(*net).name()))
            .collect();
        let _ = writeln!(
            s,
            "device {} {} ({});",
            d.name(),
            d.template(),
            pins.join(", ")
        );
    }
    s.push_str("endmodule\n");
    s
}

/// Splits a multi-module design source into per-module text chunks
/// *without* parsing — the cheap first half of an incremental re-parse.
///
/// Each chunk runs from its `module …` line through its `endmodule` line
/// inclusive; blank lines and `#` comments between modules belong to no
/// chunk (they carry no semantics, so a caller hashing chunks for a parse
/// memo stays insensitive to them). The split is deliberately
/// conservative: it only recognizes the canonical one-declaration-per-line
/// shape [`to_mnl`] emits, and returns `None` for anything else — content
/// outside a block, an unterminated block, an empty source — so callers
/// fall back to [`parse_design`], which reports the canonical error.
///
/// A chunk is *not* guaranteed to be a valid module, only to cover the
/// same text [`parse_design`] would consume for it: parse each chunk (or
/// serve it from a memo) and fall back to the whole source on failure.
///
/// # Examples
///
/// ```
/// let source = "# two blocks\nmodule a;\ninput x;\nendmodule\n\nmodule b;\ninput y;\nendmodule\n";
/// let chunks = maestro_netlist::mnl::split_design(source).expect("canonical shape");
/// assert_eq!(chunks.len(), 2);
/// assert!(chunks[0].starts_with("module a;"));
/// assert!(chunks[1].ends_with("endmodule\n"));
/// ```
pub fn split_design(source: &str) -> Option<Vec<&str>> {
    let mut chunks = Vec::new();
    let mut start: Option<usize> = None;
    let mut offset = 0;
    for line in source.split_inclusive('\n') {
        let trimmed = line.trim();
        match start {
            None => {
                if trimmed.starts_with("module ") || trimmed.starts_with("module\t") {
                    start = Some(offset);
                } else if !trimmed.is_empty() && !trimmed.starts_with('#') {
                    return None;
                }
            }
            Some(s) => {
                if trimmed == "endmodule" {
                    chunks.push(&source[s..offset + line.len()]);
                    start = None;
                }
            }
        }
        offset += line.len();
    }
    if start.is_some() || chunks.is_empty() {
        return None;
    }
    Some(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL_ADDER: &str = "\
# a full adder on standard cells
module full_adder;
input a, b, cin;
output sum, cout;
net t1, t2, t3;
device x1 XOR2 (A=a, B=b, Y=t1);
device x2 XOR2 (A=t1, B=cin, Y=sum);
device a1 AND2 (A=a, B=b, Y=t2);
device a2 AND2 (A=t1, B=cin, Y=t3);
device o1 OR2 (A=t2, B=t3, Y=cout);
endmodule
";

    #[test]
    fn parses_full_adder() {
        let m = parse(FULL_ADDER).expect("parses");
        assert_eq!(m.name(), "full_adder");
        assert_eq!(m.device_count(), 5);
        assert_eq!(m.port_count(), 5);
        assert_eq!(m.net_count(), 8); // 5 port nets + t1, t2, t3
        let t1 = m.find_net("t1").expect("t1 exists");
        assert_eq!(m.net(t1).component_count(), 3);
    }

    #[test]
    fn lazily_declared_nets_work() {
        let m = parse(
            "module m;\ninput a;\noutput y;\ndevice u INV (A=a, Y=y);\n\
             device v INV (A=y, Y=hidden);\nendmodule\n",
        )
        .expect("parses");
        assert!(m.find_net("hidden").is_some());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let m = parse("module m; # trailing comment\n\n# full line\nendmodule").expect("parses");
        assert_eq!(m.device_count(), 0);
    }

    #[test]
    fn device_with_no_pins_parses() {
        let m = parse("module m;\ndevice u INV ();\nendmodule").expect("parses");
        assert_eq!(m.device(m.find_device("u").unwrap()).pins().len(), 0);
    }

    #[test]
    fn error_unknown_statement_carries_line() {
        let err = parse("module m;\nfrobnicate x;\nendmodule").unwrap_err();
        match err {
            NetlistError::Parse { kind, line, .. } => {
                assert_eq!(kind, ParseErrorKind::UnexpectedToken);
                assert_eq!(line, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_duplicate_port() {
        let err = parse("module m;\ninput a;\ninput a;\nendmodule").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::DuplicateName,
                line: 3,
                ..
            }
        ));
    }

    #[test]
    fn error_duplicate_device() {
        let err = parse("module m;\ndevice u INV ();\ndevice u INV ();\nendmodule").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::DuplicateName,
                ..
            }
        ));
    }

    #[test]
    fn error_missing_endmodule() {
        let err = parse("module m;\ninput a;\n").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::UnexpectedEof,
                ..
            }
        ));
    }

    #[test]
    fn error_bad_character() {
        let err = parse("module m;\ninput a$;\nendmodule").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::UnexpectedToken,
                line: 2,
                ..
            }
        ));
    }

    #[test]
    fn error_not_starting_with_module() {
        let err = parse("input a;\n").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::Malformed,
                ..
            }
        ));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let m = parse(FULL_ADDER).expect("parses");
        let text = to_mnl(&m);
        let m2 = parse(&text).expect("round-trip parses");
        assert_eq!(m, m2);
    }

    #[test]
    fn design_with_multiple_modules_parses() {
        let src = format!("{FULL_ADDER}\nmodule buf1;\ninput a;\noutput y;\ndevice u BUF (A=a, Y=y);\nendmodule\n");
        let design = parse_design(&src).expect("parses");
        assert_eq!(design.len(), 2);
        assert_eq!(design[0].name(), "full_adder");
        assert_eq!(design[1].name(), "buf1");
    }

    #[test]
    fn single_module_parse_rejects_designs() {
        let src = "module a;\nendmodule\nmodule b;\nendmodule\n";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("parse_design"), "{err}");
        assert_eq!(parse_design(src).unwrap().len(), 2);
    }

    #[test]
    fn duplicate_module_names_rejected() {
        let src = "module a;\nendmodule\nmodule a;\nendmodule\n";
        let err = parse_design(src).unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::DuplicateName,
                ..
            }
        ));
    }

    #[test]
    fn empty_design_rejected() {
        let err = parse_design("# nothing here\n").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::Malformed,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_pin_binding_rejected() {
        let err = parse("module m;\ndevice u INV (A=x, A=y);\nendmodule").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::DuplicateName,
                ..
            }
        ));
    }

    #[test]
    fn split_design_covers_every_block_and_reparses_identically() {
        let source = "# header comment\n\nmodule a;\ninput x;\ndevice u INV (A=x, Y=y);\nendmodule\n\n# between\nmodule b;\ninput x;\ndevice u BUF (A=x, Y=y);\nendmodule\n";
        let chunks = split_design(source).expect("canonical shape splits");
        assert_eq!(chunks.len(), 2);
        let whole = parse_design(source).expect("whole source parses");
        for (chunk, reference) in chunks.iter().zip(&whole) {
            let one = parse(chunk).expect("chunk parses alone");
            assert_eq!(one.name(), reference.name());
            assert_eq!(to_mnl(&one), to_mnl(reference));
        }
    }

    #[test]
    fn split_design_rejects_non_canonical_shapes() {
        // Content outside a block.
        assert!(split_design("stray\nmodule a;\nendmodule\n").is_none());
        // Unterminated block.
        assert!(split_design("module a;\ninput x;\n").is_none());
        // Trailing junk after the last block.
        assert!(split_design("module a;\nendmodule\njunk\n").is_none());
        // Empty source.
        assert!(split_design("").is_none());
        assert!(split_design("# only comments\n").is_none());
    }

    #[test]
    fn split_design_handles_a_missing_final_newline() {
        let chunks = split_design("module a;\ninput x;\nendmodule").expect("splits");
        assert_eq!(chunks.len(), 1);
        assert!(parse(chunks[0]).is_ok());
    }
}
