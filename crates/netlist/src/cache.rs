//! Resolve-once memoization for [`NetlistStats`].
//!
//! `NetlistStats::resolve` is the estimator stack's hot setup cost: every
//! consumer — the standard-cell estimator, the multi-aspect sweep, the
//! full-custom estimator, placement, synthesis — re-scans the module and
//! re-queries the technology tables. Inside a floorplanner's iterate loop
//! the same `(module, technology, style)` triple recurs thousands of
//! times, so resolution must be paid once per triple, not once per
//! consumer.
//!
//! [`StatsCache`] is that memo: a concurrent map keyed by
//! ([`ModuleFingerprint`], [`maestro_tech::TechRevision`],
//! [`LayoutStyle`]) returning `Arc<NetlistStats>`. Failed resolutions are
//! cached too (a transistor-level module probed under the standard-cell
//! style fails identically every time), so even the error path costs one
//! scan per key.
//!
//! Concurrency contract (stronger than `ProbTable`'s): each key is
//! computed **exactly once** even under races — late arrivals block on the
//! winner's [`OnceLock`] slot instead of duplicating the scan — and
//! distinct keys never serialize against each other's computation.
//!
//! Every lookup emits a `netlist.resolve.hits` / `netlist.resolve.misses`
//! trace counter increment (no-ops when tracing is disabled), so traced
//! runs surface cache effectiveness in `perf-report`.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use maestro_tech::ProcessDb;
use maestro_trace as trace;

use crate::{LayoutStyle, Module, NetlistError, NetlistStats};

/// A 128-bit content fingerprint of a [`Module`].
///
/// Covers everything `NetlistStats::resolve` can observe — the module
/// name, every device (name, template, pin bindings), every net (name,
/// attached pins and ports) and every port (name, direction, net) — in a
/// canonical length-prefixed byte encoding, so *any* mutation that could
/// change resolution output changes the fingerprint. The converse is
/// deliberately not guaranteed: two modules that differ only in, say,
/// declaration order get distinct fingerprints even though their stats
/// may coincide. Over-separation only costs a duplicate cache entry;
/// under-separation would serve wrong answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleFingerprint(u128);

/// FNV-1a, 128-bit variant: tiny, dependency-free and plenty for a cache
/// key that only needs to separate the modules of one run (collisions
/// need ~2^64 distinct modules).
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Length-prefixed string: `"ab" + "c"` and `"a" + "bc"` must hash
    /// differently.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

impl ModuleFingerprint {
    /// Fingerprints a module's full content.
    pub fn of(module: &Module) -> Self {
        let mut h = Fnv128::new();
        h.str(module.name());
        h.u64(module.port_count() as u64);
        for (_, port) in module.ports() {
            h.str(port.name());
            h.u64(port.direction() as u64);
            h.u64(port.net().index() as u64);
        }
        h.u64(module.device_count() as u64);
        for (_, device) in module.devices() {
            h.str(device.name());
            h.str(device.template());
            h.u64(device.pins().len() as u64);
            for (pin, net) in device.pins() {
                h.str(pin);
                h.u64(net.index() as u64);
            }
        }
        h.u64(module.net_count() as u64);
        for (_, net) in module.nets() {
            h.str(net.name());
            h.u64(net.pins().len() as u64);
            for pin in net.pins() {
                h.u64(pin.device.index() as u64);
                h.str(&pin.pin);
            }
            h.u64(net.ports().len() as u64);
            for port in net.ports() {
                h.u64(port.index() as u64);
            }
        }
        ModuleFingerprint(h.0)
    }
}

impl fmt::Display for ModuleFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Cache statistics of a [`StatsCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the memo.
    pub hits: u64,
    /// Lookups that ran `NetlistStats::resolve` (successfully or not).
    pub misses: u64,
    /// Entries dropped by the capacity bound since construction.
    pub evictions: u64,
    /// Distinct keys currently cached (including cached failures).
    pub entries: usize,
}

impl CacheStats {
    /// Hit/miss/eviction growth since an `earlier` snapshot of the same
    /// cache. `entries` carries the current level (it is not a monotonic
    /// counter). Saturates if the snapshots are swapped.
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }
}

/// One memo slot. The `OnceLock` guarantees the resolve runs exactly once
/// per key: the losing thread of an insertion race blocks in
/// `get_or_init` until the winner's computation lands, instead of
/// duplicating it.
type Slot = Arc<OnceLock<Result<Arc<NetlistStats>, NetlistError>>>;

type Key = (ModuleFingerprint, u64, LayoutStyle);

/// Default entry cap: generous for chip-scale batches (a `mixed:1m`
/// stream resolves ~11k distinct triples) while still bounding a
/// pathological stream of never-repeating modules.
pub const DEFAULT_STATS_CAPACITY: usize = 4096;

/// A memo slot plus the logical clock of its most recent use, for
/// least-recently-used victim selection.
#[derive(Debug, Default)]
struct SlotEntry {
    slot: Slot,
    last_used: AtomicU64,
}

/// The concurrent resolve-once memo for [`NetlistStats`].
///
/// # Examples
///
/// ```
/// use maestro_netlist::{generate, LayoutStyle, StatsCache};
/// use maestro_tech::builtin;
///
/// let cache = StatsCache::new();
/// let tech = builtin::nmos25();
/// let m = generate::counter(3);
/// let first = cache.resolve(&m, &tech, LayoutStyle::StandardCell).unwrap();
/// // The second lookup — even through a clone — shares the same Arc.
/// let second = cache.resolve(&m.clone(), &tech, LayoutStyle::StandardCell).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
/// ```
#[derive(Debug)]
pub struct StatsCache {
    memo: RwLock<HashMap<Key, SlotEntry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for StatsCache {
    fn default() -> Self {
        StatsCache::with_capacity(DEFAULT_STATS_CAPACITY)
    }
}

impl StatsCache {
    /// An empty cache with the default entry cap
    /// ([`DEFAULT_STATS_CAPACITY`]).
    pub fn new() -> Self {
        StatsCache::default()
    }

    /// An empty cache holding at most `capacity` entries (clamped to at
    /// least 1). When an insertion would exceed the cap, the
    /// least-recently-used *completed* entries are dropped in a batch
    /// (an eighth of the capacity, at least one) — in-flight slots that
    /// other threads may be blocked on are never evicted.
    pub fn with_capacity(capacity: usize) -> Self {
        StatsCache {
            memo: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The entry cap this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The process-wide shared cache: entry points that carry no explicit
    /// cache (placement, full-custom synthesis, the CLI's layout-style
    /// probe) memoize here, so one invocation resolves each
    /// (module, technology, style) triple exactly once across every
    /// consumer.
    pub fn shared() -> Arc<StatsCache> {
        static SHARED: OnceLock<Arc<StatsCache>> = OnceLock::new();
        SHARED.get_or_init(|| Arc::new(StatsCache::new())).clone()
    }

    /// Memoized [`NetlistStats::resolve`]: returns the shared `Arc` for
    /// the (module content, technology revision, style) key, scanning the
    /// module only on first use. Failures are memoized too and replayed
    /// on every later lookup of the same key.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`NetlistStats::resolve`].
    pub fn resolve(
        &self,
        module: &Module,
        tech: &ProcessDb,
        style: LayoutStyle,
    ) -> Result<Arc<NetlistStats>, NetlistError> {
        let key = (ModuleFingerprint::of(module), tech.revision().id(), style);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let read = self.memo.read().expect("stats memo poisoned");
            read.get(&key).map(|entry| {
                entry.last_used.store(now, Ordering::Relaxed);
                Arc::clone(&entry.slot)
            })
        };
        let slot = match slot {
            Some(slot) => slot,
            None => {
                let mut write = self.memo.write().expect("stats memo poisoned");
                if !write.contains_key(&key) && write.len() >= self.capacity {
                    self.evict_oldest(&mut write);
                }
                let entry = write.entry(key).or_default();
                entry.last_used.store(now, Ordering::Relaxed);
                Arc::clone(&entry.slot)
            }
        };
        // Outside both locks: concurrent *distinct* keys compute freely in
        // parallel; concurrent *same-key* callers block here until the one
        // winning closure finishes, so the scan runs exactly once per key.
        let mut computed = false;
        let result = slot
            .get_or_init(|| {
                computed = true;
                NetlistStats::resolve(module, tech, style).map(Arc::new)
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            trace::counter("netlist.resolve.misses", 1);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            trace::counter("netlist.resolve.hits", 1);
        }
        result
    }

    /// Drops the least-recently-used completed entries to make room for
    /// one more insertion. Runs under the write lock, so victim selection
    /// sees a consistent map; in-flight slots (whose compute another
    /// thread may be blocked on) are exempt. Each eviction is counted and
    /// emitted as a `netlist.resolve.evictions` trace counter.
    fn evict_oldest(&self, memo: &mut HashMap<Key, SlotEntry>) {
        let batch = (self.capacity / 8).max(1);
        let mut victims: Vec<(Key, u64)> = memo
            .iter()
            .filter(|(_, entry)| entry.slot.get().is_some())
            .map(|(key, entry)| (*key, entry.last_used.load(Ordering::Relaxed)))
            .collect();
        victims.sort_unstable_by_key(|&(_, used)| used);
        let mut evicted = 0u64;
        for (key, _) in victims.into_iter().take(batch) {
            memo.remove(&key);
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            trace::counter("netlist.resolve.evictions", evicted);
        }
    }

    /// Hit/miss/eviction/entry counters (the monotonic counters are read
    /// `Relaxed`; exact only in quiescence, indicative under
    /// concurrency).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.memo.read().expect("stats memo poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, library_circuits, ModuleBuilder};
    use maestro_tech::builtin;

    #[test]
    fn fingerprint_is_stable_across_clones_and_rebuilds() {
        let m = generate::counter(4);
        assert_eq!(ModuleFingerprint::of(&m), ModuleFingerprint::of(&m.clone()));
        // Two independent constructions of the same circuit agree.
        assert_eq!(
            ModuleFingerprint::of(&generate::counter(4)),
            ModuleFingerprint::of(&m)
        );
        assert_ne!(
            ModuleFingerprint::of(&generate::counter(5)),
            ModuleFingerprint::of(&m)
        );
    }

    #[test]
    fn fingerprint_separates_name_boundary_shifts() {
        // Length prefixing: moving a character between adjacent strings
        // must not collide.
        let build = |dev: &str, tpl: &str| {
            let mut b = ModuleBuilder::new("m");
            let n = b.net("n");
            b.device(dev, tpl, [("A", n)]);
            b.finish()
        };
        assert_ne!(
            ModuleFingerprint::of(&build("ab", "INV")),
            ModuleFingerprint::of(&build("a", "bINV"))
        );
    }

    #[test]
    fn resolve_hits_after_first_miss_and_shares_the_arc() {
        let cache = StatsCache::new();
        let tech = builtin::nmos25();
        let m = library_circuits::nmos_full_adder();
        let a = cache.resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        let b = cache.resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                entries: 1
            }
        );
        // A different style is a different key.
        let _ = cache.resolve(&m, &tech, LayoutStyle::StandardCell);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn failures_are_memoized() {
        let cache = StatsCache::new();
        let tech = builtin::nmos25();
        // Transistor-level templates do not resolve as standard cells.
        let m = library_circuits::nmos_full_adder();
        let e1 = cache
            .resolve(&m, &tech, LayoutStyle::StandardCell)
            .unwrap_err();
        let e2 = cache
            .resolve(&m, &tech, LayoutStyle::StandardCell)
            .unwrap_err();
        assert_eq!(format!("{e1}"), format!("{e2}"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn tech_mutation_invalidates_without_evicting_the_old_entry() {
        let cache = StatsCache::new();
        let tech = builtin::nmos25();
        let m = library_circuits::pass_chain(4);
        let old = cache.resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        let mut patched = tech.clone();
        patched
            .add_device(maestro_tech::DeviceTemplate::new(
                "exotic",
                maestro_tech::DeviceClass::NmosEnhancement,
                maestro_geom::Lambda::new(10),
                maestro_geom::Lambda::new(10),
            ))
            .expect("adds");
        let fresh = cache
            .resolve(&m, &patched, LayoutStyle::FullCustom)
            .unwrap();
        assert!(
            !Arc::ptr_eq(&old, &fresh),
            "a mutated technology must re-resolve"
        );
        assert_eq!(cache.stats().misses, 2);
        // The original technology's entry is still live.
        let again = cache.resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        assert!(Arc::ptr_eq(&old, &again));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn shared_cache_is_one_instance() {
        assert!(Arc::ptr_eq(&StatsCache::shared(), &StatsCache::shared()));
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let a = CacheStats {
            hits: 10,
            misses: 4,
            evictions: 1,
            entries: 3,
        };
        let b = CacheStats {
            hits: 12,
            misses: 4,
            evictions: 3,
            entries: 5,
        };
        assert_eq!(
            b.delta_since(&a),
            CacheStats {
                hits: 2,
                misses: 0,
                evictions: 2,
                entries: 5
            }
        );
        assert_eq!(a.delta_since(&b).hits, 0, "swapped snapshots saturate");
    }

    #[test]
    fn capacity_bound_evicts_the_least_recently_used_entry() {
        let cache = StatsCache::with_capacity(2);
        let tech = builtin::nmos25();
        let m1 = library_circuits::nmos_full_adder();
        let m2 = library_circuits::pass_chain(3);
        let m3 = library_circuits::nmos_mux4();
        cache.resolve(&m1, &tech, LayoutStyle::FullCustom).unwrap();
        cache.resolve(&m2, &tech, LayoutStyle::FullCustom).unwrap();
        // Touch m1 so m2 is the LRU victim when m3 forces an eviction.
        cache.resolve(&m1, &tech, LayoutStyle::FullCustom).unwrap();
        cache.resolve(&m3, &tech, LayoutStyle::FullCustom).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.evictions, stats.entries), (1, 2));
        // m1 survived (hit); m2 was dropped (fresh miss re-resolves it).
        cache.resolve(&m1, &tech, LayoutStyle::FullCustom).unwrap();
        assert_eq!(cache.stats().hits, 2);
        cache.resolve(&m2, &tech, LayoutStyle::FullCustom).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }
}
