//! Structural netlist validation against a technology.

use maestro_tech::ProcessDb;

use crate::{LayoutStyle, Module, NetlistError};

/// A non-fatal observation from [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Warning {
    /// A net has no attached device (it occupies no routing resources).
    FloatingNet {
        /// Net name.
        net: String,
    },
    /// A device has no pin bindings.
    UnconnectedDevice {
        /// Device instance name.
        device: String,
    },
    /// A port's net reaches no device.
    DanglingPort {
        /// Port name.
        port: String,
    },
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Warning::FloatingNet { net } => write!(f, "net `{net}` connects no device"),
            Warning::UnconnectedDevice { device } => {
                write!(f, "device `{device}` has no connections")
            }
            Warning::DanglingPort { port } => write!(f, "port `{port}` reaches no device"),
        }
    }
}

/// Validates `module` against `tech` for the given layout style.
///
/// Hard failures (unknown templates, pins absent from the cell template)
/// are errors; structural oddities that the estimator tolerates are
/// returned as [`Warning`]s.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownTemplate`] for a template missing from
/// the style's table, or [`NetlistError::Invalid`] for a standard-cell pin
/// binding that names a pin the cell template lacks.
///
/// # Examples
///
/// ```
/// use maestro_netlist::{validate, LayoutStyle, ModuleBuilder, PortDirection};
/// use maestro_tech::builtin;
///
/// let mut b = ModuleBuilder::new("ok");
/// let a = b.port("a", PortDirection::Input);
/// let y = b.port("y", PortDirection::Output);
/// b.device("u1", "INV", [("A", a), ("Y", y)]);
/// let warnings = validate::check(&b.finish(), &builtin::nmos25(), LayoutStyle::StandardCell)?;
/// assert!(warnings.is_empty());
/// # Ok::<(), maestro_netlist::NetlistError>(())
/// ```
pub fn check(
    module: &Module,
    tech: &ProcessDb,
    style: LayoutStyle,
) -> Result<Vec<Warning>, NetlistError> {
    let mut warnings = Vec::new();

    for (_, dev) in module.devices() {
        match style {
            LayoutStyle::StandardCell => {
                let cell = tech.cell_library().cell(dev.template()).ok_or_else(|| {
                    NetlistError::UnknownTemplate {
                        device: dev.name().to_owned(),
                        template: dev.template().to_owned(),
                    }
                })?;
                for (pin, _) in dev.pins() {
                    // SPICE-derived positional pins (p1, p2, …) are allowed.
                    if !pin.starts_with('p') && cell.pin(pin).is_none() {
                        return Err(NetlistError::invalid(format!(
                            "device `{}`: cell `{}` has no pin `{pin}`",
                            dev.name(),
                            cell.name()
                        )));
                    }
                }
            }
            LayoutStyle::FullCustom => {
                if tech.device(dev.template()).is_none() {
                    return Err(NetlistError::UnknownTemplate {
                        device: dev.name().to_owned(),
                        template: dev.template().to_owned(),
                    });
                }
            }
        }
        if dev.pins().is_empty() {
            warnings.push(Warning::UnconnectedDevice {
                device: dev.name().to_owned(),
            });
        }
    }

    for (_, net) in module.nets() {
        if net.component_count() == 0 {
            warnings.push(Warning::FloatingNet {
                net: net.name().to_owned(),
            });
        }
    }

    for (_, port) in module.ports() {
        if module.net(port.net()).component_count() == 0 {
            warnings.push(Warning::DanglingPort {
                port: port.name().to_owned(),
            });
        }
    }

    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModuleBuilder, PortDirection};
    use maestro_tech::builtin;

    #[test]
    fn clean_module_has_no_warnings() {
        let mut b = ModuleBuilder::new("ok");
        let a = b.port("a", PortDirection::Input);
        let y = b.port("y", PortDirection::Output);
        b.device("u1", "INV", [("A", a), ("Y", y)]);
        let w = check(&b.finish(), &builtin::nmos25(), LayoutStyle::StandardCell).unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn unknown_cell_is_an_error() {
        let mut b = ModuleBuilder::new("bad");
        let n = b.net("n");
        b.device("u1", "WIDGET", [("A", n)]);
        let err = check(&b.finish(), &builtin::nmos25(), LayoutStyle::StandardCell).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownTemplate { .. }));
    }

    #[test]
    fn unknown_pin_is_an_error() {
        let mut b = ModuleBuilder::new("bad");
        let n = b.net("n");
        b.device("u1", "INV", [("Q", n)]);
        let err = check(&b.finish(), &builtin::nmos25(), LayoutStyle::StandardCell).unwrap_err();
        assert!(matches!(err, NetlistError::Invalid { .. }));
    }

    #[test]
    fn floating_net_and_dangling_port_warn() {
        let mut b = ModuleBuilder::new("warny");
        b.net("floating");
        b.port("unused", PortDirection::Input);
        let n = b.net("n");
        b.device("u1", "INV", [("A", n)]);
        let w = check(&b.finish(), &builtin::nmos25(), LayoutStyle::StandardCell).unwrap();
        assert!(w.iter().any(|x| matches!(x, Warning::FloatingNet { .. })));
        assert!(w.iter().any(|x| matches!(x, Warning::DanglingPort { .. })));
    }

    #[test]
    fn unconnected_device_warns() {
        let mut b = ModuleBuilder::new("warny");
        b.device("u1", "INV", []);
        let w = check(&b.finish(), &builtin::nmos25(), LayoutStyle::StandardCell).unwrap();
        assert!(w
            .iter()
            .any(|x| matches!(x, Warning::UnconnectedDevice { .. })));
    }

    #[test]
    fn full_custom_checks_device_table() {
        let mut b = ModuleBuilder::new("fc");
        let n = b.net("n");
        b.device("q1", "pd", [("g", n)]);
        assert!(check(&b.finish(), &builtin::nmos25(), LayoutStyle::FullCustom).is_ok());
        let mut b = ModuleBuilder::new("fc2");
        let n = b.net("n");
        b.device("q1", "INV", [("A", n)]); // a cell, not a transistor
        let err = check(&b.finish(), &builtin::nmos25(), LayoutStyle::FullCustom).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownTemplate { .. }));
    }

    #[test]
    fn warnings_display() {
        let w = Warning::FloatingNet {
            net: "x".to_owned(),
        };
        assert_eq!(w.to_string(), "net `x` connects no device");
    }
}
