//! Parameterized chip families at 10^4–10^6 devices.
//!
//! The paper evaluates on tens of devices; the batch engine's north star
//! is a service that digests million-device workloads. These families
//! compose the existing library generators ([`generate`]) into chips of a
//! requested device count — datapath slices, memory banks (decoder +
//! register columns + read muxes) and parity-reduction trees — without
//! ever materializing more than one module at a time: a [`ChipSpec`] is a
//! plan (a few bytes per module), and [`ChipSpec::module`] builds any
//! module on demand. Streaming estimation over a spec therefore holds one
//! module plus one result in memory regardless of chip size.
//!
//! Every family is a pure function of its spec string, so benchmark rows
//! and differential suites are reproducible bit-for-bit.

use std::fmt;

use crate::{generate, Module, NetlistError};

/// Hard ceiling on a spec's requested device count (10^7): large enough
/// for the million-device scenario with headroom, small enough that a typo
/// (`1e12`) fails fast instead of grinding.
pub const MAX_CHIP_DEVICES: usize = 10_000_000;

/// Which composition recipe a spec uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipFamily {
    /// Datapath slices: ripple adders, counters, shift registers, muxes.
    Datapath,
    /// Memory banks: an address decoder, register columns, read muxes.
    Memory,
    /// Parity-reduction trees of mixed arity.
    Tree,
    /// Round-robin of the three recipes above.
    Mixed,
}

impl ChipFamily {
    fn parse(s: &str) -> Result<ChipFamily, NetlistError> {
        match s {
            "datapath" => Ok(ChipFamily::Datapath),
            "memory" => Ok(ChipFamily::Memory),
            "tree" => Ok(ChipFamily::Tree),
            "mixed" => Ok(ChipFamily::Mixed),
            other => Err(NetlistError::invalid(format!(
                "unknown chip family `{other}` (expected datapath, memory, tree or mixed)"
            ))),
        }
    }
}

impl fmt::Display for ChipFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipFamily::Datapath => "datapath",
            ChipFamily::Memory => "memory",
            ChipFamily::Tree => "tree",
            ChipFamily::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

/// One planned module: which generator to call with which parameter.
/// Device counts are closed-form so a spec knows its exact total without
/// building anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModulePlan {
    RippleAdder { bits: usize },
    Counter { bits: usize },
    ShiftRegister { bits: usize },
    MuxTree { sel_bits: usize },
    Decoder { sel_bits: usize },
    ParityTree { inputs: usize },
}

impl ModulePlan {
    /// Exact device count of the module this plan builds (pinned against
    /// the generators by test).
    fn device_count(self) -> usize {
        match self {
            ModulePlan::RippleAdder { bits } => 5 * bits,
            ModulePlan::Counter { bits } => 3 * bits - 1,
            ModulePlan::ShiftRegister { bits } => bits,
            ModulePlan::MuxTree { sel_bits } => (1 << sel_bits) - 1,
            ModulePlan::Decoder { sel_bits } => {
                if sel_bits == 1 {
                    3
                } else {
                    sel_bits + (1 << sel_bits) * (sel_bits - 1)
                }
            }
            ModulePlan::ParityTree { inputs } => inputs - 1,
        }
    }

    fn build(self) -> Module {
        match self {
            ModulePlan::RippleAdder { bits } => generate::ripple_adder(bits),
            ModulePlan::Counter { bits } => generate::counter(bits),
            ModulePlan::ShiftRegister { bits } => generate::shift_register(bits),
            ModulePlan::MuxTree { sel_bits } => generate::mux_tree(sel_bits),
            ModulePlan::Decoder { sel_bits } => generate::decoder(sel_bits),
            ModulePlan::ParityTree { inputs } => generate::parity_tree(inputs),
        }
    }
}

/// A deterministic plan for a generated chip: family + target device
/// count, expanded into per-module build instructions.
#[derive(Debug, Clone)]
pub struct ChipSpec {
    name: String,
    plans: Vec<ModulePlan>,
    device_count: usize,
}

// The repeating unit of each family. A unit is a few hundred to a couple
// thousand devices: big enough that plans stay compact at 10^6 devices,
// small enough that batches shard well and no single module dominates.
const DATAPATH_UNIT: &[ModulePlan] = &[
    ModulePlan::RippleAdder { bits: 32 },
    ModulePlan::Counter { bits: 24 },
    ModulePlan::ShiftRegister { bits: 64 },
    ModulePlan::MuxTree { sel_bits: 6 },
];

const TREE_UNIT: &[ModulePlan] = &[
    ModulePlan::ParityTree { inputs: 256 },
    ModulePlan::ParityTree { inputs: 128 },
    ModulePlan::ParityTree { inputs: 64 },
];

/// A 64-word × 8-bit bank: decoder, one register column per data bit, one
/// read mux per data bit.
fn memory_bank(plans: &mut Vec<ModulePlan>) {
    plans.push(ModulePlan::Decoder { sel_bits: 6 });
    for _ in 0..8 {
        plans.push(ModulePlan::ShiftRegister { bits: 64 });
    }
    for _ in 0..8 {
        plans.push(ModulePlan::MuxTree { sel_bits: 6 });
    }
}

impl ChipSpec {
    /// Plans a chip of at least `devices` devices (1..=[`MAX_CHIP_DEVICES`]).
    /// The plan stops at the first whole module that reaches the target,
    /// so [`ChipSpec::device_count`] may exceed `devices` by at most one
    /// module.
    pub fn new(family: ChipFamily, devices: usize) -> Result<ChipSpec, NetlistError> {
        if devices == 0 || devices > MAX_CHIP_DEVICES {
            return Err(NetlistError::invalid(format!(
                "chip device count must be 1..={MAX_CHIP_DEVICES}, got {devices}"
            )));
        }
        let mut plans = Vec::new();
        let mut total = 0usize;
        let mut unit = 0usize;
        while total < devices {
            let before = plans.len();
            match family {
                ChipFamily::Datapath => plans.push(DATAPATH_UNIT[unit % DATAPATH_UNIT.len()]),
                ChipFamily::Tree => plans.push(TREE_UNIT[unit % TREE_UNIT.len()]),
                ChipFamily::Memory => memory_bank(&mut plans),
                ChipFamily::Mixed => match unit % 3 {
                    0 => plans.extend_from_slice(DATAPATH_UNIT),
                    1 => memory_bank(&mut plans),
                    _ => plans.extend_from_slice(TREE_UNIT),
                },
            }
            // Trim whole modules past the target, keeping at least the
            // first module of this round.
            let mut added: usize = plans[before..].iter().map(|p| p.device_count()).sum();
            while plans.len() > before + 1 && total + added >= devices {
                let last = plans.last().copied().expect("non-empty round");
                if total + added - last.device_count() < devices {
                    break;
                }
                added -= last.device_count();
                plans.pop();
            }
            total += added;
            unit += 1;
        }
        Ok(ChipSpec {
            name: format!("{family}_{devices}"),
            plans,
            device_count: total,
        })
    }

    /// Parses a `family:devices` spec string, e.g. `datapath:10000`,
    /// `memory:100k`, `mixed:1m` (suffixes `k` = 10^3, `m` = 10^6).
    pub fn parse(spec: &str) -> Result<ChipSpec, NetlistError> {
        let (family, count) = spec.split_once(':').ok_or_else(|| {
            NetlistError::invalid(format!(
                "chip spec `{spec}` must be `family:devices` (e.g. `mixed:100k`)"
            ))
        })?;
        let family = ChipFamily::parse(family.trim())?;
        let count = count.trim().to_ascii_lowercase();
        let (digits, scale) = match count.strip_suffix(['k', 'm']) {
            Some(d) if count.ends_with('k') => (d, 1_000usize),
            Some(d) => (d, 1_000_000usize),
            None => (count.as_str(), 1usize),
        };
        let devices = digits
            .parse::<usize>()
            .ok()
            .and_then(|n| n.checked_mul(scale))
            .ok_or_else(|| {
                NetlistError::invalid(format!("chip spec `{spec}`: bad device count `{count}`"))
            })?;
        ChipSpec::new(family, devices)
    }

    /// The spec's canonical name (`family_devices`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of modules the chip expands to.
    pub fn module_count(&self) -> usize {
        self.plans.len()
    }

    /// Exact total device count over all planned modules.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Builds the `i`-th module (0-based). Instance names are made unique
    /// by suffixing the library name with the plan index, so a batch of
    /// one thousand `ripple_adder_32`s stays addressable per instance.
    ///
    /// # Panics
    ///
    /// Panics if `i >= module_count()`.
    pub fn module(&self, i: usize) -> Module {
        let plan = self.plans[i];
        let base = plan.build();
        let name = format!("{}__u{i}", base.name());
        base.renamed(name)
    }

    /// Lazily builds every module in plan order. The iterator owns no
    /// module state: peak memory is one module at a time plus the plan.
    pub fn modules(&self) -> impl Iterator<Item = Module> + '_ {
        (0..self.plans.len()).map(move |i| self.module(i))
    }
}

impl fmt::Display for ChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chip `{}`: {} modules, {} devices",
            self.name,
            self.module_count(),
            self.device_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_device_counts_match_the_generators() {
        let plans = [
            ModulePlan::RippleAdder { bits: 32 },
            ModulePlan::Counter { bits: 24 },
            ModulePlan::ShiftRegister { bits: 64 },
            ModulePlan::MuxTree { sel_bits: 6 },
            ModulePlan::Decoder { sel_bits: 1 },
            ModulePlan::Decoder { sel_bits: 6 },
            ModulePlan::ParityTree { inputs: 256 },
            ModulePlan::ParityTree { inputs: 63 },
        ];
        for plan in plans {
            assert_eq!(
                plan.device_count(),
                plan.build().device_count(),
                "{plan:?} formula disagrees with the generator"
            );
        }
    }

    #[test]
    fn specs_hit_their_device_targets_within_one_module() {
        for family in [
            ChipFamily::Datapath,
            ChipFamily::Memory,
            ChipFamily::Tree,
            ChipFamily::Mixed,
        ] {
            for target in [1, 500, 10_000, 100_000] {
                let spec = ChipSpec::new(family, target).expect("valid spec");
                assert!(
                    spec.device_count() >= target,
                    "{family}:{target} fell short: {}",
                    spec.device_count()
                );
                let planned: usize = spec.plans.iter().map(|p| p.device_count()).sum();
                assert_eq!(planned, spec.device_count());
                // Dropping the last module must fall below the target —
                // the plan has no excess trailing modules.
                let trimmed = planned - spec.plans.last().unwrap().device_count();
                assert!(trimmed < target, "{family}:{target} overshoots");
            }
        }
    }

    #[test]
    fn modules_build_uniquely_named_and_deterministic() {
        let spec = ChipSpec::parse("mixed:10k").expect("parses");
        assert_eq!(spec.name(), "mixed_10000");
        let names: Vec<String> = spec.modules().map(|m| m.name().to_owned()).collect();
        assert_eq!(names.len(), spec.module_count());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "instance names are unique");
        // Rebuilding the same index yields the same module, bit for bit.
        assert_eq!(spec.module(3), spec.module(3));
        let built: usize = spec.modules().map(|m| m.device_count()).sum();
        assert_eq!(built, spec.device_count());
    }

    #[test]
    fn spec_strings_parse_with_suffixes_and_reject_junk() {
        assert_eq!(
            ChipSpec::parse("datapath:100k").unwrap().name(),
            "datapath_100000"
        );
        assert_eq!(
            ChipSpec::parse("memory:1m").unwrap().name(),
            "memory_1000000"
        );
        assert_eq!(ChipSpec::parse("tree: 2000 ").unwrap().name(), "tree_2000");
        for bad in [
            "datapath",
            "warehouse:100",
            "datapath:0",
            "datapath:20m",
            "datapath:abc",
            "datapath:1e6",
            ":100",
        ] {
            assert!(
                matches!(ChipSpec::parse(bad), Err(NetlistError::Invalid { .. })),
                "`{bad}` must be rejected"
            );
        }
    }
}
