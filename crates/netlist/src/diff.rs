//! Revision diffing for ECO ("engineering change order") edit loops.
//!
//! The estimator sits inside an iterative floorplanning loop: a designer
//! edits one module of a chip-sized netlist and re-asks for area. The
//! [`ModuleFingerprint`] content hash already proves which modules
//! changed between two revisions, so the incremental pipeline only needs
//! a cheap set comparison to classify every module as unchanged,
//! modified, added or removed — and then re-pay estimation cost for the
//! changed slice only.
//!
//! A [`RevisionManifest`] is the durable shadow of one revision: the
//! module names in first-seen order plus each name's fingerprint. Holding
//! a manifest (a few dozen bytes per module) instead of the modules
//! themselves keeps serve-mode sessions light. [`diff`] compares two
//! manifests and emits `netlist.diff.*` trace counters so traced runs
//! surface the classification in `perf-report`.

use std::collections::HashMap;

use maestro_trace as trace;

use crate::{Module, ModuleFingerprint};

/// The name → fingerprint shadow of one netlist revision.
///
/// Names keep first-seen order (so diffs report in input order); a
/// repeated name overwrites its fingerprint, matching the name-keyed
/// replace semantics of the results database downstream.
#[derive(Debug, Clone, Default)]
pub struct RevisionManifest {
    order: Vec<String>,
    fingerprints: HashMap<String, ModuleFingerprint>,
}

impl RevisionManifest {
    /// An empty manifest: diffing against it classifies every module of
    /// the other revision as added (or removed).
    pub fn new() -> Self {
        RevisionManifest::default()
    }

    /// Fingerprints every module of a revision.
    pub fn from_modules<'a>(modules: impl IntoIterator<Item = &'a Module>) -> Self {
        let mut manifest = RevisionManifest::new();
        for module in modules {
            manifest.record(module);
        }
        manifest
    }

    /// Records one module, replacing any previous fingerprint under the
    /// same name (the name keeps its original position).
    pub fn record(&mut self, module: &Module) {
        let fp = ModuleFingerprint::of(module);
        if self
            .fingerprints
            .insert(module.name().to_string(), fp)
            .is_none()
        {
            self.order.push(module.name().to_string());
        }
    }

    /// Number of distinct module names recorded.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no modules have been recorded.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The fingerprint recorded for `name`, if any.
    pub fn fingerprint(&self, name: &str) -> Option<ModuleFingerprint> {
        self.fingerprints.get(name).copied()
    }

    /// Module names in first-seen order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }
}

/// Classification of every module across two revisions.
///
/// `unchanged`, `modified` and `added` list names in the *next*
/// revision's order; `removed` lists names in the *previous* revision's
/// order (they no longer have a position in the next one).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetlistDiff {
    /// Present in both revisions with identical fingerprints.
    pub unchanged: Vec<String>,
    /// Present in both revisions with differing fingerprints.
    pub modified: Vec<String>,
    /// Present only in the next revision.
    pub added: Vec<String>,
    /// Present only in the previous revision.
    pub removed: Vec<String>,
}

impl NetlistDiff {
    /// True when the next revision is fingerprint-identical to the
    /// previous one.
    pub fn is_clean(&self) -> bool {
        self.modified.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }

    /// One-line human summary, e.g. `"95 unchanged, 1 modified, 0 added,
    /// 0 removed"`.
    pub fn summary(&self) -> String {
        format!(
            "{} unchanged, {} modified, {} added, {} removed",
            self.unchanged.len(),
            self.modified.len(),
            self.added.len(),
            self.removed.len()
        )
    }
}

/// Compares two revision manifests by fingerprint.
///
/// Emits one `netlist.diff.{unchanged,modified,added,removed}` trace
/// counter increment per classified module (no-ops when tracing is
/// disabled).
pub fn diff(prev: &RevisionManifest, next: &RevisionManifest) -> NetlistDiff {
    let mut out = NetlistDiff::default();
    for name in next.names() {
        let fp = next.fingerprint(name).expect("name listed in manifest");
        match prev.fingerprint(name) {
            Some(old) if old == fp => out.unchanged.push(name.to_string()),
            Some(_) => out.modified.push(name.to_string()),
            None => out.added.push(name.to_string()),
        }
    }
    for name in prev.names() {
        if next.fingerprint(name).is_none() {
            out.removed.push(name.to_string());
        }
    }
    trace::counter("netlist.diff.unchanged", out.unchanged.len() as u64);
    trace::counter("netlist.diff.modified", out.modified.len() as u64);
    trace::counter("netlist.diff.added", out.added.len() as u64);
    trace::counter("netlist.diff.removed", out.removed.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, library_circuits};

    fn table1() -> Vec<Module> {
        library_circuits::table1_suite()
    }

    #[test]
    fn identical_revisions_diff_clean() {
        let a = RevisionManifest::from_modules(&table1());
        let b = RevisionManifest::from_modules(&table1());
        let d = diff(&a, &b);
        assert!(d.is_clean());
        assert_eq!(d.unchanged.len(), a.len());
        // Order is the next revision's input order.
        let names: Vec<&str> = b.names().collect();
        assert_eq!(d.unchanged, names);
    }

    #[test]
    fn added_removed_and_modified_classify() {
        let mut prev_mods = table1();
        let removed_name = prev_mods.last().expect("suite nonempty").name().to_string();
        let prev = RevisionManifest::from_modules(&prev_mods);

        // Next: drop the last module, mutate the first, add a new one.
        prev_mods.pop();
        let modified_name = prev_mods[0].name().to_string();
        prev_mods[0] = generate::counter(9).renamed(&modified_name);
        let extra = generate::counter(6);
        prev_mods.push(extra.clone());
        let next = RevisionManifest::from_modules(&prev_mods);

        let d = diff(&prev, &next);
        assert_eq!(d.modified, vec![modified_name]);
        assert_eq!(d.added, vec![extra.name().to_string()]);
        assert_eq!(d.removed, vec![removed_name]);
        assert_eq!(d.unchanged.len(), table1().len() - 2);
        assert_eq!(d.summary(), "3 unchanged, 1 modified, 1 added, 1 removed");
    }

    #[test]
    fn empty_previous_marks_everything_added() {
        let next = RevisionManifest::from_modules(&table1());
        let d = diff(&RevisionManifest::new(), &next);
        assert!(d.unchanged.is_empty() && d.modified.is_empty() && d.removed.is_empty());
        assert_eq!(d.added.len(), next.len());
    }

    #[test]
    fn duplicate_names_replace_in_place() {
        let a = generate::counter(3);
        let b = generate::counter(4);
        let renamed = {
            // Rebuild `b`'s circuit under `a`'s name so the second record
            // overwrites the first.
            let mut m = RevisionManifest::new();
            m.record(&a);
            m.record(&b.clone().renamed(a.name()));
            m
        };
        assert_eq!(renamed.len(), 1);
        assert_ne!(
            renamed.fingerprint(a.name()),
            Some(ModuleFingerprint::of(&a))
        );
    }
}
