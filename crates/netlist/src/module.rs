//! The in-memory schematic graph: modules, devices, nets and ports.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DeviceId, NetId, PortId};

/// Direction of a module I/O port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// Signal enters the module.
    Input,
    /// Signal leaves the module.
    Output,
    /// Bidirectional signal.
    InOut,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortDirection::Input => "input",
            PortDirection::Output => "output",
            PortDirection::InOut => "inout",
        };
        f.write_str(s)
    }
}

/// A module I/O port, attached to exactly one net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    name: String,
    direction: PortDirection,
    net: NetId,
}

impl Port {
    /// Port name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Port direction.
    pub fn direction(&self) -> PortDirection {
        self.direction
    }

    /// The net the port drives or observes.
    pub fn net(&self) -> NetId {
        self.net
    }
}

/// One device pin attached to a net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinRef {
    /// The attached device.
    pub device: DeviceId,
    /// The device's pin name.
    pub pin: String,
}

/// A signal net connecting device pins and module ports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    name: String,
    pins: Vec<PinRef>,
    ports: Vec<PortId>,
}

impl Net {
    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device pins attached to the net, in attachment order.
    pub fn pins(&self) -> &[PinRef] {
        &self.pins
    }

    /// Module ports attached to the net.
    pub fn ports(&self) -> &[PortId] {
        &self.ports
    }

    /// The paper's `D` for this net: the number of distinct devices
    /// ("components") connected. A device attached through two pins counts
    /// once, and module ports do not count as components.
    pub fn component_count(&self) -> usize {
        // Nets are overwhelmingly 1-4 pins; count distinct devices with a
        // quadratic scan over the pin list so the common case allocates
        // nothing. Wide nets (clock spines, generated fanout) fall back to
        // the sort-and-dedup path.
        const LINEAR_SCAN_MAX: usize = 8;
        if self.pins.len() <= LINEAR_SCAN_MAX {
            let mut count = 0;
            for (i, pin) in self.pins.iter().enumerate() {
                if self.pins[..i].iter().all(|p| p.device != pin.device) {
                    count += 1;
                }
            }
            return count;
        }
        let mut devices: Vec<DeviceId> = self.pins.iter().map(|p| p.device).collect();
        devices.sort_unstable();
        devices.dedup();
        devices.len()
    }

    /// Distinct devices on the net, sorted by id.
    pub fn components(&self) -> Vec<DeviceId> {
        let mut devices = Vec::new();
        self.components_into(&mut devices);
        devices
    }

    /// Writes the distinct devices on the net, sorted by id, into
    /// `scratch` (cleared first). Batch analyses call this once per net
    /// with a reused buffer, so a million-net module performs O(1) heap
    /// allocations for component resolution instead of one per net.
    pub fn components_into(&self, scratch: &mut Vec<DeviceId>) {
        scratch.clear();
        scratch.extend(self.pins.iter().map(|p| p.device));
        scratch.sort_unstable();
        scratch.dedup();
    }

    /// `true` if the net reaches a module port (it is externally visible).
    pub fn is_external(&self) -> bool {
        !self.ports.is_empty()
    }
}

/// A device instance: a named use of a technology template (standard cell
/// or transistor) with pin-to-net bindings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    name: String,
    template: String,
    pins: Vec<(String, NetId)>,
}

impl Device {
    /// Instance name, unique within the module.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The technology template this instance uses (e.g. `"NAND2"`, `"pd"`).
    pub fn template(&self) -> &str {
        &self.template
    }

    /// Pin bindings in declaration order.
    pub fn pins(&self) -> &[(String, NetId)] {
        &self.pins
    }

    /// The net bound to a named pin, if any.
    pub fn pin_net(&self, pin: &str) -> Option<NetId> {
        self.pins
            .iter()
            .find(|(name, _)| name == pin)
            .map(|&(_, net)| net)
    }
}

/// A flat circuit module: the unit the paper's estimator sizes.
///
/// Construct through [`ModuleBuilder`], the [`crate::mnl`] parser or the
/// [`crate::spice`] reader. The graph is append-only once built.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    name: String,
    devices: Vec<Device>,
    nets: Vec<Net>,
    ports: Vec<Port>,
}

impl Module {
    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The same module under a new name. Generated chip families
    /// instantiate one library circuit many times; renaming keeps every
    /// instance in a batch uniquely addressable (reports, floorplans).
    pub fn renamed(mut self, name: impl Into<String>) -> Module {
        self.name = name.into();
        self
    }

    /// The paper's `N`: number of device instances.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The paper's `H`: number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of module I/O ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Device by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from another module).
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Net by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Port by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Iterates over `(id, device)` pairs.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId::new(i as u32), d))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::new(i as u32), n))
    }

    /// Iterates over `(id, port)` pairs.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, p)| (PortId::new(i as u32), p))
    }

    /// Finds a device by instance name.
    pub fn find_device(&self, name: &str) -> Option<DeviceId> {
        self.devices
            .iter()
            .position(|d| d.name == name)
            .map(|i| DeviceId::new(i as u32))
    }

    /// Finds a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId::new(i as u32))
    }

    /// Finds a port by name.
    pub fn find_port(&self, name: &str) -> Option<PortId> {
        self.ports
            .iter()
            .position(|p| p.name == name)
            .map(|i| PortId::new(i as u32))
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "module `{}`: {} devices, {} nets, {} ports",
            self.name,
            self.devices.len(),
            self.nets.len(),
            self.ports.len()
        )
    }
}

/// Incremental constructor for [`Module`].
///
/// Names are checked for uniqueness per kind; pin bindings are recorded on
/// both the device and the net so either direction of traversal is O(1).
///
/// # Examples
///
/// ```
/// use maestro_netlist::{ModuleBuilder, PortDirection};
///
/// let mut b = ModuleBuilder::new("half_adder");
/// let a = b.port("a", PortDirection::Input);
/// let c = b.port("b", PortDirection::Input);
/// let s = b.port("s", PortDirection::Output);
/// let co = b.port("co", PortDirection::Output);
/// b.device("x1", "XOR2", [("A", a), ("B", c), ("Y", s)]);
/// b.device("a1", "AND2", [("A", a), ("B", c), ("Y", co)]);
/// let m = b.finish();
/// assert_eq!(m.net(a).component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ModuleBuilder {
    name: String,
    devices: Vec<Device>,
    nets: Vec<Net>,
    ports: Vec<Port>,
    device_names: BTreeMap<String, DeviceId>,
    net_names: BTreeMap<String, NetId>,
    port_names: BTreeMap<String, PortId>,
}

impl ModuleBuilder {
    /// Starts a new module.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "module name must be non-empty");
        ModuleBuilder {
            name,
            devices: Vec::new(),
            nets: Vec::new(),
            ports: Vec::new(),
            device_names: BTreeMap::new(),
            net_names: BTreeMap::new(),
            port_names: BTreeMap::new(),
        }
    }

    /// Declares an internal net. Re-declaring an existing name returns the
    /// existing id, which lets textual formats reference nets lazily.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.net_names.get(&name) {
            return id;
        }
        let id = NetId::new(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.clone(),
            pins: Vec::new(),
            ports: Vec::new(),
        });
        self.net_names.insert(name, id);
        id
    }

    /// Declares a module port with an implicit net of the same name and
    /// returns that net's id.
    ///
    /// # Panics
    ///
    /// Panics if a port of this name already exists.
    pub fn port(&mut self, name: impl Into<String>, direction: PortDirection) -> NetId {
        let name = name.into();
        assert!(
            !self.port_names.contains_key(&name),
            "duplicate port `{name}` in module `{}`",
            self.name
        );
        let net = self.net(name.clone());
        let id = PortId::new(self.ports.len() as u32);
        self.ports.push(Port {
            name: name.clone(),
            direction,
            net,
        });
        self.port_names.insert(name, id);
        self.nets[net.index()].ports.push(id);
        net
    }

    /// Instantiates a device with the given template and pin bindings.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate instance name, a duplicate pin name within
    /// the binding list, or a net id from another builder.
    pub fn device<'p, I>(
        &mut self,
        name: impl Into<String>,
        template: impl Into<String>,
        pins: I,
    ) -> DeviceId
    where
        I: IntoIterator<Item = (&'p str, NetId)>,
    {
        let name = name.into();
        assert!(
            !self.device_names.contains_key(&name),
            "duplicate device `{name}` in module `{}`",
            self.name
        );
        let id = DeviceId::new(self.devices.len() as u32);
        let mut bound: Vec<(String, NetId)> = Vec::new();
        for (pin, net) in pins {
            assert!(
                net.index() < self.nets.len(),
                "device `{name}` pin `{pin}` bound to foreign net {net}"
            );
            assert!(
                bound.iter().all(|(p, _)| p != pin),
                "device `{name}` binds pin `{pin}` twice"
            );
            bound.push((pin.to_owned(), net));
            self.nets[net.index()].pins.push(PinRef {
                device: id,
                pin: pin.to_owned(),
            });
        }
        self.devices.push(Device {
            name: name.clone(),
            template: template.into(),
            pins: bound,
        });
        self.device_names.insert(name, id);
        id
    }

    /// Number of devices added so far.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Finalizes the module.
    pub fn finish(self) -> Module {
        Module {
            name: self.name,
            devices: self.devices,
            nets: self.nets,
            ports: self.ports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_inverters() -> Module {
        let mut b = ModuleBuilder::new("buf2");
        let a = b.port("a", PortDirection::Input);
        let y = b.port("y", PortDirection::Output);
        let mid = b.net("mid");
        b.device("u1", "INV", [("A", a), ("Y", mid)]);
        b.device("u2", "INV", [("A", mid), ("Y", y)]);
        b.finish()
    }

    #[test]
    fn component_apis_agree_across_linear_and_sorted_paths() {
        // A net wide enough to take the sort-and-dedup path, with every
        // device attached twice so deduplication matters on both paths.
        let mut b = ModuleBuilder::new("wide");
        let clk = b.net("clk");
        for i in 0..12 {
            let q = b.net(format!("q{i}"));
            b.device(
                format!("ff{i}"),
                "DFF2C",
                [("C1", clk), ("C2", clk), ("Q", q)],
            );
        }
        let m = b.finish();
        let clk = m.find_net("clk").expect("clk exists");
        let net = m.net(clk);
        assert_eq!(net.component_count(), 12);
        let direct = net.components();
        let mut scratch = vec![DeviceId::new(999)];
        net.components_into(&mut scratch);
        assert_eq!(direct, scratch, "components_into clears and refills");
        assert_eq!(direct.len(), net.component_count());
        // Narrow net: the allocation-free linear count agrees too.
        let q0 = m.find_net("q0").expect("q0 exists");
        assert_eq!(m.net(q0).component_count(), m.net(q0).components().len());
    }

    #[test]
    fn counts_and_lookups() {
        let m = two_inverters();
        assert_eq!(m.device_count(), 2);
        assert_eq!(m.net_count(), 3);
        assert_eq!(m.port_count(), 2);
        assert_eq!(m.to_string(), "module `buf2`: 2 devices, 3 nets, 2 ports");
        let u1 = m.find_device("u1").expect("u1 exists");
        assert_eq!(m.device(u1).template(), "INV");
        assert_eq!(m.find_device("nope"), None);
        let mid = m.find_net("mid").expect("mid exists");
        assert_eq!(m.net(mid).name(), "mid");
        let a = m.find_port("a").expect("a exists");
        assert_eq!(m.port(a).direction(), PortDirection::Input);
    }

    #[test]
    fn net_components_and_externality() {
        let m = two_inverters();
        let mid = m.find_net("mid").unwrap();
        assert_eq!(m.net(mid).component_count(), 2);
        assert!(!m.net(mid).is_external());
        let a = m.find_net("a").unwrap();
        assert_eq!(m.net(a).component_count(), 1);
        assert!(m.net(a).is_external());
    }

    #[test]
    fn device_connected_twice_counts_once() {
        let mut b = ModuleBuilder::new("fb");
        let n = b.net("n");
        b.device("u1", "NAND2", [("A", n), ("B", n)]);
        let m = b.finish();
        let n = m.find_net("n").unwrap();
        assert_eq!(m.net(n).pins().len(), 2);
        assert_eq!(m.net(n).component_count(), 1);
    }

    #[test]
    fn pin_net_lookup() {
        let m = two_inverters();
        let u2 = m.find_device("u2").unwrap();
        let mid = m.find_net("mid").unwrap();
        assert_eq!(m.device(u2).pin_net("A"), Some(mid));
        assert_eq!(m.device(u2).pin_net("Z"), None);
    }

    #[test]
    fn net_redeclaration_returns_same_id() {
        let mut b = ModuleBuilder::new("m");
        let n1 = b.net("x");
        let n2 = b.net("x");
        assert_eq!(n1, n2);
    }

    #[test]
    #[should_panic(expected = "duplicate device")]
    fn duplicate_device_rejected() {
        let mut b = ModuleBuilder::new("m");
        b.device("u1", "INV", []);
        b.device("u1", "INV", []);
    }

    #[test]
    #[should_panic(expected = "duplicate port")]
    fn duplicate_port_rejected() {
        let mut b = ModuleBuilder::new("m");
        b.port("a", PortDirection::Input);
        b.port("a", PortDirection::Output);
    }

    #[test]
    #[should_panic(expected = "binds pin")]
    fn duplicate_pin_binding_rejected() {
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        b.device("u1", "INV", [("A", n), ("A", n)]);
    }

    #[test]
    fn ports_iterate_in_declaration_order() {
        let m = two_inverters();
        let names: Vec<_> = m.ports().map(|(_, p)| p.name().to_owned()).collect();
        assert_eq!(names, ["a", "y"]);
    }
}
