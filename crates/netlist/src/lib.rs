//! Circuit schematic substrate for the `maestro` VLSI area estimator.
//!
//! The paper's estimator consumes "the circuit schematic expressed in a
//! standard hardware description language", then "translated into a
//! mathematical representation for numerical analysis" (§3). This crate is
//! both halves:
//!
//! * [`Module`] / [`Device`] / [`Net`] / [`Port`] — the in-memory schematic
//!   graph, built through [`ModuleBuilder`];
//! * [`mnl`] — a small structural netlist language (`.mnl`) with a
//!   line-accurate parser;
//! * [`spice`] — a SPICE-subset reader (`M` transistor cards and `X`
//!   subcircuit-instance cards inside one `.subckt`);
//! * [`NetlistStats`] — the "mathematical representation": the paper's
//!   `N`, `H`, `Wi`/`Xi`, `yi` and port statistics, resolved against a
//!   [`maestro_tech::ProcessDb`];
//! * [`StatsCache`] — the resolve-once memo over [`NetlistStats`], keyed
//!   by ([`ModuleFingerprint`], technology revision, [`LayoutStyle`]);
//! * [`generate`] — seeded synthetic circuit generators (random logic plus
//!   structured shift registers, adders, decoders, counters, mux trees);
//! * [`library_circuits`] — the re-created Table 1 and Table 2 experiment
//!   suites;
//! * [`validate`] — structural sanity checks against a technology.
//!
//! # Examples
//!
//! ```
//! use maestro_netlist::{ModuleBuilder, PortDirection};
//!
//! let mut b = ModuleBuilder::new("buffer");
//! let a = b.port("a", PortDirection::Input);
//! let y = b.port("y", PortDirection::Output);
//! let mid = b.net("mid");
//! b.device("u1", "INV", [("A", a), ("Y", mid)]);
//! b.device("u2", "INV", [("A", mid), ("Y", y)]);
//! let module = b.finish();
//! assert_eq!(module.device_count(), 2);
//! assert_eq!(module.net_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod chip;
pub mod depth;
pub mod diff;
mod error;
pub mod expand;
pub mod generate;
mod ids;
pub mod library_circuits;
pub mod mnl;
mod module;
pub mod spice;
mod stats;
pub mod validate;

pub use cache::{CacheStats, ModuleFingerprint, StatsCache, DEFAULT_STATS_CAPACITY};
pub use diff::{diff, NetlistDiff, RevisionManifest};
pub use error::{NetlistError, ParseErrorKind};
pub use ids::{DeviceId, NetId, PortId};
pub use module::{Device, Module, ModuleBuilder, Net, PinRef, Port, PortDirection};
pub use stats::{LayoutStyle, NetSizeHistogram, NetlistStats, WidthHistogram};
