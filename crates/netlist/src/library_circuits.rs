//! The re-created experiment circuits for the paper's Tables 1 and 2.
//!
//! The paper compares against "Newkirk and Mathews' Full-Custom layout
//! examples for nMOS technology" (Table 1) and two Rutgers nMOS
//! standard-cell designs laid out by TimberWolf 3.2 (Table 2). Neither
//! artifact survives in machine-readable form, so this module re-creates
//! the same *kinds* of textbook circuits at comparable sizes (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * **Table 1** — five small transistor-level nMOS modules: a full adder,
//!   a pass-transistor chain (the "all two-component nets" footnote case),
//!   a 4:1 pass-transistor mux, a 3-bit dynamic shift register, and a 2:4
//!   decoder;
//! * **Table 2** — two gate-level standard-cell modules: a 4-bit
//!   ripple-carry adder and a ~70-gate random-logic block.

use crate::generate::{self, RandomLogicConfig};
use crate::{Module, ModuleBuilder, NetId, PortDirection};

/// Adds a ratioed nMOS NAND (arity = `inputs.len()`) driving `out`.
fn nand_into(b: &mut ModuleBuilder, prefix: &str, inputs: &[NetId], out: NetId) {
    b.device(format!("{prefix}_l"), "pu", [("s", out)]);
    let mut node = out;
    for (i, input) in inputs.iter().enumerate() {
        let mut pins = vec![("d", node), ("g", *input)];
        let below = if i + 1 == inputs.len() {
            None
        } else {
            Some(b.net(format!("{prefix}_m{i}")))
        };
        if let Some(below) = below {
            pins.push(("s", below));
            node = below;
        }
        b.device(format!("{prefix}_q{i}"), "pd", pins);
    }
}

/// Adds a ratioed nMOS inverter driving `out` from `input`.
fn inv_into(b: &mut ModuleBuilder, prefix: &str, input: NetId, out: NetId) {
    b.device(format!("{prefix}_d"), "pd", [("g", input), ("d", out)]);
    b.device(format!("{prefix}_l"), "pu", [("s", out)]);
}

/// Table 1, experiment 1: a transistor-level ratioed-nMOS full adder
/// (NAND-network realization, 26 transistors).
pub fn nmos_full_adder() -> Module {
    let mut b = ModuleBuilder::new("t1e1_nmos_full_adder");
    let a = b.port("a", PortDirection::Input);
    let x = b.port("b", PortDirection::Input);
    let cin = b.port("cin", PortDirection::Input);
    let sum = b.port("sum", PortDirection::Output);
    let cout = b.port("cout", PortDirection::Output);

    // sum = a ^ b ^ cin, cout = majority(a, b, cin); NAND-NAND network.
    let n_ab = b.net("n_ab");
    nand_into(&mut b, "g1", &[a, x], n_ab); // (ab)'
    let t1 = b.net("t1");
    nand_into(&mut b, "g2", &[a, n_ab], t1);
    let t2 = b.net("t2");
    nand_into(&mut b, "g3", &[x, n_ab], t2);
    let axb = b.net("axb"); // a ^ b
    nand_into(&mut b, "g4", &[t1, t2], axb);

    let n_sc = b.net("n_sc");
    nand_into(&mut b, "g5", &[axb, cin], n_sc); // ((a^b)c)'
    let t3 = b.net("t3");
    nand_into(&mut b, "g6", &[axb, n_sc], t3);
    let t4 = b.net("t4");
    nand_into(&mut b, "g7", &[cin, n_sc], t4);
    nand_into(&mut b, "g8", &[t3, t4], sum);

    // cout = ab + (a^b)cin = NAND((ab)', ((a^b)cin)').
    nand_into(&mut b, "g9", &[n_ab, n_sc], cout);
    b.finish()
}

/// Table 1, experiment 2: a chain of `stages` series pass transistors with
/// per-stage clock ports. **Every net has at most two components**, the
/// paper's footnote case: estimated full-custom wire area is exactly zero.
pub fn pass_chain(stages: usize) -> Module {
    assert!(stages > 0, "chain needs at least one stage");
    let mut b = ModuleBuilder::new(format!("t1e2_pass_chain_{stages}"));
    let din = b.port("din", PortDirection::Input);
    let dout = b.port("dout", PortDirection::Output);
    let mut node = din;
    for i in 0..stages {
        let clk = b.port(format!("phi{i}"), PortDirection::Input);
        let next = if i + 1 == stages {
            dout
        } else {
            b.net(format!("n{i}"))
        };
        b.device(
            format!("qp{i}"),
            "pass",
            [("d", node), ("g", clk), ("s", next)],
        );
        node = next;
    }
    b.finish()
}

/// Table 1, experiment 3: a 4:1 pass-transistor multiplexer with on-module
/// select inverters (12 transistors).
pub fn nmos_mux4() -> Module {
    let mut m = generate::nmos_pass_mux(2);
    // Rename for the experiment index.
    let renamed = crate::mnl::to_mnl(&m).replacen("nmos_pass_mux_2", "t1e3_nmos_mux4", 1);
    m = crate::mnl::parse(&renamed).expect("round trip of generated module");
    m
}

/// Table 1, experiment 4: a `bits`-bit two-phase dynamic shift register —
/// the classic Mead–Conway/Newkirk–Mathews cell: per bit, two pass
/// transistors and two inverters (6 transistors per bit).
pub fn nmos_shift_register(bits: usize) -> Module {
    assert!(bits > 0, "shift register needs at least one bit");
    let mut b = ModuleBuilder::new(format!("t1e4_nmos_shift_register_{bits}"));
    let din = b.port("din", PortDirection::Input);
    let phi1 = b.port("phi1", PortDirection::Input);
    let phi2 = b.port("phi2", PortDirection::Input);
    let dout = b.port("dout", PortDirection::Output);
    let mut node = din;
    for i in 0..bits {
        let s1 = b.net(format!("s1_{i}"));
        b.device(
            format!("qp1_{i}"),
            "pass",
            [("d", node), ("g", phi1), ("s", s1)],
        );
        let v1 = b.net(format!("v1_{i}"));
        inv_into(&mut b, &format!("i1_{i}"), s1, v1);
        let s2 = b.net(format!("s2_{i}"));
        b.device(
            format!("qp2_{i}"),
            "pass",
            [("d", v1), ("g", phi2), ("s", s2)],
        );
        let out = if i + 1 == bits {
            dout
        } else {
            b.net(format!("v2_{i}"))
        };
        inv_into(&mut b, &format!("i2_{i}"), s2, out);
        node = out;
    }
    b.finish()
}

/// Table 1, experiment 5: a 2:4 decoder at transistor level — two input
/// inverters plus four 2-input NANDs and four output inverters
/// (24 transistors).
pub fn nmos_decoder2to4() -> Module {
    let mut b = ModuleBuilder::new("t1e5_nmos_decoder2to4");
    let s0 = b.port("s0", PortDirection::Input);
    let s1 = b.port("s1", PortDirection::Input);
    let ns0 = b.net("ns0");
    let ns1 = b.net("ns1");
    inv_into(&mut b, "inv0", s0, ns0);
    inv_into(&mut b, "inv1", s1, ns1);
    for out in 0..4u32 {
        let lit0 = if out & 1 == 1 { s0 } else { ns0 };
        let lit1 = if out & 2 == 2 { s1 } else { ns1 };
        let n = b.net(format!("n{out}"));
        nand_into(&mut b, &format!("nand{out}"), &[lit0, lit1], n);
        let y = b.port(format!("y{out}"), PortDirection::Output);
        inv_into(&mut b, &format!("obuf{out}"), n, y);
    }
    b.finish()
}

/// The five Table 1 full-custom experiment modules, in experiment order.
pub fn table1_suite() -> Vec<Module> {
    vec![
        nmos_full_adder(),
        pass_chain(8),
        nmos_mux4(),
        nmos_shift_register(3),
        nmos_decoder2to4(),
    ]
}

/// Table 2, experiment 1: a 4-bit ripple-carry adder on standard cells
/// (20 gates), estimated at several row counts like the paper.
pub fn sc_adder4() -> Module {
    generate::ripple_adder(4)
}

/// Table 2, experiment 2: a larger random-logic block (~80 gates, fixed
/// seed), playing the role of the paper's bigger Rutgers design.
pub fn sc_random_block() -> Module {
    let cfg = RandomLogicConfig {
        device_count: 72,
        input_count: 10,
        output_fraction: 0.05,
        locality: 0.65,
        window: 14,
    };
    generate::random_logic(1988, &cfg)
}

/// The two Table 2 standard-cell experiment modules, in experiment order.
pub fn table2_suite() -> Vec<Module> {
    vec![sc_adder4(), sc_random_block()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayoutStyle, NetlistStats};
    use maestro_tech::builtin;

    #[test]
    fn table1_modules_resolve_full_custom() {
        let tech = builtin::nmos25();
        let suite = table1_suite();
        assert_eq!(suite.len(), 5);
        for m in &suite {
            let s = NetlistStats::resolve(m, &tech, LayoutStyle::FullCustom)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert!(
                (5..=80).contains(&s.device_count()),
                "{} is small-to-moderate: N={}",
                m.name(),
                s.device_count()
            );
            assert!(s.port_count() >= 2);
        }
    }

    #[test]
    fn table1_names_follow_experiment_index() {
        for (i, m) in table1_suite().iter().enumerate() {
            assert!(
                m.name().starts_with(&format!("t1e{}", i + 1)),
                "{} at position {i}",
                m.name()
            );
        }
    }

    #[test]
    fn pass_chain_is_all_two_component_nets() {
        let m = pass_chain(8);
        for (_, net) in m.nets() {
            assert!(
                net.component_count() <= 2,
                "net {} has {} components",
                net.name(),
                net.component_count()
            );
        }
    }

    #[test]
    fn full_adder_transistor_count() {
        let m = nmos_full_adder();
        // 9 NAND gates: g1,g4..g8 are 2-input (3 devices), total 9*3 = 27.
        assert_eq!(m.device_count(), 27);
        assert_eq!(m.port_count(), 5);
    }

    #[test]
    fn shift_register_cell_count() {
        let m = nmos_shift_register(3);
        // Per bit: 2 pass + 2 inverters (2 devices each) = 6.
        assert_eq!(m.device_count(), 18);
    }

    #[test]
    fn decoder_counts() {
        let m = nmos_decoder2to4();
        // 2 inverters (4) + 4 nand2 (12) + 4 output inverters (8) = 24.
        assert_eq!(m.device_count(), 24);
        assert_eq!(m.port_count(), 6);
    }

    #[test]
    fn table2_modules_resolve_standard_cell() {
        let tech = builtin::nmos25();
        let suite = table2_suite();
        assert_eq!(suite.len(), 2);
        for m in &suite {
            let s = NetlistStats::resolve(m, &tech, LayoutStyle::StandardCell)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert!(s.device_count() >= 20);
        }
        // Experiment 2 is the larger one.
        assert!(suite[1].device_count() > suite[0].device_count());
    }

    #[test]
    fn suites_are_deterministic() {
        assert_eq!(table1_suite(), table1_suite());
        assert_eq!(table2_suite(), table2_suite());
    }
}
