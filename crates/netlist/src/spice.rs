//! A SPICE-subset reader for transistor-level (full-custom) schematics.
//!
//! The paper's full-custom estimator works from transistor netlists; SPICE
//! decks are the lingua franca for those. This reader understands one
//! `.subckt` per deck:
//!
//! ```text
//! * 2-input NAND, ratioed nMOS
//! .subckt nand2 a b y
//! M1 y    a  mid gnd pd
//! M2 mid  b  gnd gnd pd
//! M3 vdd  y  y   gnd pu
//! .ends
//! ```
//!
//! * `M<name> <drain> <gate> <source> <bulk> <model>` — a transistor whose
//!   `model` must name a [`maestro_tech::DeviceTemplate`]; the bulk node is
//!   recorded but `vdd`/`gnd`/`vss` connections are dropped as supply nets
//!   (supplies are routed as rails, not signal wiring — the estimator must
//!   not count them in `H`);
//! * `X<name> <net>... <cell>` — a standard-cell instance whose nets bind
//!   positionally to the cell's pins (useful for mixed decks);
//! * `*` comment lines, blank lines, and `.end` are ignored.
//!
//! Subcircuit ports become module ports (direction [`PortDirection::InOut`]
//! — SPICE carries no direction).

use std::collections::BTreeSet;

use crate::{Module, ModuleBuilder, NetId, NetlistError, ParseErrorKind, PortDirection};

/// Net names treated as power rails and excluded from signal wiring.
pub const SUPPLY_NAMES: [&str; 4] = ["vdd", "gnd", "vss", "vcc"];

fn is_supply(name: &str) -> bool {
    SUPPLY_NAMES.iter().any(|s| s.eq_ignore_ascii_case(name))
}

/// Parses a single-`.subckt` SPICE deck into a [`Module`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed cards, a missing
/// `.subckt`/`.ends` pair, or duplicate instance names.
///
/// # Examples
///
/// ```
/// let deck = "\
/// * inverter
/// .subckt inv a y
/// M1 y a gnd gnd pd
/// M2 vdd y y gnd pu
/// .ends
/// ";
/// let m = maestro_netlist::spice::parse(deck)?;
/// assert_eq!(m.device_count(), 2);
/// // Supply nets are dropped: only a and y remain.
/// assert_eq!(m.net_count(), 2);
/// # Ok::<(), maestro_netlist::NetlistError>(())
/// ```
pub fn parse(deck: &str) -> Result<Module, NetlistError> {
    let mut builder: Option<ModuleBuilder> = None;
    let mut finished = false;
    let mut instance_names: BTreeSet<String> = BTreeSet::new();

    for (lineno, raw) in deck.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let head = fields[0].to_ascii_lowercase();

        if head == ".subckt" {
            if builder.is_some() {
                return Err(NetlistError::parse(
                    ParseErrorKind::Malformed,
                    line_no,
                    "nested or repeated .subckt (one per deck)",
                ));
            }
            if fields.len() < 2 {
                return Err(NetlistError::parse(
                    ParseErrorKind::Malformed,
                    line_no,
                    ".subckt needs a name",
                ));
            }
            let mut b = ModuleBuilder::new(fields[1].to_owned());
            for port in &fields[2..] {
                if is_supply(port) {
                    continue;
                }
                b.port((*port).to_owned(), PortDirection::InOut);
            }
            builder = Some(b);
            continue;
        }
        if head == ".ends" {
            if builder.is_none() {
                return Err(NetlistError::parse(
                    ParseErrorKind::Malformed,
                    line_no,
                    ".ends without .subckt",
                ));
            }
            finished = true;
            continue;
        }
        if head == ".end" {
            continue;
        }
        if finished {
            return Err(NetlistError::parse(
                ParseErrorKind::Malformed,
                line_no,
                "content after .ends",
            ));
        }
        let b = builder.as_mut().ok_or_else(|| {
            NetlistError::parse(
                ParseErrorKind::Malformed,
                line_no,
                "device card before .subckt",
            )
        })?;

        match head.chars().next() {
            Some('m') => {
                // M<name> drain gate source bulk model
                if fields.len() != 6 {
                    return Err(NetlistError::parse(
                        ParseErrorKind::Malformed,
                        line_no,
                        format!(
                            "transistor card needs 6 fields (name d g s b model), got {}",
                            fields.len()
                        ),
                    ));
                }
                let name = fields[0];
                if !instance_names.insert(name.to_owned()) {
                    return Err(NetlistError::parse(
                        ParseErrorKind::DuplicateName,
                        line_no,
                        format!("transistor `{name}` declared twice"),
                    ));
                }
                let model = fields[5];
                let pin_names = ["d", "g", "s", "b"];
                let mut pins: Vec<(String, NetId)> = Vec::new();
                for (i, net) in fields[1..5].iter().enumerate() {
                    if is_supply(net) {
                        continue;
                    }
                    let id = b.net((*net).to_owned());
                    pins.push((pin_names[i].to_owned(), id));
                }
                // A device may touch the same net through two terminals
                // (e.g. diode-connected load): keep one pin per net to
                // respect the builder's pin-uniqueness (component counting
                // dedups anyway).
                let mut seen: Vec<NetId> = Vec::new();
                let deduped: Vec<(String, NetId)> = pins
                    .into_iter()
                    .filter(|(_, n)| {
                        if seen.contains(n) {
                            false
                        } else {
                            seen.push(*n);
                            true
                        }
                    })
                    .collect();
                b.device(
                    name.to_owned(),
                    model.to_owned(),
                    deduped.iter().map(|(p, n)| (p.as_str(), *n)),
                );
            }
            Some('x') => {
                // X<name> net... cell
                if fields.len() < 3 {
                    return Err(NetlistError::parse(
                        ParseErrorKind::Malformed,
                        line_no,
                        "instance card needs at least a net and a cell name",
                    ));
                }
                let name = fields[0];
                if !instance_names.insert(name.to_owned()) {
                    return Err(NetlistError::parse(
                        ParseErrorKind::DuplicateName,
                        line_no,
                        format!("instance `{name}` declared twice"),
                    ));
                }
                let cell = fields[fields.len() - 1];
                let nets = &fields[1..fields.len() - 1];
                let mut pins: Vec<(String, NetId)> = Vec::new();
                for (i, net) in nets.iter().enumerate() {
                    if is_supply(net) {
                        continue;
                    }
                    let id = b.net((*net).to_owned());
                    pins.push((format!("p{}", i + 1), id));
                }
                b.device(
                    name.to_owned(),
                    cell.to_owned(),
                    pins.iter().map(|(p, n)| (p.as_str(), *n)),
                );
            }
            _ => {
                return Err(NetlistError::parse(
                    ParseErrorKind::UnexpectedToken,
                    line_no,
                    format!("unrecognized card `{}`", fields[0]),
                ));
            }
        }
    }

    match (builder, finished) {
        (Some(b), true) => Ok(b.finish()),
        (Some(_), false) => Err(NetlistError::parse(
            ParseErrorKind::UnexpectedEof,
            deck.lines().count(),
            "missing .ends",
        )),
        (None, _) => Err(NetlistError::parse(
            ParseErrorKind::Malformed,
            1,
            "deck contains no .subckt",
        )),
    }
}

/// Serializes a transistor-level module back to a SPICE deck.
///
/// Devices whose pins are named `d`/`g`/`s` emit `M` cards (unbound
/// terminals default to `gnd`, matching the supply-dropping reader);
/// everything else emits an `X` instance card with positional nets. The
/// output parses back to a module with the same device, signal-net and
/// port structure.
pub fn to_spice(module: &Module) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "* generated by maestro from `{}`", module.name());
    let ports: Vec<&str> = module.ports().map(|(_, p)| p.name()).collect();
    let _ = writeln!(s, ".subckt {} {}", module.name(), ports.join(" "));
    for (_, dev) in module.devices() {
        let is_transistor = dev
            .pins()
            .iter()
            .all(|(p, _)| matches!(p.as_str(), "d" | "g" | "s" | "b"));
        if is_transistor && !dev.pins().is_empty() {
            let net_of = |pin: &str| {
                dev.pin_net(pin)
                    .map(|n| module.net(n).name().to_owned())
                    .unwrap_or_else(|| "gnd".to_owned())
            };
            let _ = writeln!(
                s,
                "M{} {} {} {} gnd {}",
                dev.name(),
                net_of("d"),
                net_of("g"),
                net_of("s"),
                dev.template()
            );
        } else {
            let nets: Vec<String> = dev
                .pins()
                .iter()
                .map(|&(_, n)| module.net(n).name().to_owned())
                .collect();
            let _ = writeln!(s, "X{} {} {}", dev.name(), nets.join(" "), dev.template());
        }
    }
    s.push_str(".ends\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAND2: &str = "\
* 2-input NAND, ratioed nMOS
.subckt nand2 a b y
M1 y   a mid gnd pd
M2 mid b gnd gnd pd
M3 vdd y y   gnd pu
.ends
";

    #[test]
    fn parses_nand_deck() {
        let m = parse(NAND2).expect("parses");
        assert_eq!(m.name(), "nand2");
        assert_eq!(m.device_count(), 3);
        assert_eq!(m.port_count(), 3);
        // Signal nets: a, b, y, mid (vdd/gnd dropped).
        assert_eq!(m.net_count(), 4);
    }

    #[test]
    fn supply_nets_are_dropped() {
        let m = parse(NAND2).expect("parses");
        assert!(m.find_net("gnd").is_none());
        assert!(m.find_net("vdd").is_none());
        assert!(m.find_net("mid").is_some());
    }

    #[test]
    fn diode_connected_device_counts_once_per_net() {
        let m = parse(NAND2).expect("parses");
        let y = m.find_net("y").expect("y exists");
        // M1 (drain) and M3 (gate + source, deduped): 2 components.
        assert_eq!(m.net(y).component_count(), 2);
    }

    #[test]
    fn instance_cards_bind_positionally() {
        let deck = "\
.subckt top a b y
X1 a b t NAND2
X2 t t y NAND2
.ends
";
        let m = parse(deck).expect("parses");
        assert_eq!(m.device_count(), 2);
        let x2 = m.find_device("X2").unwrap();
        assert_eq!(m.device(x2).template(), "NAND2");
        // p1=t, p2=t, p3=y: distinct pin names may share a net.
        assert_eq!(m.device(x2).pins().len(), 3);
        let t = m.find_net("t").unwrap();
        assert_eq!(m.net(t).component_count(), 2);
    }

    #[test]
    fn error_on_duplicate_instance() {
        let err = parse(".subckt m a\nM1 a x y gnd pd\nM1 a x y gnd pd\n.ends").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::DuplicateName,
                line: 3,
                ..
            }
        ));
    }

    #[test]
    fn error_on_short_transistor_card() {
        let err = parse(".subckt m a\nM1 a b c pd\n.ends").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::Malformed,
                line: 2,
                ..
            }
        ));
    }

    #[test]
    fn error_on_missing_subckt() {
        let err = parse("M1 a b c gnd pd\n").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::Malformed,
                ..
            }
        ));
    }

    #[test]
    fn error_on_missing_ends() {
        let err = parse(".subckt m a\nM1 a a a gnd pd\n").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::UnexpectedEof,
                ..
            }
        ));
    }

    #[test]
    fn error_on_unknown_card() {
        let err = parse(".subckt m a\nR1 a gnd 10k\n.ends").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::UnexpectedToken,
                ..
            }
        ));
    }

    #[test]
    fn writer_round_trips_transistor_decks() {
        let m = parse(NAND2).expect("parses");
        let text = to_spice(&m);
        let m2 = parse(&text).expect("round-trip parses");
        assert_eq!(m.device_count(), m2.device_count());
        assert_eq!(m.port_count(), m2.port_count());
        // The reader names transistor names without the M prefix; compare
        // connectivity through component counts per named net.
        for (_, net) in m.nets() {
            let n2 = m2.find_net(net.name()).expect("net preserved");
            assert_eq!(
                m2.net(n2).component_count(),
                net.component_count(),
                "net {}",
                net.name()
            );
        }
    }

    #[test]
    fn writer_round_trips_generated_fc_modules() {
        for m in [
            crate::generate::nmos_inverter_chain(4),
            crate::generate::nmos_nand(3),
            crate::library_circuits::nmos_decoder2to4(),
        ] {
            let text = to_spice(&m);
            let back = parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", m.name()));
            assert_eq!(back.device_count(), m.device_count(), "{}", m.name());
        }
    }

    #[test]
    fn error_on_content_after_ends() {
        let err = parse(".subckt m a\n.ends\nM1 a a a gnd pd\n").unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse {
                kind: ParseErrorKind::Malformed,
                line: 3,
                ..
            }
        ));
    }
}
