//! Combinational logic-depth analysis.
//!
//! §4.2 lists "minimum length critical path" among the full-custom layout
//! standards a designer optimizes for; before layout exists, the
//! structural proxy for the critical path is the **logic depth** — the
//! longest combinational gate chain from any primary input or register
//! output to any primary output or register input. This module computes
//! it for gate-level netlists.
//!
//! Sequential cells (`DFF`, `DLATCH`) break paths: their outputs start
//! new paths at depth 0 and their data inputs terminate paths. A
//! combinational cycle (illegal in synchronous design) is reported as an
//! error rather than looping forever.

use std::collections::BTreeMap;

use crate::{DeviceId, Module, NetId, NetlistError};

/// Cell templates treated as sequential (path-breaking).
pub const SEQUENTIAL_CELLS: [&str; 2] = ["DFF", "DLATCH"];

/// Pin names treated as cell outputs.
fn is_output_pin(pin: &str) -> bool {
    matches!(pin, "Y" | "Q" | "QN")
}

fn is_sequential(template: &str) -> bool {
    SEQUENTIAL_CELLS.contains(&template)
}

/// The result of a depth analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthReport {
    /// Longest combinational chain, in gate stages.
    pub depth: u32,
    /// The devices along one longest path, source to sink.
    pub critical_path: Vec<DeviceId>,
}

/// Computes the combinational logic depth of a gate-level module.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] when the combinational graph is
/// cyclic (a feedback loop without a sequential element).
///
/// # Examples
///
/// ```
/// use maestro_netlist::{depth, generate};
///
/// // A 4-bit ripple adder: the carry chain dominates.
/// let report = depth::logic_depth(&generate::ripple_adder(4))?;
/// assert!(report.depth >= 7, "carry chain depth {}", report.depth);
/// # Ok::<(), maestro_netlist::NetlistError>(())
/// ```
pub fn logic_depth(module: &Module) -> Result<DepthReport, NetlistError> {
    // Combinational dependency graph: edge from driver device to reader
    // device over each net, skipping sequential devices' contribution as
    // *sources* (they start at depth 0 anyway) and as *sinks* (their
    // inputs terminate paths).
    let n = module.device_count();
    if n == 0 {
        return Ok(DepthReport {
            depth: 0,
            critical_path: Vec::new(),
        });
    }
    // For each net: driving devices (output pins) and reading devices.
    let mut drivers: BTreeMap<NetId, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<NetId, Vec<usize>> = BTreeMap::new();
    for (id, dev) in module.devices() {
        for (pin, net) in dev.pins() {
            if is_output_pin(pin) {
                drivers.entry(*net).or_default().push(id.index());
            } else {
                readers.entry(*net).or_default().push(id.index());
            }
        }
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pred_count = vec![0usize; n];
    for (net, drvs) in &drivers {
        let Some(rdrs) = readers.get(net) else {
            continue;
        };
        for &d in drvs {
            if is_sequential(module.device(DeviceId::new(d as u32)).template()) {
                // Register outputs start fresh paths; no edge needed —
                // the reader's depth simply starts at 1 via depth init.
                continue;
            }
            for &r in rdrs {
                if d == r {
                    continue;
                }
                succs[d].push(r);
                pred_count[r] += 1;
            }
        }
    }

    // Longest path by topological order (Kahn). Combinational devices
    // start at depth 1 (they are one stage themselves).
    let mut depth = vec![1u32; n];
    let mut best_pred: Vec<Option<usize>> = vec![None; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| pred_count[i] == 0).collect();
    let mut visited = 0usize;
    while let Some(u) = queue.pop() {
        visited += 1;
        let u_seq = is_sequential(module.device(DeviceId::new(u as u32)).template());
        for &v in &succs[u] {
            let candidate = if u_seq { 1 } else { depth[u] + 1 };
            let v_seq = is_sequential(module.device(DeviceId::new(v as u32)).template());
            // Paths *into* sequential sinks count the stages before them.
            let candidate = if v_seq {
                candidate.saturating_sub(1).max(1)
            } else {
                candidate
            };
            if candidate > depth[v] {
                depth[v] = candidate;
                best_pred[v] = Some(u);
            }
            pred_count[v] -= 1;
            if pred_count[v] == 0 {
                queue.push(v);
            }
        }
    }
    if visited < n {
        return Err(NetlistError::invalid(
            "combinational cycle detected (no sequential element on a feedback loop)",
        ));
    }

    let (end, &d) = depth
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .unwrap_or((0, &0));
    let mut path = Vec::new();
    let mut cur = Some(end);
    while let Some(i) = cur {
        path.push(DeviceId::new(i as u32));
        cur = best_pred[i];
    }
    path.reverse();
    Ok(DepthReport {
        depth: if n == 0 { 0 } else { d },
        critical_path: path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, ModuleBuilder, PortDirection};

    #[test]
    fn inverter_chain_depth_equals_length() {
        let mut b = ModuleBuilder::new("chain");
        let a = b.port("a", PortDirection::Input);
        let y = b.port("y", PortDirection::Output);
        let mut prev = a;
        for i in 0..5 {
            let out = if i == 4 { y } else { b.net(format!("n{i}")) };
            b.device(format!("u{i}"), "INV", [("A", prev), ("Y", out)]);
            prev = out;
        }
        let report = logic_depth(&b.finish()).expect("acyclic");
        assert_eq!(report.depth, 5);
        assert_eq!(report.critical_path.len(), 5);
    }

    #[test]
    fn parallel_gates_have_depth_one() {
        let mut b = ModuleBuilder::new("par");
        let a = b.port("a", PortDirection::Input);
        for i in 0..4 {
            let y = b.port(format!("y{i}"), PortDirection::Output);
            b.device(format!("u{i}"), "INV", [("A", a), ("Y", y)]);
        }
        assert_eq!(logic_depth(&b.finish()).unwrap().depth, 1);
    }

    #[test]
    fn ripple_adder_depth_tracks_carry_chain() {
        let d2 = logic_depth(&generate::ripple_adder(2)).unwrap().depth;
        let d6 = logic_depth(&generate::ripple_adder(6)).unwrap().depth;
        assert!(d6 > d2, "carry chain grows: {d2} vs {d6}");
        // 2 stages per bit on the carry path, roughly.
        assert!(d6 >= 10, "6-bit adder depth {d6}");
    }

    #[test]
    fn registers_break_paths() {
        // INV -> DFF -> INV: both combinational islands have depth 1.
        let mut b = ModuleBuilder::new("pipe");
        let a = b.port("a", PortDirection::Input);
        let clk = b.port("clk", PortDirection::Input);
        let y = b.port("y", PortDirection::Output);
        let d = b.net("d");
        let q = b.net("q");
        b.device("u1", "INV", [("A", a), ("Y", d)]);
        b.device("ff", "DFF", [("D", d), ("CK", clk), ("Q", q)]);
        b.device("u2", "INV", [("A", q), ("Y", y)]);
        let report = logic_depth(&b.finish()).unwrap();
        assert!(
            report.depth <= 2,
            "registers must break the path: {}",
            report.depth
        );
    }

    #[test]
    fn sequential_feedback_is_fine() {
        // Counter: q feeds back through XOR into the same DFF — legal.
        let report = logic_depth(&generate::counter(4)).expect("registers break the loop");
        assert!(report.depth >= 1);
    }

    #[test]
    fn combinational_cycle_is_an_error() {
        let mut b = ModuleBuilder::new("osc");
        let x = b.net("x");
        let y = b.net("y");
        b.device("u1", "INV", [("A", x), ("Y", y)]);
        b.device("u2", "INV", [("A", y), ("Y", x)]);
        let err = logic_depth(&b.finish()).unwrap_err();
        assert!(matches!(err, NetlistError::Invalid { .. }));
    }

    #[test]
    fn critical_path_is_connected() {
        let m = generate::ripple_adder(4);
        let report = logic_depth(&m).unwrap();
        for pair in report.critical_path.windows(2) {
            let (a, b2) = (pair[0], pair[1]);
            // Some output net of `a` must be an input net of `b`.
            let a_outs: Vec<_> = m
                .device(a)
                .pins()
                .iter()
                .filter(|(p, _)| super::is_output_pin(p))
                .map(|&(_, n)| n)
                .collect();
            let connected = m
                .device(b2)
                .pins()
                .iter()
                .any(|(p, n)| !super::is_output_pin(p) && a_outs.contains(n));
            assert!(connected, "{a} -> {b2} not connected");
        }
    }

    #[test]
    fn empty_module_has_zero_depth() {
        let b = ModuleBuilder::new("empty");
        let report = logic_depth(&b.finish()).unwrap();
        assert_eq!(report.depth, 0);
        assert!(report.critical_path.len() <= 1);
    }
}
