//! The "mathematical representation for numerical analysis" (§3): the
//! aggregate statistics the paper's equations consume.

use std::collections::BTreeMap;
use std::fmt;

use maestro_geom::{Lambda, LambdaArea};
use maestro_tech::ProcessDb;
use serde::{Deserialize, Serialize};

use crate::{DeviceId, Module, NetId, NetlistError};

/// Which layout methodology the statistics are resolved for.
///
/// Device widths come from different template tables: the standard-cell
/// library for [`LayoutStyle::StandardCell`], the transistor device
/// templates for [`LayoutStyle::FullCustom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LayoutStyle {
    /// Rows of equal-height cells with routing channels between rows.
    StandardCell,
    /// Arbitrary device shapes and placements.
    FullCustom,
}

impl fmt::Display for LayoutStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayoutStyle::StandardCell => "standard-cell",
            LayoutStyle::FullCustom => "full-custom",
        };
        f.write_str(s)
    }
}

/// The paper's `Wi`/`Xi` histogram: device count per distinct width.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WidthHistogram {
    bins: BTreeMap<Lambda, usize>,
}

impl WidthHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        WidthHistogram::default()
    }

    /// Records one device of the given width.
    pub fn add(&mut self, width: Lambda) {
        self.add_many(width, 1);
    }

    /// Records `count` devices of the given width at once. Generated
    /// module families repeat a handful of cell widths millions of times;
    /// bulk insertion keeps their histogram construction O(distinct
    /// widths) instead of O(devices).
    pub fn add_many(&mut self, width: Lambda, count: usize) {
        if count == 0 {
            return;
        }
        *self.bins.entry(width).or_insert(0) += count;
    }

    /// `(Wi, Xi)` pairs in increasing width order.
    pub fn iter(&self) -> impl Iterator<Item = (Lambda, usize)> + '_ {
        self.bins.iter().map(|(&w, &x)| (w, x))
    }

    /// Number of distinct widths (the paper's `k`).
    pub fn distinct_count(&self) -> usize {
        self.bins.len()
    }

    /// Total number of devices recorded.
    pub fn total_count(&self) -> usize {
        self.bins.values().sum()
    }

    /// The paper's Eq. 1: `W_av = Σ Xi·Wi / N`, in fractional λ.
    ///
    /// Returns 0.0 for an empty histogram.
    pub fn average(&self) -> f64 {
        let n = self.total_count();
        if n == 0 {
            return 0.0;
        }
        self.widened_sum() as f64 / n as f64
    }

    /// Sum of all recorded widths, saturating at [`i64::MAX`] λ when the
    /// widened accumulator exceeds what `Lambda` can carry.
    pub fn total(&self) -> Lambda {
        Lambda::new(i64::try_from(self.widened_sum()).unwrap_or(i64::MAX))
    }

    /// `Σ Xi·Wi` in an i128 accumulator: a million-device histogram of
    /// wide cells overflows i64 (2^40 λ × 2^25 devices already wraps),
    /// and a silently negative area poisons every estimate built on it.
    fn widened_sum(&self) -> i128 {
        self.bins
            .iter()
            .map(|(w, &x)| w.get() as i128 * x as i128)
            .sum()
    }
}

/// The paper's `yi` histogram: number of nets per component count `D`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSizeHistogram {
    bins: BTreeMap<usize, usize>,
}

impl NetSizeHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        NetSizeHistogram::default()
    }

    /// Records one net with `components` attached devices.
    pub fn add(&mut self, components: usize) {
        *self.bins.entry(components).or_insert(0) += 1;
    }

    /// `(D, y_D)` pairs in increasing `D` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bins.iter().map(|(&d, &y)| (d, y))
    }

    /// Total number of nets recorded.
    pub fn net_count(&self) -> usize {
        self.bins.values().sum()
    }

    /// The largest component count, or 0 when empty.
    pub fn max_components(&self) -> usize {
        self.bins.keys().next_back().copied().unwrap_or(0)
    }

    /// Number of nets with exactly `components` devices.
    pub fn count_of(&self, components: usize) -> usize {
        self.bins.get(&components).copied().unwrap_or(0)
    }
}

/// Per-net wiring inputs for the full-custom exact-area variant of Eq. 13.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetWireStat {
    /// The net.
    pub net: NetId,
    /// The paper's `D`: distinct devices attached.
    pub components: usize,
    /// Sum of the attached devices' widths (each device once).
    pub total_component_width: Lambda,
}

/// Aggregate netlist statistics against a concrete technology: everything
/// the paper's Eqs. 1–14 consume.
///
/// # Examples
///
/// ```
/// use maestro_netlist::{LayoutStyle, ModuleBuilder, NetlistStats, PortDirection};
/// use maestro_tech::builtin;
///
/// let mut b = ModuleBuilder::new("pair");
/// let a = b.port("a", PortDirection::Input);
/// let y = b.port("y", PortDirection::Output);
/// b.device("u1", "INV", [("A", a), ("Y", y)]);
/// b.device("u2", "NAND2", [("A", a), ("B", y), ("Y", a)]);
/// let m = b.finish();
/// let stats = NetlistStats::resolve(&m, &builtin::nmos25(), LayoutStyle::StandardCell)?;
/// assert_eq!(stats.device_count(), 2);
/// assert_eq!(stats.widths().distinct_count(), 2);
/// # Ok::<(), maestro_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    module_name: String,
    style: LayoutStyle,
    device_count: usize,
    net_count: usize,
    port_count: usize,
    widths: WidthHistogram,
    heights: WidthHistogram,
    net_sizes: NetSizeHistogram,
    total_device_area: LambdaArea,
    net_wires: Vec<NetWireStat>,
}

impl NetlistStats {
    /// Scans `module` against `tech`, resolving every device template in
    /// the table appropriate to `style`.
    ///
    /// Nets with no attached device (e.g. an unused port net) are excluded
    /// from the `yi` histogram and from `H`, since they occupy no routing
    /// resources.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownTemplate`] if a device's template is
    /// absent from the technology table for the chosen style.
    pub fn resolve(
        module: &Module,
        tech: &ProcessDb,
        style: LayoutStyle,
    ) -> Result<Self, NetlistError> {
        let mut widths = WidthHistogram::new();
        let mut heights = WidthHistogram::new();
        let mut total_device_area = LambdaArea::ZERO;
        // Per-device resolved width, for per-net totals.
        let mut device_widths: Vec<Lambda> = Vec::with_capacity(module.device_count());

        for (_, dev) in module.devices() {
            let (w, h) = match style {
                LayoutStyle::StandardCell => {
                    let cell = tech.cell_library().cell(dev.template()).ok_or_else(|| {
                        NetlistError::UnknownTemplate {
                            device: dev.name().to_owned(),
                            template: dev.template().to_owned(),
                        }
                    })?;
                    (cell.width(), cell.height())
                }
                LayoutStyle::FullCustom => {
                    let d = tech.device(dev.template()).ok_or_else(|| {
                        NetlistError::UnknownTemplate {
                            device: dev.name().to_owned(),
                            template: dev.template().to_owned(),
                        }
                    })?;
                    (d.width(), d.height())
                }
            };
            widths.add(w);
            heights.add(h);
            total_device_area += w * h;
            device_widths.push(w);
        }

        let mut net_sizes = NetSizeHistogram::new();
        let mut net_wires = Vec::with_capacity(module.net_count());
        // One scratch buffer reused across every net: the traced batch
        // profiles convicted the per-net `Net::components()` Vec as the
        // dominant allocation at 10^5+ devices, so component resolution
        // runs flat — O(1) allocations for the whole module.
        let mut comps: Vec<DeviceId> = Vec::new();
        for (id, net) in module.nets() {
            net.components_into(&mut comps);
            if comps.is_empty() {
                continue;
            }
            net_sizes.add(comps.len());
            let total_component_width = comps
                .iter()
                .map(|d| device_widths[d.index()])
                .sum::<Lambda>();
            net_wires.push(NetWireStat {
                net: id,
                components: comps.len(),
                total_component_width,
            });
        }

        Ok(NetlistStats {
            module_name: module.name().to_owned(),
            style,
            device_count: module.device_count(),
            net_count: net_sizes.net_count(),
            port_count: module.port_count(),
            widths,
            heights,
            net_sizes,
            total_device_area,
            net_wires,
        })
    }

    /// Name of the analyzed module.
    pub fn module_name(&self) -> &str {
        &self.module_name
    }

    /// The layout style the widths were resolved for.
    pub fn style(&self) -> LayoutStyle {
        self.style
    }

    /// The paper's `N`.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// The paper's `H` (nets with at least one component).
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of module I/O ports.
    pub fn port_count(&self) -> usize {
        self.port_count
    }

    /// The `Wi`/`Xi` width histogram.
    pub fn widths(&self) -> &WidthHistogram {
        &self.widths
    }

    /// Device-height histogram (used for the full-custom `h_av`).
    pub fn heights(&self) -> &WidthHistogram {
        &self.heights
    }

    /// The `yi` net-size histogram.
    pub fn net_sizes(&self) -> &NetSizeHistogram {
        &self.net_sizes
    }

    /// Σ (device width × height): the active-cell area of Eq. 12/13.
    pub fn total_device_area(&self) -> LambdaArea {
        self.total_device_area
    }

    /// Eq. 1's `W_av` in fractional λ.
    pub fn average_width(&self) -> f64 {
        self.widths.average()
    }

    /// Average device height `h_av` in fractional λ.
    pub fn average_height(&self) -> f64 {
        self.heights.average()
    }

    /// Per-net wiring inputs (full-custom exact variant).
    pub fn net_wires(&self) -> &[NetWireStat] {
        &self.net_wires
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: N={} H={} ports={} W_av={:.2}λ",
            self.module_name,
            self.style,
            self.device_count,
            self.net_count,
            self.port_count,
            self.average_width()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModuleBuilder, PortDirection};
    use maestro_tech::builtin;

    fn sample_module() -> Module {
        // Two INVs (14λ) and one NAND2 (18λ) on nMOS standard cells.
        let mut b = ModuleBuilder::new("sample");
        let a = b.port("a", PortDirection::Input);
        let y = b.port("y", PortDirection::Output);
        let t1 = b.net("t1");
        let t2 = b.net("t2");
        b.device("u1", "INV", [("A", a), ("Y", t1)]);
        b.device("u2", "INV", [("A", t1), ("Y", t2)]);
        b.device("u3", "NAND2", [("A", t1), ("B", t2), ("Y", y)]);
        b.finish()
    }

    #[test]
    fn width_histogram_average_matches_eq1() {
        let mut h = WidthHistogram::new();
        h.add(Lambda::new(14));
        h.add(Lambda::new(14));
        h.add(Lambda::new(18));
        assert_eq!(h.distinct_count(), 2);
        assert_eq!(h.total_count(), 3);
        assert!((h.average() - (14.0 * 2.0 + 18.0) / 3.0).abs() < 1e-12);
        assert_eq!(h.total(), Lambda::new(46));
    }

    #[test]
    fn width_histogram_accumulates_beyond_i64_without_wrapping() {
        // 2^40 λ × 2^25 devices = 2^65 λ — the old i64 accumulator wrapped
        // this to a negative sum, so average() went negative and total()
        // was garbage. The widened accumulator must stay exact for the
        // average and saturate (not wrap) for the Lambda total.
        let mut h = WidthHistogram::new();
        h.add_many(Lambda::new(1 << 40), 1 << 25);
        let expected = (1u128 << 65) as f64 / (1u128 << 25) as f64;
        assert!(h.average() > 0.0, "average must not wrap negative");
        assert!((h.average() - expected).abs() < 1e-3);
        assert_eq!(h.total(), Lambda::new(i64::MAX), "total saturates");

        // A sum that fits i64 but whose per-bin products also fit —
        // add_many agrees with repeated add().
        let mut bulk = WidthHistogram::new();
        bulk.add_many(Lambda::new(14), 3);
        let mut one = WidthHistogram::new();
        for _ in 0..3 {
            one.add(Lambda::new(14));
        }
        assert_eq!(bulk, one);
        assert_eq!(bulk.total(), Lambda::new(42));
    }

    #[test]
    fn net_size_histogram() {
        let mut h = NetSizeHistogram::new();
        h.add(2);
        h.add(2);
        h.add(5);
        assert_eq!(h.net_count(), 3);
        assert_eq!(h.max_components(), 5);
        assert_eq!(h.count_of(2), 2);
        assert_eq!(h.count_of(3), 0);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, [(2, 2), (5, 1)]);
    }

    #[test]
    fn resolve_standard_cell_stats() {
        let m = sample_module();
        let tech = builtin::nmos25();
        let s = NetlistStats::resolve(&m, &tech, LayoutStyle::StandardCell).expect("resolves");
        assert_eq!(s.device_count(), 3);
        assert_eq!(s.port_count(), 2);
        // Nets: a (1 comp), y (1 comp), t1 (3 comps), t2 (2 comps) -> H=4.
        assert_eq!(s.net_count(), 4);
        assert_eq!(s.net_sizes().count_of(3), 1);
        assert_eq!(s.net_sizes().count_of(1), 2);
        // W_av = (14 + 14 + 18) / 3.
        assert!((s.average_width() - 46.0 / 3.0).abs() < 1e-12);
        // Active area = (14 + 14 + 18) * 40.
        assert_eq!(s.total_device_area(), LambdaArea::new(46 * 40));
    }

    #[test]
    fn resolve_full_custom_stats() {
        let tech = builtin::nmos25();
        let mut b = ModuleBuilder::new("gate");
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        b.device("q1", "pd", [("d", n1), ("g", n2)]);
        b.device("q2", "pu", [("s", n1)]);
        let m = b.finish();
        let s = NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).expect("resolves");
        assert_eq!(s.device_count(), 2);
        assert_eq!(s.net_count(), 2);
        let pd = tech.require_device("pd").unwrap();
        let pu = tech.require_device("pu").unwrap();
        assert_eq!(s.total_device_area(), pd.area() + pu.area());
        // n1 connects both devices.
        let n1_stat = s
            .net_wires()
            .iter()
            .find(|w| w.components == 2)
            .expect("n1 has two components");
        assert_eq!(n1_stat.total_component_width, pd.width() + pu.width());
    }

    #[test]
    fn unknown_template_is_reported() {
        let mut b = ModuleBuilder::new("bad");
        let n = b.net("n");
        b.device("u1", "FROB", [("A", n)]);
        let m = b.finish();
        let err =
            NetlistStats::resolve(&m, &builtin::nmos25(), LayoutStyle::StandardCell).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownTemplate { .. }));
    }

    #[test]
    fn empty_nets_are_excluded_from_h() {
        let mut b = ModuleBuilder::new("m");
        b.net("floating");
        let n = b.net("used");
        b.device("u1", "INV", [("A", n)]);
        let m = b.finish();
        let s = NetlistStats::resolve(&m, &builtin::nmos25(), LayoutStyle::StandardCell).unwrap();
        assert_eq!(s.net_count(), 1);
    }

    #[test]
    fn display_mentions_module_and_counts() {
        let m = sample_module();
        let s = NetlistStats::resolve(&m, &builtin::nmos25(), LayoutStyle::StandardCell).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("sample") && txt.contains("N=3"));
    }
}
