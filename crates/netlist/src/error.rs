//! Error types for netlist parsing and validation.

use std::error::Error;
use std::fmt;

/// What went wrong while parsing a textual netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// An unexpected token was encountered (message names it).
    UnexpectedToken,
    /// The input ended before the construct was complete.
    UnexpectedEof,
    /// A name was declared twice.
    DuplicateName,
    /// A name was referenced but never declared.
    UnknownName,
    /// A construct is malformed in a way the message explains.
    Malformed,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseErrorKind::UnexpectedToken => "unexpected token",
            ParseErrorKind::UnexpectedEof => "unexpected end of input",
            ParseErrorKind::DuplicateName => "duplicate name",
            ParseErrorKind::UnknownName => "unknown name",
            ParseErrorKind::Malformed => "malformed construct",
        };
        f.write_str(s)
    }
}

/// Errors produced while building, parsing or validating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A textual netlist failed to parse.
    Parse {
        /// Classification of the failure.
        kind: ParseErrorKind,
        /// 1-based source line.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The netlist references a device/cell type the technology lacks.
    UnknownTemplate {
        /// Offending device instance name.
        device: String,
        /// The missing template name.
        template: String,
    },
    /// A structural invariant is violated (message explains which).
    Invalid {
        /// Explanation of the violation.
        message: String,
    },
}

impl NetlistError {
    /// Convenience constructor for parse errors.
    pub fn parse(kind: ParseErrorKind, line: usize, message: impl Into<String>) -> Self {
        NetlistError::Parse {
            kind,
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for validation errors.
    pub fn invalid(message: impl Into<String>) -> Self {
        NetlistError::Invalid {
            message: message.into(),
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse {
                kind,
                line,
                message,
            } => write!(f, "line {line}: {kind}: {message}"),
            NetlistError::UnknownTemplate { device, template } => {
                write!(f, "device `{device}` uses unknown template `{template}`")
            }
            NetlistError::Invalid { message } => write!(f, "invalid netlist: {message}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_numbers() {
        let e = NetlistError::parse(ParseErrorKind::UnexpectedToken, 12, "found `;`");
        assert_eq!(e.to_string(), "line 12: unexpected token: found `;`");
    }

    #[test]
    fn display_unknown_template() {
        let e = NetlistError::UnknownTemplate {
            device: "u1".to_owned(),
            template: "NAND99".to_owned(),
        };
        assert!(e.to_string().contains("NAND99"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
