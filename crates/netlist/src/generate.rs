//! Seeded synthetic circuit generators.
//!
//! The paper evaluates on "small to moderate-sized modules"; these
//! generators produce deterministic families of such modules — structured
//! datapath/control circuits for the experiment suites plus seeded random
//! logic for scaling benches and property tests. Every generator is a pure
//! function of its parameters (and seed), so experiment rows are
//! reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Module, ModuleBuilder, NetId, NetlistError, PortDirection};

/// Largest select count the gate-level `decoder`/`mux_tree` generators
/// accept (4096-way fanout). Chosen so chip-family compositions can scale
/// to 10^6-device designs without any single module exploding.
pub const MAX_SELECT_BITS: usize = 12;

/// Largest select count for the transistor-level pass mux (1024-way).
pub const MAX_PASS_SELECT_BITS: usize = 10;

/// Validates a select count and computes `2^sel_bits` with the shift
/// guarded: `1 << sel_bits` wraps to 0 (or panics in debug builds) once
/// `sel_bits` reaches the word size, which previously turned an oversized
/// parameter into a silently empty generator.
fn checked_fanout(what: &str, sel_bits: usize, max: usize) -> Result<usize, NetlistError> {
    if !(1..=max).contains(&sel_bits) {
        return Err(NetlistError::invalid(format!(
            "{what} supports 1..={max} select bits, got {sel_bits}"
        )));
    }
    // Unreachable with max <= MAX_SELECT_BITS, but keeps the shift safe by
    // construction should the bound ever widen.
    u32::try_from(sel_bits)
        .ok()
        .and_then(|s| 1usize.checked_shl(s))
        .ok_or_else(|| {
            NetlistError::invalid(format!("{what}: 2^{sel_bits} overflows the address space"))
        })
}

/// An `bits`-stage shift register on standard cells: DFF chain plus shared
/// clock.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn shift_register(bits: usize) -> Module {
    assert!(bits > 0, "shift register needs at least one stage");
    let mut b = ModuleBuilder::new(format!("shift_register_{bits}"));
    let din = b.port("din", PortDirection::Input);
    let clk = b.port("clk", PortDirection::Input);
    let dout = b.port("dout", PortDirection::Output);
    let mut prev = din;
    for i in 0..bits {
        let q = if i + 1 == bits {
            dout
        } else {
            b.net(format!("q{i}"))
        };
        b.device(
            format!("ff{i}"),
            "DFF",
            [("D", prev), ("CK", clk), ("Q", q)],
        );
        prev = q;
    }
    b.finish()
}

/// Builds one full adder's gates into `b`, returning the sum and carry
/// nets.
fn full_adder_into(
    b: &mut ModuleBuilder,
    prefix: &str,
    a: NetId,
    x: NetId,
    cin: NetId,
    sum: NetId,
    cout: NetId,
) {
    let t1 = b.net(format!("{prefix}_t1"));
    let t2 = b.net(format!("{prefix}_t2"));
    let t3 = b.net(format!("{prefix}_t3"));
    b.device(
        format!("{prefix}_x1"),
        "XOR2",
        [("A", a), ("B", x), ("Y", t1)],
    );
    b.device(
        format!("{prefix}_x2"),
        "XOR2",
        [("A", t1), ("B", cin), ("Y", sum)],
    );
    b.device(
        format!("{prefix}_a1"),
        "AND2",
        [("A", a), ("B", x), ("Y", t2)],
    );
    b.device(
        format!("{prefix}_a2"),
        "AND2",
        [("A", t1), ("B", cin), ("Y", t3)],
    );
    b.device(
        format!("{prefix}_o1"),
        "OR2",
        [("A", t2), ("B", t3), ("Y", cout)],
    );
}

/// An `bits`-bit ripple-carry adder on standard cells (5 gates per bit).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_adder(bits: usize) -> Module {
    assert!(bits > 0, "adder needs at least one bit");
    let mut b = ModuleBuilder::new(format!("ripple_adder_{bits}"));
    let mut carries = vec![b.port("cin", PortDirection::Input)];
    let a: Vec<NetId> = (0..bits)
        .map(|i| b.port(format!("a{i}"), PortDirection::Input))
        .collect();
    let x: Vec<NetId> = (0..bits)
        .map(|i| b.port(format!("b{i}"), PortDirection::Input))
        .collect();
    let s: Vec<NetId> = (0..bits)
        .map(|i| b.port(format!("s{i}"), PortDirection::Output))
        .collect();
    let cout = b.port("cout", PortDirection::Output);
    for i in 0..bits {
        let next_carry = if i + 1 == bits {
            cout
        } else {
            b.net(format!("c{}", i + 1))
        };
        full_adder_into(
            &mut b,
            &format!("fa{i}"),
            a[i],
            x[i],
            carries[i],
            s[i],
            next_carry,
        );
        carries.push(next_carry);
    }
    b.finish()
}

/// An `sel_bits`-to-2^`sel_bits` decoder on standard cells: one inverter
/// per select plus one wide AND (NAND tree + INV) per output.
///
/// # Panics
///
/// Panics if `sel_bits` is 0 or greater than [`MAX_SELECT_BITS`]; use
/// [`try_decoder`] to get an error instead.
pub fn decoder(sel_bits: usize) -> Module {
    try_decoder(sel_bits).expect("decoder select count")
}

/// Fallible [`decoder`]: rejects out-of-range `sel_bits` (including values
/// whose `2^sel_bits` would overflow) with [`NetlistError::Invalid`].
pub fn try_decoder(sel_bits: usize) -> Result<Module, NetlistError> {
    let outputs = checked_fanout("decoder", sel_bits, MAX_SELECT_BITS)?;
    let mut b = ModuleBuilder::new(format!("decoder_{sel_bits}"));
    let sel: Vec<NetId> = (0..sel_bits)
        .map(|i| b.port(format!("s{i}"), PortDirection::Input))
        .collect();
    let nsel: Vec<NetId> = (0..sel_bits)
        .map(|i| {
            let n = b.net(format!("ns{i}"));
            b.device(format!("inv{i}"), "INV", [("A", sel[i]), ("Y", n)]);
            n
        })
        .collect();
    for out in 0..outputs {
        let y = b.port(format!("y{out}"), PortDirection::Output);
        // AND the per-bit literals pairwise with AND2s.
        let mut terms: Vec<NetId> = (0..sel_bits)
            .map(|i| if (out >> i) & 1 == 1 { sel[i] } else { nsel[i] })
            .collect();
        let mut stage = 0;
        while terms.len() > 1 {
            let mut next = Vec::new();
            for (j, pair) in terms.chunks(2).enumerate() {
                if pair.len() == 2 {
                    let o = if terms.len() == 2 {
                        y
                    } else {
                        b.net(format!("d{out}_{stage}_{j}"))
                    };
                    b.device(
                        format!("and{out}_{stage}_{j}"),
                        "AND2",
                        [("A", pair[0]), ("B", pair[1]), ("Y", o)],
                    );
                    next.push(o);
                } else {
                    next.push(pair[0]);
                }
            }
            terms = next;
            stage += 1;
        }
        if sel_bits == 1 {
            // Single literal: buffer it to the output.
            b.device(format!("buf{out}"), "BUF", [("A", terms[0]), ("Y", y)]);
        }
    }
    Ok(b.finish())
}

/// An `bits`-bit synchronous counter on standard cells: DFF + XOR2 toggle
/// logic + AND2 carry chain.
///
/// # Panics
///
/// Panics if `bits == 0`.
#[allow(clippy::needless_range_loop)] // q[i] is paired with a running carry
pub fn counter(bits: usize) -> Module {
    assert!(bits > 0, "counter needs at least one bit");
    let mut b = ModuleBuilder::new(format!("counter_{bits}"));
    let clk = b.port("clk", PortDirection::Input);
    let en = b.port("en", PortDirection::Input);
    let q: Vec<NetId> = (0..bits)
        .map(|i| b.port(format!("q{i}"), PortDirection::Output))
        .collect();
    let mut carry = en;
    for i in 0..bits {
        let d = b.net(format!("d{i}"));
        b.device(
            format!("x{i}"),
            "XOR2",
            [("A", q[i]), ("B", carry), ("Y", d)],
        );
        b.device(
            format!("ff{i}"),
            "DFF",
            [("D", d), ("CK", clk), ("Q", q[i])],
        );
        if i + 1 < bits {
            let c = b.net(format!("c{i}"));
            b.device(
                format!("ac{i}"),
                "AND2",
                [("A", carry), ("B", q[i]), ("Y", c)],
            );
            carry = c;
        }
    }
    b.finish()
}

/// A 2^`sel_bits`-input multiplexer tree on MUX2 standard cells.
///
/// # Panics
///
/// Panics if `sel_bits` is 0 or greater than [`MAX_SELECT_BITS`]; use
/// [`try_mux_tree`] to get an error instead.
pub fn mux_tree(sel_bits: usize) -> Module {
    try_mux_tree(sel_bits).expect("mux tree select count")
}

/// Fallible [`mux_tree`]: rejects out-of-range `sel_bits` (including
/// values whose `2^sel_bits` would overflow) with [`NetlistError::Invalid`].
pub fn try_mux_tree(sel_bits: usize) -> Result<Module, NetlistError> {
    let fanin = checked_fanout("mux tree", sel_bits, MAX_SELECT_BITS)?;
    let mut b = ModuleBuilder::new(format!("mux_tree_{sel_bits}"));
    let inputs: Vec<NetId> = (0..fanin)
        .map(|i| b.port(format!("i{i}"), PortDirection::Input))
        .collect();
    let sel: Vec<NetId> = (0..sel_bits)
        .map(|i| b.port(format!("s{i}"), PortDirection::Input))
        .collect();
    let y = b.port("y", PortDirection::Output);
    let mut layer = inputs;
    for (level, s) in sel.iter().enumerate() {
        let mut next = Vec::new();
        for (j, pair) in layer.chunks(2).enumerate() {
            let o = if layer.len() == 2 {
                y
            } else {
                b.net(format!("m{level}_{j}"))
            };
            b.device(
                format!("mux{level}_{j}"),
                "MUX2",
                [("A", pair[0]), ("B", pair[1]), ("S", *s), ("Y", o)],
            );
            next.push(o);
        }
        layer = next;
    }
    Ok(b.finish())
}

/// An XOR reduction (parity) tree over `inputs` leaves.
///
/// # Panics
///
/// Panics if `inputs < 2`.
pub fn parity_tree(inputs: usize) -> Module {
    assert!(inputs >= 2, "parity needs at least two inputs");
    let mut b = ModuleBuilder::new(format!("parity_{inputs}"));
    let mut layer: Vec<NetId> = (0..inputs)
        .map(|i| b.port(format!("i{i}"), PortDirection::Input))
        .collect();
    let y = b.port("p", PortDirection::Output);
    let mut level = 0;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for (j, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                let o = if layer.len() == 2 {
                    y
                } else {
                    b.net(format!("x{level}_{j}"))
                };
                b.device(
                    format!("xor{level}_{j}"),
                    "XOR2",
                    [("A", pair[0]), ("B", pair[1]), ("Y", o)],
                );
                next.push(o);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
        level += 1;
    }
    b.finish()
}

/// A one-bit ALU slice: AND, OR, XOR and full-adder functions selected by
/// a 2-bit opcode through a mux tree (13 gates).
pub fn alu_slice() -> Module {
    let mut b = ModuleBuilder::new("alu_slice");
    let a = b.port("a", PortDirection::Input);
    let x = b.port("b", PortDirection::Input);
    let cin = b.port("cin", PortDirection::Input);
    let s0 = b.port("s0", PortDirection::Input);
    let s1 = b.port("s1", PortDirection::Input);
    let y = b.port("y", PortDirection::Output);
    let cout = b.port("cout", PortDirection::Output);

    let f_and = b.net("f_and");
    b.device("g_and", "AND2", [("A", a), ("B", x), ("Y", f_and)]);
    let f_or = b.net("f_or");
    b.device("g_or", "OR2", [("A", a), ("B", x), ("Y", f_or)]);
    let f_xor = b.net("f_xor");
    b.device("g_xor", "XOR2", [("A", a), ("B", x), ("Y", f_xor)]);
    // Full adder: sum = (a^b)^cin, cout = ab + (a^b)cin.
    let f_sum = b.net("f_sum");
    b.device("g_sum", "XOR2", [("A", f_xor), ("B", cin), ("Y", f_sum)]);
    let n_cout = b.net("n_cout");
    b.device(
        "g_c2",
        "AOI22",
        [
            ("A1", a),
            ("A2", x),
            ("B1", f_xor),
            ("B2", cin),
            ("Y", n_cout),
        ],
    );
    b.device("g_ci", "INV", [("A", n_cout), ("Y", cout)]);
    // Select among the four functions.
    let m0 = b.net("m0");
    b.device(
        "mux0",
        "MUX2",
        [("A", f_and), ("B", f_or), ("S", s0), ("Y", m0)],
    );
    let m1 = b.net("m1");
    b.device(
        "mux1",
        "MUX2",
        [("A", f_xor), ("B", f_sum), ("S", s0), ("Y", m1)],
    );
    b.device("mux2", "MUX2", [("A", m0), ("B", m1), ("S", s1), ("Y", y)]);
    b.finish()
}

/// A logarithmic barrel shifter: `2^stages` data bits shifted by a
/// `stages`-bit amount, one MUX2 per bit per stage.
///
/// # Panics
///
/// Panics if `stages` is 0 or greater than 5.
pub fn barrel_shifter(stages: usize) -> Module {
    assert!(
        (1..=5).contains(&stages),
        "barrel shifter supports 1..=5 stages"
    );
    let width = 1usize << stages;
    let mut b = ModuleBuilder::new(format!("barrel_{width}"));
    let mut layer: Vec<NetId> = (0..width)
        .map(|i| b.port(format!("d{i}"), PortDirection::Input))
        .collect();
    let shifts: Vec<NetId> = (0..stages)
        .map(|i| b.port(format!("sh{i}"), PortDirection::Input))
        .collect();
    let outputs: Vec<NetId> = (0..width)
        .map(|i| b.port(format!("q{i}"), PortDirection::Output))
        .collect();
    for (stage, &sh) in shifts.iter().enumerate() {
        let amount = 1usize << stage;
        let last = stage + 1 == stages;
        let mut next = Vec::with_capacity(width);
        for bit in 0..width {
            let o = if last {
                outputs[bit]
            } else {
                b.net(format!("s{stage}_{bit}"))
            };
            let rotated = layer[(bit + amount) % width];
            b.device(
                format!("m{stage}_{bit}"),
                "MUX2",
                [("A", layer[bit]), ("B", rotated), ("S", sh), ("Y", o)],
            );
            next.push(o);
        }
        layer = next;
    }
    b.finish()
}

/// A Fibonacci LFSR of `bits` stages with taps at the two high stages.
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn lfsr(bits: usize) -> Module {
    assert!(bits >= 3, "lfsr needs at least three stages");
    let mut b = ModuleBuilder::new(format!("lfsr_{bits}"));
    let clk = b.port("clk", PortDirection::Input);
    let q: Vec<NetId> = (0..bits)
        .map(|i| b.port(format!("q{i}"), PortDirection::Output))
        .collect();
    let fb = b.net("fb");
    b.device(
        "tap",
        "XOR2",
        [("A", q[bits - 1]), ("B", q[bits - 2]), ("Y", fb)],
    );
    let mut d = fb;
    for (i, &qi) in q.iter().enumerate() {
        b.device(format!("ff{i}"), "DFF", [("D", d), ("CK", clk), ("Q", qi)]);
        d = qi;
    }
    b.finish()
}

/// A `bits`-bit carry-lookahead adder (generate/propagate per bit, carry
/// tree flattened to two-level logic over AND2/OR2).
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 8.
#[allow(clippy::needless_range_loop)] // s[i]/g[i]/p[i] are paired with a running carry
pub fn carry_lookahead_adder(bits: usize) -> Module {
    assert!((1..=8).contains(&bits), "CLA supports 1..=8 bits");
    let mut b = ModuleBuilder::new(format!("cla_{bits}"));
    let a: Vec<NetId> = (0..bits)
        .map(|i| b.port(format!("a{i}"), PortDirection::Input))
        .collect();
    let x: Vec<NetId> = (0..bits)
        .map(|i| b.port(format!("b{i}"), PortDirection::Input))
        .collect();
    let cin = b.port("cin", PortDirection::Input);
    let s: Vec<NetId> = (0..bits)
        .map(|i| b.port(format!("s{i}"), PortDirection::Output))
        .collect();
    let cout = b.port("cout", PortDirection::Output);

    // Per-bit generate and propagate.
    let mut g = Vec::new();
    let mut p = Vec::new();
    for i in 0..bits {
        let gi = b.net(format!("g{i}"));
        b.device(
            format!("gg{i}"),
            "AND2",
            [("A", a[i]), ("B", x[i]), ("Y", gi)],
        );
        let pi = b.net(format!("p{i}"));
        b.device(
            format!("gp{i}"),
            "XOR2",
            [("A", a[i]), ("B", x[i]), ("Y", pi)],
        );
        g.push(gi);
        p.push(pi);
    }
    // Ripple of lookahead terms: c_{i+1} = g_i + p_i·c_i, built with one
    // AND2 + OR2 per bit (a two-level CLA block per bit).
    let mut c = cin;
    for i in 0..bits {
        b.device(
            format!("gs{i}"),
            "XOR2",
            [("A", p[i]), ("B", c), ("Y", s[i])],
        );
        let t = b.net(format!("t{i}"));
        b.device(format!("ga{i}"), "AND2", [("A", p[i]), ("B", c), ("Y", t)]);
        let next = if i + 1 == bits {
            cout
        } else {
            b.net(format!("c{}", i + 1))
        };
        b.device(
            format!("go{i}"),
            "OR2",
            [("A", g[i]), ("B", t), ("Y", next)],
        );
        c = next;
    }
    b.finish()
}

/// Configuration for [`random_logic`].
#[derive(Debug, Clone)]
pub struct RandomLogicConfig {
    /// Number of gate instances to emit.
    pub device_count: usize,
    /// Number of primary inputs.
    pub input_count: usize,
    /// Fraction (0..1) of gate outputs promoted to primary outputs,
    /// in addition to all sink nets.
    pub output_fraction: f64,
    /// Locality bias: probability that a gate input reuses one of the most
    /// recent `window` nets rather than any earlier net. Higher values make
    /// shallower, more local netlists (shorter wires after placement).
    pub locality: f64,
    /// Window size for the locality bias.
    pub window: usize,
}

impl Default for RandomLogicConfig {
    fn default() -> Self {
        RandomLogicConfig {
            device_count: 50,
            input_count: 8,
            output_fraction: 0.1,
            locality: 0.7,
            window: 12,
        }
    }
}

/// Seeded random gate-level logic: a DAG of library gates whose inputs are
/// drawn from earlier nets with a locality bias.
///
/// # Panics
///
/// Panics if `device_count` or `input_count` is zero, or fractions are
/// outside `[0, 1]`.
pub fn random_logic(seed: u64, cfg: &RandomLogicConfig) -> Module {
    assert!(cfg.device_count > 0, "need at least one device");
    assert!(cfg.input_count > 0, "need at least one input");
    assert!(
        (0.0..=1.0).contains(&cfg.output_fraction) && (0.0..=1.0).contains(&cfg.locality),
        "fractions must lie in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ModuleBuilder::new(format!("random_logic_s{seed}_n{}", cfg.device_count));
    let mut nets: Vec<NetId> = (0..cfg.input_count)
        .map(|i| b.port(format!("in{i}"), PortDirection::Input))
        .collect();

    const GATES: &[(&str, &[&str])] = &[
        ("INV", &["A"]),
        ("BUF", &["A"]),
        ("NAND2", &["A", "B"]),
        ("NOR2", &["A", "B"]),
        ("AND2", &["A", "B"]),
        ("OR2", &["A", "B"]),
        ("XOR2", &["A", "B"]),
        ("NAND3", &["A", "B", "C"]),
        ("NOR3", &["A", "B", "C"]),
        ("AOI22", &["A1", "A2", "B1", "B2"]),
        ("MUX2", &["A", "B", "S"]),
    ];

    let mut fanout = vec![0usize; cfg.input_count];
    for i in 0..cfg.device_count {
        let &(template, input_pins) = GATES.choose(&mut rng).expect("gate list is non-empty");
        let out = b.net(format!("w{i}"));
        let mut pins: Vec<(&str, NetId)> = vec![("Y", out)];
        for pin in input_pins {
            let src = if rng.gen_bool(cfg.locality) && nets.len() > cfg.window {
                let lo = nets.len() - cfg.window;
                lo + rng.gen_range(0..cfg.window)
            } else {
                rng.gen_range(0..nets.len())
            };
            fanout[src] += 1;
            pins.push((*pin, nets[src]));
        }
        b.device(format!("g{i}"), template, pins);
        nets.push(out);
        fanout.push(0);
    }

    // Promote sink nets (no fanout) plus a random sample to outputs by
    // adding an output buffer per promoted net (ports attach to nets at
    // creation in this builder, so we buffer into fresh port nets).
    // Unused primary inputs are buffered out too, so no port dangles.
    let mut out_idx = 0;
    for i in 0..nets.len() {
        let is_sink = fanout[i] == 0;
        let promoted = if i < cfg.input_count {
            is_sink
        } else {
            is_sink || rng.gen_bool(cfg.output_fraction)
        };
        if promoted {
            let port = b.port(format!("out{out_idx}"), PortDirection::Output);
            b.device(format!("ob{out_idx}"), "BUF", [("A", nets[i]), ("Y", port)]);
            out_idx += 1;
        }
    }
    b.finish()
}

/// A chain of `stages` ratioed nMOS inverters at transistor level:
/// every internal net has exactly two components, which exercises the
/// paper's Table 1 footnote ("all nets … were two-component nets, and
/// therefore contributed nothing to wire area").
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn nmos_inverter_chain(stages: usize) -> Module {
    assert!(stages > 0, "chain needs at least one stage");
    let mut b = ModuleBuilder::new(format!("nmos_inv_chain_{stages}"));
    let a = b.port("a", PortDirection::Input);
    let y = b.port("y", PortDirection::Output);
    let mut prev = a;
    for i in 0..stages {
        let out = if i + 1 == stages {
            y
        } else {
            b.net(format!("n{i}"))
        };
        // Pull-down gate on input, drain on output; depletion load on output.
        b.device(format!("q{i}d"), "pd", [("g", prev), ("d", out)]);
        b.device(format!("q{i}l"), "pu", [("s", out)]);
        prev = out;
    }
    b.finish()
}

/// A `k`-input ratioed nMOS NAND gate at transistor level: `k` series
/// pull-downs plus one depletion load.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn nmos_nand(k: usize) -> Module {
    assert!(k > 0, "nand needs at least one input");
    let mut b = ModuleBuilder::new(format!("nmos_nand{k}"));
    let inputs: Vec<NetId> = (0..k)
        .map(|i| b.port(format!("a{i}"), PortDirection::Input))
        .collect();
    let y = b.port("y", PortDirection::Output);
    b.device("ql", "pu", [("s", y)]);
    let mut node = y;
    for (i, input) in inputs.iter().enumerate() {
        let below = if i + 1 == k {
            // Bottom device's source is ground (not modeled).
            None
        } else {
            Some(b.net(format!("m{i}")))
        };
        let mut pins = vec![("d", node), ("g", *input)];
        if let Some(below) = below {
            pins.push(("s", below));
            node = below;
        }
        b.device(format!("q{i}"), "pd", pins);
    }
    b.finish()
}

/// A pass-transistor 2^`sel_bits`-input mux at transistor level, with
/// inverters generating complemented selects.
///
/// # Panics
///
/// Panics if `sel_bits` is 0 or greater than [`MAX_PASS_SELECT_BITS`]; use
/// [`try_nmos_pass_mux`] to get an error instead.
pub fn nmos_pass_mux(sel_bits: usize) -> Module {
    try_nmos_pass_mux(sel_bits).expect("pass mux select count")
}

/// Fallible [`nmos_pass_mux`]: rejects out-of-range `sel_bits` (including
/// values whose `2^sel_bits` would overflow) with [`NetlistError::Invalid`].
pub fn try_nmos_pass_mux(sel_bits: usize) -> Result<Module, NetlistError> {
    let fanin = checked_fanout("pass mux", sel_bits, MAX_PASS_SELECT_BITS)?;
    let mut b = ModuleBuilder::new(format!("nmos_pass_mux_{sel_bits}"));
    let inputs: Vec<NetId> = (0..fanin)
        .map(|i| b.port(format!("i{i}"), PortDirection::Input))
        .collect();
    let sel: Vec<NetId> = (0..sel_bits)
        .map(|i| b.port(format!("s{i}"), PortDirection::Input))
        .collect();
    let y = b.port("y", PortDirection::Output);
    // Complement selects with nMOS inverters.
    let nsel: Vec<NetId> = (0..sel_bits)
        .map(|i| {
            let n = b.net(format!("ns{i}"));
            b.device(format!("qinv{i}d"), "pd", [("g", sel[i]), ("d", n)]);
            b.device(format!("qinv{i}l"), "pu", [("s", n)]);
            n
        })
        .collect();
    let mut layer = inputs;
    for (level, (s, ns)) in sel.iter().zip(&nsel).enumerate() {
        let mut next = Vec::new();
        for (j, pair) in layer.chunks(2).enumerate() {
            let o = if layer.len() == 2 {
                y
            } else {
                b.net(format!("m{level}_{j}"))
            };
            b.device(
                format!("qp{level}_{j}a"),
                "pass",
                [("d", pair[0]), ("g", *ns), ("s", o)],
            );
            b.device(
                format!("qp{level}_{j}b"),
                "pass",
                [("d", pair[1]), ("g", *s), ("s", o)],
            );
            next.push(o);
        }
        layer = next;
    }
    Ok(b.finish())
}

/// Seeded random transistor-level nMOS logic: a chain-of-gates structure
/// with random gate arities in `2..=4` and random cross-links.
///
/// # Panics
///
/// Panics if `gate_count == 0`.
pub fn random_nmos_logic(seed: u64, gate_count: usize) -> Module {
    assert!(gate_count > 0, "need at least one gate");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ModuleBuilder::new(format!("random_nmos_s{seed}_g{gate_count}"));
    let input_count = (gate_count / 3).clamp(2, 12);
    let mut nets: Vec<NetId> = (0..input_count)
        .map(|i| b.port(format!("in{i}"), PortDirection::Input))
        .collect();
    let mut fanout = vec![0usize; nets.len()];
    for g in 0..gate_count {
        let arity = rng.gen_range(1..=3usize);
        let out = b.net(format!("w{g}"));
        b.device(format!("q{g}l"), "pu", [("s", out)]);
        let mut node = out;
        for i in 0..arity {
            let src = rng.gen_range(0..nets.len());
            fanout[src] += 1;
            let below = if i + 1 == arity {
                None
            } else {
                Some(b.net(format!("w{g}_m{i}")))
            };
            let mut pins = vec![("d", node), ("g", nets[src])];
            if let Some(belw) = below {
                pins.push(("s", belw));
                node = belw;
            }
            b.device(format!("q{g}_{i}"), "pd", pins);
            if below.is_some() {
                fanout.push(0); // the internal series net
                nets.push(node);
            }
        }
        nets.push(out);
        fanout.push(0);
    }
    // Expose sink nets as outputs through pass transistors.
    let mut out_idx = 0;
    let snapshot = nets.clone();
    for (i, net) in snapshot.iter().enumerate().skip(input_count) {
        if fanout[i] == 0 && out_idx < 8 {
            let port = b.port(format!("out{out_idx}"), PortDirection::Output);
            b.device(format!("qo{out_idx}"), "pass", [("d", *net), ("s", port)]);
            out_idx += 1;
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayoutStyle, NetlistStats};
    use maestro_tech::builtin;

    #[test]
    fn fanout_generators_reject_out_of_range_selects() {
        // Zero, just-past-max, the word-size shift boundary, and
        // usize::MAX must all come back as structured errors — the old
        // `1 << sel_bits` wrapped (or debug-panicked) at 64.
        for bad in [0, MAX_SELECT_BITS + 1, usize::BITS as usize, usize::MAX] {
            assert!(
                matches!(try_decoder(bad), Err(NetlistError::Invalid { .. })),
                "decoder({bad}) must be rejected"
            );
            assert!(
                matches!(try_mux_tree(bad), Err(NetlistError::Invalid { .. })),
                "mux_tree({bad}) must be rejected"
            );
        }
        for bad in [
            0,
            MAX_PASS_SELECT_BITS + 1,
            usize::BITS as usize,
            usize::MAX,
        ] {
            assert!(
                matches!(try_nmos_pass_mux(bad), Err(NetlistError::Invalid { .. })),
                "nmos_pass_mux({bad}) must be rejected"
            );
        }
        let err = try_decoder(usize::BITS as usize).unwrap_err();
        assert!(
            err.to_string().contains("1..=12 select bits"),
            "error names the supported range: {err}"
        );
    }

    #[test]
    fn fanout_generators_accept_their_widened_maximum() {
        let m = try_mux_tree(MAX_SELECT_BITS).expect("max mux tree builds");
        assert_eq!(m.device_count(), (1 << MAX_SELECT_BITS) - 1);
        let m = try_nmos_pass_mux(MAX_PASS_SELECT_BITS).expect("max pass mux builds");
        assert_eq!(
            m.port_count(),
            (1 << MAX_PASS_SELECT_BITS) + MAX_PASS_SELECT_BITS + 1
        );
        let m = try_decoder(8).expect("8-bit decoder builds");
        assert_eq!(m.port_count(), 8 + 256);
    }

    #[test]
    #[should_panic(expected = "decoder select count")]
    fn decoder_wrapper_still_panics_on_bad_input() {
        decoder(0);
    }

    #[test]
    fn shift_register_structure() {
        let m = shift_register(8);
        assert_eq!(m.device_count(), 8);
        assert_eq!(m.port_count(), 3);
        // clk net has 8 components.
        let clk = m.find_net("clk").unwrap();
        assert_eq!(m.net(clk).component_count(), 8);
    }

    #[test]
    fn ripple_adder_structure() {
        let m = ripple_adder(4);
        assert_eq!(m.device_count(), 20);
        assert_eq!(m.port_count(), 4 * 3 + 2);
    }

    #[test]
    fn decoder_output_counts() {
        for bits in 1..=4 {
            let m = decoder(bits);
            assert_eq!(
                m.ports()
                    .filter(|(_, p)| p.direction() == PortDirection::Output)
                    .count(),
                1 << bits,
                "decoder_{bits}"
            );
        }
    }

    #[test]
    fn counter_structure() {
        let m = counter(4);
        // 4 DFF + 4 XOR + 3 AND = 11.
        assert_eq!(m.device_count(), 11);
    }

    #[test]
    fn mux_tree_structure() {
        let m = mux_tree(3);
        // 4 + 2 + 1 = 7 MUX2s.
        assert_eq!(m.device_count(), 7);
        assert_eq!(m.port_count(), 8 + 3 + 1);
    }

    #[test]
    fn generators_resolve_against_nmos_library() {
        let tech = builtin::nmos25();
        for m in [
            shift_register(4),
            ripple_adder(2),
            decoder(3),
            counter(3),
            mux_tree(2),
        ] {
            let s = NetlistStats::resolve(&m, &tech, LayoutStyle::StandardCell)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert!(s.device_count() > 0);
            assert!(s.total_device_area().get() > 0);
        }
    }

    #[test]
    fn parity_tree_structure() {
        // 8 inputs -> 7 XORs in a binary tree; 5 inputs -> 4 XORs.
        assert_eq!(parity_tree(8).device_count(), 7);
        assert_eq!(parity_tree(5).device_count(), 4);
        assert_eq!(parity_tree(2).device_count(), 1);
    }

    #[test]
    fn alu_slice_structure() {
        let m = alu_slice();
        assert_eq!(m.port_count(), 7);
        assert_eq!(m.device_count(), 9);
        let s = NetlistStats::resolve(&m, &builtin::nmos25(), LayoutStyle::StandardCell)
            .expect("resolves");
        assert!(s.total_device_area().get() > 0);
    }

    #[test]
    fn barrel_shifter_structure() {
        // 3 stages, 8 bits: 24 MUX2s.
        let m = barrel_shifter(3);
        assert_eq!(m.device_count(), 24);
        assert_eq!(m.port_count(), 8 + 3 + 8);
    }

    #[test]
    fn lfsr_structure() {
        let m = lfsr(5);
        // 5 DFFs + 1 XOR.
        assert_eq!(m.device_count(), 6);
        let fb = m.find_net("fb").expect("feedback net");
        assert_eq!(m.net(fb).component_count(), 2);
    }

    #[test]
    fn cla_matches_gate_count_formula() {
        // Per bit: AND2 + XOR2 (g/p) + XOR2 (sum) + AND2 + OR2 = 5 gates.
        for bits in [1usize, 4, 8] {
            assert_eq!(carry_lookahead_adder(bits).device_count(), 5 * bits);
        }
    }

    #[test]
    fn new_generators_resolve_and_expand() {
        let tech = builtin::nmos25();
        for m in [
            parity_tree(6),
            alu_slice(),
            barrel_shifter(2),
            lfsr(4),
            carry_lookahead_adder(3),
        ] {
            NetlistStats::resolve(&m, &tech, LayoutStyle::StandardCell)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            let xt = crate::expand::to_nmos_transistors(&m)
                .unwrap_or_else(|e| panic!("{} expand: {e}", m.name()));
            NetlistStats::resolve(&xt, &tech, LayoutStyle::FullCustom)
                .unwrap_or_else(|e| panic!("{}: {e}", xt.name()));
        }
    }

    #[test]
    fn random_logic_is_deterministic() {
        let cfg = RandomLogicConfig::default();
        let a = random_logic(42, &cfg);
        let b = random_logic(42, &cfg);
        assert_eq!(a, b);
        let c = random_logic(43, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn random_logic_resolves_and_scales() {
        let tech = builtin::nmos25();
        for n in [10, 50, 200] {
            let cfg = RandomLogicConfig {
                device_count: n,
                ..RandomLogicConfig::default()
            };
            let m = random_logic(7, &cfg);
            assert!(m.device_count() >= n, "buffers add devices");
            let s = NetlistStats::resolve(&m, &tech, LayoutStyle::StandardCell).unwrap();
            assert!(s.net_count() > 0);
        }
    }

    #[test]
    fn inverter_chain_nets_are_two_component() {
        let m = nmos_inverter_chain(6);
        // Internal nets (not a, not y-load-only) have exactly 2-3 components:
        // driver pd drain + load pu + next pd gate.
        let tech = builtin::nmos25();
        let s = NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        assert!(s.net_sizes().max_components() <= 3);
        assert_eq!(s.device_count(), 12);
    }

    #[test]
    fn nmos_nand_structure() {
        let m = nmos_nand(3);
        // 3 pull-downs + 1 load.
        assert_eq!(m.device_count(), 4);
        let tech = builtin::nmos25();
        let s = NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        assert_eq!(s.device_count(), 4);
    }

    #[test]
    fn pass_mux_resolves_full_custom() {
        let m = nmos_pass_mux(2);
        let tech = builtin::nmos25();
        let s = NetlistStats::resolve(&m, &tech, LayoutStyle::FullCustom).unwrap();
        assert!(s.device_count() > 6);
        assert_eq!(s.port_count(), 4 + 2 + 1);
    }

    #[test]
    fn random_nmos_is_deterministic_and_resolves() {
        let a = random_nmos_logic(5, 10);
        let b = random_nmos_logic(5, 10);
        assert_eq!(a, b);
        let tech = builtin::nmos25();
        let s = NetlistStats::resolve(&a, &tech, LayoutStyle::FullCustom).unwrap();
        assert!(s.device_count() > 10);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_shift_register_rejected() {
        let _ = shift_register(0);
    }
}
