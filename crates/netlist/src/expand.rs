//! Gate-level → transistor-level expansion.
//!
//! The paper's introduction motivates *comparing layout methodologies for
//! the same module*: "accurate module area estimators and floor planners
//! allow the generation of trial floor plans for comparing the various
//! different layout methodologies or mixtures of them." To compare, the
//! same logical module must exist in both representations. This module
//! expands a gate-level netlist (standard-cell templates) into a ratioed
//! nMOS transistor netlist (full-custom templates), so one schematic can
//! be estimated — and laid out — both ways.
//!
//! Each library cell maps to its classic ratioed-nMOS realization:
//!
//! | cell | realization | transistors |
//! |------|-------------|-------------|
//! | `INV` | load + pull-down | 2 |
//! | `BUF` | two inverters | 4 |
//! | `NAND`*k* | load + *k* series pull-downs | k+1 |
//! | `NOR`*k* | load + *k* parallel pull-downs | k+1 |
//! | `AND`*k* / `OR`*k* | NAND/NOR + inverter | k+3 |
//! | `XOR2` / `XNOR2` | two-level NAND network | 12 / 14 |
//! | `AOI22` / `OAI22` | load + series/parallel tree | 5 |
//! | `MUX2` | pass transistors + select inverter | 4 |
//! | `DLATCH` | pass + back-to-back inverters | 6 |
//! | `DFF` | two latches | 12 |

use crate::{Module, ModuleBuilder, NetId, NetlistError};

/// Expansion context: the builder plus a counter for fresh nets.
struct Expander {
    b: ModuleBuilder,
    fresh: usize,
}

impl Expander {
    fn fresh_net(&mut self, hint: &str) -> NetId {
        let id = self.fresh;
        self.fresh += 1;
        self.b.net(format!("x_{hint}_{id}"))
    }

    fn inv(&mut self, prefix: &str, a: NetId, y: NetId) {
        self.b
            .device(format!("{prefix}_pd"), "pd", [("g", a), ("d", y)]);
        self.b.device(format!("{prefix}_pu"), "pu", [("s", y)]);
    }

    fn nand(&mut self, prefix: &str, inputs: &[NetId], y: NetId) {
        self.b.device(format!("{prefix}_pu"), "pu", [("s", y)]);
        let mut node = y;
        for (i, &a) in inputs.iter().enumerate() {
            let mut pins = vec![("d", node), ("g", a)];
            if i + 1 < inputs.len() {
                let below = self.fresh_net(prefix);
                pins.push(("s", below));
                self.b.device(format!("{prefix}_q{i}"), "pd", pins);
                node = below;
            } else {
                self.b.device(format!("{prefix}_q{i}"), "pd", pins);
            }
        }
    }

    fn nor(&mut self, prefix: &str, inputs: &[NetId], y: NetId) {
        self.b.device(format!("{prefix}_pu"), "pu", [("s", y)]);
        for (i, &a) in inputs.iter().enumerate() {
            self.b
                .device(format!("{prefix}_q{i}"), "pd", [("d", y), ("g", a)]);
        }
    }

    fn pass(&mut self, name: String, d: NetId, g: NetId, s: NetId) {
        self.b.device(name, "pass", [("d", d), ("g", g), ("s", s)]);
    }
}

fn require_pin(dev: &crate::Device, pin: &str) -> Result<NetId, NetlistError> {
    dev.pin_net(pin).ok_or_else(|| {
        NetlistError::invalid(format!(
            "device `{}` ({}) lacks pin `{pin}` required for expansion",
            dev.name(),
            dev.template()
        ))
    })
}

/// Expands a gate-level module into a ratioed nMOS transistor module with
/// the same name suffixed `_xt`, the same ports, and the same signal nets.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if a device uses a cell this
/// expander has no realization for, or a binding is missing a required
/// pin.
///
/// # Examples
///
/// ```
/// use maestro_netlist::{expand, generate};
///
/// let gates = generate::ripple_adder(1);
/// let transistors = expand::to_nmos_transistors(&gates)?;
/// assert!(transistors.device_count() > gates.device_count());
/// assert_eq!(transistors.port_count(), gates.port_count());
/// # Ok::<(), maestro_netlist::NetlistError>(())
/// ```
pub fn to_nmos_transistors(module: &Module) -> Result<Module, NetlistError> {
    let mut ex = Expander {
        b: ModuleBuilder::new(format!("{}_xt", module.name())),
        fresh: 0,
    };
    // Recreate ports (ports imply nets of the same name).
    for (_, port) in module.ports() {
        ex.b.port(port.name().to_owned(), port.direction());
    }
    // Recreate all remaining nets by name so ids can be remapped.
    let mut remap: Vec<NetId> = Vec::with_capacity(module.net_count());
    for (_, net) in module.nets() {
        remap.push(ex.b.net(net.name().to_owned()));
    }
    let m = |n: NetId| remap[n.index()];

    for (_, dev) in module.devices() {
        let p = dev.name();
        match dev.template() {
            "INV" => {
                let a = m(require_pin(dev, "A")?);
                let y = m(require_pin(dev, "Y")?);
                ex.inv(p, a, y);
            }
            "BUF" => {
                let a = m(require_pin(dev, "A")?);
                let y = m(require_pin(dev, "Y")?);
                let t = ex.fresh_net(p);
                ex.inv(&format!("{p}_i1"), a, t);
                ex.inv(&format!("{p}_i2"), t, y);
            }
            t @ ("NAND2" | "NAND3" | "NAND4" | "NOR2" | "NOR3") => {
                let arity = t.as_bytes()[t.len() - 1] - b'0';
                let names = ["A", "B", "C", "D"];
                let mut inputs = Vec::new();
                for name in names.iter().take(arity as usize) {
                    inputs.push(m(require_pin(dev, name)?));
                }
                let y = m(require_pin(dev, "Y")?);
                if t.starts_with("NAND") {
                    ex.nand(p, &inputs, y);
                } else {
                    ex.nor(p, &inputs, y);
                }
            }
            t @ ("AND2" | "OR2") => {
                let a = m(require_pin(dev, "A")?);
                let bb = m(require_pin(dev, "B")?);
                let y = m(require_pin(dev, "Y")?);
                let n = ex.fresh_net(p);
                if t == "AND2" {
                    ex.nand(&format!("{p}_n"), &[a, bb], n);
                } else {
                    ex.nor(&format!("{p}_n"), &[a, bb], n);
                }
                ex.inv(&format!("{p}_i"), n, y);
            }
            t @ ("XOR2" | "XNOR2") => {
                // NAND-network XOR: 4 NAND2s; XNOR adds an inverter.
                let a = m(require_pin(dev, "A")?);
                let bb = m(require_pin(dev, "B")?);
                let y = m(require_pin(dev, "Y")?);
                let nab = ex.fresh_net(p);
                ex.nand(&format!("{p}_g1"), &[a, bb], nab);
                let t1 = ex.fresh_net(p);
                ex.nand(&format!("{p}_g2"), &[a, nab], t1);
                let t2 = ex.fresh_net(p);
                ex.nand(&format!("{p}_g3"), &[bb, nab], t2);
                if t == "XOR2" {
                    ex.nand(&format!("{p}_g4"), &[t1, t2], y);
                } else {
                    let x = ex.fresh_net(p);
                    ex.nand(&format!("{p}_g4"), &[t1, t2], x);
                    ex.inv(&format!("{p}_i"), x, y);
                }
            }
            t @ ("AOI22" | "OAI22") => {
                // One complex gate: load + 4 pull-downs (series pairs in
                // parallel for AOI, parallel pairs in series for OAI).
                let a1 = m(require_pin(dev, "A1")?);
                let a2 = m(require_pin(dev, "A2")?);
                let b1 = m(require_pin(dev, "B1")?);
                let b2 = m(require_pin(dev, "B2")?);
                let y = m(require_pin(dev, "Y")?);
                ex.b.device(format!("{p}_pu"), "pu", [("s", y)]);
                if t == "AOI22" {
                    let ma = ex.fresh_net(p);
                    ex.b.device(format!("{p}_qa1"), "pd", [("d", y), ("g", a1), ("s", ma)]);
                    ex.b.device(format!("{p}_qa2"), "pd", [("d", ma), ("g", a2)]);
                    let mb = ex.fresh_net(p);
                    ex.b.device(format!("{p}_qb1"), "pd", [("d", y), ("g", b1), ("s", mb)]);
                    ex.b.device(format!("{p}_qb2"), "pd", [("d", mb), ("g", b2)]);
                } else {
                    let mid = ex.fresh_net(p);
                    ex.b.device(format!("{p}_qa1"), "pd", [("d", y), ("g", a1), ("s", mid)]);
                    ex.b.device(format!("{p}_qa2"), "pd", [("d", y), ("g", a2), ("s", mid)]);
                    ex.b.device(format!("{p}_qb1"), "pd", [("d", mid), ("g", b1)]);
                    ex.b.device(format!("{p}_qb2"), "pd", [("d", mid), ("g", b2)]);
                }
            }
            "MUX2" => {
                let a = m(require_pin(dev, "A")?);
                let bb = m(require_pin(dev, "B")?);
                let s = m(require_pin(dev, "S")?);
                let y = m(require_pin(dev, "Y")?);
                let ns = ex.fresh_net(p);
                ex.inv(&format!("{p}_si"), s, ns);
                ex.pass(format!("{p}_pa"), a, ns, y);
                ex.pass(format!("{p}_pb"), bb, s, y);
            }
            "DLATCH" => {
                let d = m(require_pin(dev, "D")?);
                let g = m(require_pin(dev, "G")?);
                let q = m(require_pin(dev, "Q")?);
                let s = ex.fresh_net(p);
                ex.pass(format!("{p}_pg"), d, g, s);
                let nq = ex.fresh_net(p);
                ex.inv(&format!("{p}_i1"), s, nq);
                ex.inv(&format!("{p}_i2"), nq, q);
            }
            "DFF" => {
                let d = m(require_pin(dev, "D")?);
                let ck = m(require_pin(dev, "CK")?);
                let q = m(require_pin(dev, "Q")?);
                let nck = ex.fresh_net(p);
                ex.inv(&format!("{p}_ci"), ck, nck);
                // Master (transparent on !ck) then slave (on ck).
                let s1 = ex.fresh_net(p);
                ex.pass(format!("{p}_p1"), d, nck, s1);
                let m1 = ex.fresh_net(p);
                ex.inv(&format!("{p}_i1"), s1, m1);
                let s2 = ex.fresh_net(p);
                ex.pass(format!("{p}_p2"), m1, ck, s2);
                let m2 = ex.fresh_net(p);
                ex.inv(&format!("{p}_i2"), s2, m2);
                ex.inv(&format!("{p}_i3"), m2, q);
                if let Some(qn) = dev.pin_net("QN") {
                    let qn = m(qn);
                    ex.inv(&format!("{p}_i4"), q, qn);
                }
            }
            other => {
                return Err(NetlistError::invalid(format!(
                    "no nMOS expansion for cell `{other}` (device `{}`)",
                    dev.name()
                )));
            }
        }
    }
    Ok(ex.b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, LayoutStyle, NetlistStats, PortDirection};
    use maestro_tech::builtin;

    #[test]
    fn inverter_expands_to_two_transistors() {
        let mut b = ModuleBuilder::new("one");
        let a = b.port("a", PortDirection::Input);
        let y = b.port("y", PortDirection::Output);
        b.device("u1", "INV", [("A", a), ("Y", y)]);
        let xt = to_nmos_transistors(&b.finish()).expect("expands");
        assert_eq!(xt.device_count(), 2);
        assert_eq!(xt.name(), "one_xt");
        assert_eq!(xt.port_count(), 2);
    }

    #[test]
    fn nand3_expands_with_series_chain() {
        let mut b = ModuleBuilder::new("g");
        let nets: Vec<_> = ["a", "b", "c", "y"].iter().map(|n| b.net(*n)).collect();
        b.device(
            "u1",
            "NAND3",
            [
                ("A", nets[0]),
                ("B", nets[1]),
                ("C", nets[2]),
                ("Y", nets[3]),
            ],
        );
        let xt = to_nmos_transistors(&b.finish()).expect("expands");
        // 1 load + 3 pull-downs.
        assert_eq!(xt.device_count(), 4);
        // Two fresh internal series nets.
        assert_eq!(xt.net_count(), 4 + 2);
    }

    #[test]
    fn expanded_modules_resolve_full_custom() {
        let tech = builtin::nmos25();
        for module in [
            generate::ripple_adder(2),
            generate::counter(3),
            generate::mux_tree(2),
            generate::shift_register(4),
            generate::decoder(2),
        ] {
            let xt =
                to_nmos_transistors(&module).unwrap_or_else(|e| panic!("{}: {e}", module.name()));
            let stats = NetlistStats::resolve(&xt, &tech, LayoutStyle::FullCustom)
                .unwrap_or_else(|e| panic!("{}: {e}", xt.name()));
            assert!(
                stats.device_count() >= 2 * module.device_count(),
                "{}: {} transistors for {} gates",
                module.name(),
                stats.device_count(),
                module.device_count()
            );
        }
    }

    #[test]
    fn expansion_preserves_ports_and_external_nets() {
        let module = generate::ripple_adder(2);
        let xt = to_nmos_transistors(&module).expect("expands");
        assert_eq!(xt.port_count(), module.port_count());
        for (_, port) in module.ports() {
            let xp = xt.find_port(port.name()).expect("port preserved");
            assert_eq!(xt.port(xp).direction(), port.direction());
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let module = generate::counter(3);
        assert_eq!(
            to_nmos_transistors(&module).unwrap(),
            to_nmos_transistors(&module).unwrap()
        );
    }

    #[test]
    fn unknown_cell_is_an_error() {
        let mut b = ModuleBuilder::new("m");
        let n = b.net("n");
        b.device("u1", "TRIBUF", [("A", n)]);
        let err = to_nmos_transistors(&b.finish()).unwrap_err();
        assert!(matches!(err, NetlistError::Invalid { .. }));
    }

    #[test]
    fn dff_uses_qn_when_bound() {
        let mut b = ModuleBuilder::new("m");
        let d = b.net("d");
        let ck = b.net("ck");
        let q = b.net("q");
        let qn = b.net("qn");
        b.device("ff", "DFF", [("D", d), ("CK", ck), ("Q", q), ("QN", qn)]);
        let xt = to_nmos_transistors(&b.finish()).expect("expands");
        let qn_net = xt.find_net("qn").expect("qn preserved");
        assert!(xt.net(qn_net).component_count() > 0, "qn is driven");
    }
}
