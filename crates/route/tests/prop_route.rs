//! Property-based tests for the channel router and layout assembly.

use maestro_geom::{Interval, Lambda};
use maestro_netlist::generate::{self, RandomLogicConfig};
use maestro_netlist::NetId;
use maestro_place::{place, AnnealSchedule, PlaceParams};
use maestro_route::channel::{ChannelProblem, Segment};
use maestro_route::router::route_channel;
use maestro_route::{route, zones};
use maestro_tech::builtin;
use proptest::prelude::*;

/// Random channel: segments with random spans; pin columns at the span
/// ends (top at lo, bottom at hi) to create plenty of constraints.
fn random_channel(spans: &[(i64, i64)]) -> ChannelProblem {
    ChannelProblem {
        segments: spans
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let span = Interval::new(Lambda::new(a), Lambda::new(b));
                Segment {
                    net: NetId::new(i as u32),
                    span,
                    top_columns: vec![span.lo()],
                    bottom_columns: vec![span.hi()],
                }
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn router_places_every_piece(spans in proptest::collection::vec((0i64..100, 0i64..100), 1..16)) {
        let p = random_channel(&spans);
        let r = route_channel(&p);
        prop_assert!(r.trunks.len() >= p.segments.len(), "doglegs only add pieces");
        prop_assert!(r.trunks.iter().all(|t| t.track < r.track_count));
        // Every original segment is represented.
        for i in 0..p.segments.len() {
            prop_assert!(r.trunks.iter().any(|t| t.segment == i));
        }
    }

    #[test]
    fn same_track_pieces_never_strictly_overlap(
        spans in proptest::collection::vec((0i64..100, 0i64..100), 1..16)
    ) {
        let p = random_channel(&spans);
        let r = route_channel(&p);
        if r.violations > 0 {
            // Forced placements may overlap by design; skip those runs.
            return Ok(());
        }
        for a in &r.trunks {
            for b in &r.trunks {
                if (a.segment, a.span) < (b.segment, b.span) && a.track == b.track {
                    prop_assert!(
                        !a.span.overlaps_strictly(b.span),
                        "{a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn track_count_at_least_density(
        spans in proptest::collection::vec((0i64..100, 0i64..100), 1..16)
    ) {
        let p = random_channel(&spans);
        let r = route_channel(&p);
        prop_assert!(r.track_count >= p.density());
    }

    #[test]
    fn max_zone_equals_density(
        spans in proptest::collection::vec((0i64..60, 0i64..60), 1..12)
    ) {
        let p = random_channel(&spans);
        let max_zone = zones(&p).iter().map(|z| z.size() as u32).max().unwrap_or(0);
        prop_assert_eq!(max_zone, p.density());
    }

    #[test]
    fn assembled_modules_have_consistent_geometry(
        seed in 0u64..60,
        devices in 8usize..32,
        rows in 1u32..5,
    ) {
        let cfg = RandomLogicConfig { device_count: devices, ..Default::default() };
        let module = generate::random_logic(seed, &cfg);
        let placed = place(
            &module,
            &builtin::nmos25(),
            &PlaceParams {
                rows,
                seed,
                schedule: AnnealSchedule { rounds: 6, moves_per_round: 50, ..AnnealSchedule::quick() },
                ..PlaceParams::default()
            },
        )
        .unwrap();
        let routed = route(&placed);
        prop_assert_eq!(routed.rows(), rows);
        prop_assert_eq!(routed.channels().len(), rows as usize + 1);
        prop_assert_eq!(routed.area(), routed.width() * routed.height());
        let tech = builtin::nmos25();
        let expected_height =
            tech.row_height() * rows as i64 + tech.track_pitch() * routed.total_tracks() as i64;
        prop_assert_eq!(routed.height(), expected_height);
        for ch in routed.channels() {
            prop_assert!(ch.result.track_count >= ch.density);
        }
    }
}
