//! Channel routing and layout assembly — the routing half of the
//! TimberWolf 3.2 stand-in.
//!
//! Takes a [`maestro_place::PlacedModule`] and produces the *real* routed
//! module the paper's Table 2 compares against:
//!
//! 1. [`channel`] — builds one channel-routing problem per horizontal
//!    channel (above each row and below the last): per-net horizontal
//!    intervals with top/bottom pin columns, plus the classic *local
//!    density* lower bound;
//! 2. [`router`] — solves each channel with the constrained left-edge
//!    algorithm: a vertical-constraint graph built from shared pin
//!    columns, dogleg splitting to break constraint cycles, then greedy
//!    track assignment honouring the remaining constraints;
//! 3. [`assemble`] — stacks rows and routed channels into a
//!    [`RoutedModule`] with exact width, height, area, track counts and
//!    aspect ratio.
//!
//! The contrast between this crate's *shared* tracks and the estimator's
//! one-net-per-track upper bound is exactly the 42–70 % overestimate the
//! paper reports.
//!
//! # Examples
//!
//! ```
//! use maestro_place::{place, PlaceParams};
//! use maestro_route::assemble::route;
//! use maestro_netlist::generate;
//! use maestro_tech::builtin;
//!
//! let tech = builtin::nmos25();
//! let placed = place(&generate::ripple_adder(2), &tech, &PlaceParams::default())?;
//! let routed = route(&placed);
//! assert!(routed.area().get() > 0);
//! assert!(routed.total_tracks() > 0);
//! # Ok::<(), maestro_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod channel;
pub mod router;
pub mod zone;

pub use assemble::{route, RoutedChannel, RoutedModule};
pub use channel::{ChannelProblem, Segment};
pub use zone::{max_zone_size, zones, Zone};
