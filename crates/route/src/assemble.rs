//! Layout assembly: placed rows + routed channels = the *real* module.

use maestro_geom::{AspectRatio, Lambda, LambdaArea};
use maestro_place::PlacedModule;
use maestro_trace as trace;
use serde::{Deserialize, Serialize};

use crate::channel::{build_channels, ChannelProblem};
use crate::router::{route_channel, ChannelResult};

/// One routed channel: the problem's density bound and the router's
/// solution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedChannel {
    /// Local-density lower bound for this channel.
    pub density: u32,
    /// The router's track assignment.
    pub result: ChannelResult,
}

/// The fully assembled module: the "Real Area" and "# Tracks Real" of the
/// paper's Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedModule {
    module_name: String,
    rows: u32,
    width: Lambda,
    height: Lambda,
    total_tracks: u32,
    total_doglegs: u32,
    total_violations: u32,
    feedthroughs: u32,
    channels: Vec<RoutedChannel>,
}

impl RoutedModule {
    /// Module name.
    pub fn module_name(&self) -> &str {
        &self.module_name
    }

    /// Row count.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Real module width (widest row including feed-throughs).
    pub fn width(&self) -> Lambda {
        self.width
    }

    /// Real module height (rows plus routed channel tracks).
    pub fn height(&self) -> Lambda {
        self.height
    }

    /// Real module area.
    pub fn area(&self) -> LambdaArea {
        self.width * self.height
    }

    /// Real aspect ratio (width ÷ height).
    ///
    /// # Panics
    ///
    /// Panics if the module is degenerate (zero width or height), which
    /// cannot happen for modules produced by [`route`] on a non-empty
    /// placement.
    pub fn aspect_ratio(&self) -> AspectRatio {
        AspectRatio::of(self.width, self.height)
    }

    /// Total routed tracks across all channels — the Table 2 "# Tracks
    /// Real" column.
    pub fn total_tracks(&self) -> u32 {
        self.total_tracks
    }

    /// Total dogleg splits across all channels.
    pub fn total_doglegs(&self) -> u32 {
        self.total_doglegs
    }

    /// Total dropped vertical constraints (router approximations).
    pub fn total_violations(&self) -> u32 {
        self.total_violations
    }

    /// Total feed-throughs inserted by placement.
    pub fn feedthroughs(&self) -> u32 {
        self.feedthroughs
    }

    /// Per-channel routing results, channel 0 (above the top row) first.
    pub fn channels(&self) -> &[RoutedChannel] {
        &self.channels
    }
}

/// Renders a routed module as an SVG sketch: rows of cells (labelled by
/// device index), feed-through counts, and one horizontal line per routed
/// trunk at its track position.
pub fn render_svg(placed: &PlacedModule, routed: &RoutedModule) -> String {
    use maestro_geom::svg::SvgDocument;
    use maestro_geom::{Point, Rect};

    let width = routed.width().max(Lambda::ONE);
    let height = routed.height().max(Lambda::ONE);
    let mut doc = SvgDocument::new(width, height);

    // Walk from the top: channel 0, row 0, channel 1, … , channel n.
    let pitch = placed.track_pitch();
    let row_h = placed.row_height();
    let mut y_top = height; // λ, y-up
    for (c, channel) in routed.channels().iter().enumerate() {
        // Trunks of this channel.
        for trunk in &channel.result.trunks {
            let y = y_top - pitch * trunk.track as i64 - pitch / 2;
            doc.hline(trunk.span.lo(), trunk.span.hi(), y, "#c33");
        }
        y_top -= pitch * channel.result.track_count as i64;
        // The row below this channel, if any.
        if c < placed.rows().len() {
            let row = &placed.rows()[c];
            let y_row = y_top - row_h;
            for cell in &row.cells {
                doc.rect(
                    Rect::new(Point::new(cell.x, y_row), cell.width, row_h),
                    "#9bc4e2",
                    Some(&format!("d{}", cell.device.index())),
                );
            }
            if row.feedthroughs > 0 {
                let ft_x = row
                    .cells
                    .last()
                    .map(|c| c.x + c.width)
                    .unwrap_or(Lambda::ZERO);
                doc.rect(
                    Rect::new(
                        Point::new(ft_x, y_row),
                        placed.feedthrough_width() * row.feedthroughs as i64,
                        row_h,
                    ),
                    "#e2d49b",
                    Some(&format!("{}ft", row.feedthroughs)),
                );
            }
            y_top = y_row;
        }
    }
    doc.finish()
}

/// Routes every channel of a placed module and assembles the real layout.
pub fn route(placed: &PlacedModule) -> RoutedModule {
    let _route_span = trace::span_with("route", || placed.module_name().to_owned());
    let problems: Vec<ChannelProblem> = build_channels(placed);
    let channels: Vec<RoutedChannel> = problems
        .iter()
        .map(|p| RoutedChannel {
            density: p.density(),
            result: route_channel(p),
        })
        .collect();
    let total_tracks = channels.iter().map(|c| c.result.track_count).sum();
    let total_doglegs = channels.iter().map(|c| c.result.doglegs).sum();
    let total_violations = channels.iter().map(|c| c.result.violations).sum();
    trace::counter("route.channels", channels.len() as u64);
    trace::counter("route.tracks", u64::from(total_tracks));
    trace::counter("route.doglegs", u64::from(total_doglegs));
    trace::counter("route.violations", u64::from(total_violations));
    let rows = placed.rows().len() as u32;
    let height = placed.row_height() * rows as i64 + placed.track_pitch() * total_tracks as i64;
    RoutedModule {
        module_name: placed.module_name().to_owned(),
        rows,
        width: placed.width(),
        height,
        total_tracks,
        total_doglegs,
        total_violations,
        feedthroughs: placed.total_feedthroughs(),
        channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::generate;
    use maestro_place::{place, AnnealSchedule, PlaceParams};
    use maestro_tech::builtin;

    fn routed(module: &maestro_netlist::Module, rows: u32) -> RoutedModule {
        let placed = place(
            module,
            &builtin::nmos25(),
            &PlaceParams {
                rows,
                schedule: AnnealSchedule::quick(),
                ..PlaceParams::default()
            },
        )
        .expect("places");
        route(&placed)
    }

    #[test]
    fn routed_module_has_positive_geometry() {
        let m = generate::ripple_adder(3);
        let r = routed(&m, 2);
        assert!(r.width().is_positive());
        assert!(r.height().is_positive());
        assert!(r.area().get() > 0);
        assert!(r.total_tracks() > 0);
        assert_eq!(r.rows(), 2);
        assert_eq!(r.channels().len(), 3);
    }

    #[test]
    fn height_decomposes_into_rows_and_tracks() {
        let m = generate::counter(5);
        let r = routed(&m, 3);
        let tech = builtin::nmos25();
        let expected = tech.row_height() * 3 + tech.track_pitch() * r.total_tracks() as i64;
        assert_eq!(r.height(), expected);
    }

    #[test]
    fn tracks_at_least_density_in_every_channel() {
        let m = generate::ripple_adder(4);
        let r = routed(&m, 3);
        for (i, ch) in r.channels().iter().enumerate() {
            assert!(
                ch.result.track_count >= ch.density,
                "channel {i}: {} tracks < density {}",
                ch.result.track_count,
                ch.density
            );
        }
    }

    #[test]
    fn real_tracks_below_estimator_upper_bound() {
        // The paper's central Table 2 phenomenon: the estimator's
        // one-net-per-track count exceeds the routed (shared) count.
        use maestro_estimator_shim::total_tracks_upper_bound;
        let m = generate::ripple_adder(4);
        for rows in [2u32, 4] {
            let r = routed(&m, rows);
            let bound = total_tracks_upper_bound(&m, rows);
            assert!(
                r.total_tracks() <= bound,
                "rows={rows}: real {} > bound {bound}",
                r.total_tracks()
            );
        }
    }

    /// Inline re-implementation of the estimator's track bound to avoid a
    /// dev-dependency cycle (route must not depend on maestro-estimator).
    mod maestro_estimator_shim {
        use maestro_netlist::{LayoutStyle, Module, NetlistStats};
        use maestro_tech::builtin;

        /// Σ over nets of ⌈E(rows, D)⌉ with the paper's occupancy law.
        pub fn total_tracks_upper_bound(module: &Module, rows: u32) -> u32 {
            let stats =
                NetlistStats::resolve(module, &builtin::nmos25(), LayoutStyle::StandardCell)
                    .expect("resolves");
            stats
                .net_sizes()
                .iter()
                .map(|(d, y)| y as u32 * expected_tracks(rows, d as u32))
                .sum()
        }

        fn expected_tracks(n: u32, d: u32) -> u32 {
            let k = n.min(d);
            // b[i] inclusion–exclusion, f64.
            let mut b = vec![0.0f64; k as usize];
            for i in 1..=k {
                let mut v = (i as f64).powi(k as i32);
                for j in 1..i {
                    v -= binom(i, j) * b[(j - 1) as usize];
                }
                b[(i - 1) as usize] = v;
            }
            let npk = (n as f64).powi(k as i32);
            let e: f64 = (1..=k)
                .map(|i| i as f64 * binom(n, i) * b[(i - 1) as usize] / npk)
                .sum();
            ((e * 1e9).round() / 1e9).ceil() as u32
        }

        fn binom(n: u32, k: u32) -> f64 {
            if k > n {
                return 0.0;
            }
            let k = k.min(n - k);
            let mut acc = 1.0;
            for j in 0..k {
                acc = acc * (n - j) as f64 / (j + 1) as f64;
            }
            acc.round()
        }
    }

    #[test]
    fn single_row_module_routes_in_edge_channels() {
        let m = generate::ripple_adder(2);
        let r = routed(&m, 1);
        assert_eq!(r.channels().len(), 2);
        assert_eq!(r.feedthroughs(), 0);
        assert!(r.total_tracks() > 0);
    }

    #[test]
    fn routing_is_deterministic() {
        let m = generate::counter(4);
        assert_eq!(routed(&m, 2), routed(&m, 2));
    }

    #[test]
    fn svg_render_contains_every_cell_and_trunk() {
        let m = generate::ripple_adder(2);
        let placed = place(
            &m,
            &builtin::nmos25(),
            &PlaceParams {
                rows: 2,
                schedule: AnnealSchedule::quick(),
                ..PlaceParams::default()
            },
        )
        .unwrap();
        let routed = route(&placed);
        let svg = super::render_svg(&placed, &routed);
        assert!(svg.starts_with("<svg"));
        let cells: usize = placed.rows().iter().map(|r| r.cells.len()).sum();
        let trunks: usize = routed
            .channels()
            .iter()
            .map(|c| c.result.trunks.len())
            .sum();
        // background + cells (+ feedthrough boxes) rects; one line per trunk.
        assert!(svg.matches("<rect").count() > cells);
        assert_eq!(svg.matches("<line").count(), trunks);
    }

    #[test]
    fn violations_are_rare_on_real_modules() {
        for m in [
            generate::ripple_adder(4),
            generate::counter(6),
            generate::shift_register(10),
        ] {
            let r = routed(&m, 3);
            assert!(
                r.total_violations() <= 2,
                "{}: {} violations",
                r.module_name(),
                r.total_violations()
            );
        }
    }
}
