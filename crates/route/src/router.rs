//! The constrained left-edge channel router with dogleg cycle breaking.
//!
//! Classic two-shore channel routing: every net needs a horizontal trunk
//! on some track; a net descending from the top shore at column `x` must
//! have its trunk *above* the trunk of a net rising from the bottom shore
//! at the same column (the **vertical constraint**). The left-edge
//! algorithm packs trunks greedily into tracks from the top, honouring
//! those constraints; cyclic constraints are broken by **dogleg** splits
//! at internal pin columns, as in Deutsch's router.

use std::collections::BTreeMap;

use maestro_geom::Interval;
use serde::{Deserialize, Serialize};

use crate::channel::ChannelProblem;

/// One trunk piece placed on a track (a whole net segment, or a dogleg
/// fragment of one).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedTrunk {
    /// Index of the originating segment in the [`ChannelProblem`].
    pub segment: usize,
    /// Horizontal extent of this trunk piece.
    pub span: Interval,
    /// Track index, 0 = topmost.
    pub track: u32,
}

/// Result of routing one channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelResult {
    /// Trunks with their track assignments.
    pub trunks: Vec<PlacedTrunk>,
    /// Number of tracks used.
    pub track_count: u32,
    /// Dogleg splits performed to break constraint cycles.
    pub doglegs: u32,
    /// Vertical constraints dropped because no dogleg could break the
    /// cycle (rare; real routers would jog in the cell row).
    pub violations: u32,
}

/// A routable piece during the algorithm.
#[derive(Debug, Clone)]
struct Piece {
    segment: usize,
    span: Interval,
    top_columns: Vec<i64>,
    bottom_columns: Vec<i64>,
}

fn build_vcg(pieces: &[Piece]) -> Vec<Vec<usize>> {
    // For every column with a top connection of piece A and a bottom
    // connection of piece B (different segments): edge A -> B (A above B).
    let mut tops: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    let mut bottoms: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (i, p) in pieces.iter().enumerate() {
        for &c in &p.top_columns {
            tops.entry(c).or_default().push(i);
        }
        for &c in &p.bottom_columns {
            bottoms.entry(c).or_default().push(i);
        }
    }
    let mut adj = vec![Vec::new(); pieces.len()];
    for (col, top_pieces) in &tops {
        if let Some(bottom_pieces) = bottoms.get(col) {
            for &a in top_pieces {
                for &b in bottom_pieces {
                    if pieces[a].segment != pieces[b].segment && !adj[a].contains(&b) {
                        adj[a].push(b);
                    }
                }
            }
        }
    }
    adj
}

/// Finds one cycle in the VCG, returned as a list of piece indices, or
/// `None` if acyclic.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let n = adj.len();
    let mut mark = vec![Mark::White; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if mark[start] != Mark::White {
            continue;
        }
        // Iterative DFS with an explicit stack of (node, next-child).
        let mut stack = vec![(start, 0usize)];
        mark[start] = Mark::Gray;
        while let Some(&(node, child)) = stack.last() {
            if child < adj[node].len() {
                stack.last_mut().expect("stack non-empty").1 += 1;
                let next = adj[node][child];
                match mark[next] {
                    Mark::White => {
                        mark[next] = Mark::Gray;
                        parent[next] = node;
                        stack.push((next, 0));
                    }
                    Mark::Gray => {
                        // Found a cycle: walk parents from node back to next.
                        let mut cycle = vec![node];
                        let mut cur = node;
                        while cur != next {
                            cur = parent[cur];
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Mark::Black => {}
                }
            } else {
                mark[node] = Mark::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Attempts to split one piece of `cycle` at an internal pin column.
/// Returns the replacement pieces if successful.
fn try_dogleg(pieces: &[Piece], cycle: &[usize]) -> Option<(usize, Piece, Piece)> {
    for &idx in cycle {
        let p = &pieces[idx];
        let mut columns: Vec<i64> = p
            .top_columns
            .iter()
            .chain(&p.bottom_columns)
            .copied()
            .collect();
        columns.sort_unstable();
        columns.dedup();
        // An internal column strictly between the extremes; pieces
        // without one cannot be doglegged — try the next cycle member.
        let Some(split) = columns
            .iter()
            .copied()
            .find(|&c| c > p.span.lo().get() && c < p.span.hi().get())
        else {
            continue;
        };
        let left_span = Interval::new(p.span.lo(), maestro_geom::Lambda::new(split));
        let right_span = Interval::new(maestro_geom::Lambda::new(split), p.span.hi());
        let left = Piece {
            segment: p.segment,
            span: left_span,
            top_columns: p
                .top_columns
                .iter()
                .copied()
                .filter(|&c| c <= split)
                .collect(),
            bottom_columns: p
                .bottom_columns
                .iter()
                .copied()
                .filter(|&c| c <= split)
                .collect(),
        };
        let right = Piece {
            segment: p.segment,
            span: right_span,
            top_columns: p
                .top_columns
                .iter()
                .copied()
                .filter(|&c| c > split)
                .collect(),
            bottom_columns: p
                .bottom_columns
                .iter()
                .copied()
                .filter(|&c| c > split)
                .collect(),
        };
        return Some((idx, left, right));
    }
    None
}

/// Routes one channel: dogleg-resolved VCG plus constrained left-edge
/// track assignment. Deterministic.
pub fn route_channel(problem: &ChannelProblem) -> ChannelResult {
    let mut pieces: Vec<Piece> = problem
        .segments
        .iter()
        .enumerate()
        .map(|(i, s)| Piece {
            segment: i,
            span: s.span,
            top_columns: s.top_columns.iter().map(|c| c.get()).collect(),
            bottom_columns: s.bottom_columns.iter().map(|c| c.get()).collect(),
        })
        .collect();

    // Break VCG cycles with doglegs (bounded; each split strictly grows
    // the piece count).
    let mut doglegs = 0u32;
    let mut violations = 0u32;
    let mut adj = build_vcg(&pieces);
    let max_splits = problem.segments.len() * 4 + 8;
    while let Some(cycle) = find_cycle(&adj) {
        if doglegs as usize >= max_splits {
            violations += 1;
            // Drop one edge of the cycle to force progress.
            let a = cycle[0];
            let b = cycle[1 % cycle.len()];
            adj[a].retain(|&x| x != b);
            continue;
        }
        match try_dogleg(&pieces, &cycle) {
            Some((idx, left, right)) => {
                pieces[idx] = left;
                pieces.push(right);
                doglegs += 1;
                adj = build_vcg(&pieces);
            }
            None => {
                violations += 1;
                let a = cycle[0];
                let b = cycle[1 % cycle.len()];
                adj[a].retain(|&x| x != b);
            }
        }
    }

    // Constrained left-edge. Predecessor counts from the (acyclic) VCG.
    let n = pieces.len();
    let mut pred_count = vec![0usize; n];
    for succs in &adj {
        for &s in succs {
            pred_count[s] += 1;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (pieces[i].span.lo(), pieces[i].span.hi()));

    let mut track_of = vec![u32::MAX; n];
    let mut placed = vec![false; n];
    let mut remaining = n;
    let mut track = 0u32;
    while remaining > 0 {
        let mut right_edge: Option<i64> = None;
        let mut placed_this_track = 0usize;
        for &i in &order {
            if placed[i] {
                continue;
            }
            if pred_count[i] > 0 {
                continue; // a predecessor still needs a higher track
            }
            let fits = match right_edge {
                None => true,
                Some(edge) => pieces[i].span.lo().get() > edge,
            };
            if fits {
                placed[i] = true;
                track_of[i] = track;
                right_edge = Some(pieces[i].span.hi().get());
                remaining -= 1;
                placed_this_track += 1;
            }
        }
        // Release constraints of everything placed on this track.
        for (i, &was_placed) in placed.iter().enumerate() {
            if was_placed && track_of[i] == track {
                for &s in &adj[i] {
                    if !placed[s] {
                        pred_count[s] = pred_count[s].saturating_sub(1);
                    }
                }
            }
        }
        if placed_this_track == 0 && remaining > 0 {
            // Deadlock (should not happen with an acyclic VCG): force the
            // leftmost unplaced piece and record a violation.
            let i = *order.iter().find(|&&i| !placed[i]).expect("remaining > 0");
            placed[i] = true;
            track_of[i] = track;
            remaining -= 1;
            violations += 1;
            for &s in &adj[i] {
                if !placed[s] {
                    pred_count[s] = pred_count[s].saturating_sub(1);
                }
            }
        }
        track += 1;
    }

    let trunks = pieces
        .iter()
        .enumerate()
        .map(|(i, p)| PlacedTrunk {
            segment: p.segment,
            span: p.span,
            track: track_of[i],
        })
        .collect();
    ChannelResult {
        trunks,
        track_count: track,
        doglegs,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Segment;
    use maestro_geom::Lambda;
    use maestro_netlist::NetId;

    fn seg(net: u32, lo: i64, hi: i64, tops: &[i64], bottoms: &[i64]) -> Segment {
        Segment {
            net: NetId::new(net),
            span: Interval::new(Lambda::new(lo), Lambda::new(hi)),
            top_columns: tops.iter().map(|&c| Lambda::new(c)).collect(),
            bottom_columns: bottoms.iter().map(|&c| Lambda::new(c)).collect(),
        }
    }

    #[test]
    fn empty_channel_needs_no_tracks() {
        let r = route_channel(&ChannelProblem::default());
        assert_eq!(r.track_count, 0);
        assert!(r.trunks.is_empty());
    }

    #[test]
    fn disjoint_segments_share_one_track() {
        let p = ChannelProblem {
            segments: vec![
                seg(0, 0, 5, &[0], &[5]),
                seg(1, 10, 15, &[10], &[15]),
                seg(2, 20, 25, &[20], &[25]),
            ],
        };
        let r = route_channel(&p);
        assert_eq!(r.track_count, 1);
    }

    #[test]
    fn overlapping_segments_get_distinct_tracks() {
        let p = ChannelProblem {
            segments: vec![seg(0, 0, 10, &[0], &[]), seg(1, 5, 15, &[], &[15])],
        };
        let r = route_channel(&p);
        assert_eq!(r.track_count, 2);
        assert_ne!(r.trunks[0].track, r.trunks[1].track);
    }

    #[test]
    fn vertical_constraint_orders_tracks() {
        // Net 0 descends at column 7; net 1 rises at column 7:
        // net 0's trunk must be above net 1's.
        let p = ChannelProblem {
            segments: vec![seg(0, 0, 7, &[7], &[]), seg(1, 7, 15, &[], &[7])],
        };
        let r = route_channel(&p);
        let t0 = r.trunks.iter().find(|t| t.segment == 0).unwrap().track;
        let t1 = r.trunks.iter().find(|t| t.segment == 1).unwrap().track;
        assert!(t0 < t1, "top-shore net must be above: {t0} vs {t1}");
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn constraint_cycle_broken_by_dogleg() {
        // Classic 2-net cycle: net 0 has top pin at 2 and bottom pin at 8;
        // net 1 has bottom pin at 2 and top pin at 8. Without doglegs the
        // VCG is cyclic (0→1 at column 2, 1→0 at column 8).
        let p = ChannelProblem {
            segments: vec![seg(0, 0, 10, &[2], &[8, 5]), seg(1, 0, 10, &[8], &[2])],
        };
        let r = route_channel(&p);
        assert!(r.doglegs >= 1, "cycle requires a dogleg");
        assert_eq!(r.violations, 0);
        // All pieces placed.
        assert!(r.trunks.iter().all(|t| t.track != u32::MAX));
    }

    #[test]
    fn unbreakable_cycle_recorded_as_violation() {
        // Two 2-pin nets with crossing constraints and no internal pin to
        // split at.
        let p = ChannelProblem {
            segments: vec![seg(0, 2, 8, &[2], &[8]), seg(1, 2, 8, &[8], &[2])],
        };
        let r = route_channel(&p);
        assert!(r.violations >= 1);
        assert_eq!(r.track_count, 2);
    }

    #[test]
    fn track_count_at_least_density() {
        let p = ChannelProblem {
            segments: vec![
                seg(0, 0, 20, &[1], &[19]),
                seg(1, 5, 25, &[6], &[24]),
                seg(2, 10, 30, &[11], &[29]),
            ],
        };
        let r = route_channel(&p);
        assert!(r.track_count >= p.density());
    }

    #[test]
    fn trunks_on_same_track_never_strictly_overlap() {
        let p = ChannelProblem {
            segments: vec![
                seg(0, 0, 10, &[0], &[]),
                seg(1, 11, 20, &[12], &[]),
                seg(2, 5, 16, &[], &[6]),
                seg(3, 21, 30, &[22], &[]),
            ],
        };
        let r = route_channel(&p);
        for a in &r.trunks {
            for b in &r.trunks {
                if a.segment != b.segment && a.track == b.track {
                    assert!(
                        !a.span.overlaps_strictly(b.span),
                        "{a:?} and {b:?} share a track but overlap"
                    );
                }
            }
        }
    }
}
