//! Zone representation of a channel-routing problem.
//!
//! Classic channel-routing analysis (Yoshimura & Kuh) partitions the
//! channel into **zones**: maximal column ranges over which the set of
//! live nets is a maximal clique of the horizontal-constraint (interval
//! overlap) graph. Zones drive merging heuristics in advanced routers;
//! here they provide an independently computed lower bound
//! (`max |zone|` = channel density) that the test-suite checks the
//! left-edge router against, and a compact textual channel summary.

use maestro_geom::{Interval, Lambda};
use maestro_netlist::NetId;
use serde::{Deserialize, Serialize};

use crate::channel::ChannelProblem;

/// One zone: a column range plus the nets live across it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    /// Column range of the zone.
    pub span: Interval,
    /// Nets whose segments are live in the zone, in segment order.
    pub nets: Vec<NetId>,
}

impl Zone {
    /// Number of live nets (the clique size).
    pub fn size(&self) -> usize {
        self.nets.len()
    }
}

/// Computes the zone decomposition of a channel.
///
/// Sweeping columns left to right, the live-net set changes at segment
/// endpoints; a zone is emitted for every maximal live set (one not
/// contained in the next). The maximum zone size equals
/// [`ChannelProblem::density`].
pub fn zones(problem: &ChannelProblem) -> Vec<Zone> {
    if problem.segments.is_empty() {
        return Vec::new();
    }
    // Channels are small, so the obviously-correct formulation wins:
    // scan the distinct endpoint columns, compute each column's live set,
    // and merge runs of comparable (subset/superset) sets into zones —
    // emitting whenever the live set becomes incomparable with the
    // running maximal set.
    let mut out: Vec<Zone> = Vec::new();
    let mut columns: Vec<i64> = problem
        .segments
        .iter()
        .flat_map(|s| [s.span.lo().get(), s.span.hi().get()])
        .collect();
    columns.sort_unstable();
    columns.dedup();
    let live_at = |col: i64| -> Vec<usize> {
        problem
            .segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.span.lo().get() <= col && col <= s.span.hi().get())
            .map(|(i, _)| i)
            .collect()
    };
    let mut candidate: Option<(i64, i64, Vec<usize>)> = None;
    for &col in &columns {
        let live = live_at(col);
        match &mut candidate {
            None => candidate = Some((col, col, live)),
            Some((start, end, set)) => {
                if live.iter().all(|s| set.contains(s)) {
                    // Subset: zone continues (set stays the maximal one).
                    *end = col;
                } else if set.iter().all(|s| live.contains(s)) {
                    // Superset: grow the candidate set.
                    *set = live;
                    *end = col;
                } else {
                    // Incomparable: the candidate was maximal — emit it.
                    out.push(Zone {
                        span: Interval::new(Lambda::new(*start), Lambda::new(*end)),
                        nets: set.iter().map(|&s| problem.segments[s].net).collect(),
                    });
                    candidate = Some((col, col, live));
                }
            }
        }
    }
    if let Some((start, end, set)) = candidate {
        out.push(Zone {
            span: Interval::new(Lambda::new(start), Lambda::new(end)),
            nets: set.iter().map(|&s| problem.segments[s].net).collect(),
        });
    }
    out
}

/// The maximum zone size — equal to the channel density.
pub fn max_zone_size(problem: &ChannelProblem) -> u32 {
    zones(problem)
        .iter()
        .map(|z| z.size() as u32)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Segment;

    fn seg(net: u32, lo: i64, hi: i64) -> Segment {
        Segment {
            net: NetId::new(net),
            span: Interval::new(Lambda::new(lo), Lambda::new(hi)),
            top_columns: vec![],
            bottom_columns: vec![],
        }
    }

    #[test]
    fn empty_channel_has_no_zones() {
        assert!(zones(&ChannelProblem::default()).is_empty());
        assert_eq!(max_zone_size(&ChannelProblem::default()), 0);
    }

    #[test]
    fn single_segment_single_zone() {
        let p = ChannelProblem {
            segments: vec![seg(0, 2, 9)],
        };
        let z = zones(&p);
        assert_eq!(z.len(), 1);
        assert_eq!(z[0].size(), 1);
        assert_eq!(z[0].nets, vec![NetId::new(0)]);
    }

    #[test]
    fn classic_staircase_produces_expected_zones() {
        // Deutsch-style staircase: 0:[0,4] 1:[2,8] 2:[6,12] — zones
        // {0,1} and {1,2}.
        let p = ChannelProblem {
            segments: vec![seg(0, 0, 4), seg(1, 2, 8), seg(2, 6, 12)],
        };
        let z = zones(&p);
        assert_eq!(z.len(), 2, "{z:?}");
        assert_eq!(z[0].nets, vec![NetId::new(0), NetId::new(1)]);
        assert_eq!(z[1].nets, vec![NetId::new(1), NetId::new(2)]);
        assert_eq!(max_zone_size(&p), 2);
    }

    #[test]
    fn max_zone_size_equals_density() {
        let cases = [
            vec![seg(0, 0, 10), seg(1, 5, 15), seg(2, 8, 9), seg(3, 20, 30)],
            vec![seg(0, 0, 3), seg(1, 4, 7), seg(2, 8, 11)],
            vec![seg(0, 0, 30), seg(1, 1, 29), seg(2, 2, 28), seg(3, 3, 27)],
        ];
        for segments in cases {
            let p = ChannelProblem { segments };
            assert_eq!(max_zone_size(&p), p.density(), "{p:?}");
        }
    }

    #[test]
    fn zones_on_real_channels_bound_the_router() {
        use crate::channel::build_channels;
        use crate::router::route_channel;
        use maestro_place::{place, AnnealSchedule, PlaceParams};

        let module = maestro_netlist::generate::ripple_adder(3);
        let placed = place(
            &module,
            &maestro_tech::builtin::nmos25(),
            &PlaceParams {
                rows: 3,
                schedule: AnnealSchedule::quick(),
                ..PlaceParams::default()
            },
        )
        .expect("places");
        for p in build_channels(&placed) {
            let r = route_channel(&p);
            assert!(max_zone_size(&p) <= r.track_count);
            assert_eq!(max_zone_size(&p), p.density());
        }
    }
}
