//! Channel-routing problems extracted from a placed module.
//!
//! A module with `n` rows has `n + 1` horizontal channels: channel `c`
//! lies above row `c` (so channel `n` is below the last row). Each net
//! contributes, per channel it must cross or connect in, one horizontal
//! **segment** — an interval spanning the net's access columns on the
//! channel's two shores — plus the sets of columns where it descends from
//! the top shore or rises from the bottom shore.

use maestro_geom::{Interval, Lambda};
use maestro_netlist::NetId;
use maestro_place::PlacedModule;
use serde::{Deserialize, Serialize};

/// One net's demand inside one channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The net this segment belongs to.
    pub net: NetId,
    /// Horizontal span the net's trunk must cover in this channel.
    pub span: Interval,
    /// Columns where the net connects to the channel's top shore (bottom
    /// edge of the row above).
    pub top_columns: Vec<Lambda>,
    /// Columns where the net connects to the channel's bottom shore (top
    /// edge of the row below).
    pub bottom_columns: Vec<Lambda>,
}

/// One channel's routing problem.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChannelProblem {
    /// Segments, one per net present in the channel.
    pub segments: Vec<Segment>,
}

impl ChannelProblem {
    /// The classic channel **local density**: the maximum number of
    /// segments whose spans strictly overlap any single column. This is a
    /// lower bound on the routable track count.
    pub fn density(&self) -> u32 {
        let mut events: Vec<(i64, i32)> = Vec::with_capacity(self.segments.len() * 2);
        for s in &self.segments {
            // Closed intervals: a point interval still occupies its column.
            events.push((s.span.lo().get(), 1));
            events.push((s.span.hi().get() + 1, -1));
        }
        events.sort_unstable();
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, delta) in events {
            cur += delta;
            max = max.max(cur);
        }
        max.max(0) as u32
    }

    /// `true` if the channel has no traffic.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// Builds the `rows + 1` channel problems for a placed module.
///
/// Per net (whose touched rows are contiguous after feed-through
/// insertion):
///
/// * between each pair of adjacent touched rows `r, r+1`, the net needs a
///   segment in channel `r + 1` connecting its row-`r` access columns
///   (top shore) to its row-`r+1` access columns (bottom shore);
/// * a net confined to a single row with ≥ 2 pins routes in the channel
///   *above* that row, with all pins on the bottom shore;
/// * an **external** net additionally exits through the nearest horizontal
///   edge channel (0 or `rows`) at its closest access column.
pub fn build_channels(placed: &PlacedModule) -> Vec<ChannelProblem> {
    let rows = placed.rows().len();
    let mut channels = vec![ChannelProblem::default(); rows + 1];

    for topo in placed.topologies() {
        // Access points per row: pins and feed-through crossings.
        let mut by_row: Vec<Vec<Lambda>> = vec![Vec::new(); rows];
        for &(r, x) in &topo.pins {
            by_row[r as usize].push(x);
        }
        for &(r, x) in &topo.feedthroughs {
            by_row[r as usize].push(x);
        }
        let touched: Vec<usize> = (0..rows).filter(|&r| !by_row[r].is_empty()).collect();
        if touched.is_empty() {
            continue;
        }
        let lo = touched[0];
        let hi = *touched.last().expect("non-empty");

        if touched.len() == 1 && by_row[lo].len() >= 2 {
            // Intra-row net: channel above the row, pins on the bottom shore.
            let xs = &by_row[lo];
            let span = xs
                .iter()
                .skip(1)
                .fold(Interval::point(xs[0]), |iv, &x| iv.expanded_to(x));
            channels[lo].segments.push(Segment {
                net: topo.net,
                span,
                top_columns: Vec::new(),
                bottom_columns: xs.clone(),
            });
        } else {
            // Inter-row net: a segment per channel between adjacent
            // touched rows (the span is contiguous after feed-through
            // insertion, so adjacent touched rows differ by 1).
            for r in lo..hi {
                let upper = &by_row[r];
                let lower = &by_row[r + 1];
                if upper.is_empty() || lower.is_empty() {
                    // Can only happen if feed-through insertion was
                    // skipped; fall back to spanning the whole gap.
                    continue;
                }
                let all: Vec<Lambda> = upper.iter().chain(lower).copied().collect();
                let span = all
                    .iter()
                    .skip(1)
                    .fold(Interval::point(all[0]), |iv, &x| iv.expanded_to(x));
                channels[r + 1].segments.push(Segment {
                    net: topo.net,
                    span,
                    top_columns: upper.clone(),
                    bottom_columns: lower.clone(),
                });
            }
        }

        if topo.external {
            // Exit via the nearest horizontal edge.
            let (edge_channel, edge_row) = if lo <= rows - 1 - hi {
                (0usize, lo)
            } else {
                (rows, hi)
            };
            let x = by_row[edge_row][0];
            let (top_columns, bottom_columns) = if edge_channel == 0 {
                (Vec::new(), vec![x])
            } else {
                (vec![x], Vec::new())
            };
            channels[edge_channel].segments.push(Segment {
                net: topo.net,
                span: Interval::point(x),
                top_columns,
                bottom_columns,
            });
        }
    }
    channels
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_netlist::generate;
    use maestro_place::{place, AnnealSchedule, PlaceParams};
    use maestro_tech::builtin;

    fn placed(rows: u32) -> PlacedModule {
        place(
            &generate::ripple_adder(3),
            &builtin::nmos25(),
            &PlaceParams {
                rows,
                schedule: AnnealSchedule::quick(),
                ..PlaceParams::default()
            },
        )
        .expect("places")
    }

    #[test]
    fn channel_count_is_rows_plus_one() {
        let p = placed(3);
        let channels = build_channels(&p);
        assert_eq!(channels.len(), 4);
    }

    #[test]
    fn density_lower_bounds_segment_count() {
        let p = placed(2);
        for ch in build_channels(&p) {
            assert!(ch.density() as usize <= ch.segments.len());
        }
    }

    #[test]
    fn density_of_disjoint_segments_is_one() {
        let seg = |lo: i64, hi: i64| Segment {
            net: NetId::new(0),
            span: Interval::new(Lambda::new(lo), Lambda::new(hi)),
            top_columns: vec![],
            bottom_columns: vec![],
        };
        let ch = ChannelProblem {
            segments: vec![seg(0, 5), seg(10, 15), seg(20, 22)],
        };
        assert_eq!(ch.density(), 1);
        let overlapping = ChannelProblem {
            segments: vec![seg(0, 10), seg(5, 15), seg(8, 9)],
        };
        assert_eq!(overlapping.density(), 3);
    }

    #[test]
    fn empty_channel_density_is_zero() {
        assert_eq!(ChannelProblem::default().density(), 0);
        assert!(ChannelProblem::default().is_empty());
    }

    #[test]
    fn inter_row_nets_produce_segments_in_between_channels() {
        let p = placed(3);
        let channels = build_channels(&p);
        // Middle channels (1, 2) must carry traffic for a connected module.
        assert!(!channels[1].is_empty() || !channels[2].is_empty());
    }

    #[test]
    fn segments_span_their_columns() {
        let p = placed(2);
        for ch in build_channels(&p) {
            for s in &ch.segments {
                for &c in s.top_columns.iter().chain(&s.bottom_columns) {
                    assert!(s.span.contains(c), "column {c} outside span {}", s.span);
                }
            }
        }
    }

    #[test]
    fn external_nets_reach_an_edge_channel() {
        let p = placed(2);
        let channels = build_channels(&p);
        let externals = p.topologies().iter().filter(|t| t.external).count();
        let edge_segments = channels[0].segments.len() + channels[2].segments.len();
        assert!(
            edge_segments >= externals,
            "{edge_segments} edge segments for {externals} external nets"
        );
    }
}
