//! `maestro` — a from-scratch Rust reproduction of Chen & Bushnell,
//! *"A Module Area Estimator for VLSI Layout"*, DAC 1988.
//!
//! This facade re-exports the whole workspace under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`geom`] | `maestro-geom` | λ-unit geometry, shape curves, design rules |
//! | [`tech`] | `maestro-tech` | process databases (Mead–Conway nMOS, generic CMOS) |
//! | [`netlist`] | `maestro-netlist` | schematic graph, `.mnl`/SPICE parsers, generators, statistics |
//! | [`estimator`] | `maestro-estimator` | **the paper's contribution**: SC + FC area/aspect estimation |
//! | [`place`] | `maestro-place` | SA row placement (TimberWolf stand-in) |
//! | [`route`] | `maestro-route` | channel routing + layout assembly (TimberWolf stand-in) |
//! | [`fullcustom`] | `maestro-fullcustom` | transistor-level layout synthesis (manual-layout stand-in) |
//! | [`floorplan`] | `maestro-floorplan` | slicing floorplanner consuming the estimates |
//! | [`trace`] | `maestro-trace` | stage-level observability: spans, counters, perf reports |
//!
//! The facade also hosts the front-end layer itself: [`ops`] renders the
//! command outputs shared by the CLI and the daemon, and [`serve`] is the
//! long-lived JSON-lines estimation service behind `maestro-cli serve`.
//!
//! # Quick start
//!
//! ```
//! use maestro::estimator::pipeline::Pipeline;
//! use maestro::tech::builtin;
//!
//! let pipeline = Pipeline::new(builtin::nmos25());
//! let record = pipeline.run_mnl(
//!     "module buf2;\n\
//!      input a;\n\
//!      output y;\n\
//!      device u1 INV (A=a, Y=t);\n\
//!      device u2 INV (A=t, Y=y);\n\
//!      endmodule\n",
//! )?;
//! let sc = record.standard_cell.expect("gate-level module");
//! assert!(sc.area.get() > 0);
//! # Ok::<(), maestro::netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use maestro_estimator as estimator;
pub use maestro_floorplan as floorplan;
pub use maestro_fullcustom as fullcustom;
pub use maestro_geom as geom;
pub use maestro_netlist as netlist;
pub use maestro_place as place;
pub use maestro_route as route;
pub use maestro_tech as tech;
pub use maestro_trace as trace;

pub mod ops;
pub mod serve;

/// The most commonly used items in one import.
pub mod prelude {
    pub use maestro_estimator::pipeline::Pipeline;
    pub use maestro_estimator::standard_cell::{self, ScParams};
    pub use maestro_estimator::{full_custom, EstimateRecord, FcEstimate, ResultsDb, ScEstimate};
    pub use maestro_floorplan::{floorplan, Block, PlanParams};
    pub use maestro_fullcustom::{synthesize, FcLayout, SynthesisParams};
    pub use maestro_geom::{AspectRatio, Lambda, LambdaArea};
    pub use maestro_netlist::{
        LayoutStyle, Module, ModuleBuilder, NetlistError, NetlistStats, PortDirection, StatsCache,
    };
    pub use maestro_place::{place, PlaceParams, PlacedModule};
    pub use maestro_route::{route, RoutedModule};
    pub use maestro_tech::{builtin, ProcessDb};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_all_crates() {
        use crate::prelude::*;
        let tech = builtin::nmos25();
        let mut b = ModuleBuilder::new("smoke");
        let a = b.port("a", PortDirection::Input);
        let y = b.port("y", PortDirection::Output);
        b.device("u1", "INV", [("A", a), ("Y", y)]);
        let m = b.finish();
        let stats = NetlistStats::resolve(&m, &tech, LayoutStyle::StandardCell).unwrap();
        let est = standard_cell::estimate(&stats, &tech, &ScParams::default());
        assert!(est.area.get() > 0);
    }
}
