//! Shared command implementations behind both front ends.
//!
//! The one-shot CLI and the long-lived `serve` daemon must answer
//! identically — the serve replay suite asserts responses byte-for-byte
//! against one-shot stdout. The only way to keep that contract cheap is
//! to have a single implementation: each function here renders the exact
//! text the CLI prints (every line `\n`-terminated), the CLI `print!`s
//! it and the daemon ships it as a response payload.

use std::borrow::Borrow;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use maestro_estimator::pipeline::{IncrementalRun, Pipeline, StreamSummary};
use maestro_estimator::report::{EstimateRecord, ResultsDb};
use maestro_floorplan::{backend, Block, Floorplan, PlanParams};
use maestro_fullcustom::{synthesize, synthesize_seeded, SynthesisParams, WarmStore};
use maestro_netlist::{
    chip, expand, mnl, spice, LayoutStyle, Module, RevisionManifest, StatsCache,
};
use maestro_place::{place, PlaceParams};
use maestro_route::route;
use maestro_tech::{builtin, io as tech_io, ProcessDb};
use maestro_trace as trace;

/// Resolves a `--tech` spec: the built-in names or a process-DB JSON path.
pub fn load_tech(spec: &str) -> Result<ProcessDb, String> {
    match spec {
        "nmos" => Ok(builtin::nmos25()),
        "cmos" => Ok(builtin::cmos_generic()),
        path => tech_io::load(path).map_err(|e| e.to_string()),
    }
}

/// Loads the modules of one schematic file, dispatching on extension:
/// `.mnl` is the native structural format; `.sp`/`.spice`/`.cir` are
/// SPICE-subset decks.
pub fn load_modules(path: &str) -> Result<Vec<Module>, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "mnl" => mnl::parse_design(&source).map_err(|e| format!("{path}: {e}")),
        "sp" | "spice" | "cir" => spice::parse(&source)
            .map(|m| vec![m])
            .map_err(|e| format!("{path}: {e}")),
        other => Err(format!(
            "{path}: unknown extension `.{other}` (expected .mnl, .sp, .spice or .cir)"
        )),
    }
}

/// Parses one inline `.mnl` source (serve requests carry schematics in
/// the request body as well as by path).
pub fn parse_inline_mnl(source: &str) -> Result<Vec<Module>, String> {
    mnl::parse_design(source).map_err(|e| format!("inline mnl: {e}"))
}

/// Runs the estimate batch and renders the CLI's output for it: the
/// results-database JSON (with `--json`) or the per-module text table.
pub fn estimate_output<M: Borrow<Module>>(
    pipeline: &Pipeline,
    modules: &[M],
    jobs: usize,
    json: bool,
) -> Result<String, String> {
    // `jobs` fans the batch over worker threads; the merged database
    // (and its JSON) is identical to the serial run's.
    let db = pipeline
        .run_all_parallel(modules.iter().map(Borrow::borrow), jobs)
        .map_err(|e| e.to_string())?;
    render_estimate_db(&db, json)
}

/// Renders a results database the way the estimate command prints it:
/// the database JSON (with `--json`) or the per-module text table. The
/// cold and incremental estimate paths both end here, which is what makes
/// their outputs byte-identical.
pub fn render_estimate_db(db: &ResultsDb, json: bool) -> Result<String, String> {
    let _span = trace::span("estimate.render");
    if json {
        return Ok(format!("{}\n", db.to_json().map_err(|e| e.to_string())?));
    }
    let mut out = String::new();
    for rec in db.records() {
        out.push_str(&estimate_record_text(rec));
    }
    Ok(out)
}

/// Runs the estimate batch incrementally against a previous revision
/// manifest and renders the same output as [`estimate_output`]. The
/// returned [`IncrementalRun`] carries the classified diff and the new
/// manifest for the caller to persist for the next round.
pub fn estimate_output_incremental<M: Borrow<Module>>(
    pipeline: &Pipeline,
    prev: &RevisionManifest,
    modules: &[M],
    jobs: usize,
    json: bool,
) -> Result<(String, IncrementalRun), String> {
    let run = pipeline
        .run_all_incremental(prev, modules.iter().map(Borrow::borrow), jobs)
        .map_err(|e| e.to_string())?;
    let text = render_estimate_db(&run.db, json)?;
    Ok((text, run))
}

/// The per-module block of the estimate text table — the one renderer both
/// the in-memory path ([`estimate_output`]) and the streaming path
/// ([`estimate_stream`]) print, so their outputs are byte-identical by
/// construction.
pub fn estimate_record_text(rec: &EstimateRecord) -> String {
    let mut out = String::new();
    writeln!(out, "module `{}`", rec.module_name).expect("string write");
    if let Some(sc) = &rec.standard_cell {
        writeln!(
            out,
            "  standard-cell: {} ({} rows, {} tracks, {} feed-throughs, aspect {})",
            sc.area, sc.rows, sc.tracks, sc.feedthroughs, sc.aspect_ratio
        )
        .expect("string write");
    }
    if let Some(fc) = &rec.full_custom {
        writeln!(
            out,
            "  full-custom  : {} exact / {} average (aspect {})",
            fc.total_exact, fc.total_average, fc.aspect_exact
        )
        .expect("string write");
    }
    out
}

/// Runs the estimate batch through [`Pipeline::run_all_streaming`],
/// writing each module's result to `out` the moment it is ready: the text
/// block of [`estimate_record_text`], or (with `json`) one compact JSON
/// record per line. Peak memory holds one wave of modules, never the
/// whole batch or its results — this is the path that digests
/// million-device generated chips.
pub fn estimate_stream<I, W>(
    pipeline: &Pipeline,
    modules: I,
    jobs: usize,
    json: bool,
    out: &mut W,
) -> Result<StreamSummary, String>
where
    I: IntoIterator<Item = Module>,
    W: std::io::Write,
{
    let summary = pipeline
        .run_all_streaming(modules, jobs, |rec| {
            let rendered = if json {
                let mut line = serde_json::to_string(&rec).map_err(|e| {
                    maestro_netlist::NetlistError::invalid(format!("record serialization: {e}"))
                })?;
                line.push('\n');
                line
            } else {
                estimate_record_text(&rec)
            };
            out.write_all(rendered.as_bytes())
                .map_err(|e| maestro_netlist::NetlistError::invalid(format!("write: {e}")))
        })
        .map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    Ok(summary)
}

/// Renders a generated chip spec's one-line summary.
pub fn generate_summary(spec: &chip::ChipSpec) -> String {
    format!("{spec}\n")
}

/// Streams a generated chip to `path` as a `.mnl` design, one module at a
/// time (a million-device chip never exists in memory as a whole).
pub fn write_generated_mnl(spec: &chip::ChipSpec, path: &str) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    for module in spec.modules() {
        w.write_all(mnl::to_mnl(&module).as_bytes())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    w.flush().map_err(|e| format!("{path}: {e}"))
}

/// Renders the gate-level → nMOS transistor expansion of one module.
pub fn expand_output(module: &Module) -> Result<String, String> {
    let xt = expand::to_nmos_transistors(module).map_err(|e| e.to_string())?;
    Ok(mnl::to_mnl(&xt))
}

/// One laid-out module: the CLI summary line plus the drawing when asked.
pub struct LayoutOutcome {
    /// The `\n`-terminated summary line the CLI prints.
    pub summary: String,
    /// The SVG drawing, rendered only when requested.
    pub svg: Option<String>,
}

/// Lays out one module — place & route for gate-level schematics,
/// full-custom synthesis for transistor-level ones, decided by which
/// technology table resolves — and renders the CLI summary line.
///
/// With `warm`, full-custom synthesis seeds from the store's last winning
/// solution for this module (keyed by name and technology revision) and
/// threads the new winner back in — the serve daemon's ECO path. `None`
/// (the one-shot CLI) is bit-identical to the historical cold behaviour.
pub fn layout_module(
    module: &Module,
    tech: &ProcessDb,
    cache: &StatsCache,
    rows: Option<u32>,
    replicas: usize,
    want_svg: bool,
    warm: Option<&WarmStore>,
) -> Result<LayoutOutcome, String> {
    // Probing via the resolve-once cache means `place` below re-uses
    // this very resolution instead of re-scanning the module.
    if cache
        .resolve(module, tech, LayoutStyle::StandardCell)
        .is_ok()
    {
        let rows = rows.unwrap_or(2);
        let placed = place(
            module,
            tech,
            &PlaceParams {
                rows,
                replicas,
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let routed = route(&placed);
        let svg = want_svg.then(|| maestro_route::assemble::render_svg(&placed, &routed));
        Ok(LayoutOutcome {
            summary: format!(
                "`{}` standard-cell P&R: {} × {} = {} ({} tracks, {} feed-throughs, aspect {})\n",
                module.name(),
                routed.width(),
                routed.height(),
                routed.area(),
                routed.total_tracks(),
                routed.feedthroughs(),
                routed.aspect_ratio()
            ),
            svg,
        })
    } else {
        let params = SynthesisParams {
            replicas,
            ..Default::default()
        };
        let layout = if let Some(store) = warm {
            let revision = tech.revision().id();
            let seed = store.get(module.name(), revision);
            let (layout, winner) = synthesize_seeded(module, tech, &params, seed.as_ref())
                .map_err(|e| e.to_string())?;
            store.put(module.name(), revision, winner);
            layout
        } else {
            synthesize(module, tech, &params).map_err(|e| e.to_string())?
        };
        let svg = want_svg.then(|| layout.to_svg());
        Ok(LayoutOutcome {
            summary: format!(
                "`{}` full-custom synthesis: {} × {} + {} wire = {} (aspect {})\n",
                module.name(),
                layout.width(),
                layout.height(),
                layout.wire_area(),
                layout.area(),
                layout.aspect_ratio()
            ),
            svg,
        })
    }
}

/// Renders the logic-depth line for one module.
pub fn depth_output(module: &Module) -> Result<String, String> {
    let report = maestro_netlist::depth::logic_depth(module).map_err(|e| e.to_string())?;
    let path: Vec<String> = report
        .critical_path
        .iter()
        .map(|&d| module.device(d).name().to_owned())
        .collect();
    Ok(format!(
        "`{}`: logic depth {} ({})\n",
        module.name(),
        report.depth,
        path.join(" -> ")
    ))
}

fn plan_params(pipeline: &Pipeline, aspect: Option<f64>) -> PlanParams {
    let mut params = PlanParams {
        replicas: pipeline.replicas(),
        ..PlanParams::default()
    };
    if let Some(limit) = aspect {
        params = params.with_aspect_limit(limit);
    }
    params
}

/// Resolves the pipeline's named floorplan backend against the registry.
fn plan_backend(
    pipeline: &Pipeline,
    aspect: Option<f64>,
) -> Result<Box<dyn maestro_floorplan::FloorplanBackend>, String> {
    let name = pipeline.floorplan_backend();
    backend::by_name(name, &plan_params(pipeline, aspect))
        .ok_or_else(|| format!("unknown floorplan backend `{name}`"))
}

/// Renders the markdown design report. The floorplan the `## chip
/// floorplan` section (emitted when more than one block shaped) was built
/// from is returned alongside, so the CLI can draw it.
pub fn report_output<M: Borrow<Module>>(
    pipeline: &Pipeline,
    modules: &[M],
    aspect: Option<f64>,
    jobs: usize,
) -> Result<(String, Option<Floorplan>), String> {
    let mut out = String::new();
    writeln!(out, "# maestro design report\n").expect("string write");
    writeln!(out, "process: `{}`\n", pipeline.tech()).expect("string write");
    // The estimation stage fans out over `jobs` workers; records come back
    // in module order and byte-identical to the serial run, so the
    // rendered report is jobs-invariant.
    let db = pipeline
        .run_all_parallel(modules.iter().map(Borrow::borrow), jobs)
        .map_err(|e| e.to_string())?;
    let mut blocks = Vec::new();
    for (module, record) in modules.iter().map(Borrow::borrow).zip(db.records()) {
        writeln!(out, "## module `{}`\n", record.module_name).expect("string write");
        writeln!(
            out,
            "- devices: {}, nets: {}, ports: {}",
            module.device_count(),
            module.net_count(),
            module.port_count()
        )
        .expect("string write");
        if let Ok(depth) = maestro_netlist::depth::logic_depth(module) {
            writeln!(out, "- logic depth: {} stages", depth.depth).expect("string write");
        }
        if let Some(sc) = &record.standard_cell {
            writeln!(
                out,
                "- standard-cell estimate: {} ({} rows, {} tracks, aspect {})",
                sc.area, sc.rows, sc.tracks, sc.aspect_ratio
            )
            .expect("string write");
            if !record.standard_cell_candidates.is_empty() {
                writeln!(out, "- shape candidates:").expect("string write");
                for c in &record.standard_cell_candidates {
                    writeln!(
                        out,
                        "    - {} rows: {} × {} = {} (aspect {})",
                        c.rows, c.width, c.height, c.area, c.aspect_ratio
                    )
                    .expect("string write");
                }
            }
        }
        if let Some(fc) = &record.full_custom {
            writeln!(
                out,
                "- full-custom estimate: {} exact / {} average (aspect {})",
                fc.total_exact, fc.total_average, fc.aspect_exact
            )
            .expect("string write");
        }
        writeln!(out).expect("string write");
        if let Some(block) = Block::from_record(record, 5) {
            blocks.push(block);
        }
    }
    if blocks.len() > 1 {
        let plan = plan_backend(pipeline, aspect)?.plan(&blocks, None).plan;
        writeln!(out, "## chip floorplan\n").expect("string write");
        writeln!(
            out,
            "- chip: {} × {} = {} (utilization {:.0}%)",
            plan.width(),
            plan.height(),
            plan.area(),
            plan.utilization() * 100.0
        )
        .expect("string write");
        for (name, rect) in plan.placements() {
            writeln!(out, "- `{name}` at {rect}").expect("string write");
        }
        Ok((out, Some(plan)))
    } else {
        Ok((out, None))
    }
}

/// Shapes every module into a block, floorplans the chip, and renders the
/// CLI's chip + placements text. The plan is returned alongside so the
/// CLI can draw it.
pub fn floorplan_output<M: Borrow<Module>>(
    pipeline: &Pipeline,
    modules: &[M],
    aspect: Option<f64>,
) -> Result<(String, Floorplan), String> {
    let mut blocks = Vec::new();
    for module in modules {
        let module = module.borrow();
        // One estimator pass per module; the pipeline's resolve-once
        // cache carries the analysis into any later layout commands.
        if let Some(block) = Block::from_module(pipeline, module, 5).map_err(|e| e.to_string())? {
            blocks.push(block);
        }
    }
    let plan = plan_backend(pipeline, aspect)?.plan(&blocks, None).plan;
    let mut out = String::new();
    writeln!(
        out,
        "chip {} × {} = {} (utilization {:.0}%)",
        plan.width(),
        plan.height(),
        plan.area(),
        plan.utilization() * 100.0
    )
    .expect("string write");
    for (name, rect) in plan.placements() {
        writeln!(out, "  {name:<24} {rect}").expect("string write");
    }
    Ok((out, plan))
}
