//! `maestro-cli` — command-line front end for the module area estimator.
//!
//! ```text
//! maestro-cli estimate  <file.mnl|file.sp> [--tech nmos|cmos|<db.json>] [--rows N] [--json]
//! maestro-cli expand    <file.mnl>                 # gate-level -> nMOS transistor .mnl
//! maestro-cli layout    <file.mnl|file.sp> [--tech ...] [--rows N]
//! maestro-cli floorplan <file...> [--tech ...] [--aspect LIMIT] [--backend NAME]
//! maestro-cli shootout  [--label NAME] [--baseline SHOOTOUT.json]
//! maestro-cli serve     [--jobs N] [--socket PATH] # JSON-lines daemon
//! ```
//!
//! File type is chosen by extension: `.mnl` is the native structural
//! format; `.sp`/`.spice`/`.cir` are SPICE-subset decks.
//!
//! Every command renders through [`maestro::ops`], the same layer the
//! `serve` daemon answers from — so a serve response payload is
//! byte-identical to the one-shot command's stdout.

use std::process::ExitCode;

use maestro::estimator::pipeline::Pipeline;
use maestro::estimator::standard_cell::ScParams;
use maestro::netlist::chip;
use maestro::netlist::RevisionManifest;
use maestro::ops;
use maestro::prelude::*;

fn usage() -> &'static str {
    "usage:\n  \
     maestro-cli estimate  <file...> [--tech nmos|cmos|<db.json>] [--rows N] [--jobs N] [--json]\n  \
     \x20                   [--generate FAMILY:DEVICES]... [--stream] [--since prev.mnl]\n  \
     maestro-cli generate  <FAMILY:DEVICES> [--out chip.mnl]\n  \
     \x20                   (families: datapath, memory, tree, mixed; sizes accept k/m suffixes)\n  \
     maestro-cli expand    <file.mnl>\n  \
     maestro-cli depth     <file.mnl>\n  \
     maestro-cli report    <file...> [--tech ...] [--aspect LIMIT] [--jobs N] [--replicas N]\n  \
     \x20                   [--svg out.svg] [--backend annealing|annealing-warm|spanning-tree]\n  \
     maestro-cli layout    <file> [--tech ...] [--rows N] [--replicas N] [--svg out.svg]\n  \
     maestro-cli floorplan <file...> [--tech ...] [--aspect LIMIT] [--replicas N] [--svg out.svg]\n  \
     \x20                   [--backend annealing|annealing-warm|spanning-tree]\n  \
     maestro-cli shootout  [--label NAME] [--out file.json] [--aspect LIMIT] [--quick]\n  \
     \x20                   [--baseline SHOOTOUT.json] [--max-regression PCT]\n  \
     maestro-cli serve     [--jobs N] [--socket PATH]\n  \
     maestro-cli perf-report <trace.jsonl>... [--label NAME] [--out file.json]\n  \
     \x20                     [--baseline BENCH.json] [--max-regression PCT] [--noise-floor-us N]\n\n\
     any command also accepts --trace <file.jsonl> to record a stage-level\n\
     trace of the run (fold it with perf-report)."
}

struct Options {
    files: Vec<String>,
    generate: Vec<String>,
    stream: bool,
    since: Option<String>,
    tech: String,
    rows: Option<u32>,
    aspect: Option<f64>,
    jobs: usize,
    replicas: usize,
    json: bool,
    svg: Option<String>,
    socket: Option<String>,
    trace: Option<String>,
    label: Option<String>,
    out: Option<String>,
    baseline: Option<String>,
    max_regression: Option<f64>,
    noise_floor_us: u64,
    backend: Option<String>,
    quick: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        generate: Vec::new(),
        stream: false,
        since: None,
        tech: "nmos".to_owned(),
        rows: None,
        aspect: None,
        jobs: 1,
        replicas: 1,
        json: false,
        svg: None,
        socket: None,
        trace: None,
        label: None,
        out: None,
        baseline: None,
        max_regression: None,
        noise_floor_us: 25_000,
        backend: None,
        quick: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tech" => {
                opts.tech = it.next().ok_or("--tech needs a value")?.clone();
            }
            "--rows" => {
                let v = it.next().ok_or("--rows needs a value")?;
                opts.rows = Some(v.parse().map_err(|_| format!("bad row count `{v}`"))?);
            }
            "--aspect" => {
                let v = it.next().ok_or("--aspect needs a value")?;
                opts.aspect = Some(v.parse().map_err(|_| format!("bad aspect `{v}`"))?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let jobs: usize = v.parse().map_err(|_| format!("bad job count `{v}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                opts.jobs = jobs;
            }
            "--replicas" => {
                let v = it.next().ok_or("--replicas needs a value")?;
                let replicas: usize = v.parse().map_err(|_| format!("bad replica count `{v}`"))?;
                if replicas == 0 {
                    return Err("--replicas must be at least 1".to_owned());
                }
                opts.replicas = replicas;
            }
            "--generate" => {
                opts.generate.push(
                    it.next()
                        .ok_or("--generate needs a FAMILY:DEVICES spec")?
                        .clone(),
                );
            }
            "--stream" => opts.stream = true,
            "--since" => {
                opts.since = Some(it.next().ok_or("--since needs a schematic path")?.clone());
            }
            "--json" => opts.json = true,
            "--svg" => {
                opts.svg = Some(it.next().ok_or("--svg needs a path")?.clone());
            }
            "--socket" => {
                opts.socket = Some(it.next().ok_or("--socket needs a path")?.clone());
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            "--label" => {
                opts.label = Some(it.next().ok_or("--label needs a value")?.clone());
            }
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a path")?.clone());
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a path")?.clone());
            }
            "--max-regression" => {
                let v = it.next().ok_or("--max-regression needs a percentage")?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| format!("bad regression percentage `{v}`"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err("--max-regression must be a non-negative percentage".to_owned());
                }
                opts.max_regression = Some(pct);
            }
            "--backend" => {
                let v = it.next().ok_or("--backend needs a name")?;
                if !maestro::estimator::request::FLOORPLAN_BACKENDS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown backend `{v}` (expected one of: {})",
                        maestro::estimator::request::FLOORPLAN_BACKENDS.join(", ")
                    ));
                }
                opts.backend = Some(v.clone());
            }
            "--quick" => opts.quick = true,
            "--noise-floor-us" => {
                let v = it.next().ok_or("--noise-floor-us needs a value")?;
                opts.noise_floor_us = v.parse().map_err(|_| format!("bad noise floor `{v}`"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => opts.files.push(file.to_owned()),
        }
    }
    Ok(opts)
}

fn require_files(opts: &Options) -> Result<(), String> {
    if opts.files.is_empty() {
        return Err("no input files".to_owned());
    }
    Ok(())
}

fn parse_chip_specs(specs: &[String]) -> Result<Vec<chip::ChipSpec>, String> {
    specs
        .iter()
        .map(|s| chip::ChipSpec::parse(s).map_err(|e| e.to_string()))
        .collect()
}

/// Device-scale bucket for the streaming throughput metric. Names stay a
/// closed static vocabulary; the metric value is devices per second.
fn stream_scale_metric(devices: usize) -> &'static str {
    match devices {
        0..=9_999 => "estimate.stream.devices_1e3",
        10_000..=99_999 => "estimate.stream.devices_1e4",
        100_000..=999_999 => "estimate.stream.devices_1e5",
        _ => "estimate.stream.devices_1e6",
    }
}

fn cmd_estimate(opts: &Options) -> Result<(), String> {
    if opts.files.is_empty() && opts.generate.is_empty() {
        return Err("no input files (pass files and/or --generate FAMILY:DEVICES)".to_owned());
    }
    let tech = ops::load_tech(&opts.tech)?;
    let mut pipeline = Pipeline::new(tech);
    if let Some(rows) = opts.rows {
        pipeline = pipeline.with_sc_params(ScParams::with_rows(rows));
    }
    let specs = parse_chip_specs(&opts.generate)?;
    let mut modules = Vec::new();
    for file in &opts.files {
        modules.extend(ops::load_modules(file)?);
    }
    if opts.stream && opts.since.is_some() {
        return Err("--since diffs whole revisions in memory; drop --stream".to_owned());
    }
    if opts.stream {
        // Streaming path: generated modules are built lazily and every
        // result leaves through stdout as soon as its wave completes, so
        // peak memory stays bounded by the wave size, not the chip size.
        let started = std::time::Instant::now();
        let stream = modules
            .into_iter()
            .chain(specs.iter().flat_map(|spec| spec.modules()));
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let summary = ops::estimate_stream(&pipeline, stream, opts.jobs, opts.json, &mut out)?;
        let elapsed = started.elapsed().as_secs_f64();
        if maestro::trace::enabled() {
            maestro::trace::counter("estimate.devices", summary.devices as u64);
            if elapsed > 0.0 {
                maestro::trace::metric(
                    stream_scale_metric(summary.devices),
                    summary.devices as f64 / elapsed,
                );
            }
        }
        // stdout carries the per-module records; the tally goes to stderr.
        eprintln!(
            "streamed {} module(s): {} device(s), {} net(s) in {:.2}s",
            summary.modules, summary.devices, summary.nets, elapsed
        );
    } else if let Some(since) = &opts.since {
        for spec in &specs {
            modules.extend(spec.modules());
        }
        // ECO mode: classify this revision against the previous schematic
        // before estimating. The diff tally goes to stderr; stdout stays
        // byte-identical to a plain estimate of the same files.
        let prev_modules = ops::load_modules(since)?;
        let prev = RevisionManifest::from_modules(prev_modules.iter());
        let (text, run) =
            ops::estimate_output_incremental(&pipeline, &prev, &modules, opts.jobs, opts.json)?;
        eprintln!("since {since}: {}", run.diff.summary());
        print!("{text}");
    } else {
        for spec in &specs {
            modules.extend(spec.modules());
        }
        print!(
            "{}",
            ops::estimate_output(&pipeline, &modules, opts.jobs, opts.json)?
        );
    }
    Ok(())
}

fn cmd_generate(opts: &Options) -> Result<(), String> {
    // The spec may arrive positionally or through --generate; either way
    // exactly one chip per invocation.
    let mut specs = opts.files.clone();
    specs.extend(opts.generate.iter().cloned());
    if specs.len() != 1 {
        return Err("generate takes exactly one FAMILY:DEVICES spec".to_owned());
    }
    let spec = chip::ChipSpec::parse(&specs[0]).map_err(|e| e.to_string())?;
    if let Some(path) = &opts.out {
        ops::write_generated_mnl(&spec, path)?;
        println!("wrote {path}");
    }
    print!("{}", ops::generate_summary(&spec));
    Ok(())
}

fn cmd_expand(opts: &Options) -> Result<(), String> {
    require_files(opts)?;
    for file in &opts.files {
        for module in ops::load_modules(file)? {
            print!("{}", ops::expand_output(&module)?);
        }
    }
    Ok(())
}

fn cmd_layout(opts: &Options) -> Result<(), String> {
    require_files(opts)?;
    let tech = ops::load_tech(&opts.tech)?;
    for file in &opts.files {
        for module in ops::load_modules(file)? {
            let outcome = ops::layout_module(
                &module,
                &tech,
                &StatsCache::shared(),
                opts.rows,
                opts.replicas,
                opts.svg.is_some(),
                None,
            )?;
            if let (Some(path), Some(svg)) = (&opts.svg, &outcome.svg) {
                std::fs::write(path, svg).map_err(|e| format!("{path}: {e}"))?;
                println!("wrote {path}");
            }
            print!("{}", outcome.summary);
        }
    }
    Ok(())
}

fn planning_pipeline(opts: &Options) -> Result<Pipeline, String> {
    let tech = ops::load_tech(&opts.tech)?;
    let mut pipeline = Pipeline::new(tech).with_replicas(opts.replicas);
    if let Some(backend) = &opts.backend {
        pipeline = pipeline.with_floorplan_backend(backend.clone());
    }
    Ok(pipeline)
}

fn cmd_report(opts: &Options) -> Result<(), String> {
    require_files(opts)?;
    let pipeline = planning_pipeline(opts)?;
    let mut modules = Vec::new();
    for file in &opts.files {
        modules.extend(ops::load_modules(file)?);
    }
    let (text, plan) = ops::report_output(&pipeline, &modules, opts.aspect, opts.jobs)?;
    print!("{text}");
    if let (Some(path), Some(plan)) = (&opts.svg, &plan) {
        std::fs::write(path, plan.to_svg()).map_err(|e| format!("{path}: {e}"))?;
        println!("\n(floorplan drawing written to {path})");
    }
    Ok(())
}

fn cmd_depth(opts: &Options) -> Result<(), String> {
    require_files(opts)?;
    for file in &opts.files {
        for module in ops::load_modules(file)? {
            print!("{}", ops::depth_output(&module)?);
        }
    }
    Ok(())
}

fn cmd_floorplan(opts: &Options) -> Result<(), String> {
    require_files(opts)?;
    let pipeline = planning_pipeline(opts)?;
    let mut modules = Vec::new();
    for file in &opts.files {
        modules.extend(ops::load_modules(file)?);
    }
    let (text, plan) = ops::floorplan_output(&pipeline, &modules, opts.aspect)?;
    if let Some(path) = &opts.svg {
        std::fs::write(path, plan.to_svg()).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    print!("{text}");
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    if !opts.files.is_empty() {
        return Err("serve takes no input files (sources arrive inside requests)".to_owned());
    }
    let session = maestro::serve::Session::new();
    let summary = match &opts.socket {
        Some(path) => maestro::serve::serve_socket(&session, std::path::Path::new(path), opts.jobs),
        None => {
            // The Stdout handle (not its lock) so the worker pool can
            // share it; the sink serializes writes itself.
            let stdin = std::io::stdin();
            maestro::serve::serve_lines(&session, stdin.lock(), std::io::stdout(), opts.jobs)
        }
    }
    .map_err(|e| e.to_string())?;
    // stdout is the protocol channel; the session tally goes to stderr.
    eprintln!(
        "serve: answered {} request(s), {} error(s)",
        summary.requests, summary.errors
    );
    Ok(())
}

fn cmd_perf_report(opts: &Options) -> Result<(), String> {
    use maestro::trace::report::PerfReport;
    if opts.files.is_empty() {
        return Err("perf-report takes at least one trace file".to_owned());
    }
    let label = opts.label.as_deref().unwrap_or("run");
    // Span IDs restart per traced process, so each file is folded on its
    // own and the reports merged — never the raw event streams.
    let mut report: Option<PerfReport> = None;
    for path in &opts.files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let one = PerfReport::from_trace(&text, label).map_err(|e| format!("{path}: {e}"))?;
        match &mut report {
            Some(acc) => acc.merge(&one),
            None => report = Some(one),
        }
    }
    let report = report.expect("at least one file");
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{label}.json"));
    std::fs::write(&out, report.to_json()).map_err(|e| format!("{out}: {e}"))?;
    print!("{}", report.render());
    println!("wrote {out}");
    // The CI trace-regression gate: against a committed baseline report,
    // any stage whose self time grew beyond the envelope fails the run.
    if let Some(path) = &opts.baseline {
        let max_regression = opts.max_regression.unwrap_or(30.0);
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline = maestro::trace::report::PerfReport::from_json(&text)
            .map_err(|e| format!("{path}: {e}"))?;
        let found = maestro::trace::report::regressions(
            &report,
            &baseline,
            max_regression / 100.0,
            opts.noise_floor_us,
        );
        if !found.is_empty() {
            let mut msg = format!(
                "{} stage(s) regressed more than {max_regression}% against {path} \
                 (noise floor {} µs):",
                found.len(),
                opts.noise_floor_us
            );
            for r in &found {
                msg.push_str(&format!("\n  {r}"));
            }
            return Err(msg);
        }
        println!("no stage regressed more than {max_regression}% against {path}");
    }
    Ok(())
}

fn cmd_shootout(opts: &Options) -> Result<(), String> {
    use maestro::floorplan::shootout::{paper_cases, regressions, ShootoutReport};
    use maestro::floorplan::{backend, PlanParams};
    if !opts.files.is_empty() {
        return Err("shootout takes no input files (it runs the built-in suite)".to_owned());
    }
    let label = opts.label.as_deref().unwrap_or("run");
    if label.trim().is_empty() {
        return Err("--label must not be empty or whitespace".to_owned());
    }
    // `--quick` trades annealing depth for speed — fine for smoke runs,
    // but baselines and CI must compare like with like, so both sides of
    // a gated run have to use the same setting.
    let mut params = if opts.quick {
        PlanParams::quick()
    } else {
        PlanParams::default()
    };
    params.replicas = opts.replicas;
    if let Some(limit) = opts.aspect {
        params = params.with_aspect_limit(limit);
    }
    let cases = paper_cases()?;
    let report = ShootoutReport::run(label, &cases, &backend::registry(&params));
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("SHOOTOUT_{label}.json"));
    std::fs::write(&out, report.to_json()).map_err(|e| format!("{out}: {e}"))?;
    print!("{}", report.render());
    println!("\nwrote {out}");
    // The CI quality gate: against a committed baseline shootout, any
    // backend whose area or wirelength grew beyond the envelope on any
    // case fails the run. Wall time is never gated.
    if let Some(path) = &opts.baseline {
        let max_regression = opts.max_regression.unwrap_or(5.0);
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline = ShootoutReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let found = regressions(&report, &baseline, max_regression / 100.0);
        if !found.is_empty() {
            let mut msg = format!(
                "{} backend result(s) regressed more than {max_regression}% against {path}:",
                found.len()
            );
            for r in &found {
                msg.push_str(&format!("\n  {r}"));
            }
            return Err(msg);
        }
        println!("no backend regressed more than {max_regression}% against {path}");
    }
    Ok(())
}

/// Root span name for a traced command — static so span names stay a
/// closed vocabulary for report consumers.
fn root_span_name(cmd: &str) -> &'static str {
    match cmd {
        "estimate" => "cli.estimate",
        "generate" => "cli.generate",
        "expand" => "cli.expand",
        "depth" => "cli.depth",
        "report" => "cli.report",
        "layout" => "cli.layout",
        "floorplan" => "cli.floorplan",
        "shootout" => "cli.shootout",
        "serve" => "cli.serve",
        _ => "cli.command",
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.trace {
        match maestro::trace::JsonLines::create(path) {
            Ok(sink) => maestro::trace::install(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!("error: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = {
        let _root = maestro::trace::span(root_span_name(cmd));
        match cmd.as_str() {
            "estimate" => cmd_estimate(&opts),
            "generate" => cmd_generate(&opts),
            "expand" => cmd_expand(&opts),
            "depth" => cmd_depth(&opts),
            "report" => cmd_report(&opts),
            "layout" => cmd_layout(&opts),
            "floorplan" => cmd_floorplan(&opts),
            "shootout" => cmd_shootout(&opts),
            "serve" => cmd_serve(&opts),
            "perf-report" => cmd_perf_report(&opts),
            other => Err(format!("unknown command `{other}`\n{}", usage())),
        }
    };
    // Flush the trace file before exiting (drops the sink).
    maestro::trace::uninstall();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
