//! `maestro serve` — the long-lived estimation daemon.
//!
//! Chen's estimator exists to be called over and over inside a
//! floorplanning search loop, yet a one-shot CLI invocation re-pays
//! process setup (tech DB construction, file parsing, cold caches) every
//! time. The daemon amortizes all of it: a [`Session`] keeps the parsed
//! [`ProcessDb`]s, the resolve-once [`StatsCache`] and the [`ProbTable`]
//! warm, and [`serve_lines`] speaks the JSON-lines protocol of
//! [`maestro_estimator::request`] over any reader/writer pair —
//! stdin/stdout from the CLI, a unix socket via [`serve_socket`], or
//! in-memory buffers from the test harness.
//!
//! # Equivalence contract
//!
//! A response payload is exactly the stdout of the matching one-shot CLI
//! command — both front ends call the same [`crate::ops`] renderers, and
//! `tests/serve_replay.rs` holds the bytes equal over the full Table 1+2
//! replay.
//!
//! # Isolation
//!
//! A malformed or failing request yields an error [`Response`], never a
//! dead daemon: the codec rejects bad lines with structured errors, and
//! each dispatch runs under `catch_unwind` so even a panicking handler is
//! reported and survived.
//!
//! # Shutdown
//!
//! A `{"kind":"shutdown"}` request stops intake, drains every in-flight
//! request, and is answered *last* — when its response arrives, all
//! earlier responses have been written. EOF on the input drains the same
//! way, just without the final response.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use maestro_estimator::pipeline::Pipeline;
use maestro_estimator::prob::ProbTable;
use maestro_estimator::request::{Request, RequestCall, Response};
use maestro_estimator::results_cache::ResultsCache;
use maestro_estimator::standard_cell::ScParams;
use maestro_fullcustom::WarmStore;
use maestro_netlist::{mnl, Module, RevisionManifest, StatsCache};
use maestro_tech::ProcessDb;
use maestro_trace as trace;

use crate::ops;

/// The warm state one daemon keeps across requests.
///
/// Technology databases are parsed once per distinct `tech` spec and
/// shared by `Arc` across requests — every request against the same spec
/// sees one tech revision, so the process-wide resolve-once memo treats
/// the whole session as one cache line: exactly one `netlist.resolve`
/// miss per (module, style). Reuses are counted by `serve.tech_reuse`.
///
/// For ECO loops the session additionally keeps a [`ResultsCache`] of
/// full per-module estimates, the previous revision manifest (so an
/// `"incremental":true` estimate can diff against the last batch), and a
/// [`WarmStore`] of winning synthesis seeds for `"warm":true` layouts.
///
/// Request sources are parsed through a per-module memo: canonical
/// multi-module `.mnl` text is split into `module … endmodule` chunks
/// and each chunk's parse is cached by content hash, so re-submitting a
/// chip with one edited module re-parses one module, not the whole file.
/// Any non-canonical or erroneous source falls back to the whole-file
/// parser for byte-identical diagnostics.
pub struct Session {
    techs: Mutex<HashMap<String, Arc<ProcessDb>>>,
    stats: Arc<StatsCache>,
    prob: Arc<ProbTable>,
    results: Arc<ResultsCache>,
    warm: WarmStore,
    prev: Mutex<Option<RevisionManifest>>,
    tech_reuse: AtomicU64,
    parsed: Mutex<HashMap<u128, (Arc<Module>, u64)>>,
    parse_tick: AtomicU64,
    parse_hits: AtomicU64,
    parse_misses: AtomicU64,
}

/// Parsed-module memo bound: ~10× the largest chip batch the bench
/// drives, small enough that eviction never matters in practice.
const PARSE_CACHE_CAPACITY: usize = 8192;

/// 128-bit content hash over a chunk, FNV-style but folding 16-byte
/// words per multiply: the memo hashes the entire request text on every
/// round, so per-byte multiplies would rival the parse it avoids. The
/// length is mixed in up front (so a short text and its zero-padded
/// sibling differ) and only in-session equality matters — the hash never
/// crosses a process boundary.
fn hash128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET ^ (bytes.len() as u128).wrapping_mul(PRIME);
    let mut words = bytes.chunks_exact(16);
    for word in &mut words {
        let word = u128::from_le_bytes(word.try_into().expect("exact chunk"));
        h = (h ^ word).wrapping_mul(PRIME);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 16];
        padded[..tail.len()].copy_from_slice(tail);
        h = (h ^ u128::from_le_bytes(padded)).wrapping_mul(PRIME);
    }
    (h ^ (h >> 64)).wrapping_mul(PRIME)
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A session over the process-wide shared caches — what the CLI's
    /// `serve` subcommand runs.
    pub fn new() -> Session {
        Session::with_caches(StatsCache::shared(), ProbTable::shared())
    }

    /// A session over explicit caches, isolating cache statistics for
    /// tests and benchmarks.
    pub fn with_caches(stats: Arc<StatsCache>, prob: Arc<ProbTable>) -> Session {
        Session {
            techs: Mutex::new(HashMap::new()),
            stats,
            prob,
            results: Arc::new(ResultsCache::new()),
            warm: WarmStore::new(),
            prev: Mutex::new(None),
            tech_reuse: AtomicU64::new(0),
            parsed: Mutex::new(HashMap::new()),
            parse_tick: AtomicU64::new(0),
            parse_hits: AtomicU64::new(0),
            parse_misses: AtomicU64::new(0),
        }
    }

    /// Handles one request, never panicking: codec-level validation has
    /// already happened, handler failures become error responses, and a
    /// panicking handler is caught and reported.
    pub fn handle(&self, request: &Request) -> Response {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(request)));
        match outcome {
            Ok(Ok(payload)) => Response::ok(request.id.clone(), payload),
            Ok(Err(message)) => Response::error(request.id.clone(), message),
            Err(_) => Response::error(
                request.id.clone(),
                format!("internal error: `{}` handler panicked", request.kind_name()),
            ),
        }
    }

    /// The session's resolve-once netlist cache.
    pub fn stats_cache(&self) -> &Arc<StatsCache> {
        &self.stats
    }

    /// The session's full-result memo for incremental estimates.
    pub fn results_cache(&self) -> &Arc<ResultsCache> {
        &self.results
    }

    /// How many requests reused an already-parsed tech DB.
    pub fn tech_reuses(&self) -> u64 {
        self.tech_reuse.load(Ordering::Relaxed)
    }

    /// Parses one `.mnl` source through the per-module memo, or `None`
    /// when the source isn't canonically splittable, any chunk fails to
    /// parse, or chunks duplicate a module name — the caller then runs
    /// the whole-file parser so diagnostics (line numbers, duplicate
    /// errors) stay byte-identical to the uncached path.
    fn try_parse_cached(&self, source: &str) -> Option<Vec<Arc<Module>>> {
        let _span = trace::span("serve.parse");
        let chunks = mnl::split_design(source)?;
        let hashes: Vec<u128> = chunks.iter().map(|c| hash128(c.as_bytes())).collect();
        let mut modules: Vec<Option<Arc<Module>>> = vec![None; chunks.len()];
        let mut missing: Vec<usize> = Vec::new();
        {
            let mut parsed = self.parsed.lock().expect("serve parse memo lock poisoned");
            for (i, hash) in hashes.iter().enumerate() {
                if let Some((module, tick)) = parsed.get_mut(hash) {
                    *tick = self.parse_tick.fetch_add(1, Ordering::Relaxed);
                    modules[i] = Some(Arc::clone(module));
                } else {
                    missing.push(i);
                }
            }
        }
        let hits = (chunks.len() - missing.len()) as u64;
        if hits > 0 {
            self.parse_hits.fetch_add(hits, Ordering::Relaxed);
            trace::counter("serve.parse.hits", hits);
        }
        // Parse the misses outside the lock: the memo stays available to
        // concurrent requests while this one chews its fresh chunks.
        let mut fresh: Vec<(u128, Arc<Module>)> = Vec::with_capacity(missing.len());
        for i in missing {
            let module = Arc::new(mnl::parse(chunks[i]).ok()?);
            fresh.push((hashes[i], Arc::clone(&module)));
            modules[i] = Some(module);
        }
        let modules: Vec<Arc<Module>> = modules
            .into_iter()
            .map(|m| m.expect("all slots filled"))
            .collect();
        for (i, module) in modules.iter().enumerate() {
            if modules[..i].iter().any(|m| m.name() == module.name()) {
                return None; // duplicate name: parse_design owns the error
            }
        }
        if !fresh.is_empty() {
            self.parse_misses
                .fetch_add(fresh.len() as u64, Ordering::Relaxed);
            trace::counter("serve.parse.misses", fresh.len() as u64);
            let mut parsed = self.parsed.lock().expect("serve parse memo lock poisoned");
            for (hash, module) in fresh {
                let tick = self.parse_tick.fetch_add(1, Ordering::Relaxed);
                parsed.insert(hash, (module, tick));
            }
            while parsed.len() > PARSE_CACHE_CAPACITY {
                let victim = parsed
                    .iter()
                    .min_by_key(|(_, (_, tick))| *tick)
                    .map(|(hash, _)| *hash)
                    .expect("non-empty over capacity");
                parsed.remove(&victim);
            }
        }
        Some(modules)
    }

    /// Gathers a request's modules from file paths and inline sources,
    /// routing every `.mnl` text through the parse memo with a
    /// whole-file fallback for canonical error reporting.
    fn gather_modules(
        &self,
        files: &[String],
        mnl_sources: &[String],
    ) -> Result<Vec<Arc<Module>>, String> {
        let mut modules = Vec::new();
        for file in files {
            if std::path::Path::new(file)
                .extension()
                .is_some_and(|e| e == "mnl")
            {
                let source = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                match self.try_parse_cached(&source) {
                    Some(parsed) => modules.extend(parsed),
                    None => modules.extend(
                        mnl::parse_design(&source)
                            .map_err(|e| format!("{file}: {e}"))?
                            .into_iter()
                            .map(Arc::new),
                    ),
                }
            } else {
                modules.extend(ops::load_modules(file)?.into_iter().map(Arc::new));
            }
        }
        for source in mnl_sources {
            match self.try_parse_cached(source) {
                Some(parsed) => modules.extend(parsed),
                None => modules.extend(ops::parse_inline_mnl(source)?.into_iter().map(Arc::new)),
            }
        }
        Ok(modules)
    }

    fn dispatch(&self, request: &Request) -> Result<String, String> {
        match &request.call {
            RequestCall::Shutdown => Ok(String::new()),
            RequestCall::CacheStats => Ok(self.cache_stats_payload()),
            RequestCall::Estimate(req) => {
                let tech = self.tech(&req.tech)?;
                let modules = self.gather_modules(&req.files, &req.mnl)?;
                let mut pipeline = self.pipeline(tech);
                if let Some(rows) = req.rows {
                    pipeline = pipeline.with_sc_params(ScParams::with_rows(rows));
                }
                if !req.incremental {
                    return ops::estimate_output(&pipeline, &modules, req.jobs as usize, req.json);
                }
                // Incremental: diff against the session's previous
                // revision and let the result memo serve unchanged
                // modules; the rendered payload is byte-identical to the
                // cold path by construction.
                let pipeline = pipeline.with_results_cache(Arc::clone(&self.results));
                let prev = self
                    .prev
                    .lock()
                    .expect("serve revision lock poisoned")
                    .clone()
                    .unwrap_or_default();
                let (text, run) = ops::estimate_output_incremental(
                    &pipeline,
                    &prev,
                    &modules,
                    req.jobs as usize,
                    req.json,
                )?;
                *self.prev.lock().expect("serve revision lock poisoned") = Some(run.manifest);
                Ok(text)
            }
            RequestCall::Layout(req) => {
                let tech = self.tech(&req.tech)?;
                let modules = self.gather_modules(&req.files, &req.mnl)?;
                let warm = req.warm.then_some(&self.warm);
                let mut out = String::new();
                for module in &modules {
                    let outcome = ops::layout_module(
                        module,
                        &tech,
                        &self.stats,
                        req.rows,
                        req.replicas as usize,
                        false,
                        warm,
                    )?;
                    out.push_str(&outcome.summary);
                }
                Ok(out)
            }
            RequestCall::Floorplan(req) => {
                let tech = self.tech(&req.tech)?;
                let modules = self.gather_modules(&req.files, &req.mnl)?;
                let pipeline = self
                    .pipeline(tech)
                    .with_replicas(req.replicas as usize)
                    .with_floorplan_backend(req.backend.clone());
                ops::floorplan_output(&pipeline, &modules, req.aspect).map(|(text, _)| text)
            }
            RequestCall::Report(req) => {
                let tech = self.tech(&req.tech)?;
                let modules = self.gather_modules(&req.files, &req.mnl)?;
                let pipeline = self
                    .pipeline(tech)
                    .with_replicas(req.replicas as usize)
                    .with_floorplan_backend(req.backend.clone());
                ops::report_output(&pipeline, &modules, req.aspect, 1).map(|(text, _)| text)
            }
        }
    }

    /// The warm tech DB for a spec, parsed on first use and shared by
    /// `Arc` thereafter — later requests reuse the same instance instead
    /// of deep-cloning the process tables per request.
    fn tech(&self, spec: &str) -> Result<Arc<ProcessDb>, String> {
        let mut techs = self.techs.lock().expect("serve tech map lock poisoned");
        if let Some(tech) = techs.get(spec) {
            self.tech_reuse.fetch_add(1, Ordering::Relaxed);
            trace::counter("serve.tech_reuse", 1);
            return Ok(Arc::clone(tech));
        }
        let tech = Arc::new(ops::load_tech(spec)?);
        techs.insert(spec.to_owned(), Arc::clone(&tech));
        Ok(tech)
    }

    fn pipeline(&self, tech: Arc<ProcessDb>) -> Pipeline {
        Pipeline::from_shared_tech(tech)
            .with_prob_table(Arc::clone(&self.prob))
            .with_stats_cache(Arc::clone(&self.stats))
    }

    /// The `cache-stats` payload: one fixed-order JSON object over the
    /// session's resolve memo, result memo, parse memo, warm-seed store
    /// and tech reuse counter.
    fn cache_stats_payload(&self) -> String {
        let resolve = self.stats.stats();
        let results = self.results.stats();
        let parse_entries = self
            .parsed
            .lock()
            .expect("serve parse memo lock poisoned")
            .len();
        format!(
            concat!(
                "{{\"resolve\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}},",
                "\"results\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}},",
                "\"parse\":{{\"hits\":{},\"misses\":{},\"entries\":{}}},",
                "\"warm_seeds\":{},\"tech_reuse\":{}}}\n"
            ),
            resolve.hits,
            resolve.misses,
            resolve.evictions,
            resolve.entries,
            results.hits,
            results.misses,
            results.evictions,
            results.entries,
            self.parse_hits.load(Ordering::Relaxed),
            self.parse_misses.load(Ordering::Relaxed),
            parse_entries,
            self.warm.len(),
            self.tech_reuse.load(Ordering::Relaxed),
        )
    }
}

/// What one serve stream did, for logging and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written (success and error).
    pub requests: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Whether the stream ended on a shutdown request (vs plain EOF).
    pub shutdown: bool,
}

/// Serves the JSON-lines protocol over a reader/writer pair until a
/// shutdown request or EOF, opening a `serve.session` trace span over
/// the whole stream. `jobs > 1` admits that many requests concurrently
/// through a scoped worker pool; responses then come back in completion
/// order (clients correlate by id).
///
/// # Errors
///
/// Only transport I/O errors surface here; request-level failures are
/// answered in-band as error responses.
pub fn serve_lines<R: BufRead, W: Write + Send>(
    session: &Session,
    input: R,
    output: W,
    jobs: usize,
) -> io::Result<ServeSummary> {
    let span = trace::span_with("serve.session", || format!("jobs={jobs}"));
    let parent = span.id();
    serve_stream(session, input, output, jobs, parent)
}

/// One shared-writer response sink with its delivery counters.
struct ResponseSink<W: Write> {
    writer: Mutex<W>,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl<W: Write> ResponseSink<W> {
    fn new(writer: W) -> Self {
        ResponseSink {
            writer: Mutex::new(writer),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Writes one response line and flushes, so a client driving the
    /// daemon interactively sees each answer as it lands.
    fn deliver(&self, response: &Response) -> io::Result<()> {
        let mut writer = self.writer.lock().expect("serve writer lock poisoned");
        writer.write_all(response.to_json_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        drop(writer);
        self.requests.fetch_add(1, Ordering::Relaxed);
        trace::counter("serve.requests", 1);
        if !response.is_ok() {
            self.errors.fetch_add(1, Ordering::Relaxed);
            trace::counter("serve.errors", 1);
        }
        Ok(())
    }

    fn summary(&self, shutdown: bool) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shutdown,
        }
    }
}

fn serve_stream<R: BufRead, W: Write + Send>(
    session: &Session,
    input: R,
    output: W,
    jobs: usize,
    parent: u64,
) -> io::Result<ServeSummary> {
    let sink = ResponseSink::new(output);
    let shutdown_id = if jobs <= 1 {
        read_requests(input, &sink, parent, |request| {
            answer(session, request, &sink, parent)
        })?
    } else {
        pooled(session, input, &sink, jobs, parent)?
    };
    // The shutdown response is written last: every in-flight request has
    // drained by here, so its arrival proves the stream is complete.
    let shutdown = shutdown_id.is_some();
    if let Some(id) = shutdown_id {
        let request = Request {
            id,
            call: RequestCall::Shutdown,
        };
        answer(session, request, &sink, parent)?;
    }
    Ok(sink.summary(shutdown))
}

/// Handles one parsed request under its `serve.request` span and writes
/// the response.
fn answer<W: Write>(
    session: &Session,
    request: Request,
    sink: &ResponseSink<W>,
    parent: u64,
) -> io::Result<()> {
    let _span = trace::span_under("serve.request", parent, || {
        format!("{} {}", request.id, request.kind_name())
    });
    let response = session.handle(&request);
    sink.deliver(&response)
}

/// The intake loop: reads lines, answers codec rejections in-band, hands
/// valid work to `submit`, and stops at EOF or on a shutdown request —
/// returning the shutdown id so the caller answers it after draining.
fn read_requests<R: BufRead, W: Write>(
    input: R,
    sink: &ResponseSink<W>,
    parent: u64,
    mut submit: impl FnMut(Request) -> io::Result<()>,
) -> io::Result<Option<String>> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(err) => {
                let _span = trace::span_under("serve.request", parent, || {
                    format!("{} bad-request", err.id.as_deref().unwrap_or("?"))
                });
                let response = Response::error(err.id.clone().unwrap_or_default(), err.to_string());
                sink.deliver(&response)?;
            }
            Ok(request) => {
                if matches!(request.call, RequestCall::Shutdown) {
                    return Ok(Some(request.id));
                }
                submit(request)?;
            }
        }
    }
    Ok(None)
}

/// The concurrent admission path: `jobs` scoped workers drain a shared
/// queue while the calling thread keeps reading. Dropping the sender at
/// intake end (shutdown or EOF) is the drain barrier — workers exit once
/// the queue is empty, and the scope join guarantees every response is
/// out before the shutdown response is written.
fn pooled<R: BufRead, W: Write + Send>(
    session: &Session,
    input: R,
    sink: &ResponseSink<W>,
    jobs: usize,
    parent: u64,
) -> io::Result<Option<String>> {
    let (tx, rx) = mpsc::channel::<Request>();
    let rx = Mutex::new(rx);
    let worker_error: Mutex<Option<io::Error>> = Mutex::new(None);
    let shutdown_id = std::thread::scope(|scope| {
        for w in 0..jobs {
            let rx = &rx;
            let worker_error = &worker_error;
            scope.spawn(move || {
                trace::set_thread_label(format!("serve-worker-{w}"));
                loop {
                    let next = rx.lock().expect("serve queue lock poisoned").recv();
                    let Ok(request) = next else { break };
                    if let Err(e) = answer(session, request, sink, parent) {
                        *worker_error.lock().expect("serve error slot poisoned") = Some(e);
                        break;
                    }
                }
            });
        }
        let intake = read_requests(input, sink, parent, |request| {
            tx.send(request).expect("serve workers outlive intake");
            Ok(())
        });
        drop(tx); // always: workers must see EOF even when intake failed
        intake
    })?;
    if let Some(e) = worker_error
        .into_inner()
        .expect("serve error slot poisoned")
    {
        return Err(e);
    }
    Ok(shutdown_id)
}

/// Serves the protocol on a unix socket, one handler thread per
/// connection, all sharing one warm [`Session`]. A shutdown request on
/// any connection stops the listener; in-flight connections drain before
/// the call returns. The socket file is created fresh (a stale one is
/// removed) and unlinked on the way out.
///
/// # Errors
///
/// Socket setup/accept errors; per-connection I/O errors only end that
/// connection.
pub fn serve_socket(session: &Session, path: &Path, jobs: usize) -> io::Result<ServeSummary> {
    use std::os::unix::net::UnixListener;

    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    // Nonblocking accept + poll: a blocking accept could never observe
    // the shutdown flag set by a connection handler.
    listener.set_nonblocking(true)?;
    let span = trace::span_with("serve.session", || format!("socket jobs={jobs}"));
    let parent = span.id();
    let stop = AtomicBool::new(false);
    let requests = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let stop = &stop;
                    let requests = &requests;
                    let errors = &errors;
                    scope.spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(clone) => BufReader::new(clone),
                            Err(e) => {
                                eprintln!("serve: connection dropped: {e}");
                                return;
                            }
                        };
                        match serve_stream(session, reader, &stream, jobs, parent) {
                            Ok(summary) => {
                                requests.fetch_add(summary.requests, Ordering::Relaxed);
                                errors.fetch_add(summary.errors, Ordering::Relaxed);
                                if summary.shutdown {
                                    stop.store(true, Ordering::Relaxed);
                                }
                            }
                            Err(e) => eprintln!("serve: connection dropped: {e}"),
                        }
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    eprintln!("serve: accept failed: {e}");
                }
            }
        }
    });
    let _ = std::fs::remove_file(path);
    Ok(ServeSummary {
        requests: requests.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        shutdown: true,
    })
}
