//! Regenerates `assets/table1.mnl`: the paper's Table 1 circuit suite as
//! one multi-module `.mnl` design file, for CLI runs and bench smoke
//! tests.
//!
//! ```sh
//! cargo run -p maestro --example dump_table1 > assets/table1.mnl
//! ```

use maestro::netlist::{library_circuits, mnl};

fn main() {
    for module in library_circuits::table1_suite() {
        print!("{}", mnl::to_mnl(&module));
    }
}
