//! λ design-rule sets.
//!
//! The paper's Table 1 compares against "Full-Custom layout examples for
//! nMOS technology with λ = 2.5 µm using the Mead–Conway design rules".
//! This module captures the handful of Mead–Conway rules the layout
//! substrates need: layer minimum widths and spacings, contact sizes, and
//! the derived minimum-transistor footprint. A representative scalable CMOS
//! rule set is included for the multi-process requirement of the paper's §3.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Lambda, LambdaArea};

/// Mask layers distinguished by the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Active area / diffusion.
    Diffusion,
    /// Polysilicon (transistor gates and short wires).
    Poly,
    /// First-level metal (routing tracks).
    Metal1,
    /// Second-level metal, when the process has one.
    Metal2,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layer::Diffusion => "diffusion",
            Layer::Poly => "poly",
            Layer::Metal1 => "metal1",
            Layer::Metal2 => "metal2",
        };
        f.write_str(s)
    }
}

/// A λ design-rule set: per-layer minimum widths and spacings plus contact
/// geometry, everything in integer λ.
///
/// # Examples
///
/// ```
/// use maestro_geom::design_rules::{DesignRules, Layer};
///
/// let rules = DesignRules::mead_conway_nmos();
/// assert_eq!(rules.min_width(Layer::Metal1).get(), 3);
/// assert_eq!(rules.wire_pitch(Layer::Metal1).get(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignRules {
    name: String,
    diffusion_width: Lambda,
    diffusion_spacing: Lambda,
    poly_width: Lambda,
    poly_spacing: Lambda,
    metal1_width: Lambda,
    metal1_spacing: Lambda,
    metal2: Option<(Lambda, Lambda)>,
    contact_size: Lambda,
    contact_surround: Lambda,
    gate_overhang: Lambda,
    diffusion_gate_extension: Lambda,
}

impl DesignRules {
    /// The classic Mead–Conway nMOS rules (the Table 1 process family):
    /// 2λ diffusion and poly width, 3λ diffusion and metal spacing-class
    /// rules, 2λ×2λ contacts with 1λ surround, 2λ gate overhang.
    pub fn mead_conway_nmos() -> Self {
        DesignRules {
            name: "mead-conway-nmos".to_owned(),
            diffusion_width: Lambda::new(2),
            diffusion_spacing: Lambda::new(3),
            poly_width: Lambda::new(2),
            poly_spacing: Lambda::new(2),
            metal1_width: Lambda::new(3),
            metal1_spacing: Lambda::new(3),
            metal2: None,
            contact_size: Lambda::new(2),
            contact_surround: Lambda::new(1),
            gate_overhang: Lambda::new(2),
            diffusion_gate_extension: Lambda::new(2),
        }
    }

    /// A representative scalable-CMOS (MOSIS-style) rule set with two metal
    /// layers; used to exercise the paper's multi-process requirement.
    pub fn scalable_cmos() -> Self {
        DesignRules {
            name: "scalable-cmos".to_owned(),
            diffusion_width: Lambda::new(3),
            diffusion_spacing: Lambda::new(3),
            poly_width: Lambda::new(2),
            poly_spacing: Lambda::new(2),
            metal1_width: Lambda::new(3),
            metal1_spacing: Lambda::new(3),
            metal2: Some((Lambda::new(3), Lambda::new(4))),
            contact_size: Lambda::new(2),
            contact_surround: Lambda::new(1),
            gate_overhang: Lambda::new(2),
            diffusion_gate_extension: Lambda::new(3),
        }
    }

    /// Rule-set name (stable identifier for serialization).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Minimum drawn width of a layer.
    ///
    /// # Panics
    ///
    /// Panics if the process has no such layer (e.g. `Metal2` on nMOS).
    pub fn min_width(&self, layer: Layer) -> Lambda {
        match layer {
            Layer::Diffusion => self.diffusion_width,
            Layer::Poly => self.poly_width,
            Layer::Metal1 => self.metal1_width,
            Layer::Metal2 => self.metal2.expect("process has no metal2").0,
        }
    }

    /// Minimum same-layer spacing.
    ///
    /// # Panics
    ///
    /// Panics if the process has no such layer.
    pub fn min_spacing(&self, layer: Layer) -> Lambda {
        match layer {
            Layer::Diffusion => self.diffusion_spacing,
            Layer::Poly => self.poly_spacing,
            Layer::Metal1 => self.metal1_spacing,
            Layer::Metal2 => self.metal2.expect("process has no metal2").1,
        }
    }

    /// `true` if the process has a second metal layer.
    pub fn has_metal2(&self) -> bool {
        self.metal2.is_some()
    }

    /// Center-to-center pitch of parallel wires on a layer: width + spacing.
    /// This is the routing-track pitch the estimator charges per track.
    pub fn wire_pitch(&self, layer: Layer) -> Lambda {
        self.min_width(layer) + self.min_spacing(layer)
    }

    /// Contact cut size (square).
    pub fn contact_size(&self) -> Lambda {
        self.contact_size
    }

    /// Required layer surround of a contact cut.
    pub fn contact_surround(&self) -> Lambda {
        self.contact_surround
    }

    /// Full contact footprint side: cut + surround on both sides.
    pub fn contact_footprint(&self) -> Lambda {
        self.contact_size + self.contact_surround * 2
    }

    /// Poly gate overhang past the diffusion edge.
    pub fn gate_overhang(&self) -> Lambda {
        self.gate_overhang
    }

    /// Footprint of a minimum transistor of channel width `w` and length
    /// `l` (both in λ), including gate overhang, source/drain contact
    /// landing pads and diffusion extensions.
    ///
    /// The width axis runs along the channel width; the length axis covers
    /// contact–gate–contact. This is the atom of the full-custom
    /// synthesizer's device tiles.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is below the minimum drawn widths.
    pub fn transistor_footprint(&self, w: Lambda, l: Lambda) -> (Lambda, Lambda) {
        assert!(
            w >= self.diffusion_width,
            "channel width {w} below diffusion minimum {}",
            self.diffusion_width
        );
        assert!(
            l >= self.poly_width,
            "channel length {l} below poly minimum {}",
            self.poly_width
        );
        let across = w.max(self.contact_footprint()) + self.gate_overhang * 2;
        let along = self.contact_footprint() * 2 + self.diffusion_gate_extension * 2 + l;
        (along, across)
    }

    /// Area of the minimum transistor footprint.
    pub fn transistor_area(&self, w: Lambda, l: Lambda) -> LambdaArea {
        let (a, b) = self.transistor_footprint(w, l);
        a * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmos_rule_values() {
        let r = DesignRules::mead_conway_nmos();
        assert_eq!(r.name(), "mead-conway-nmos");
        assert_eq!(r.min_width(Layer::Diffusion), Lambda::new(2));
        assert_eq!(r.min_width(Layer::Poly), Lambda::new(2));
        assert_eq!(r.min_spacing(Layer::Metal1), Lambda::new(3));
        assert!(!r.has_metal2());
        assert_eq!(r.wire_pitch(Layer::Metal1), Lambda::new(6));
        assert_eq!(r.contact_footprint(), Lambda::new(4));
    }

    #[test]
    #[should_panic(expected = "no metal2")]
    fn nmos_has_no_metal2() {
        let _ = DesignRules::mead_conway_nmos().min_width(Layer::Metal2);
    }

    #[test]
    fn cmos_has_metal2() {
        let r = DesignRules::scalable_cmos();
        assert!(r.has_metal2());
        assert_eq!(r.wire_pitch(Layer::Metal2), Lambda::new(7));
    }

    #[test]
    fn transistor_footprint_minimum_device() {
        let r = DesignRules::mead_conway_nmos();
        // Minimum 2λ/2λ device: along = 2*4 + 2*2 + 2 = 14λ,
        // across = max(2, 4) + 2*2 = 8λ.
        let (along, across) = r.transistor_footprint(Lambda::new(2), Lambda::new(2));
        assert_eq!(along, Lambda::new(14));
        assert_eq!(across, Lambda::new(8));
        assert_eq!(
            r.transistor_area(Lambda::new(2), Lambda::new(2)),
            LambdaArea::new(14 * 8)
        );
    }

    #[test]
    fn wider_device_grows_across_axis_only() {
        let r = DesignRules::mead_conway_nmos();
        let (along_min, across_min) = r.transistor_footprint(Lambda::new(2), Lambda::new(2));
        let (along_w, across_w) = r.transistor_footprint(Lambda::new(10), Lambda::new(2));
        assert_eq!(along_w, along_min);
        assert!(across_w > across_min);
        assert_eq!(across_w, Lambda::new(14));
    }

    #[test]
    #[should_panic(expected = "below diffusion minimum")]
    fn subminimum_width_rejected() {
        let _ =
            DesignRules::mead_conway_nmos().transistor_footprint(Lambda::new(1), Lambda::new(2));
    }

    #[test]
    fn layer_display() {
        assert_eq!(Layer::Poly.to_string(), "poly");
        assert_eq!(Layer::Metal1.to_string(), "metal1");
    }
}
