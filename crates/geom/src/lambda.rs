//! Integer λ (lambda) length and λ² area quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A length measured in Mead–Conway λ units.
///
/// λ is the scalable design-rule unit: half the minimum feature size, or in
/// the paper's words "the maximum allowable mask misalignment". All layout
/// dimensions in `maestro` are integer multiples of λ; conversion to physical
/// microns happens only at display time via [`Lambda::to_microns`].
///
/// `Lambda` is a transparent `i64` newtype. Negative values are permitted
/// (they arise as intermediate coordinates), but most consumers expect
/// non-negative lengths and validate at their boundaries.
///
/// # Examples
///
/// ```
/// use maestro_geom::Lambda;
///
/// let w = Lambda::new(7);
/// let h = Lambda::new(3);
/// assert_eq!((w + h).get(), 10);
/// assert_eq!((w * h).get(), 21); // Lambda × Lambda = LambdaArea
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Lambda(i64);

impl Lambda {
    /// The zero length.
    pub const ZERO: Lambda = Lambda(0);
    /// One λ.
    pub const ONE: Lambda = Lambda(1);

    /// Creates a length of `value` λ.
    #[inline]
    pub const fn new(value: i64) -> Self {
        Lambda(value)
    }

    /// Returns the raw λ count.
    #[inline]
    pub const fn get(self) -> i64 {
        self.0
    }

    /// Returns the length as `f64` λ (for probability/expectation math).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Rounds a real-valued λ quantity *up* to the next integer λ.
    ///
    /// The paper's estimator rounds every expectation value "up to the next
    /// higher integer" (after Eq. 3 and Eq. 11); this is the shared helper.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    #[inline]
    pub fn from_f64_ceil(value: f64) -> Self {
        assert!(value.is_finite(), "non-finite lambda value: {value}");
        Lambda(value.ceil() as i64)
    }

    /// Converts to physical microns given the process λ.
    #[inline]
    pub fn to_microns(self, lambda_microns: f64) -> Micron {
        Micron(self.0 as f64 * lambda_microns)
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Self {
        Lambda(self.0.abs())
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Lambda(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Lambda(self.0.max(other.0))
    }

    /// `true` if the length is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl fmt::Display for Lambda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}λ", self.0)
    }
}

impl From<i64> for Lambda {
    fn from(value: i64) -> Self {
        Lambda(value)
    }
}

impl Add for Lambda {
    type Output = Lambda;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Lambda(self.0 + rhs.0)
    }
}

impl AddAssign for Lambda {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Lambda {
    type Output = Lambda;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Lambda(self.0 - rhs.0)
    }
}

impl SubAssign for Lambda {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Neg for Lambda {
    type Output = Lambda;
    #[inline]
    fn neg(self) -> Self {
        Lambda(-self.0)
    }
}

impl Mul<i64> for Lambda {
    type Output = Lambda;
    #[inline]
    fn mul(self, rhs: i64) -> Self {
        Lambda(self.0 * rhs)
    }
}

impl Mul<Lambda> for i64 {
    type Output = Lambda;
    #[inline]
    fn mul(self, rhs: Lambda) -> Lambda {
        Lambda(self * rhs.0)
    }
}

impl MulAssign<i64> for Lambda {
    #[inline]
    fn mul_assign(&mut self, rhs: i64) {
        self.0 *= rhs;
    }
}

impl Div<i64> for Lambda {
    type Output = Lambda;
    #[inline]
    fn div(self, rhs: i64) -> Self {
        Lambda(self.0 / rhs)
    }
}

impl Rem<i64> for Lambda {
    type Output = Lambda;
    #[inline]
    fn rem(self, rhs: i64) -> Self {
        Lambda(self.0 % rhs)
    }
}

/// `Lambda × Lambda = LambdaArea`.
impl Mul for Lambda {
    type Output = LambdaArea;
    #[inline]
    fn mul(self, rhs: Self) -> LambdaArea {
        LambdaArea(self.0 * rhs.0)
    }
}

impl Sum for Lambda {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Lambda::ZERO, Add::add)
    }
}

/// An area measured in λ² units, as reported in the paper's Table 1 and 2.
///
/// # Examples
///
/// ```
/// use maestro_geom::{Lambda, LambdaArea};
///
/// let a = Lambda::new(100) * Lambda::new(50);
/// assert_eq!(a, LambdaArea::new(5000));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct LambdaArea(i64);

impl LambdaArea {
    /// The zero area.
    pub const ZERO: LambdaArea = LambdaArea(0);

    /// Creates an area of `value` λ².
    #[inline]
    pub const fn new(value: i64) -> Self {
        LambdaArea(value)
    }

    /// Returns the raw λ² count.
    #[inline]
    pub const fn get(self) -> i64 {
        self.0
    }

    /// Returns the area as `f64` λ².
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Rounds a real-valued λ² quantity up to the next integer λ².
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    #[inline]
    pub fn from_f64_ceil(value: f64) -> Self {
        assert!(value.is_finite(), "non-finite lambda-area value: {value}");
        LambdaArea(value.ceil() as i64)
    }

    /// The side of the square with this area, rounded up to integer λ.
    ///
    /// Used by both aspect-ratio algorithms in §5 of the paper, which start
    /// from a 1:1 floorplan whose side is `sqrt(area)`.
    #[inline]
    pub fn isqrt_ceil(self) -> Lambda {
        assert!(self.0 >= 0, "negative area has no square side: {}", self.0);
        let mut side = (self.0 as f64).sqrt().floor() as i64;
        while side * side < self.0 {
            side += 1;
        }
        while side > 0 && (side - 1) * (side - 1) >= self.0 {
            side -= 1;
        }
        Lambda(side)
    }

    /// Relative error of `self` against a reference area, as a signed
    /// fraction (`+0.26` means a 26 % overestimate).
    ///
    /// # Panics
    ///
    /// Panics if `reference` is zero.
    #[inline]
    pub fn relative_error(self, reference: LambdaArea) -> f64 {
        assert!(reference.0 != 0, "relative error against zero reference");
        (self.0 - reference.0) as f64 / reference.0 as f64
    }

    /// Converts to physical µm² given the process λ in microns.
    #[inline]
    pub fn to_square_microns(self, lambda_microns: f64) -> f64 {
        self.0 as f64 * lambda_microns * lambda_microns
    }
}

impl fmt::Display for LambdaArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}λ²", self.0)
    }
}

impl Add for LambdaArea {
    type Output = LambdaArea;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        LambdaArea(self.0 + rhs.0)
    }
}

impl AddAssign for LambdaArea {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for LambdaArea {
    type Output = LambdaArea;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        LambdaArea(self.0 - rhs.0)
    }
}

impl SubAssign for LambdaArea {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for LambdaArea {
    type Output = LambdaArea;
    #[inline]
    fn mul(self, rhs: i64) -> Self {
        LambdaArea(self.0 * rhs)
    }
}

impl Div<Lambda> for LambdaArea {
    type Output = Lambda;
    #[inline]
    fn div(self, rhs: Lambda) -> Lambda {
        Lambda(self.0 / rhs.0)
    }
}

impl Sum for LambdaArea {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(LambdaArea::ZERO, Add::add)
    }
}

/// A physical length in microns, produced by [`Lambda::to_microns`].
///
/// Display-only; no arithmetic is provided so that computation cannot
/// silently drift out of λ space.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Micron(pub f64);

impl fmt::Display for Micron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}µm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_arithmetic() {
        let a = Lambda::new(5);
        let b = Lambda::new(3);
        assert_eq!(a + b, Lambda::new(8));
        assert_eq!(a - b, Lambda::new(2));
        assert_eq!(-a, Lambda::new(-5));
        assert_eq!(a * 4, Lambda::new(20));
        assert_eq!(4 * a, Lambda::new(20));
        assert_eq!(Lambda::new(20) / 4, a);
        assert_eq!(Lambda::new(22) % 4, Lambda::new(2));
        assert_eq!(a * b, LambdaArea::new(15));
    }

    #[test]
    fn lambda_assign_ops() {
        let mut a = Lambda::new(5);
        a += Lambda::new(2);
        assert_eq!(a, Lambda::new(7));
        a -= Lambda::new(3);
        assert_eq!(a, Lambda::new(4));
        a *= 3;
        assert_eq!(a, Lambda::new(12));
    }

    #[test]
    fn lambda_min_max_abs() {
        assert_eq!(Lambda::new(-4).abs(), Lambda::new(4));
        assert_eq!(Lambda::new(2).min(Lambda::new(7)), Lambda::new(2));
        assert_eq!(Lambda::new(2).max(Lambda::new(7)), Lambda::new(7));
        assert!(Lambda::new(1).is_positive());
        assert!(!Lambda::ZERO.is_positive());
    }

    #[test]
    fn from_f64_ceil_rounds_up() {
        assert_eq!(Lambda::from_f64_ceil(2.001), Lambda::new(3));
        assert_eq!(Lambda::from_f64_ceil(2.0), Lambda::new(2));
        assert_eq!(LambdaArea::from_f64_ceil(10.5), LambdaArea::new(11));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_f64_ceil_rejects_nan() {
        let _ = Lambda::from_f64_ceil(f64::NAN);
    }

    #[test]
    fn area_sums_and_errors() {
        let total: LambdaArea = [LambdaArea::new(10), LambdaArea::new(32)].into_iter().sum();
        assert_eq!(total, LambdaArea::new(42));
        let err = LambdaArea::new(126).relative_error(LambdaArea::new(100));
        assert!((err - 0.26).abs() < 1e-12);
        let err = LambdaArea::new(83).relative_error(LambdaArea::new(100));
        assert!((err + 0.17).abs() < 1e-12);
    }

    #[test]
    fn isqrt_ceil_exact_and_inexact() {
        assert_eq!(LambdaArea::new(49).isqrt_ceil(), Lambda::new(7));
        assert_eq!(LambdaArea::new(50).isqrt_ceil(), Lambda::new(8));
        assert_eq!(LambdaArea::new(0).isqrt_ceil(), Lambda::ZERO);
        assert_eq!(LambdaArea::new(1).isqrt_ceil(), Lambda::new(1));
        assert_eq!(LambdaArea::new(2).isqrt_ceil(), Lambda::new(2));
    }

    #[test]
    fn micron_conversion() {
        // λ = 2.5 µm, the Table 1 process.
        let m = Lambda::new(10).to_microns(2.5);
        assert!((m.0 - 25.0).abs() < 1e-12);
        let a = LambdaArea::new(4).to_square_microns(2.5);
        assert!((a - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Lambda::new(12).to_string(), "12λ");
        assert_eq!(LambdaArea::new(12).to_string(), "12λ²");
        assert_eq!(Micron(2.5).to_string(), "2.50µm");
    }
}
