//! Closed 1-D intervals in λ, used by the channel router's zone analysis.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Lambda;

/// A closed interval `[lo, hi]` on one axis, in λ.
///
/// The left-edge channel-routing algorithm reasons about horizontal net
/// spans and their overlaps; `Interval` is that span.
///
/// # Examples
///
/// ```
/// use maestro_geom::{Interval, Lambda};
///
/// let a = Interval::new(Lambda::new(0), Lambda::new(10));
/// let b = Interval::new(Lambda::new(5), Lambda::new(15));
/// assert!(a.overlaps(b));
/// assert_eq!(a.union(b).len(), Lambda::new(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    lo: Lambda,
    hi: Lambda,
}

impl Interval {
    /// Creates the interval `[lo, hi]`, normalizing the endpoint order.
    #[inline]
    pub fn new(lo: Lambda, hi: Lambda) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// A degenerate single-point interval.
    #[inline]
    pub fn point(at: Lambda) -> Self {
        Interval { lo: at, hi: at }
    }

    /// Lower endpoint.
    #[inline]
    pub const fn lo(self) -> Lambda {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub const fn hi(self) -> Lambda {
        self.hi
    }

    /// Interval length `hi − lo`.
    #[inline]
    pub fn len(self) -> Lambda {
        self.hi - self.lo
    }

    /// `true` if the interval is a single point.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }

    /// `true` if the closed intervals share at least one point.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// `true` if the *open* interiors overlap — endpoint abutment does not
    /// count. Two nets whose spans merely touch at a column can share a
    /// routing track, so the router uses this strict test.
    #[inline]
    pub fn overlaps_strictly(self, other: Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// `true` if `x` lies within the closed interval.
    #[inline]
    pub fn contains(self, x: Lambda) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Smallest interval covering both operands.
    #[inline]
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Extends the interval to cover `x`.
    #[inline]
    pub fn expanded_to(self, x: Lambda) -> Interval {
        Interval {
            lo: self.lo.min(x),
            hi: self.hi.max(x),
        }
    }

    /// Overlap region, if the closed intervals intersect.
    #[inline]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        if self.overlaps(other) {
            Some(Interval {
                lo: self.lo.max(other.lo),
                hi: self.hi.min(other.hi),
            })
        } else {
            None
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> Interval {
        Interval::new(Lambda::new(lo), Lambda::new(hi))
    }

    #[test]
    fn construction_normalizes_order() {
        assert_eq!(iv(10, 2), iv(2, 10));
        assert_eq!(iv(10, 2).lo(), Lambda::new(2));
        assert_eq!(iv(10, 2).hi(), Lambda::new(10));
    }

    #[test]
    fn point_interval_is_empty() {
        let p = Interval::point(Lambda::new(4));
        assert!(p.is_empty());
        assert_eq!(p.len(), Lambda::ZERO);
        assert!(p.contains(Lambda::new(4)));
        assert!(!p.contains(Lambda::new(5)));
    }

    #[test]
    fn closed_vs_strict_overlap() {
        // Abutting at 10: closed overlap yes, strict no.
        assert!(iv(0, 10).overlaps(iv(10, 20)));
        assert!(!iv(0, 10).overlaps_strictly(iv(10, 20)));
        assert!(iv(0, 10).overlaps_strictly(iv(9, 20)));
        assert!(!iv(0, 10).overlaps(iv(11, 20)));
    }

    #[test]
    fn union_and_intersection() {
        assert_eq!(iv(0, 5).union(iv(3, 9)), iv(0, 9));
        assert_eq!(iv(0, 5).intersection(iv(3, 9)), Some(iv(3, 5)));
        assert_eq!(iv(0, 5).intersection(iv(6, 9)), None);
        assert_eq!(iv(0, 5).expanded_to(Lambda::new(-2)), iv(-2, 5));
        assert_eq!(iv(0, 5).expanded_to(Lambda::new(3)), iv(0, 5));
    }

    #[test]
    fn display() {
        assert_eq!(iv(1, 2).to_string(), "[1λ, 2λ]");
    }
}
