//! Module aspect ratios as reported in the paper's Tables 1 and 2.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Lambda;

/// A width : height aspect ratio.
///
/// The paper reports module shapes as ratios like `1.6` (width ÷ height) and
/// notes that "most manually laid out modules fall in the range from 1:1 to
/// 1:2" — i.e. between 0.5 and 2.0 in this normalized form. The estimator's
/// §5 control criterion accepts a shape when every I/O port fits along one
/// module edge.
///
/// # Examples
///
/// ```
/// use maestro_geom::{AspectRatio, Lambda};
///
/// let ar = AspectRatio::of(Lambda::new(120), Lambda::new(80));
/// assert!((ar.as_f64() - 1.5).abs() < 1e-12);
/// assert!(ar.is_typical());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AspectRatio(f64);

impl AspectRatio {
    /// The square shape 1:1.
    pub const SQUARE: AspectRatio = AspectRatio(1.0);

    /// Creates a ratio from a raw `width / height` value.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not finite and positive.
    pub fn new(ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "aspect ratio must be finite and positive: {ratio}"
        );
        AspectRatio(ratio)
    }

    /// Ratio of a concrete width and height.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive.
    pub fn of(width: Lambda, height: Lambda) -> Self {
        assert!(
            width.is_positive() && height.is_positive(),
            "aspect ratio of degenerate shape: {width} × {height}"
        );
        AspectRatio(width.as_f64() / height.as_f64())
    }

    /// The raw `width / height` value.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// The reciprocal shape (module rotated 90°).
    #[inline]
    pub fn inverted(self) -> AspectRatio {
        AspectRatio(1.0 / self.0)
    }

    /// The ratio normalized to ≥ 1 (long side ÷ short side), useful when
    /// orientation is free.
    #[inline]
    pub fn normalized(self) -> AspectRatio {
        if self.0 >= 1.0 {
            self
        } else {
            self.inverted()
        }
    }

    /// `true` if the normalized ratio falls in the paper's typical
    /// manual-layout range 1:1 … 1:2.
    #[inline]
    pub fn is_typical(self) -> bool {
        self.normalized().0 <= 2.0 + 1e-9
    }

    /// Multiplicative distance to another ratio: `max(a/b, b/a) − 1`.
    ///
    /// Zero when equal; symmetric; insensitive to which module is wider.
    /// Used to score estimated vs. real shapes in the experiment harness.
    #[inline]
    pub fn mismatch(self, other: AspectRatio) -> f64 {
        let q = self.normalized().0 / other.normalized().0;
        if q >= 1.0 {
            q - 1.0
        } else {
            1.0 / q - 1.0
        }
    }
}

impl Default for AspectRatio {
    fn default() -> Self {
        AspectRatio::SQUARE
    }
}

impl fmt::Display for AspectRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_value() {
        assert!((AspectRatio::new(1.6).as_f64() - 1.6).abs() < 1e-12);
        let ar = AspectRatio::of(Lambda::new(10), Lambda::new(40));
        assert!((ar.as_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_ratio_rejected() {
        let _ = AspectRatio::new(0.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_shape_rejected() {
        let _ = AspectRatio::of(Lambda::ZERO, Lambda::new(5));
    }

    #[test]
    fn normalization_and_typical_range() {
        assert!((AspectRatio::new(0.5).normalized().as_f64() - 2.0).abs() < 1e-12);
        assert!(AspectRatio::new(0.5).is_typical());
        assert!(AspectRatio::new(2.0).is_typical());
        assert!(!AspectRatio::new(2.5).is_typical());
        assert!(AspectRatio::SQUARE.is_typical());
    }

    #[test]
    fn mismatch_is_symmetric_and_orientation_free() {
        let a = AspectRatio::new(1.5);
        let b = AspectRatio::new(2.0);
        assert!((a.mismatch(b) - b.mismatch(a)).abs() < 1e-12);
        assert!(a.mismatch(a) < 1e-12);
        // 1.5 wide vs 1/1.5 tall are the same shape rotated.
        assert!(a.mismatch(a.inverted()) < 1e-12);
        assert!((a.mismatch(b) - (2.0 / 1.5 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn default_is_square() {
        assert_eq!(AspectRatio::default(), AspectRatio::SQUARE);
    }

    #[test]
    fn display_two_decimals() {
        assert_eq!(AspectRatio::new(1.625).to_string(), "1.62");
    }
}
