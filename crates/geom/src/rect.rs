//! Axis-aligned rectangles in λ coordinates.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AspectRatio, Interval, Lambda, LambdaArea, Point};

/// An axis-aligned rectangle in the layout plane.
///
/// Stored as its lower-left corner plus a non-negative size, so an empty
/// rectangle (zero width or height) is representable but an inverted one is
/// not.
///
/// # Examples
///
/// ```
/// use maestro_geom::{Lambda, Point, Rect};
///
/// let r = Rect::new(
///     Point::new(Lambda::new(2), Lambda::new(3)),
///     Lambda::new(10),
///     Lambda::new(4),
/// );
/// assert_eq!(r.area().get(), 40);
/// assert!(r.contains(Point::new(Lambda::new(5), Lambda::new(4))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    origin: Point,
    width: Lambda,
    height: Lambda,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn new(origin: Point, width: Lambda, height: Lambda) -> Self {
        assert!(
            width.get() >= 0 && height.get() >= 0,
            "rectangle size must be non-negative: {width} × {height}"
        );
        Rect {
            origin,
            width,
            height,
        }
    }

    /// Creates a rectangle of the given size at the origin.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn from_size(width: Lambda, height: Lambda) -> Self {
        Rect::new(Point::ORIGIN, width, height)
    }

    /// Creates the rectangle spanning two opposite corners (any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        let lo = Point::new(a.x.min(b.x), a.y.min(b.y));
        let hi = Point::new(a.x.max(b.x), a.y.max(b.y));
        Rect {
            origin: lo,
            width: hi.x - lo.x,
            height: hi.y - lo.y,
        }
    }

    /// Lower-left corner.
    #[inline]
    pub const fn origin(self) -> Point {
        self.origin
    }

    /// Horizontal extent.
    #[inline]
    pub const fn width(self) -> Lambda {
        self.width
    }

    /// Vertical extent.
    #[inline]
    pub const fn height(self) -> Lambda {
        self.height
    }

    /// Upper-right corner.
    #[inline]
    pub fn top_right(self) -> Point {
        Point::new(self.origin.x + self.width, self.origin.y + self.height)
    }

    /// Area in λ².
    #[inline]
    pub fn area(self) -> LambdaArea {
        self.width * self.height
    }

    /// Half-perimeter `width + height` — the HPWL contribution of a net
    /// bounding box.
    #[inline]
    pub fn half_perimeter(self) -> Lambda {
        self.width + self.height
    }

    /// Width : height ratio.
    ///
    /// # Panics
    ///
    /// Panics if the height is zero.
    #[inline]
    pub fn aspect_ratio(self) -> AspectRatio {
        AspectRatio::of(self.width, self.height)
    }

    /// `true` if the rectangle has zero area.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.width == Lambda::ZERO || self.height == Lambda::ZERO
    }

    /// Horizontal span as an interval.
    #[inline]
    pub fn x_span(self) -> Interval {
        Interval::new(self.origin.x, self.origin.x + self.width)
    }

    /// Vertical span as an interval.
    #[inline]
    pub fn y_span(self) -> Interval {
        Interval::new(self.origin.y, self.origin.y + self.height)
    }

    /// `true` if `p` lies within the closed rectangle.
    #[inline]
    pub fn contains(self, p: Point) -> bool {
        self.x_span().contains(p.x) && self.y_span().contains(p.y)
    }

    /// `true` if the closed rectangles share at least a point.
    #[inline]
    pub fn intersects(self, other: Rect) -> bool {
        self.x_span().overlaps(other.x_span()) && self.y_span().overlaps(other.y_span())
    }

    /// `true` if the open interiors overlap (abutment does not count) —
    /// the design-rule-violation test for placed cells.
    #[inline]
    pub fn overlaps_strictly(self, other: Rect) -> bool {
        self.x_span().overlaps_strictly(other.x_span())
            && self.y_span().overlaps_strictly(other.y_span())
    }

    /// Smallest rectangle covering both operands (net bounding box).
    #[inline]
    pub fn union(self, other: Rect) -> Rect {
        Rect::from_corners(
            Point::new(
                self.origin.x.min(other.origin.x),
                self.origin.y.min(other.origin.y),
            ),
            Point::new(
                self.top_right().x.max(other.top_right().x),
                self.top_right().y.max(other.top_right().y),
            ),
        )
    }

    /// Smallest rectangle covering `self` and the point `p`.
    #[inline]
    pub fn expanded_to(self, p: Point) -> Rect {
        self.union(Rect::new(p, Lambda::ZERO, Lambda::ZERO))
    }

    /// The rectangle translated by `(dx, dy)`.
    #[inline]
    pub fn translated(self, dx: Lambda, dy: Lambda) -> Rect {
        Rect {
            origin: self.origin.translated(dx, dy),
            ..self
        }
    }

    /// The rectangle grown by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the rectangle.
    pub fn inflated(self, margin: Lambda) -> Rect {
        Rect::new(
            self.origin.translated(-margin, -margin),
            self.width + margin * 2,
            self.height + margin * 2,
        )
    }

    /// Bounding box of a set of points; `None` for an empty set.
    pub fn bounding_box<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut rect = Rect::new(first, Lambda::ZERO, Lambda::ZERO);
        for p in iter {
            rect = rect.expanded_to(p);
        }
        Some(rect)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}×{}", self.origin, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Lambda::new(x), Lambda::new(y))
    }

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::new(pt(x, y), Lambda::new(w), Lambda::new(h))
    }

    #[test]
    fn basic_accessors() {
        let r = rect(2, 3, 10, 4);
        assert_eq!(r.origin(), pt(2, 3));
        assert_eq!(r.top_right(), pt(12, 7));
        assert_eq!(r.area(), LambdaArea::new(40));
        assert_eq!(r.half_perimeter(), Lambda::new(14));
        assert!(!r.is_empty());
        assert!(rect(0, 0, 0, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_size_rejected() {
        let _ = Rect::new(Point::ORIGIN, Lambda::new(-1), Lambda::new(2));
    }

    #[test]
    fn from_corners_any_order() {
        assert_eq!(Rect::from_corners(pt(5, 7), pt(1, 2)), rect(1, 2, 4, 5));
        assert_eq!(Rect::from_corners(pt(1, 2), pt(5, 7)), rect(1, 2, 4, 5));
    }

    #[test]
    fn containment_and_intersection() {
        let r = rect(0, 0, 10, 10);
        assert!(r.contains(pt(0, 0)));
        assert!(r.contains(pt(10, 10)));
        assert!(!r.contains(pt(11, 5)));
        assert!(r.intersects(rect(10, 10, 5, 5))); // corner touch
        assert!(!r.overlaps_strictly(rect(10, 0, 5, 5))); // edge abutment
        assert!(r.overlaps_strictly(rect(9, 9, 5, 5)));
    }

    #[test]
    fn union_and_bounding_box() {
        assert_eq!(rect(0, 0, 2, 2).union(rect(5, 5, 1, 1)), rect(0, 0, 6, 6));
        let bb = Rect::bounding_box([pt(1, 1), pt(4, -2), pt(0, 3)]).expect("non-empty");
        assert_eq!(bb, rect(0, -2, 4, 5));
        assert_eq!(Rect::bounding_box(std::iter::empty()), None);
    }

    #[test]
    fn translate_and_inflate() {
        assert_eq!(
            rect(1, 1, 2, 2).translated(Lambda::new(3), Lambda::new(-1)),
            rect(4, 0, 2, 2)
        );
        assert_eq!(rect(5, 5, 2, 2).inflated(Lambda::new(2)), rect(3, 3, 6, 6));
    }

    #[test]
    fn aspect_ratio_of_rect() {
        let r = rect(0, 0, 30, 10);
        assert!((r.aspect_ratio().as_f64() - 3.0).abs() < 1e-12);
    }
}
