//! Stockmeyer-style shape curves: the width/height trade-off of a module.
//!
//! The paper's future-work section proposes outputting "four or five aspect
//! ratio estimates to allow chip floor planners more flexibility in choosing
//! module shapes". A *shape curve* is the standard representation of that
//! flexibility: a staircase of non-dominated `(width, height)` realizations.
//! The slicing floorplanner combines child curves with the Stockmeyer
//! algorithm to find the minimum-area chip.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Lambda, LambdaArea};

/// One feasible realization of a module: a `(width, height)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShapePoint {
    /// Realized width.
    pub width: Lambda,
    /// Realized height.
    pub height: Lambda,
}

impl ShapePoint {
    /// Creates a shape point.
    pub const fn new(width: Lambda, height: Lambda) -> Self {
        ShapePoint { width, height }
    }

    /// Area of this realization.
    pub fn area(self) -> LambdaArea {
        self.width * self.height
    }

    /// The same shape rotated 90°.
    pub fn rotated(self) -> ShapePoint {
        ShapePoint {
            width: self.height,
            height: self.width,
        }
    }

    /// `true` if `self` is at least as good as `other` in both dimensions
    /// and strictly better in one.
    pub fn dominates(self, other: ShapePoint) -> bool {
        self.width <= other.width
            && self.height <= other.height
            && (self.width < other.width || self.height < other.height)
    }
}

impl fmt::Display for ShapePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}", self.width, self.height)
    }
}

/// A module's shape curve: the Pareto frontier of feasible realizations,
/// stored with width strictly increasing and height strictly decreasing.
///
/// # Examples
///
/// ```
/// use maestro_geom::{Lambda, ShapeCurve, ShapePoint};
///
/// let curve = ShapeCurve::from_points([
///     ShapePoint::new(Lambda::new(4), Lambda::new(9)),
///     ShapePoint::new(Lambda::new(6), Lambda::new(6)),
///     ShapePoint::new(Lambda::new(9), Lambda::new(4)),
///     ShapePoint::new(Lambda::new(10), Lambda::new(6)), // dominated, pruned
/// ]);
/// assert_eq!(curve.len(), 3);
/// assert_eq!(curve.min_area_point().area().get(), 36);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShapeCurve {
    points: Vec<ShapePoint>,
}

impl ShapeCurve {
    /// Builds a curve from arbitrary candidate realizations, pruning
    /// dominated points and sorting by width.
    ///
    /// # Panics
    ///
    /// Panics if no candidate is provided or any candidate has a
    /// non-positive dimension.
    pub fn from_points<I: IntoIterator<Item = ShapePoint>>(candidates: I) -> Self {
        let mut pts: Vec<ShapePoint> = candidates.into_iter().collect();
        assert!(!pts.is_empty(), "shape curve needs at least one point");
        for p in &pts {
            assert!(
                p.width.is_positive() && p.height.is_positive(),
                "degenerate shape point {p}"
            );
        }
        pts.sort();
        pts.dedup();
        // Sweep by increasing width keeping strictly decreasing height.
        let mut frontier: Vec<ShapePoint> = Vec::with_capacity(pts.len());
        for p in pts {
            while let Some(last) = frontier.last() {
                if last.height >= p.height && last.width >= p.width {
                    frontier.pop();
                } else {
                    break;
                }
            }
            if frontier.last().is_none_or(|last| p.height < last.height) {
                frontier.push(p);
            }
        }
        ShapeCurve { points: frontier }
    }

    /// A rigid (hard) module with exactly one realization.
    pub fn hard(width: Lambda, height: Lambda) -> Self {
        ShapeCurve::from_points([ShapePoint::new(width, height)])
    }

    /// A soft module of fixed `area` sampled at `steps` aspect ratios spread
    /// geometrically over `[min_ratio, max_ratio]` (width ÷ height).
    ///
    /// This is how the floorplanner turns an estimator area + aspect-ratio
    /// range into a flexible block.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`, the area is non-positive, or the ratio range
    /// is invalid.
    pub fn soft(area: LambdaArea, min_ratio: f64, max_ratio: f64, steps: usize) -> Self {
        assert!(steps > 0, "soft curve needs at least one step");
        assert!(area.get() > 0, "soft curve of non-positive area {area}");
        assert!(
            min_ratio > 0.0 && max_ratio >= min_ratio,
            "invalid ratio range [{min_ratio}, {max_ratio}]"
        );
        let a = area.as_f64();
        let mut pts = Vec::with_capacity(steps);
        for i in 0..steps {
            let t = if steps == 1 {
                0.5
            } else {
                i as f64 / (steps - 1) as f64
            };
            let ratio = min_ratio * (max_ratio / min_ratio).powf(t);
            // width/height = ratio and width*height = a.
            let width = (a * ratio).sqrt();
            let w = Lambda::from_f64_ceil(width.max(1.0));
            let h = Lambda::from_f64_ceil((a / w.as_f64()).max(1.0));
            pts.push(ShapePoint::new(w, h));
        }
        ShapeCurve::from_points(pts)
    }

    /// The frontier points, width-ascending.
    pub fn points(&self) -> &[ShapePoint] {
        &self.points
    }

    /// Number of non-dominated realizations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the curve is empty (never true for a constructed curve).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The realization with the smallest area.
    ///
    /// # Panics
    ///
    /// Never panics for curves built through the public constructors.
    pub fn min_area_point(&self) -> ShapePoint {
        *self
            .points
            .iter()
            .min_by_key(|p| p.area())
            .expect("shape curve is never empty")
    }

    /// The minimal height at which the module fits within `max_width`,
    /// together with the realizing point, or `None` if nothing fits.
    pub fn min_height_within(&self, max_width: Lambda) -> Option<ShapePoint> {
        self.points
            .iter()
            .copied()
            .filter(|p| p.width <= max_width)
            .min_by_key(|p| p.height)
    }

    /// The curve of the same module rotated 90°.
    pub fn rotated(&self) -> ShapeCurve {
        ShapeCurve::from_points(self.points.iter().map(|p| p.rotated()))
    }

    /// The curve allowing either orientation of the module.
    pub fn with_rotations(&self) -> ShapeCurve {
        ShapeCurve::from_points(
            self.points
                .iter()
                .copied()
                .chain(self.points.iter().map(|p| p.rotated())),
        )
    }

    /// Stockmeyer combination for a **horizontal** cut: children stacked
    /// side by side (widths add, heights max).
    pub fn beside(&self, other: &ShapeCurve) -> ShapeCurve {
        ShapeCurve::from_points(self.points.iter().flat_map(|a| {
            other
                .points
                .iter()
                .map(move |b| ShapePoint::new(a.width + b.width, a.height.max(b.height)))
        }))
    }

    /// Stockmeyer combination for a **vertical** cut: children stacked on
    /// top of each other (heights add, widths max).
    pub fn stacked(&self, other: &ShapeCurve) -> ShapeCurve {
        ShapeCurve::from_points(self.points.iter().flat_map(|a| {
            other
                .points
                .iter()
                .map(move |b| ShapePoint::new(a.width.max(b.width), a.height + b.height))
        }))
    }
}

impl fmt::Display for ShapeCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(w: i64, h: i64) -> ShapePoint {
        ShapePoint::new(Lambda::new(w), Lambda::new(h))
    }

    #[test]
    fn domination() {
        assert!(sp(3, 3).dominates(sp(4, 3)));
        assert!(sp(3, 3).dominates(sp(4, 4)));
        assert!(!sp(3, 3).dominates(sp(3, 3)));
        assert!(!sp(3, 5).dominates(sp(5, 3)));
    }

    #[test]
    fn frontier_prunes_dominated_points() {
        let c = ShapeCurve::from_points([sp(4, 9), sp(6, 6), sp(9, 4), sp(10, 6), sp(6, 7)]);
        assert_eq!(c.points(), &[sp(4, 9), sp(6, 6), sp(9, 4)]);
        assert!(!c.is_empty());
    }

    #[test]
    fn frontier_heights_strictly_decrease() {
        let c = ShapeCurve::from_points([sp(2, 8), sp(3, 8), sp(4, 5), sp(5, 5), sp(8, 2)]);
        let pts = c.points();
        for w in pts.windows(2) {
            assert!(w[0].width < w[1].width);
            assert!(w[0].height > w[1].height);
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_curve_rejected() {
        let _ = ShapeCurve::from_points(std::iter::empty());
    }

    #[test]
    fn hard_curve_single_point() {
        let c = ShapeCurve::hard(Lambda::new(10), Lambda::new(5));
        assert_eq!(c.len(), 1);
        assert_eq!(c.min_area_point(), sp(10, 5));
    }

    #[test]
    fn soft_curve_preserves_area_approximately() {
        let c = ShapeCurve::soft(LambdaArea::new(10_000), 0.5, 2.0, 5);
        assert!(c.len() >= 3, "expected several distinct shapes: {c}");
        for p in c.points() {
            let a = p.area().get();
            assert!(
                (10_000..=10_600).contains(&a),
                "ceil rounding may only grow area slightly: {p} -> {a}"
            );
        }
    }

    #[test]
    fn min_height_within_budget() {
        let c = ShapeCurve::from_points([sp(4, 9), sp(6, 6), sp(9, 4)]);
        assert_eq!(c.min_height_within(Lambda::new(7)), Some(sp(6, 6)));
        assert_eq!(c.min_height_within(Lambda::new(100)), Some(sp(9, 4)));
        assert_eq!(c.min_height_within(Lambda::new(3)), None);
    }

    #[test]
    fn stockmeyer_combinations() {
        let a = ShapeCurve::hard(Lambda::new(4), Lambda::new(2));
        let b = ShapeCurve::hard(Lambda::new(3), Lambda::new(5));
        let beside = a.beside(&b);
        assert_eq!(beside.points(), &[sp(7, 5)]);
        let stacked = a.stacked(&b);
        assert_eq!(stacked.points(), &[sp(4, 7)]);
    }

    #[test]
    fn stockmeyer_flexible_children() {
        let a = ShapeCurve::from_points([sp(2, 6), sp(6, 2)]);
        let b = ShapeCurve::from_points([sp(3, 4), sp(4, 3)]);
        let c = a.beside(&b);
        // Candidates: (5,6) (6,6)✗ (9,4) (10,3); frontier keeps (5,6),(9,4),(10,3).
        assert_eq!(c.points(), &[sp(5, 6), sp(9, 4), sp(10, 3)]);
    }

    #[test]
    fn rotation_round_trip() {
        let c = ShapeCurve::from_points([sp(4, 9), sp(9, 4)]);
        assert_eq!(c.rotated().rotated(), c);
        let wr = c.with_rotations();
        assert_eq!(wr.points(), c.points(), "curve is rotation-symmetric");
        let asym = ShapeCurve::hard(Lambda::new(10), Lambda::new(2));
        assert_eq!(asym.with_rotations().len(), 2);
    }
}
