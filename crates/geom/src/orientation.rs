//! Layout orientations: four rotations with optional mirroring.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Lambda, Point};

/// One of the eight axis-aligned layout orientations.
///
/// Standard-cell placers flip cells about the Y axis to shorten wires and
/// flip alternate rows about X to share supply rails; the full-custom
/// annealer additionally rotates transistors. `R0` is the identity.
///
/// Naming follows the usual EDA convention: `R<degrees>` counter-clockwise
/// rotation, `M` prefix for a mirror about the Y axis applied *before* the
/// rotation.
///
/// # Examples
///
/// ```
/// use maestro_geom::Orientation;
///
/// let o = Orientation::R90;
/// assert!(o.swaps_axes());
/// assert_eq!(o.compose(Orientation::R270), Orientation::R0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
    /// Mirror about Y.
    MY,
    /// Mirror about Y, then rotate 90°.
    MYR90,
    /// Mirror about Y, then rotate 180° (= mirror about X).
    MX,
    /// Mirror about Y, then rotate 270°.
    MXR90,
}

impl Orientation {
    /// All eight orientations, in a fixed order.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MY,
        Orientation::MYR90,
        Orientation::MX,
        Orientation::MXR90,
    ];

    /// The four pure rotations.
    pub const ROTATIONS: [Orientation; 4] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
    ];

    /// `true` if the orientation exchanges width and height.
    #[inline]
    pub const fn swaps_axes(self) -> bool {
        matches!(
            self,
            Orientation::R90 | Orientation::R270 | Orientation::MYR90 | Orientation::MXR90
        )
    }

    /// `true` if the orientation includes a reflection.
    #[inline]
    pub const fn is_mirrored(self) -> bool {
        matches!(
            self,
            Orientation::MY | Orientation::MYR90 | Orientation::MX | Orientation::MXR90
        )
    }

    /// Applies the orientation to a point inside a `w × h` box, keeping the
    /// result in the first quadrant of the (possibly axis-swapped) box.
    ///
    /// This is how pin offsets transform when a cell is placed with a
    /// non-identity orientation.
    pub fn apply(self, p: Point, w: Lambda, h: Lambda) -> Point {
        let (x, y) = (p.x, p.y);
        match self {
            Orientation::R0 => Point::new(x, y),
            Orientation::R90 => Point::new(h - y, x),
            Orientation::R180 => Point::new(w - x, h - y),
            Orientation::R270 => Point::new(y, w - x),
            Orientation::MY => Point::new(w - x, y),
            Orientation::MYR90 => Point::new(h - y, w - x),
            Orientation::MX => Point::new(x, h - y),
            Orientation::MXR90 => Point::new(y, x),
        }
    }

    /// The size of a `w × h` box after this orientation.
    #[inline]
    pub fn apply_size(self, w: Lambda, h: Lambda) -> (Lambda, Lambda) {
        if self.swaps_axes() {
            (h, w)
        } else {
            (w, h)
        }
    }

    /// Group composition: the orientation equivalent to applying `self`
    /// first, then `then`.
    pub fn compose(self, then: Orientation) -> Orientation {
        // Encode as (mirror, rotation quarter-turns): p = m ? (x -> -x) then
        // rotate r. Composition in the dihedral group D4.
        let (m1, r1) = self.decompose();
        let (m2, r2) = then.decompose();
        // then ∘ self: first mirror m1, rotate r1, then mirror m2, rotate r2.
        // Moving m2 left past r1: m2 ∘ rot(r1) = rot(-r1) ∘ m2.
        let (m, r) = if m2 {
            (!m1, (r2 + 4 - r1) % 4)
        } else {
            (m1, (r2 + r1) % 4)
        };
        Orientation::recompose(m, r)
    }

    /// The inverse orientation.
    pub fn inverse(self) -> Orientation {
        let (m, r) = self.decompose();
        if m {
            // Mirrors are involutions in this encoding.
            Orientation::recompose(m, r)
        } else {
            Orientation::recompose(false, (4 - r) % 4)
        }
    }

    fn decompose(self) -> (bool, u8) {
        match self {
            Orientation::R0 => (false, 0),
            Orientation::R90 => (false, 1),
            Orientation::R180 => (false, 2),
            Orientation::R270 => (false, 3),
            Orientation::MY => (true, 0),
            Orientation::MYR90 => (true, 1),
            Orientation::MX => (true, 2),
            Orientation::MXR90 => (true, 3),
        }
    }

    fn recompose(mirror: bool, rot: u8) -> Orientation {
        match (mirror, rot % 4) {
            (false, 0) => Orientation::R0,
            (false, 1) => Orientation::R90,
            (false, 2) => Orientation::R180,
            (false, 3) => Orientation::R270,
            (true, 0) => Orientation::MY,
            (true, 1) => Orientation::MYR90,
            (true, 2) => Orientation::MX,
            (true, 3) => Orientation::MXR90,
            _ => unreachable!(),
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::R90 => "R90",
            Orientation::R180 => "R180",
            Orientation::R270 => "R270",
            Orientation::MY => "MY",
            Orientation::MYR90 => "MYR90",
            Orientation::MX => "MX",
            Orientation::MXR90 => "MXR90",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Lambda::new(x), Lambda::new(y))
    }

    const W: Lambda = Lambda::new(10);
    const H: Lambda = Lambda::new(4);

    #[test]
    fn identity_leaves_points() {
        assert_eq!(Orientation::R0.apply(pt(3, 1), W, H), pt(3, 1));
        assert_eq!(Orientation::R0.apply_size(W, H), (W, H));
    }

    #[test]
    fn rotations_move_corners_correctly() {
        // Lower-left corner of the box under each rotation.
        assert_eq!(Orientation::R90.apply(pt(0, 0), W, H), pt(4, 0));
        assert_eq!(Orientation::R180.apply(pt(0, 0), W, H), pt(10, 4));
        assert_eq!(Orientation::R270.apply(pt(0, 0), W, H), pt(0, 10));
        assert!(Orientation::R90.swaps_axes());
        assert_eq!(Orientation::R90.apply_size(W, H), (H, W));
    }

    #[test]
    fn mirror_about_y_flips_x_only() {
        assert_eq!(Orientation::MY.apply(pt(3, 1), W, H), pt(7, 1));
        assert_eq!(Orientation::MX.apply(pt(3, 1), W, H), pt(3, 3));
        assert!(Orientation::MY.is_mirrored());
        assert!(!Orientation::R180.is_mirrored());
    }

    #[test]
    fn apply_keeps_points_inside_box() {
        for o in Orientation::ALL {
            for p in [pt(0, 0), pt(10, 4), pt(3, 2)] {
                let q = o.apply(p, W, H);
                let (w2, h2) = o.apply_size(W, H);
                assert!(q.x >= Lambda::ZERO && q.x <= w2, "{o}: {p} -> {q}");
                assert!(q.y >= Lambda::ZERO && q.y <= h2, "{o}: {p} -> {q}");
            }
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        // Only square boxes keep dimensions stable across all compositions,
        // which keeps the check simple.
        let s = Lambda::new(6);
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                let c = a.compose(b);
                for p in [pt(1, 2), pt(0, 0), pt(6, 3)] {
                    let seq = b.apply(a.apply(p, s, s), s, s);
                    let direct = c.apply(p, s, s);
                    assert_eq!(seq, direct, "{a} then {b} = {c} at {p}");
                }
            }
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        for o in Orientation::ALL {
            assert_eq!(o.compose(o.inverse()), Orientation::R0, "{o}");
            assert_eq!(o.inverse().compose(o), Orientation::R0, "{o}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Orientation::MYR90.to_string(), "MYR90");
    }
}
