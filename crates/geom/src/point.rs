//! Planar points in λ coordinates.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::Lambda;

/// A point in the layout plane, in λ coordinates.
///
/// The origin is the lower-left corner of the enclosing module; `x` grows to
/// the right and `y` grows upward, matching the paper's convention that
/// standard-cell rows are numbered from the top.
///
/// # Examples
///
/// ```
/// use maestro_geom::{Lambda, Point};
///
/// let p = Point::new(Lambda::new(3), Lambda::new(4));
/// let q = Point::new(Lambda::new(6), Lambda::new(8));
/// assert_eq!(p.manhattan_distance(q), Lambda::new(7));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Lambda,
    /// Vertical coordinate.
    pub y: Lambda,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point {
        x: Lambda::ZERO,
        y: Lambda::ZERO,
    };

    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: Lambda, y: Lambda) -> Self {
        Point { x, y }
    }

    /// The L1 (Manhattan) distance to `other` — the natural wire-length
    /// metric for channel-routed layouts.
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> Lambda {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Translates the point by `(dx, dy)`.
    #[inline]
    pub fn translated(self, dx: Lambda, dy: Lambda) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Lambda::new(x), Lambda::new(y))
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        assert_eq!(pt(0, 0).manhattan_distance(pt(3, -4)), Lambda::new(7));
        assert_eq!(pt(3, -4).manhattan_distance(pt(0, 0)), Lambda::new(7));
        assert_eq!(pt(5, 5).manhattan_distance(pt(5, 5)), Lambda::ZERO);
    }

    #[test]
    fn translation_and_vector_ops() {
        assert_eq!(
            pt(1, 2).translated(Lambda::new(3), Lambda::new(-1)),
            pt(4, 1)
        );
        assert_eq!(pt(1, 2) + pt(3, 4), pt(4, 6));
        assert_eq!(pt(5, 5) - pt(2, 3), pt(3, 2));
    }

    #[test]
    fn display() {
        assert_eq!(pt(1, 2).to_string(), "(1λ, 2λ)");
    }
}
