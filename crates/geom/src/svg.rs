//! A minimal SVG writer for layout diagrams.
//!
//! Every layout-producing crate (place & route, full-custom synthesis,
//! floorplanning) renders its result through this writer so humans can
//! inspect what the numbers describe. Only the handful of SVG elements a
//! layout sketch needs are supported; coordinates are λ, flipped so that
//! the layout's y-up convention renders naturally.

use std::fmt::Write as _;

use crate::{Lambda, Rect};

/// An SVG document under construction, in λ coordinates.
///
/// # Examples
///
/// ```
/// use maestro_geom::{svg::SvgDocument, Lambda, Rect};
///
/// let mut doc = SvgDocument::new(Lambda::new(100), Lambda::new(50));
/// doc.rect(Rect::from_size(Lambda::new(40), Lambda::new(20)), "#88f", Some("cell"));
/// let text = doc.finish();
/// assert!(text.starts_with("<svg") && text.ends_with("</svg>\n"));
/// ```
#[derive(Debug, Clone)]
pub struct SvgDocument {
    width: i64,
    height: i64,
    scale: f64,
    body: String,
}

impl SvgDocument {
    /// Pixels per λ at the default scale.
    pub const DEFAULT_SCALE: f64 = 2.0;

    /// Starts a document covering `width × height` λ.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive.
    pub fn new(width: Lambda, height: Lambda) -> Self {
        assert!(
            width.is_positive() && height.is_positive(),
            "svg canvas must be non-degenerate: {width} × {height}"
        );
        SvgDocument {
            width: width.get(),
            height: height.get(),
            scale: Self::DEFAULT_SCALE,
            body: String::new(),
        }
    }

    /// Overrides the pixel-per-λ scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "bad svg scale {scale}");
        self.scale = scale;
        self
    }

    fn x(&self, v: Lambda) -> f64 {
        v.get() as f64 * self.scale
    }

    /// λ y-up to SVG y-down.
    fn y_top(&self, y: Lambda, h: Lambda) -> f64 {
        (self.height - y.get() - h.get()) as f64 * self.scale
    }

    /// Draws a filled rectangle with an optional centered label.
    pub fn rect(&mut self, r: Rect, fill: &str, label: Option<&str>) {
        let _ = write!(
            self.body,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{fill}" stroke="#333" stroke-width="0.5"/>"##,
            self.x(r.origin().x),
            self.y_top(r.origin().y, r.height()),
            r.width().get() as f64 * self.scale,
            r.height().get() as f64 * self.scale,
        );
        self.body.push('\n');
        if let Some(label) = label {
            let cx = self.x(r.origin().x) + r.width().get() as f64 * self.scale / 2.0;
            let cy =
                self.y_top(r.origin().y, r.height()) + r.height().get() as f64 * self.scale / 2.0;
            let size = (r.height().get() as f64 * self.scale * 0.4)
                .min(r.width().get() as f64 * self.scale / (label.len().max(1) as f64))
                .max(4.0);
            let _ = write!(
                self.body,
                r#"<text x="{cx:.1}" y="{cy:.1}" font-size="{size:.1}" text-anchor="middle" dominant-baseline="middle" font-family="monospace">{}</text>"#,
                escape(label)
            );
            self.body.push('\n');
        }
    }

    /// Draws a horizontal wire segment at λ height `y` spanning
    /// `x1..=x2`.
    pub fn hline(&mut self, x1: Lambda, x2: Lambda, y: Lambda, stroke: &str) {
        let yy = (self.height - y.get()) as f64 * self.scale;
        let _ = write!(
            self.body,
            r#"<line x1="{:.1}" y1="{yy:.1}" x2="{:.1}" y2="{yy:.1}" stroke="{stroke}" stroke-width="1"/>"#,
            self.x(x1),
            self.x(x2),
        );
        self.body.push('\n');
    }

    /// Draws a vertical wire segment at λ column `x` spanning `y1..=y2`.
    pub fn vline(&mut self, x: Lambda, y1: Lambda, y2: Lambda, stroke: &str) {
        let xx = self.x(x);
        let _ = write!(
            self.body,
            r#"<line x1="{xx:.1}" y1="{:.1}" x2="{xx:.1}" y2="{:.1}" stroke="{stroke}" stroke-width="1"/>"#,
            (self.height - y1.get()) as f64 * self.scale,
            (self.height - y2.get()) as f64 * self.scale,
        );
        self.body.push('\n');
    }

    /// Number of elements emitted so far.
    pub fn element_count(&self) -> usize {
        self.body.lines().count()
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n\
             <rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n{}</svg>\n",
            self.width as f64 * self.scale,
            self.height as f64 * self.scale,
            self.width as f64 * self.scale,
            self.height as f64 * self.scale,
            self.body
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    #[test]
    fn document_structure() {
        let mut doc = SvgDocument::new(Lambda::new(100), Lambda::new(60));
        doc.rect(
            Rect::from_size(Lambda::new(10), Lambda::new(10)),
            "#abc",
            Some("m<1>"),
        );
        doc.hline(Lambda::new(0), Lambda::new(50), Lambda::new(30), "#f00");
        doc.vline(Lambda::new(20), Lambda::new(0), Lambda::new(30), "#0f0");
        let text = doc.finish();
        assert!(text.starts_with("<svg"));
        assert!(text.ends_with("</svg>\n"));
        assert_eq!(text.matches("<rect").count(), 2); // background + 1
        assert_eq!(text.matches("<line").count(), 2);
        assert!(text.contains("m&lt;1&gt;"), "labels are escaped");
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut doc = SvgDocument::new(Lambda::new(10), Lambda::new(10));
        // A rect at the λ origin (bottom-left) lands at the SVG bottom.
        doc.rect(
            Rect::new(Point::ORIGIN, Lambda::new(2), Lambda::new(2)),
            "#000",
            None,
        );
        let text = doc.finish();
        // Height 10λ at scale 2 = 20px; a 2λ rect at y=0 renders at
        // svg-y = (10-0-2)*2 = 16.
        assert!(text.contains(r#"y="16.0""#), "{text}");
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_canvas_rejected() {
        let _ = SvgDocument::new(Lambda::ZERO, Lambda::new(10));
    }

    #[test]
    fn element_count_tracks_emissions() {
        let mut doc = SvgDocument::new(Lambda::new(10), Lambda::new(10));
        assert_eq!(doc.element_count(), 0);
        doc.hline(Lambda::new(0), Lambda::new(5), Lambda::new(5), "#000");
        assert_eq!(doc.element_count(), 1);
    }
}
