//! Lambda-based geometry substrate for the `maestro` VLSI area estimator.
//!
//! Chen & Bushnell's DAC 1988 module area estimator works entirely in
//! *lambda* units — the Mead–Conway scalable design-rule unit where `λ` is
//! "the maximum allowable mask misalignment" of the target process. Every
//! downstream crate (technology database, netlist statistics, the estimator
//! itself, the place-and-route baseline and the full-custom synthesizer)
//! measures lengths in [`Lambda`] and areas in [`LambdaArea`].
//!
//! This crate provides:
//!
//! * [`Lambda`] / [`LambdaArea`] — integer newtypes for λ and λ² quantities,
//!   with saturating-free checked arithmetic through standard operators;
//! * [`Point`], [`Rect`], [`Interval`] — minimal planar geometry used by the
//!   layout substrates;
//! * [`Orientation`] — the eight layout orientations (4 rotations × mirror);
//! * [`AspectRatio`] — width : height ratios as reported in the paper's
//!   Tables 1 and 2;
//! * [`ShapeCurve`] — piecewise-constant width/height trade-off curves
//!   (Stockmeyer-style) used by the slicing floorplanner;
//! * [`design_rules`] — λ design-rule sets for Mead–Conway nMOS and a
//!   generic CMOS process.
//!
//! # Examples
//!
//! ```
//! use maestro_geom::{Lambda, Rect};
//!
//! let cell = Rect::from_size(Lambda::new(40), Lambda::new(28));
//! assert_eq!(cell.area(), Lambda::new(40) * Lambda::new(28));
//! assert!((cell.aspect_ratio().as_f64() - 40.0 / 28.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aspect;
pub mod design_rules;
mod interval;
mod lambda;
mod orientation;
mod point;
mod rect;
mod shape_curve;
pub mod svg;

pub use aspect::AspectRatio;
pub use design_rules::DesignRules;
pub use interval::Interval;
pub use lambda::{Lambda, LambdaArea, Micron};
pub use orientation::Orientation;
pub use point::Point;
pub use rect::Rect;
pub use shape_curve::{ShapeCurve, ShapePoint};
