//! Property-based tests for the geometry substrate.

use maestro_geom::{
    Interval, Lambda, LambdaArea, Orientation, Point, Rect, ShapeCurve, ShapePoint,
};
use proptest::prelude::*;

fn lambda() -> impl Strategy<Value = Lambda> {
    (-1_000i64..1_000).prop_map(Lambda::new)
}

fn positive_lambda() -> impl Strategy<Value = Lambda> {
    (1i64..1_000).prop_map(Lambda::new)
}

fn point() -> impl Strategy<Value = Point> {
    (lambda(), lambda()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn manhattan_triangle_inequality(a in point(), b in point(), c in point()) {
        let direct = a.manhattan_distance(c);
        let via = a.manhattan_distance(b) + b.manhattan_distance(c);
        prop_assert!(direct <= via);
    }

    #[test]
    fn interval_union_contains_both(a in lambda(), b in lambda(), c in lambda(), d in lambda()) {
        let i = Interval::new(a, b);
        let j = Interval::new(c, d);
        let u = i.union(j);
        prop_assert!(u.contains(i.lo()) && u.contains(i.hi()));
        prop_assert!(u.contains(j.lo()) && u.contains(j.hi()));
    }

    #[test]
    fn interval_intersection_within_both(a in lambda(), b in lambda(), c in lambda(), d in lambda()) {
        let i = Interval::new(a, b);
        let j = Interval::new(c, d);
        if let Some(k) = i.intersection(j) {
            prop_assert!(i.contains(k.lo()) && i.contains(k.hi()));
            prop_assert!(j.contains(k.lo()) && j.contains(k.hi()));
        } else {
            prop_assert!(!i.overlaps(j));
        }
    }

    #[test]
    fn rect_union_covers_operands(
        p in point(), w in positive_lambda(), h in positive_lambda(),
        q in point(), w2 in positive_lambda(), h2 in positive_lambda(),
    ) {
        let a = Rect::new(p, w, h);
        let b = Rect::new(q, w2, h2);
        let u = a.union(b);
        prop_assert!(u.contains(a.origin()) && u.contains(a.top_right()));
        prop_assert!(u.contains(b.origin()) && u.contains(b.top_right()));
        prop_assert!(u.area() >= a.area());
        prop_assert!(u.area() >= b.area());
    }

    #[test]
    fn orientation_inverse_round_trips_points(
        x in 0i64..50, y in 0i64..50,
        oi in 0usize..8,
    ) {
        // Square box: sizes stay stable so points can round-trip.
        let s = Lambda::new(50);
        let o = Orientation::ALL[oi];
        let p = Point::new(Lambda::new(x), Lambda::new(y));
        let round = o.inverse().apply(o.apply(p, s, s), s, s);
        prop_assert_eq!(round, p);
    }

    #[test]
    fn isqrt_ceil_is_tight(a in 0i64..4_000_000) {
        let side = LambdaArea::new(a).isqrt_ceil().get();
        prop_assert!(side * side >= a);
        if side > 0 {
            prop_assert!((side - 1) * (side - 1) < a);
        }
    }

    #[test]
    fn shape_curve_frontier_is_antichain(
        seeds in proptest::collection::vec((1i64..200, 1i64..200), 1..20)
    ) {
        let curve = ShapeCurve::from_points(
            seeds.iter().map(|&(w, h)| ShapePoint::new(Lambda::new(w), Lambda::new(h))),
        );
        let pts = curve.points();
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.dominates(*b), "{a} dominates {b}");
                }
            }
        }
        // Every input point is dominated-or-equalled by some frontier point.
        for &(w, h) in &seeds {
            let sp = ShapePoint::new(Lambda::new(w), Lambda::new(h));
            prop_assert!(pts.iter().any(|p| *p == sp || p.dominates(sp)));
        }
    }

    #[test]
    fn stockmeyer_beside_width_is_sum_of_some_pair(
        w1 in 1i64..100, h1 in 1i64..100,
        w2 in 1i64..100, h2 in 1i64..100,
    ) {
        let a = ShapeCurve::hard(Lambda::new(w1), Lambda::new(h1));
        let b = ShapeCurve::hard(Lambda::new(w2), Lambda::new(h2));
        let c = a.beside(&b);
        prop_assert_eq!(c.len(), 1);
        let p = c.points()[0];
        prop_assert_eq!(p.width.get(), w1 + w2);
        prop_assert_eq!(p.height.get(), h1.max(h2));
    }
}
