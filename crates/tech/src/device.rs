//! Device templates: the per-type areas and widths of the paper's equations.

use std::fmt;

use maestro_geom::{Lambda, LambdaArea};
use serde::{Deserialize, Serialize};

/// Coarse classification of a device template.
///
/// The estimator itself is agnostic — it consumes widths and areas — but
/// the layout substrates treat the classes differently (depletion loads
/// stack above pull-downs in nMOS gates; standard cells snap into rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceClass {
    /// nMOS enhancement-mode transistor (pull-down / pass device).
    NmosEnhancement,
    /// nMOS depletion-mode load transistor.
    NmosDepletion,
    /// PMOS transistor (CMOS pull-up).
    Pmos,
    /// A standard cell (logic gate or flip-flop) from a cell library.
    StandardCell,
}

impl DeviceClass {
    /// `true` for transistor-level classes used by full-custom layout.
    pub const fn is_transistor(self) -> bool {
        matches!(
            self,
            DeviceClass::NmosEnhancement | DeviceClass::NmosDepletion | DeviceClass::Pmos
        )
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::NmosEnhancement => "nmos-e",
            DeviceClass::NmosDepletion => "nmos-d",
            DeviceClass::Pmos => "pmos",
            DeviceClass::StandardCell => "standard-cell",
        };
        f.write_str(s)
    }
}

/// One device type known to the process: its name, class and physical
/// footprint.
///
/// For the estimator, `width()` is the `Wi` of Eq. 1 and `area()` feeds the
/// full-custom device-area sum of Eq. 13. For the layout substrates, the
/// footprint is the placeable tile.
///
/// # Examples
///
/// ```
/// use maestro_geom::Lambda;
/// use maestro_tech::{DeviceClass, DeviceTemplate};
///
/// let t = DeviceTemplate::new(
///     "pd2",
///     DeviceClass::NmosEnhancement,
///     Lambda::new(14),
///     Lambda::new(8),
/// );
/// assert_eq!(t.area().get(), 112);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceTemplate {
    name: String,
    class: DeviceClass,
    width: Lambda,
    height: Lambda,
}

impl DeviceTemplate {
    /// Creates a device template.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is not strictly positive, or the name
    /// is empty.
    pub fn new(name: impl Into<String>, class: DeviceClass, width: Lambda, height: Lambda) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "device template name must be non-empty");
        assert!(
            width.is_positive() && height.is_positive(),
            "device `{name}` has degenerate footprint {width} × {height}"
        );
        DeviceTemplate {
            name,
            class,
            width,
            height,
        }
    }

    /// Template name (unique within a process database).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Footprint width — the `Wi` of the paper's Eq. 1.
    pub fn width(&self) -> Lambda {
        self.width
    }

    /// Footprint height.
    pub fn height(&self) -> Lambda {
        self.height
    }

    /// Footprint area in λ².
    pub fn area(&self) -> LambdaArea {
        self.width * self.height
    }
}

impl fmt::Display for DeviceTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}×{}",
            self.name, self.class, self.width, self.height
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = DeviceTemplate::new(
            "ld",
            DeviceClass::NmosDepletion,
            Lambda::new(8),
            Lambda::new(14),
        );
        assert_eq!(t.name(), "ld");
        assert_eq!(t.class(), DeviceClass::NmosDepletion);
        assert_eq!(t.width(), Lambda::new(8));
        assert_eq!(t.height(), Lambda::new(14));
        assert_eq!(t.area(), LambdaArea::new(112));
    }

    #[test]
    fn transistor_classification() {
        assert!(DeviceClass::NmosEnhancement.is_transistor());
        assert!(DeviceClass::NmosDepletion.is_transistor());
        assert!(DeviceClass::Pmos.is_transistor());
        assert!(!DeviceClass::StandardCell.is_transistor());
    }

    #[test]
    #[should_panic(expected = "degenerate footprint")]
    fn zero_width_rejected() {
        let _ = DeviceTemplate::new("bad", DeviceClass::Pmos, Lambda::ZERO, Lambda::new(4));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_name_rejected() {
        let _ = DeviceTemplate::new("", DeviceClass::Pmos, Lambda::new(2), Lambda::new(4));
    }

    #[test]
    fn display() {
        let t = DeviceTemplate::new(
            "pd",
            DeviceClass::NmosEnhancement,
            Lambda::new(14),
            Lambda::new(8),
        );
        assert_eq!(t.to_string(), "pd [nmos-e] 14λ×8λ");
    }
}
