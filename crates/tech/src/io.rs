//! JSON persistence for process databases.
//!
//! §3: "Multiple process data bases can be stored in the computer system to
//! describe various VLSI technologies." We store each [`ProcessDb`] as a
//! JSON document; the floorplanner-facing results database uses the same
//! mechanism in `maestro-estimator`.

use std::fs;
use std::path::Path;

use crate::{ProcessDb, TechError};

/// Serializes a process database to pretty-printed JSON.
///
/// # Errors
///
/// Returns [`TechError::Io`] if serialization fails (it cannot for the
/// types in this crate, but the signature is honest about serde).
pub fn to_json(db: &ProcessDb) -> Result<String, TechError> {
    serde_json::to_string_pretty(db).map_err(|e| TechError::Io {
        message: e.to_string(),
    })
}

/// Parses a process database from JSON.
///
/// # Errors
///
/// Returns [`TechError::Io`] on malformed input.
pub fn from_json(json: &str) -> Result<ProcessDb, TechError> {
    serde_json::from_str(json).map_err(|e| TechError::Io {
        message: e.to_string(),
    })
}

/// Writes a process database to a JSON file.
///
/// # Errors
///
/// Returns [`TechError::Io`] if the file cannot be written.
pub fn save(db: &ProcessDb, path: impl AsRef<Path>) -> Result<(), TechError> {
    let json = to_json(db)?;
    fs::write(path.as_ref(), json).map_err(|e| TechError::Io {
        message: format!("{}: {e}", path.as_ref().display()),
    })
}

/// Reads a process database from a JSON file.
///
/// # Errors
///
/// Returns [`TechError::Io`] if the file cannot be read or parsed.
pub fn load(path: impl AsRef<Path>) -> Result<ProcessDb, TechError> {
    let json = fs::read_to_string(path.as_ref()).map_err(|e| TechError::Io {
        message: format!("{}: {e}", path.as_ref().display()),
    })?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    #[test]
    fn json_round_trip_preserves_database() {
        let db = builtin::nmos25();
        let json = to_json(&db).expect("serializes");
        let back = from_json(&json).expect("parses");
        assert_eq!(db, back);
    }

    #[test]
    fn file_round_trip() {
        let db = builtin::cmos_generic();
        let dir = std::env::temp_dir().join("maestro-tech-io-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cmos.json");
        save(&db, &path).expect("saves");
        let back = load(&path).expect("loads");
        assert_eq!(db, back);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn malformed_json_reports_io_error() {
        let err = from_json("{not json").unwrap_err();
        assert!(matches!(err, TechError::Io { .. }));
    }

    #[test]
    fn missing_file_reports_io_error_with_path() {
        let err = load("/nonexistent/maestro.json").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("/nonexistent/maestro.json"), "{msg}");
    }
}
