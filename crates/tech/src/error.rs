//! Error type for technology-database operations.

use std::error::Error;
use std::fmt;

/// Errors raised while building, querying or loading a process database.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TechError {
    /// A device type referenced by name does not exist in the database.
    UnknownDevice {
        /// The missing device-type name.
        name: String,
    },
    /// A standard cell referenced by name does not exist in the library.
    UnknownCell {
        /// The missing cell name.
        name: String,
    },
    /// Two templates with the same name were registered.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A physical parameter was out of range (message explains which).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// Persistence failed while reading or writing a database file.
    Io {
        /// Human-readable description of the underlying failure.
        message: String,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::UnknownDevice { name } => write!(f, "unknown device type `{name}`"),
            TechError::UnknownCell { name } => write!(f, "unknown standard cell `{name}`"),
            TechError::DuplicateName { name } => write!(f, "duplicate template name `{name}`"),
            TechError::InvalidParameter { message } => {
                write!(f, "invalid process parameter: {message}")
            }
            TechError::Io { message } => write!(f, "process database i/o failed: {message}"),
        }
    }
}

impl Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TechError::UnknownDevice {
            name: "XQ1".to_owned(),
        };
        assert_eq!(e.to_string(), "unknown device type `XQ1`");
        let e = TechError::InvalidParameter {
            message: "row height must be positive".to_owned(),
        };
        assert!(e.to_string().contains("row height"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<TechError>();
    }
}
