//! Process/technology database for the `maestro` VLSI area estimator.
//!
//! §3 of Chen & Bushnell's DAC 1988 paper lists two inputs to the
//! estimation task: "the circuit schematic … and the fabrication technique
//! or process data base for the particular technology used to fabricate the
//! chip. Multiple process data bases can be stored in the computer system
//! to describe various VLSI technologies. The process data includes the
//! areas of different types of devices, the height of the Standard-Cell
//! rows, and the value of λ."
//!
//! This crate is that process database:
//!
//! * [`DeviceTemplate`] — one device type with its physical footprint, the
//!   `Wi` of the paper's estimation equations;
//! * [`CellLibrary`] — a standard-cell library (common row height, varying
//!   widths, pin offsets) for the standard-cell layout methodology;
//! * [`ProcessDb`] — a named technology: λ, design rules, routing pitches,
//!   feed-through width, device templates and the cell library;
//! * [`builtin`] — ready-made databases: Mead–Conway nMOS at λ = 2.5 µm
//!   (the paper's Table 1 technology) and a generic scalable CMOS;
//! * [`io`] — JSON persistence, the "multiple process data bases … stored
//!   in the computer system".
//!
//! # Examples
//!
//! ```
//! use maestro_tech::builtin;
//!
//! let tech = builtin::nmos25();
//! assert_eq!(tech.lambda_microns(), 2.5);
//! let inv = tech.cell_library().cell("INV").expect("library has inverters");
//! assert!(inv.width().is_positive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
mod cell_library;
mod device;
mod error;
pub mod io;
mod process;

pub use cell_library::{CellLibrary, CellTemplate, PinSide, PinTemplate};
pub use device::{DeviceClass, DeviceTemplate};
pub use error::TechError;
pub use process::{ProcessDb, TechRevision};
