//! Standard-cell libraries: "cells have the same height, but different
//! widths" (paper §4.1).

use std::collections::BTreeMap;
use std::fmt;

use maestro_geom::{Lambda, LambdaArea, Point};
use serde::{Deserialize, Serialize};

use crate::TechError;

/// Which edge of the cell a pin sits on.
///
/// Standard-cell pins are reachable from the routing channel above or below
/// the row ("routing channels between the rows allow wires to connect to
/// the tops and bottoms of devices", paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PinSide {
    /// Pin on the top cell edge.
    Top,
    /// Pin on the bottom cell edge.
    Bottom,
    /// Pin reachable from both edges (internal feed-through pin).
    Both,
}

impl fmt::Display for PinSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PinSide::Top => "top",
            PinSide::Bottom => "bottom",
            PinSide::Both => "both",
        };
        f.write_str(s)
    }
}

/// One logical pin of a standard-cell template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PinTemplate {
    name: String,
    offset: Lambda,
    side: PinSide,
}

impl PinTemplate {
    /// Creates a pin at horizontal `offset` from the cell's left edge.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or the offset negative.
    pub fn new(name: impl Into<String>, offset: Lambda, side: PinSide) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "pin name must be non-empty");
        assert!(
            offset.get() >= 0,
            "pin `{name}` offset {offset} is negative"
        );
        PinTemplate { name, offset, side }
    }

    /// Pin name, unique within a cell.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Horizontal offset from the cell's left edge.
    pub fn offset(&self) -> Lambda {
        self.offset
    }

    /// Cell edge the pin sits on.
    pub fn side(&self) -> PinSide {
        self.side
    }
}

/// One standard-cell type: a fixed-height, variable-width tile with named
/// pins.
///
/// # Examples
///
/// ```
/// use maestro_geom::Lambda;
/// use maestro_tech::{CellTemplate, PinSide, PinTemplate};
///
/// let inv = CellTemplate::new(
///     "INV",
///     Lambda::new(14),
///     Lambda::new(40),
///     vec![
///         PinTemplate::new("A", Lambda::new(3), PinSide::Both),
///         PinTemplate::new("Y", Lambda::new(11), PinSide::Both),
///     ],
/// );
/// assert_eq!(inv.pin("A").unwrap().offset().get(), 3);
/// assert_eq!(inv.area().get(), 14 * 40);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellTemplate {
    name: String,
    width: Lambda,
    height: Lambda,
    pins: Vec<PinTemplate>,
}

impl CellTemplate {
    /// Creates a cell template.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty, dimensions are not positive, a pin
    /// offset exceeds the width, or pin names collide.
    pub fn new(
        name: impl Into<String>,
        width: Lambda,
        height: Lambda,
        pins: Vec<PinTemplate>,
    ) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "cell name must be non-empty");
        assert!(
            width.is_positive() && height.is_positive(),
            "cell `{name}` has degenerate size {width} × {height}"
        );
        for (i, p) in pins.iter().enumerate() {
            assert!(
                p.offset() <= width,
                "cell `{name}` pin `{}` offset {} exceeds width {width}",
                p.name(),
                p.offset()
            );
            for q in &pins[..i] {
                assert!(
                    p.name() != q.name(),
                    "cell `{name}` has duplicate pin `{}`",
                    p.name()
                );
            }
        }
        CellTemplate {
            name,
            width,
            height,
            pins,
        }
    }

    /// Cell name, unique within a library.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell width (the varying dimension).
    pub fn width(&self) -> Lambda {
        self.width
    }

    /// Cell height (equal to the library row height).
    pub fn height(&self) -> Lambda {
        self.height
    }

    /// Cell area.
    pub fn area(&self) -> LambdaArea {
        self.width * self.height
    }

    /// All pins in declaration order.
    pub fn pins(&self) -> &[PinTemplate] {
        &self.pins
    }

    /// Looks up a pin by name.
    pub fn pin(&self, name: &str) -> Option<&PinTemplate> {
        self.pins.iter().find(|p| p.name() == name)
    }

    /// The location of a pin relative to the cell's lower-left corner,
    /// given the cell height (pins sit on the top or bottom edge; `Both`
    /// reports the bottom-edge location).
    pub fn pin_location(&self, name: &str) -> Option<Point> {
        self.pin(name).map(|p| {
            let y = match p.side() {
                PinSide::Top => self.height,
                PinSide::Bottom | PinSide::Both => Lambda::ZERO,
            };
            Point::new(p.offset(), y)
        })
    }
}

impl fmt::Display for CellTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}×{} ({} pins)",
            self.name,
            self.width,
            self.height,
            self.pins.len()
        )
    }
}

/// A standard-cell library: a shared row height and a set of cell
/// templates.
///
/// # Examples
///
/// ```
/// use maestro_tech::builtin;
///
/// let lib = builtin::nmos25().cell_library().clone();
/// let nand = lib.cell("NAND2").expect("library has 2-input NANDs");
/// assert_eq!(nand.height(), lib.row_height());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    row_height: Lambda,
    cells: BTreeMap<String, CellTemplate>,
}

impl CellLibrary {
    /// Creates an empty library with the given row height.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or the row height not positive.
    pub fn new(name: impl Into<String>, row_height: Lambda) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "library name must be non-empty");
        assert!(
            row_height.is_positive(),
            "library `{name}` row height {row_height} must be positive"
        );
        CellLibrary {
            name,
            row_height,
            cells: BTreeMap::new(),
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The common cell/row height.
    pub fn row_height(&self) -> Lambda {
        self.row_height
    }

    /// Adds a cell template.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::DuplicateName`] if a cell of the same name
    /// exists, or [`TechError::InvalidParameter`] if the cell height does
    /// not match the library row height.
    pub fn add_cell(&mut self, cell: CellTemplate) -> Result<(), TechError> {
        if cell.height() != self.row_height {
            return Err(TechError::InvalidParameter {
                message: format!(
                    "cell `{}` height {} does not match library row height {}",
                    cell.name(),
                    cell.height(),
                    self.row_height
                ),
            });
        }
        if self.cells.contains_key(cell.name()) {
            return Err(TechError::DuplicateName {
                name: cell.name().to_owned(),
            });
        }
        self.cells.insert(cell.name().to_owned(), cell);
        Ok(())
    }

    /// Looks up a cell template by name.
    pub fn cell(&self, name: &str) -> Option<&CellTemplate> {
        self.cells.get(name)
    }

    /// Looks up a cell template by name, as a `Result`.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownCell`] when absent.
    pub fn require_cell(&self, name: &str) -> Result<&CellTemplate, TechError> {
        self.cell(name).ok_or_else(|| TechError::UnknownCell {
            name: name.to_owned(),
        })
    }

    /// Iterates over all cells in name order.
    pub fn iter(&self) -> impl Iterator<Item = &CellTemplate> {
        self.cells.values()
    }

    /// Number of cell templates.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl fmt::Display for CellLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "library `{}`: {} cells, row height {}",
            self.name,
            self.cells.len(),
            self.row_height
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(height: i64) -> CellTemplate {
        CellTemplate::new(
            "INV",
            Lambda::new(14),
            Lambda::new(height),
            vec![
                PinTemplate::new("A", Lambda::new(3), PinSide::Both),
                PinTemplate::new("Y", Lambda::new(11), PinSide::Top),
            ],
        )
    }

    #[test]
    fn cell_pin_lookup_and_location() {
        let c = inv(40);
        assert_eq!(c.pin("A").unwrap().side(), PinSide::Both);
        assert_eq!(c.pin("missing"), None);
        let loc = c.pin_location("Y").unwrap();
        assert_eq!(loc, Point::new(Lambda::new(11), Lambda::new(40)));
        let loc = c.pin_location("A").unwrap();
        assert_eq!(loc, Point::new(Lambda::new(3), Lambda::ZERO));
    }

    #[test]
    #[should_panic(expected = "duplicate pin")]
    fn duplicate_pin_rejected() {
        let _ = CellTemplate::new(
            "X",
            Lambda::new(10),
            Lambda::new(40),
            vec![
                PinTemplate::new("A", Lambda::new(1), PinSide::Top),
                PinTemplate::new("A", Lambda::new(2), PinSide::Top),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn pin_offset_beyond_width_rejected() {
        let _ = CellTemplate::new(
            "X",
            Lambda::new(10),
            Lambda::new(40),
            vec![PinTemplate::new("A", Lambda::new(11), PinSide::Top)],
        );
    }

    #[test]
    fn library_add_and_lookup() {
        let mut lib = CellLibrary::new("test", Lambda::new(40));
        lib.add_cell(inv(40)).expect("first add succeeds");
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
        assert!(lib.cell("INV").is_some());
        assert!(lib.require_cell("INV").is_ok());
        assert_eq!(
            lib.require_cell("NAND9").unwrap_err(),
            TechError::UnknownCell {
                name: "NAND9".to_owned()
            }
        );
    }

    #[test]
    fn library_rejects_duplicates_and_height_mismatch() {
        let mut lib = CellLibrary::new("test", Lambda::new(40));
        lib.add_cell(inv(40)).expect("first add succeeds");
        assert!(matches!(
            lib.add_cell(inv(40)),
            Err(TechError::DuplicateName { .. })
        ));
        let mut lib2 = CellLibrary::new("test2", Lambda::new(42));
        assert!(matches!(
            lib2.add_cell(inv(40)),
            Err(TechError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn iteration_in_name_order() {
        let mut lib = CellLibrary::new("test", Lambda::new(40));
        let mk = |name: &str| CellTemplate::new(name, Lambda::new(10), Lambda::new(40), vec![]);
        lib.add_cell(mk("NOR2")).unwrap();
        lib.add_cell(mk("AND2")).unwrap();
        lib.add_cell(mk("INV")).unwrap();
        let names: Vec<_> = lib.iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(names, ["AND2", "INV", "NOR2"]);
    }
}
