//! Ready-made process databases.
//!
//! [`nmos25`] models the paper's Table 1 technology — Mead–Conway nMOS at
//! λ = 2.5 µm — with a TimberWolf-era standard-cell library re-created "at
//! Rutgers" scale (paper §6). [`cmos_generic`] exercises the paper's
//! requirement that "multiple process data bases can be stored … to
//! describe various VLSI technologies" and that the estimator "can easily
//! be adjusted to cope with new chip fabrication processes".

use maestro_geom::{DesignRules, Lambda};

use crate::{
    CellLibrary, CellTemplate, DeviceClass, DeviceTemplate, PinSide, PinTemplate, ProcessDb,
};

const fn l(v: i64) -> Lambda {
    Lambda::new(v)
}

/// Builds a cell with evenly spread `Both`-side pins: inputs first, then
/// outputs, spaced across the cell width.
fn cell(name: &str, width: i64, height: Lambda, pins: &[&str]) -> CellTemplate {
    let step = width / (pins.len() as i64 + 1);
    let pins = pins
        .iter()
        .enumerate()
        .map(|(i, p)| PinTemplate::new(*p, l(step * (i as i64 + 1)), PinSide::Both))
        .collect();
    CellTemplate::new(name, l(width), height, pins)
}

/// The nMOS standard-cell library used by the Table 2 experiments:
/// 40λ rows, inverter through flip-flop.
pub fn nmos_cell_library() -> CellLibrary {
    let h = l(40);
    let mut lib = CellLibrary::new("rutgers-nmos", h);
    let cells = [
        cell("INV", 14, h, &["A", "Y"]),
        cell("BUF", 20, h, &["A", "Y"]),
        cell("NAND2", 18, h, &["A", "B", "Y"]),
        cell("NAND3", 24, h, &["A", "B", "C", "Y"]),
        cell("NAND4", 30, h, &["A", "B", "C", "D", "Y"]),
        cell("NOR2", 18, h, &["A", "B", "Y"]),
        cell("NOR3", 24, h, &["A", "B", "C", "Y"]),
        cell("AND2", 22, h, &["A", "B", "Y"]),
        cell("OR2", 22, h, &["A", "B", "Y"]),
        cell("XOR2", 30, h, &["A", "B", "Y"]),
        cell("XNOR2", 30, h, &["A", "B", "Y"]),
        cell("AOI22", 28, h, &["A1", "A2", "B1", "B2", "Y"]),
        cell("OAI22", 28, h, &["A1", "A2", "B1", "B2", "Y"]),
        cell("MUX2", 32, h, &["A", "B", "S", "Y"]),
        cell("DLATCH", 36, h, &["D", "G", "Q"]),
        cell("DFF", 48, h, &["D", "CK", "Q", "QN"]),
    ];
    for c in cells {
        lib.add_cell(c).expect("builtin library has unique names");
    }
    lib
}

/// A generic CMOS standard-cell library: 50λ rows (taller cells for the
/// p-well), same logical cell set.
pub fn cmos_cell_library() -> CellLibrary {
    let h = l(50);
    let mut lib = CellLibrary::new("generic-cmos", h);
    let cells = [
        cell("INV", 12, h, &["A", "Y"]),
        cell("BUF", 18, h, &["A", "Y"]),
        cell("NAND2", 16, h, &["A", "B", "Y"]),
        cell("NAND3", 22, h, &["A", "B", "C", "Y"]),
        cell("NAND4", 28, h, &["A", "B", "C", "D", "Y"]),
        cell("NOR2", 16, h, &["A", "B", "Y"]),
        cell("NOR3", 22, h, &["A", "B", "C", "Y"]),
        cell("AND2", 20, h, &["A", "B", "Y"]),
        cell("OR2", 20, h, &["A", "B", "Y"]),
        cell("XOR2", 28, h, &["A", "B", "Y"]),
        cell("XNOR2", 28, h, &["A", "B", "Y"]),
        cell("AOI22", 26, h, &["A1", "A2", "B1", "B2", "Y"]),
        cell("OAI22", 26, h, &["A1", "A2", "B1", "B2", "Y"]),
        cell("MUX2", 30, h, &["A", "B", "S", "Y"]),
        cell("DLATCH", 34, h, &["D", "G", "Q"]),
        cell("DFF", 44, h, &["D", "CK", "Q", "QN"]),
    ];
    for c in cells {
        lib.add_cell(c).expect("builtin library has unique names");
    }
    lib
}

/// Mead–Conway nMOS at λ = 2.5 µm — the Table 1 technology.
///
/// Transistor device templates (full-custom atoms), all derived from the
/// Mead–Conway rule set's transistor footprint:
///
/// | name   | class  | geometry |
/// |--------|--------|----------|
/// | `pd`   | nmos-e | minimum 2λ/2λ pull-down |
/// | `pd4`  | nmos-e | 8λ/2λ wide pull-down (high drive) |
/// | `pass` | nmos-e | minimum pass transistor |
/// | `pu`   | nmos-d | 2λ/8λ depletion load (4:1 ratio) |
/// | `pu2`  | nmos-d | 2λ/4λ depletion load (2:1 ratio) |
pub fn nmos25() -> ProcessDb {
    let rules = DesignRules::mead_conway_nmos();
    let mut db = ProcessDb::new(
        "mead-conway-nmos-2.5um",
        2.5,
        rules.clone(),
        l(6), // metal1 track pitch: 3λ wire + 3λ space
        l(7), // feed-through column: wire + spacing + contact slack
        l(8), // port pitch along module edge
        nmos_cell_library(),
    );
    let dev = |name: &str, class: DeviceClass, w: i64, len: i64| {
        let (along, across) = rules.transistor_footprint(l(w), l(len));
        DeviceTemplate::new(name, class, along, across)
    };
    for d in [
        dev("pd", DeviceClass::NmosEnhancement, 2, 2),
        dev("pd4", DeviceClass::NmosEnhancement, 8, 2),
        dev("pass", DeviceClass::NmosEnhancement, 2, 2),
        dev("pu", DeviceClass::NmosDepletion, 2, 8),
        dev("pu2", DeviceClass::NmosDepletion, 2, 4),
    ] {
        db.add_device(d).expect("builtin devices have unique names");
    }
    db
}

/// A generic two-metal scalable CMOS process at λ = 0.6 µm.
pub fn cmos_generic() -> ProcessDb {
    let rules = DesignRules::scalable_cmos();
    let mut db = ProcessDb::new(
        "scalable-cmos-0.6um",
        0.6,
        rules.clone(),
        l(7), // metal2 pitch governs channel tracks
        l(7),
        l(8),
        cmos_cell_library(),
    );
    let dev = |name: &str, class: DeviceClass, w: i64, len: i64| {
        let (along, across) = rules.transistor_footprint(l(w), l(len));
        DeviceTemplate::new(name, class, along, across)
    };
    for d in [
        dev("n1", DeviceClass::NmosEnhancement, 3, 2),
        dev("n4", DeviceClass::NmosEnhancement, 12, 2),
        dev("p2", DeviceClass::Pmos, 6, 2),
        dev("p4", DeviceClass::Pmos, 12, 2),
    ] {
        db.add_device(d).expect("builtin devices have unique names");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmos25_matches_paper_technology() {
        let t = nmos25();
        assert_eq!(t.lambda_microns(), 2.5);
        assert!(!t.rules().has_metal2());
        assert_eq!(t.row_height(), Lambda::new(40));
        assert_eq!(t.device_count(), 5);
    }

    #[test]
    fn nmos_library_is_well_formed() {
        let lib = nmos_cell_library();
        assert!(lib.len() >= 12);
        for c in lib.iter() {
            assert_eq!(c.height(), lib.row_height());
            assert!(c.width().is_positive());
            assert!(!c.pins().is_empty(), "cell {} has pins", c.name());
        }
        // Widths vary — the "same height, different widths" assumption.
        let inv = lib.cell("INV").unwrap().width();
        let dff = lib.cell("DFF").unwrap().width();
        assert!(dff > inv);
    }

    #[test]
    fn nmos_devices_have_sane_footprints() {
        let t = nmos25();
        let pd = t.require_device("pd").unwrap();
        // Minimum transistor: 14λ × 8λ under Mead–Conway rules.
        assert_eq!((pd.width(), pd.height()), (Lambda::new(14), Lambda::new(8)));
        let pu = t.require_device("pu").unwrap();
        assert!(pu.area() > pd.area(), "4:1 load is larger than pull-down");
        assert!(pd.class().is_transistor());
    }

    #[test]
    fn cmos_generic_has_metal2_and_pmos() {
        let t = cmos_generic();
        assert!(t.rules().has_metal2());
        assert!(t.require_device("p2").unwrap().class() == DeviceClass::Pmos);
        assert_eq!(t.row_height(), Lambda::new(50));
    }

    #[test]
    fn libraries_share_cell_names() {
        // The same netlist must be mappable to either process (§3's
        // multi-technology requirement).
        let a = nmos_cell_library();
        let b = cmos_cell_library();
        for c in a.iter() {
            assert!(b.cell(c.name()).is_some(), "cmos lacks {}", c.name());
        }
    }
}
